# Empty dependencies file for test_hmg.
# This may be replaced when dependencies are built.
