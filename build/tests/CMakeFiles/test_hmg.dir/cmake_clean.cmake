file(REMOVE_RECURSE
  "CMakeFiles/test_hmg.dir/test_hmg.cc.o"
  "CMakeFiles/test_hmg.dir/test_hmg.cc.o.d"
  "test_hmg"
  "test_hmg.pdb"
  "test_hmg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
