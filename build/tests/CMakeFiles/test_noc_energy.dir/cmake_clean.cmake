file(REMOVE_RECURSE
  "CMakeFiles/test_noc_energy.dir/test_noc_energy.cc.o"
  "CMakeFiles/test_noc_energy.dir/test_noc_energy.cc.o.d"
  "test_noc_energy"
  "test_noc_energy.pdb"
  "test_noc_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
