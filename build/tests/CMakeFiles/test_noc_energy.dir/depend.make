# Empty dependencies file for test_noc_energy.
# This may be replaced when dependencies are built.
