file(REMOVE_RECURSE
  "CMakeFiles/test_data_space.dir/test_data_space.cc.o"
  "CMakeFiles/test_data_space.dir/test_data_space.cc.o.d"
  "test_data_space"
  "test_data_space.pdb"
  "test_data_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
