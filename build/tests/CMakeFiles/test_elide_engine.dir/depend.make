# Empty dependencies file for test_elide_engine.
# This may be replaced when dependencies are built.
