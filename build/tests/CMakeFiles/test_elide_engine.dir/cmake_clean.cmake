file(REMOVE_RECURSE
  "CMakeFiles/test_elide_engine.dir/test_elide_engine.cc.o"
  "CMakeFiles/test_elide_engine.dir/test_elide_engine.cc.o.d"
  "test_elide_engine"
  "test_elide_engine.pdb"
  "test_elide_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elide_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
