
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ds_state.cc" "tests/CMakeFiles/test_ds_state.dir/test_ds_state.cc.o" "gcc" "tests/CMakeFiles/test_ds_state.dir/test_ds_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cpelide_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cpelide_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cpelide_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cpelide_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cp/CMakeFiles/cpelide_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/cpelide_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cpelide_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpelide_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cpelide_config.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpelide_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
