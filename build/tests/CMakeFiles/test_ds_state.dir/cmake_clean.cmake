file(REMOVE_RECURSE
  "CMakeFiles/test_ds_state.dir/test_ds_state.cc.o"
  "CMakeFiles/test_ds_state.dir/test_ds_state.cc.o.d"
  "test_ds_state"
  "test_ds_state.pdb"
  "test_ds_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ds_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
