# Empty compiler generated dependencies file for test_ds_state.
# This may be replaced when dependencies are built.
