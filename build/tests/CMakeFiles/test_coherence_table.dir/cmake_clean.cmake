file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_table.dir/test_coherence_table.cc.o"
  "CMakeFiles/test_coherence_table.dir/test_coherence_table.cc.o.d"
  "test_coherence_table"
  "test_coherence_table.pdb"
  "test_coherence_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
