# Empty dependencies file for test_viper.
# This may be replaced when dependencies are built.
