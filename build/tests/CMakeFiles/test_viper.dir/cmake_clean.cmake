file(REMOVE_RECURSE
  "CMakeFiles/test_viper.dir/test_viper.cc.o"
  "CMakeFiles/test_viper.dir/test_viper.cc.o.d"
  "test_viper"
  "test_viper.pdb"
  "test_viper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_viper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
