# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_cache_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_data_space[1]_include.cmake")
include("/root/repo/build/tests/test_page_table[1]_include.cmake")
include("/root/repo/build/tests/test_noc_energy[1]_include.cmake")
include("/root/repo/build/tests/test_ds_state[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_table[1]_include.cmake")
include("/root/repo/build/tests/test_elide_engine[1]_include.cmake")
include("/root/repo/build/tests/test_viper[1]_include.cmake")
include("/root/repo/build/tests/test_hmg[1]_include.cmake")
include("/root/repo/build/tests/test_cp[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_system[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_annotations[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
