# Empty dependencies file for cpelide_stats.
# This may be replaced when dependencies are built.
