file(REMOVE_RECURSE
  "CMakeFiles/cpelide_stats.dir/report.cc.o"
  "CMakeFiles/cpelide_stats.dir/report.cc.o.d"
  "libcpelide_stats.a"
  "libcpelide_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
