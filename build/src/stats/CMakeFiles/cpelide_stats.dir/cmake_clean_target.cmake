file(REMOVE_RECURSE
  "libcpelide_stats.a"
)
