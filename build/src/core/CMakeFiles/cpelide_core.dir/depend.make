# Empty dependencies file for cpelide_core.
# This may be replaced when dependencies are built.
