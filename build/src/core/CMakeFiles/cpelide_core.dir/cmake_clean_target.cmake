file(REMOVE_RECURSE
  "libcpelide_core.a"
)
