file(REMOVE_RECURSE
  "CMakeFiles/cpelide_core.dir/coherence_table.cc.o"
  "CMakeFiles/cpelide_core.dir/coherence_table.cc.o.d"
  "CMakeFiles/cpelide_core.dir/elide_engine.cc.o"
  "CMakeFiles/cpelide_core.dir/elide_engine.cc.o.d"
  "libcpelide_core.a"
  "libcpelide_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
