# Empty dependencies file for cpelide_gpu.
# This may be replaced when dependencies are built.
