file(REMOVE_RECURSE
  "libcpelide_gpu.a"
)
