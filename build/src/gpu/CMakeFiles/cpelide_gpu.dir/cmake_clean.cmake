file(REMOVE_RECURSE
  "CMakeFiles/cpelide_gpu.dir/gpu_system.cc.o"
  "CMakeFiles/cpelide_gpu.dir/gpu_system.cc.o.d"
  "libcpelide_gpu.a"
  "libcpelide_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
