file(REMOVE_RECURSE
  "libcpelide_workloads.a"
)
