
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/babelstream.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/babelstream.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/babelstream.cc.o.d"
  "/root/repo/src/workloads/backprop.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/backprop.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/bfs.cc.o.d"
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/cnn.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/cnn.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/cnn.cc.o.d"
  "/root/repo/src/workloads/color_max.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/color_max.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/color_max.cc.o.d"
  "/root/repo/src/workloads/dwt2d.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/dwt2d.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/dwt2d.cc.o.d"
  "/root/repo/src/workloads/fw.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/fw.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/fw.cc.o.d"
  "/root/repo/src/workloads/gaussian.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/gaussian.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/gaussian.cc.o.d"
  "/root/repo/src/workloads/hacc.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/hacc.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/hacc.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/hotspot.cc.o.d"
  "/root/repo/src/workloads/hotspot3d.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/hotspot3d.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/hotspot3d.cc.o.d"
  "/root/repo/src/workloads/lud.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/lud.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/lud.cc.o.d"
  "/root/repo/src/workloads/lulesh.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/lulesh.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/lulesh.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/nw.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/nw.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/pathfinder.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/pathfinder.cc.o.d"
  "/root/repo/src/workloads/pennant.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/pennant.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/pennant.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/rnn.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/rnn.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/rnn.cc.o.d"
  "/root/repo/src/workloads/square.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/square.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/square.cc.o.d"
  "/root/repo/src/workloads/srad_v2.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/srad_v2.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/srad_v2.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/workloads/CMakeFiles/cpelide_workloads.dir/sssp.cc.o" "gcc" "src/workloads/CMakeFiles/cpelide_workloads.dir/sssp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cpelide_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cpelide_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cp/CMakeFiles/cpelide_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/cpelide_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cpelide_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpelide_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpelide_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cpelide_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
