# Empty compiler generated dependencies file for cpelide_workloads.
# This may be replaced when dependencies are built.
