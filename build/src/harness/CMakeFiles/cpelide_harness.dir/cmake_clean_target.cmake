file(REMOVE_RECURSE
  "libcpelide_harness.a"
)
