file(REMOVE_RECURSE
  "CMakeFiles/cpelide_harness.dir/harness.cc.o"
  "CMakeFiles/cpelide_harness.dir/harness.cc.o.d"
  "libcpelide_harness.a"
  "libcpelide_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
