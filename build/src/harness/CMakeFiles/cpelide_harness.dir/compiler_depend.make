# Empty compiler generated dependencies file for cpelide_harness.
# This may be replaced when dependencies are built.
