file(REMOVE_RECURSE
  "libcpelide_mem.a"
)
