file(REMOVE_RECURSE
  "CMakeFiles/cpelide_mem.dir/cache.cc.o"
  "CMakeFiles/cpelide_mem.dir/cache.cc.o.d"
  "libcpelide_mem.a"
  "libcpelide_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
