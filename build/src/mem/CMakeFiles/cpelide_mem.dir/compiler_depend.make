# Empty compiler generated dependencies file for cpelide_mem.
# This may be replaced when dependencies are built.
