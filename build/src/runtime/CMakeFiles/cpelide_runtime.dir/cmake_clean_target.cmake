file(REMOVE_RECURSE
  "libcpelide_runtime.a"
)
