# Empty compiler generated dependencies file for cpelide_runtime.
# This may be replaced when dependencies are built.
