file(REMOVE_RECURSE
  "CMakeFiles/cpelide_runtime.dir/runtime.cc.o"
  "CMakeFiles/cpelide_runtime.dir/runtime.cc.o.d"
  "libcpelide_runtime.a"
  "libcpelide_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
