# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("config")
subdirs("mem")
subdirs("noc")
subdirs("energy")
subdirs("stats")
subdirs("coherence")
subdirs("core")
subdirs("cp")
subdirs("gpu")
subdirs("runtime")
subdirs("workloads")
subdirs("harness")
