file(REMOVE_RECURSE
  "CMakeFiles/cpelide_cp.dir/global_cp.cc.o"
  "CMakeFiles/cpelide_cp.dir/global_cp.cc.o.d"
  "libcpelide_cp.a"
  "libcpelide_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
