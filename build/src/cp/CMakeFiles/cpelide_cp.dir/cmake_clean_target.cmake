file(REMOVE_RECURSE
  "libcpelide_cp.a"
)
