# Empty compiler generated dependencies file for cpelide_cp.
# This may be replaced when dependencies are built.
