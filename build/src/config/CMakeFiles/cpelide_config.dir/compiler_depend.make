# Empty compiler generated dependencies file for cpelide_config.
# This may be replaced when dependencies are built.
