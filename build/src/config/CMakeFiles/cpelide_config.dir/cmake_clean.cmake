file(REMOVE_RECURSE
  "CMakeFiles/cpelide_config.dir/gpu_config.cc.o"
  "CMakeFiles/cpelide_config.dir/gpu_config.cc.o.d"
  "libcpelide_config.a"
  "libcpelide_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
