file(REMOVE_RECURSE
  "libcpelide_config.a"
)
