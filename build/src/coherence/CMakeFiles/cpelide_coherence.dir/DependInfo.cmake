
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/hmg.cc" "src/coherence/CMakeFiles/cpelide_coherence.dir/hmg.cc.o" "gcc" "src/coherence/CMakeFiles/cpelide_coherence.dir/hmg.cc.o.d"
  "/root/repo/src/coherence/mem_system.cc" "src/coherence/CMakeFiles/cpelide_coherence.dir/mem_system.cc.o" "gcc" "src/coherence/CMakeFiles/cpelide_coherence.dir/mem_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/cpelide_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cpelide_config.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpelide_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
