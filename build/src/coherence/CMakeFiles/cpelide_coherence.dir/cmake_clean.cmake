file(REMOVE_RECURSE
  "CMakeFiles/cpelide_coherence.dir/hmg.cc.o"
  "CMakeFiles/cpelide_coherence.dir/hmg.cc.o.d"
  "CMakeFiles/cpelide_coherence.dir/mem_system.cc.o"
  "CMakeFiles/cpelide_coherence.dir/mem_system.cc.o.d"
  "libcpelide_coherence.a"
  "libcpelide_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpelide_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
