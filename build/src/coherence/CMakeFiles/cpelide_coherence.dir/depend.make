# Empty dependencies file for cpelide_coherence.
# This may be replaced when dependencies are built.
