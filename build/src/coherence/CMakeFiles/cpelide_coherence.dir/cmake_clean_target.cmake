file(REMOVE_RECURSE
  "libcpelide_coherence.a"
)
