# Empty compiler generated dependencies file for fig10_traffic.
# This may be replaced when dependencies are built.
