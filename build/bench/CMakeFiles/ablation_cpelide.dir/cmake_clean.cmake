file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpelide.dir/ablation_cpelide.cc.o"
  "CMakeFiles/ablation_cpelide.dir/ablation_cpelide.cc.o.d"
  "ablation_cpelide"
  "ablation_cpelide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpelide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
