# Empty dependencies file for ablation_cpelide.
# This may be replaced when dependencies are built.
