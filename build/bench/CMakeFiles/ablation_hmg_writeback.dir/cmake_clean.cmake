file(REMOVE_RECURSE
  "CMakeFiles/ablation_hmg_writeback.dir/ablation_hmg_writeback.cc.o"
  "CMakeFiles/ablation_hmg_writeback.dir/ablation_hmg_writeback.cc.o.d"
  "ablation_hmg_writeback"
  "ablation_hmg_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hmg_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
