file(REMOVE_RECURSE
  "CMakeFiles/multistream_study.dir/multistream_study.cc.o"
  "CMakeFiles/multistream_study.dir/multistream_study.cc.o.d"
  "multistream_study"
  "multistream_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistream_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
