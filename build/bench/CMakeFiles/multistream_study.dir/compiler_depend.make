# Empty compiler generated dependencies file for multistream_study.
# This may be replaced when dependencies are built.
