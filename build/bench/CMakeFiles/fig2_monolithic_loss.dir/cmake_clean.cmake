file(REMOVE_RECURSE
  "CMakeFiles/fig2_monolithic_loss.dir/fig2_monolithic_loss.cc.o"
  "CMakeFiles/fig2_monolithic_loss.dir/fig2_monolithic_loss.cc.o.d"
  "fig2_monolithic_loss"
  "fig2_monolithic_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_monolithic_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
