# Empty dependencies file for fig2_monolithic_loss.
# This may be replaced when dependencies are built.
