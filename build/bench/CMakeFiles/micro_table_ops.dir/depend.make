# Empty dependencies file for micro_table_ops.
# This may be replaced when dependencies are built.
