file(REMOVE_RECURSE
  "CMakeFiles/micro_table_ops.dir/micro_table_ops.cc.o"
  "CMakeFiles/micro_table_ops.dir/micro_table_ops.cc.o.d"
  "micro_table_ops"
  "micro_table_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_table_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
