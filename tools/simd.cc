/**
 * @file
 * simd: the long-lived simulation daemon (src/serve).
 *
 * Binds a Unix-domain socket, serves NDJSON run requests through the
 * exec engine with content-addressed result caching, and drains
 * gracefully on SIGTERM/SIGINT: queued jobs finish and answer, the
 * cache store is flushed, the socket file is unlinked, exit 0.
 *
 *   simd [--socket PATH] [--cache DIR] [--cache-size N]
 *        [--quota N] [--batch N] [--jobs N]
 *        [--queue N] [--writebuf BYTES]
 *        [--slowlog-ms N] [--slowlog PATH] [--trace PATH]
 *
 * Flags override the CPELIDE_SERVE_* knobs (sim/exec_options.hh).
 * --slowlog-ms N logs every request slower than N ms end-to-end as a
 * JSONL record (to --slowlog PATH, or stderr); --trace PATH writes
 * the request span-chain as a Chrome trace on drain.
 * When CPELIDE_PROFILE is set, the daemon writes its serve counters
 * (requests, shed, deadline-expired, quarantined, ...) as a profile
 * report to that path on exit. Diagnostics go to stderr; stdout stays
 * silent (nothing here is machine-parsed — the protocol lives on the
 * socket).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "prof/registry.hh"
#include "serve/server.hh"
#include "sim/exec_options.hh"

namespace
{

std::atomic<bool> gStop{false};
cpelide::SimServer *gServer = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: both are lock-free atomic stores.
    gStop.store(true);
    if (gServer)
        gServer->requestStop();
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--cache DIR] "
                 "[--cache-size N] [--quota N] [--batch N] [--jobs N] "
                 "[--sim-threads N] [--queue N] [--writebuf BYTES] "
                 "[--slowlog-ms N] [--slowlog PATH] [--trace PATH]\n",
                 argv0);
}

/** Write the daemon's own counters as a profile report. */
void
writeServeProfile(const cpelide::SimServer &server,
                  const std::string &path)
{
    cpelide::prof::ProfRegistry reg;
    server.registerProf(reg);
    const cpelide::prof::ProfSnapshot snap = reg.snapshot();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "simd: cannot write profile to %s\n",
                     path.c_str());
        return;
    }
    std::string out = "== profile: serve daemon ==\n";
    for (const cpelide::prof::CounterSnap &c : snap.counters)
        out += c.name + " " + std::to_string(c.value) + "\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "simd: profile written to %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    cpelide::SimServer::Config cfg = cpelide::SimServer::Config::fromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--socket" && hasValue) {
            cfg.socketPath = argv[++i];
        } else if (arg == "--cache" && hasValue) {
            cfg.cacheDir = argv[++i];
        } else if (arg == "--cache-size" && hasValue) {
            cfg.cacheSize =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--quota" && hasValue) {
            cfg.quota = std::atoi(argv[++i]);
        } else if (arg == "--batch" && hasValue) {
            cfg.batch = std::atoi(argv[++i]);
        } else if (arg == "--jobs" && hasValue) {
            cfg.jobs = std::atoi(argv[++i]);
        } else if (arg == "--sim-threads" && hasValue) {
            // Bound/weave workers per simulation (results are
            // byte-identical at any value, so this never enters the
            // request hash). Routed through the environment so every
            // run resolves it exactly like CPELIDE_SIM_THREADS.
            setenv("CPELIDE_SIM_THREADS", argv[++i], 1);
        } else if (arg == "--queue" && hasValue) {
            cfg.maxQueue = std::atoi(argv[++i]);
        } else if (arg == "--writebuf" && hasValue) {
            cfg.writeBufBytes =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--slowlog-ms" && hasValue) {
            cfg.slowlogMs =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--slowlog" && hasValue) {
            cfg.slowlogPath = argv[++i];
        } else if (arg == "--trace" && hasValue) {
            cfg.tracePath = argv[++i];
            cfg.traceSpans = true;
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }

    cpelide::SimServer server(cfg);
    gServer = &server;

    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    // A client vanishing mid-write must surface as an EPIPE send error
    // on that one connection, never as a process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);

    if (!server.start())
        return 1;
    std::fprintf(stderr, "simd: listening on %s\n",
                 server.socketPath().c_str());

    while (!gStop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr, "simd: draining...\n");
    server.stop();
    const cpelide::ServeStats s = server.stats();
    std::fprintf(stderr,
                 "simd: done (%llu requests, %llu cache hits, "
                 "%llu simulations, %llu failures, %llu shed, "
                 "%llu deadline-expired, %llu quarantined)\n",
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.cacheHits),
                 static_cast<unsigned long long>(s.simulations),
                 static_cast<unsigned long long>(s.failures),
                 static_cast<unsigned long long>(s.shed),
                 static_cast<unsigned long long>(s.deadlineExpired),
                 static_cast<unsigned long long>(s.quarantined));

    const std::string profilePath =
        cpelide::ExecOptions::fromEnv().profilePath;
    if (!profilePath.empty())
        writeServeProfile(server, profilePath);
    return 0;
}
