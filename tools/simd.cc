/**
 * @file
 * simd: the long-lived simulation daemon (src/serve).
 *
 * Binds a Unix-domain socket, serves NDJSON run requests through the
 * exec engine with content-addressed result caching, and drains
 * gracefully on SIGTERM/SIGINT: queued jobs finish and answer, the
 * cache store is flushed, the socket file is unlinked, exit 0.
 *
 *   simd [--socket PATH] [--cache DIR] [--cache-size N]
 *        [--quota N] [--batch N] [--jobs N]
 *
 * Flags override the CPELIDE_SERVE_* knobs (sim/exec_options.hh).
 * Diagnostics go to stderr; stdout stays silent (nothing here is
 * machine-parsed — the protocol lives on the socket).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "serve/server.hh"

namespace
{

std::atomic<bool> gStop{false};
cpelide::SimServer *gServer = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: both are lock-free atomic stores.
    gStop.store(true);
    if (gServer)
        gServer->requestStop();
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--cache DIR] "
                 "[--cache-size N] [--quota N] [--batch N] [--jobs N]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    cpelide::SimServer::Config cfg = cpelide::SimServer::Config::fromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--socket" && hasValue) {
            cfg.socketPath = argv[++i];
        } else if (arg == "--cache" && hasValue) {
            cfg.cacheDir = argv[++i];
        } else if (arg == "--cache-size" && hasValue) {
            cfg.cacheSize =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--quota" && hasValue) {
            cfg.quota = std::atoi(argv[++i]);
        } else if (arg == "--batch" && hasValue) {
            cfg.batch = std::atoi(argv[++i]);
        } else if (arg == "--jobs" && hasValue) {
            cfg.jobs = std::atoi(argv[++i]);
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }

    cpelide::SimServer server(cfg);
    gServer = &server;

    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    if (!server.start())
        return 1;
    std::fprintf(stderr, "simd: listening on %s\n",
                 server.socketPath().c_str());

    while (!gStop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr, "simd: draining...\n");
    server.stop();
    const cpelide::ServeStats s = server.stats();
    std::fprintf(stderr,
                 "simd: done (%llu requests, %llu cache hits, "
                 "%llu simulations, %llu failures)\n",
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.cacheHits),
                 static_cast<unsigned long long>(s.simulations),
                 static_cast<unsigned long long>(s.failures));
    return 0;
}
