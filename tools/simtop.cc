/**
 * @file
 * simtop: a live terminal monitor for the simd daemon, in the spirit
 * of top(1).
 *
 * Polls the daemon's {"type":"metrics"} verb — one transactionally
 * consistent snapshot of counters, lane depths, cache hit rate, and
 * the windowed latency quantiles — and redraws an ANSI dashboard:
 *
 *   simtop [--socket PATH] [--interval-ms N] [--once] [--history N]
 *
 * --once prints a single frame without clearing the screen (CI smoke
 * uses it to prove the dashboard renders against a live daemon);
 * --history N sets the width of the e2e-rate sparkline (default 60
 * samples, one per poll). A daemon restart mid-watch shows as a
 * "disconnected" banner until the poll reconnects.
 *
 * Output is printf-based (stdout); nothing here is machine-parsed —
 * scripts scrape `simc --metrics` instead.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>

#include "serve/client.hh"

namespace
{

volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--interval-ms N] "
                 "[--once] [--history N]\n",
                 argv0);
}

/** Unicode block sparkline of @p samples, newest rightmost. */
std::string
sparkline(const std::deque<double> &samples)
{
    static const char *const kBlocks[] = {" ", "▁", "▂",
                                          "▃", "▄", "▅",
                                          "▆", "▇", "█"};
    double peak = 0.0;
    for (double v : samples)
        peak = std::max(peak, v);
    std::string out;
    for (double v : samples) {
        int idx = 0;
        if (peak > 0.0 && v > 0.0) {
            idx = 1 + static_cast<int>(v / peak * 7.0);
            idx = std::min(idx, 8);
        }
        out += kBlocks[idx];
    }
    return out;
}

void
printSeriesRow(const char *name, const cpelide::SeriesWindows &s)
{
    // One row per window so quantile drift across horizons is visible
    // at a glance (1s spikes that the 60s view smooths away).
    const struct
    {
        const char *label;
        const cpelide::prof::WindowStats *w;
    } rows[] = {{"1s", &s.w1s}, {"10s", &s.w10s}, {"60s", &s.w60s}};
    for (const auto &r : rows) {
        std::printf("  %-10s %-4s %10llu %10.1f %10.0f %10.0f %10.0f\n",
                    name, r.label,
                    static_cast<unsigned long long>(r.w->count),
                    r.w->ratePerSec, r.w->p50, r.w->p95, r.w->p99);
    }
}

void
printFrame(const std::string &socketPath, const cpelide::ServeMetrics &m,
           const std::deque<double> &rateHistory, bool clearScreen)
{
    if (clearScreen)
        std::printf("\x1b[2J\x1b[H");

    const cpelide::ServeStats &st = m.stats;
    const cpelide::ServeHealth &h = m.health;
    const cpelide::TelemetrySnap &t = m.telemetry;

    std::printf("simtop — simd @ %s   pid %llu   engine %s   up %.1fs\n",
                socketPath.c_str(),
                static_cast<unsigned long long>(h.pid),
                h.engineVersion.c_str(),
                static_cast<double>(h.uptimeMs) / 1000.0);

    const std::uint64_t lookups = st.cacheHits + st.cacheMisses;
    const double hitPct =
        lookups > 0
            ? 100.0 * static_cast<double>(st.cacheHits) /
                  static_cast<double>(lookups)
            : 0.0;
    std::printf("requests %llu   rejected %llu   cache %.1f%% hit "
                "(%llu/%llu, %llu entries)\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.rejected), hitPct,
                static_cast<unsigned long long>(st.cacheHits),
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(st.cacheEntries));
    std::printf("queue interactive %llu  bulk %llu   executing %llu   "
                "connections %llu\n",
                static_cast<unsigned long long>(h.queueInteractive),
                static_cast<unsigned long long>(h.queueBulk),
                static_cast<unsigned long long>(h.executing),
                static_cast<unsigned long long>(h.connections));
    std::printf("shed %llu   deadline %llu   quarantined %llu   "
                "slow-disconnects %llu   slow-logged %llu\n",
                static_cast<unsigned long long>(st.shed),
                static_cast<unsigned long long>(st.deadlineExpired),
                static_cast<unsigned long long>(st.quarantined),
                static_cast<unsigned long long>(st.slowDisconnects),
                static_cast<unsigned long long>(t.slowLogged));
    std::printf("spans %llu/%llu   outcomes ok %llu cached %llu "
                "failed %llu shed %llu deadline %llu abandoned %llu\n",
                static_cast<unsigned long long>(t.spansCompleted),
                static_cast<unsigned long long>(t.spansStarted),
                static_cast<unsigned long long>(t.outcomeOk),
                static_cast<unsigned long long>(t.outcomeCached),
                static_cast<unsigned long long>(t.outcomeFailed),
                static_cast<unsigned long long>(t.outcomeShed),
                static_cast<unsigned long long>(t.outcomeDeadline),
                static_cast<unsigned long long>(t.outcomeAbandoned));

    std::printf("\n  %-10s %-4s %10s %10s %10s %10s %10s\n", "series",
                "win", "count", "rate/s", "p50us", "p95us", "p99us");
    printSeriesRow("e2e", t.e2e);
    printSeriesRow("queue", t.queueWait);
    printSeriesRow("sim", t.simTime);
    printSeriesRow("cache", t.cacheServe);
    std::printf("  %-10s %-4s %10llu %10.1f\n", "lane-int", "10s",
                static_cast<unsigned long long>(t.laneInteractive.w10s.count),
                t.laneInteractive.w10s.ratePerSec);
    std::printf("  %-10s %-4s %10llu %10.1f\n", "lane-bulk", "10s",
                static_cast<unsigned long long>(t.laneBulk.w10s.count),
                t.laneBulk.w10s.ratePerSec);

    if (!rateHistory.empty()) {
        std::printf("\ne2e rate/s (1s window, newest right)\n  %s\n",
                    sparkline(rateHistory).c_str());
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath = "simd.sock";
    int intervalMs = 1000;
    bool once = false;
    std::size_t historyLen = 60;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--socket" && hasValue) {
            socketPath = argv[++i];
        } else if (arg == "--interval-ms" && hasValue) {
            intervalMs = std::atoi(argv[++i]);
            if (intervalMs < 1)
                intervalMs = 1;
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--history" && hasValue) {
            const long n = std::atol(argv[++i]);
            historyLen = n > 0 ? static_cast<std::size_t>(n) : 1;
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }

    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    cpelide::SimClient::Options opts =
        cpelide::SimClient::Options::fromEnv();
    // Monitoring must not wedge on a wedged daemon: bound every poll.
    if (opts.recvTimeoutMs <= 0.0)
        opts.recvTimeoutMs = 2000.0;
    opts.logRetries = false; // a down daemon is shown in the banner
    cpelide::SimClient client(opts);
    if (!client.connect(socketPath)) {
        std::fprintf(stderr, "simtop: cannot connect to %s\n",
                     socketPath.c_str());
        return 1;
    }

    std::deque<double> rateHistory;
    bool everPolled = false;
    while (!gStop) {
        cpelide::ServeMetrics m;
        if (client.connected() && client.metrics(&m)) {
            everPolled = true;
            rateHistory.push_back(m.telemetry.e2e.w1s.ratePerSec);
            while (rateHistory.size() > historyLen)
                rateHistory.pop_front();
            printFrame(socketPath, m, rateHistory, !once);
        } else if (once) {
            std::fprintf(stderr, "simtop: metrics probe failed\n");
            return 1;
        } else {
            if (!once)
                std::printf("\x1b[2J\x1b[H");
            std::printf("simtop — simd @ %s   [disconnected, "
                        "retrying...]\n",
                        socketPath.c_str());
            std::fflush(stdout);
            client.reconnect();
        }
        if (once)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
    return everPolled ? 0 : 1;
}
