/**
 * @file
 * simc: command-line client for the simd daemon.
 *
 * Builds one run request from flags, submits it over the daemon's
 * Unix socket, and prints each raw response line to stdout — exactly
 * the bytes the daemon sent, so scripts (and the CI smoke/chaos jobs)
 * can compare or parse them directly.
 *
 *   simc [--socket PATH] --workload NAME [--protocol NAME]
 *        [--chiplets N] [--scale X] [--copies N]
 *        [--extra-sync-sets N] [--label S] [--priority interactive|bulk]
 *        [--repeat N] [--id N] [--deadline-ms N]
 *        [--timeout-ms MS] [--retries N]
 *   simc [--socket PATH] --stats
 *   simc [--socket PATH] --health
 *   simc [--socket PATH] --metrics [--format json|prometheus]
 *
 * --health prints the daemon's raw answer line to stdout and a
 * human-readable summary (pid, engine version, uptime) to stderr.
 * --metrics prints the one-snapshot telemetry answer: the raw JSON
 * line by default, or the unescaped Prometheus exposition body with
 * --format prometheus (pipe it straight to a scrape file).
 *
 * --repeat N submits the same request N times (ids counting up from
 * --id) and prints the N responses in arrival order; with a warm
 * daemon the repeats come back "cached":1 without re-simulating.
 *
 * --timeout-ms bounds connect and each response wait; --retries N
 * lets simc survive a daemon crash mid-batch: it reconnects (waiting
 * out the restart) and resubmits every unanswered request, which the
 * daemon's content-addressed cache answers idempotently.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "config/gpu_config.hh"
#include "serve/client.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] --workload NAME "
                 "[--protocol NAME] [--chiplets N] [--scale X] "
                 "[--copies N] [--extra-sync-sets N] [--label S] "
                 "[--priority interactive|bulk] [--repeat N] [--id N] "
                 "[--deadline-ms N] [--timeout-ms MS] [--retries N]\n"
                 "       %s [--socket PATH] --stats\n"
                 "       %s [--socket PATH] --health\n"
                 "       %s [--socket PATH] --metrics "
                 "[--format json|prometheus]\n",
                 argv0, argv0, argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath = "simd.sock";
    bool statsProbe = false;
    bool healthProbe = false;
    bool metricsProbe = false;
    std::string metricsFormat = "json";
    int repeat = 1;
    cpelide::SimClient::Options opts = cpelide::SimClient::Options::fromEnv();
    cpelide::ServeRequest req;
    req.id = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--socket" && hasValue) {
            socketPath = argv[++i];
        } else if (arg == "--stats") {
            statsProbe = true;
        } else if (arg == "--health") {
            healthProbe = true;
        } else if (arg == "--metrics") {
            metricsProbe = true;
        } else if (arg == "--format" && hasValue) {
            metricsFormat = argv[++i];
            if (metricsFormat != "json" &&
                metricsFormat != "prometheus") {
                std::fprintf(stderr, "simc: bad format '%s'\n",
                             metricsFormat.c_str());
                return 2;
            }
        } else if (arg == "--workload" && hasValue) {
            req.run.workload = argv[++i];
        } else if (arg == "--protocol" && hasValue) {
            if (!cpelide::protocolFromName(argv[++i],
                                           &req.run.protocol)) {
                std::fprintf(stderr, "simc: unknown protocol '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--chiplets" && hasValue) {
            req.run.chiplets = std::atoi(argv[++i]);
        } else if (arg == "--scale" && hasValue) {
            req.run.scale = std::atof(argv[++i]);
        } else if (arg == "--copies" && hasValue) {
            req.run.copies = std::atoi(argv[++i]);
        } else if (arg == "--extra-sync-sets" && hasValue) {
            req.run.extraSyncSets = std::atoi(argv[++i]);
        } else if (arg == "--label" && hasValue) {
            req.run.label = argv[++i];
        } else if (arg == "--priority" && hasValue) {
            const std::string p = argv[++i];
            if (p == "bulk") {
                req.priority = cpelide::ServePriority::Bulk;
            } else if (p == "interactive") {
                req.priority = cpelide::ServePriority::Interactive;
            } else {
                std::fprintf(stderr, "simc: bad priority '%s'\n",
                             p.c_str());
                return 2;
            }
        } else if (arg == "--repeat" && hasValue) {
            repeat = std::atoi(argv[++i]);
        } else if (arg == "--id" && hasValue) {
            req.id = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--deadline-ms" && hasValue) {
            req.deadlineMs =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--timeout-ms" && hasValue) {
            opts.connectTimeoutMs = std::atof(argv[++i]);
            opts.recvTimeoutMs = opts.connectTimeoutMs;
        } else if (arg == "--retries" && hasValue) {
            opts.maxRetries = std::atoi(argv[++i]);
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }

    cpelide::SimClient client(opts);
    if (!client.connect(socketPath)) {
        std::fprintf(stderr, "simc: cannot connect to %s\n",
                     socketPath.c_str());
        return 1;
    }

    if (metricsProbe) {
        if (metricsFormat == "prometheus") {
            std::string body;
            if (!client.metricsPrometheus(&body))
                return 1;
            std::cout << body;
        } else {
            if (!client.sendLine("{\"type\":\"metrics\"}"))
                return 1;
            std::string line;
            if (!client.recvLine(&line))
                return 1;
            std::cout << line << "\n";
        }
        return 0;
    }

    if (statsProbe || healthProbe) {
        if (!client.sendLine(statsProbe ? "{\"type\":\"stats\"}"
                                        : "{\"type\":\"health\"}")) {
            return 1;
        }
        std::string line;
        if (!client.recvLine(&line))
            return 1;
        std::cout << line << "\n";
        if (healthProbe) {
            cpelide::ServeHealth h;
            if (cpelide::decodeServeHealth(line, &h)) {
                std::fprintf(
                    stderr,
                    "simc: daemon pid %llu, engine %s, up %.1fs\n",
                    static_cast<unsigned long long>(h.pid),
                    h.engineVersion.c_str(),
                    static_cast<double>(h.uptimeMs) / 1000.0);
            }
        }
        return 0;
    }

    if (req.run.workload.empty() || repeat < 1) {
        usage(argv[0]);
        return 2;
    }

    // Pipeline all submissions, then read responses in arrival order.
    for (int i = 0; i < repeat; ++i) {
        cpelide::ServeRequest r = req;
        r.id = req.id + static_cast<std::uint64_t>(i);
        if (!client.send(r)) {
            std::fprintf(stderr, "simc: send failed\n");
            return 1;
        }
    }

    int failures = 0;
    int reconnectBudget = opts.maxRetries;
    for (int i = 0; i < repeat;) {
        std::string line;
        if (!client.recvLine(&line)) {
            // EOF or timeout mid-batch. With a retry budget, assume a
            // daemon crash/restart: wait out the restart with backoff,
            // reconnect, and resubmit everything unanswered (the warm
            // cache answers already-computed requests instantly).
            bool recovered = false;
            double backoffMs = opts.backoffMs > 0.0 ? opts.backoffMs : 50.0;
            while (reconnectBudget > 0) {
                --reconnectBudget;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(backoffMs));
                backoffMs *= 2.0;
                if (client.reconnect()) {
                    std::fprintf(stderr,
                                 "simc: reconnected, resubmitted %d "
                                 "request(s)\n",
                                 static_cast<int>(client.pending()));
                    recovered = true;
                    break;
                }
            }
            if (recovered)
                continue;
            std::fprintf(stderr, "simc: connection closed with %d "
                         "response(s) outstanding\n", repeat - i);
            return 1;
        }
        std::cout << line << "\n";
        ++i;
        cpelide::ServeResponse resp;
        if (cpelide::decodeServeResponse(line, &resp)) {
            client.settle(resp.id);
            if (!resp.ok)
                ++failures;
        }
    }
    return failures > 0 ? 3 : 0;
}
