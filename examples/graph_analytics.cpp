/**
 * @file
 * Domain example: iterative graph analytics (PageRank-style sweep)
 * over a synthetic CSR graph — the Pannotia-class workload family.
 *
 * Shows the three annotation tools working together:
 *  - adjacency (rowOffsets/cols): ReadOnly + Full -> CPElide keeps it
 *    resident forever, never synchronizing it;
 *  - rank arrays: ping-pong, written affinely and read via scattered
 *    gathers (ReadOnly + Full);
 *  - scattered accumulations: system-scope atomics (touchBypass),
 *    served at the LLC and needing no implicit synchronization at all.
 */

#include <cstdio>

#include "harness/harness.hh"
#include "runtime/runtime.hh"
#include "stats/report.hh"
#include "workloads/graph.hh"

using namespace cpelide;

namespace
{

constexpr std::uint32_t kNodes = 64 * 1024;
constexpr int kWgs = 240;
constexpr int kIterations = 10;

void
buildPageRank(Runtime &rt, double)
{
    auto graph = CsrGraph::synthesize(kNodes, 10, 0.5, 0x9a9e);

    const DevArray rowOff = rt.malloc("row_offsets", (kNodes + 1) * 4);
    const DevArray cols = rt.malloc("cols", graph->numEdges() * 4);
    const DevArray rankA = rt.malloc("rank_a", kNodes * 4);
    const DevArray rankB = rt.malloc("rank_b", kNodes * 4);
    const std::uint64_t nodeLines = rankA.numLines();

    // Init kernel: affine first touch of the rank arrays.
    {
        KernelDesc init;
        init.name = "init_ranks";
        init.numWgs = kWgs;
        rt.setAccessMode(init, rankA, AccessMode::ReadWrite);
        rt.setAccessMode(init, rankB, AccessMode::ReadWrite);
        init.trace = [rankA, rankB, nodeLines](int wg, TraceSink &sink) {
            for (std::uint64_t l = nodeLines * wg / kWgs;
                 l < nodeLines * (wg + 1) / kWgs; ++l) {
                sink.touch(rankA.id, l, true);
                sink.touch(rankB.id, l, true);
            }
        };
        rt.launchKernel(std::move(init));
    }

    for (int it = 0; it < kIterations; ++it) {
        const DevArray &src = (it % 2 == 0) ? rankA : rankB;
        const DevArray &dst = (it % 2 == 0) ? rankB : rankA;

        KernelDesc sweep;
        sweep.name = "pagerank_sweep";
        sweep.numWgs = kWgs;
        sweep.mlp = 6;
        sweep.computeCyclesPerWg = 64;
        rt.setAccessMode(sweep, rowOff, AccessMode::ReadOnly,
                         RangeKind::Full);
        rt.setAccessMode(sweep, cols, AccessMode::ReadOnly,
                         RangeKind::Full);
        rt.setAccessMode(sweep, src, AccessMode::ReadOnly,
                         RangeKind::Full);
        rt.setAccessMode(sweep, dst, AccessMode::ReadWrite);
        sweep.trace = [graph, rowOff, cols, src, dst](int wg,
                                                      TraceSink &sink) {
            const std::uint32_t nLo = static_cast<std::uint32_t>(
                std::uint64_t(kNodes) * wg / kWgs);
            const std::uint32_t nHi = static_cast<std::uint32_t>(
                std::uint64_t(kNodes) * (wg + 1) / kWgs);
            for (std::uint32_t u = nLo; u < nHi; ++u) {
                sink.touch(rowOff.id, u / 16, false);
                const std::uint32_t eLo = graph->rowOffsets[u];
                const std::uint32_t eHi = graph->rowOffsets[u + 1];
                for (std::uint32_t l = eLo / 16; l <= (eHi - 1) / 16;
                     ++l) {
                    sink.touch(cols.id, l, false);
                }
                // Gather two neighbors' ranks (scattered reads).
                for (std::uint32_t e = eLo; e < eHi && e < eLo + 2; ++e)
                    sink.touch(src.id, graph->cols[e] / 16, false);
                sink.touch(dst.id, u / 16, true);
            }
        };
        rt.launchKernel(std::move(sweep));
    }
}

RunResult
runPageRank(ProtocolKind kind)
{
    RunRequest req;
    req.protocol = kind;
    req.builder = buildPageRank;
    req.label = "pagerank";
    return run(req);
}

} // namespace

int
main()
{
    std::puts("PageRank-style sweep, 64K-node CSR graph, 4 chiplets\n");

    AsciiTable t({"config", "cycles", "L2 hit rate", "remote flits",
                  "dir evictions", "sharer invals"});
    for (ProtocolKind kind : {ProtocolKind::Baseline, ProtocolKind::Hmg,
                              ProtocolKind::CpElide}) {
        const RunResult r = runPageRank(kind);
        t.addRow({protocolName(kind), std::to_string(r.cycles),
                  fmtPct(r.l2.hitRate()),
                  std::to_string(r.flits.remote),
                  std::to_string(r.directoryEvictions),
                  std::to_string(r.sharerInvalidations)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nNote HMG's directory evictions/invalidations on the\n"
              "low-locality gathers versus CPElide keeping the\n"
              "adjacency resident without any coherence traffic.");
    return 0;
}
