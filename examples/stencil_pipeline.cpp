/**
 * @file
 * Domain example: an iterative 2D heat-diffusion stencil (the
 * Hotspot3D-class workload the paper's intro motivates).
 *
 * Shows the producer-consumer annotation pattern: the output array is
 * R/W with CP-derived affine ranges, the ping-pong input is R with a
 * Full range (halo rows cross chiplets). CPElide turns the per-kernel
 * GPU-wide flush+invalidate into per-chiplet releases only — clean
 * data stays resident, which is where the paper's +37% on Hotspot3D
 * comes from.
 */

#include <cstdio>

#include "harness/harness.hh"
#include "runtime/runtime.hh"
#include "stats/report.hh"

using namespace cpelide;

namespace
{

constexpr std::uint64_t kGrid = 1024;
constexpr std::uint64_t kRowLines = kGrid * 4 / kLineBytes;
constexpr int kWgs = 240;
constexpr int kIterations = 16;

void
buildStencil(Runtime &rt, double)
{
    const DevArray tA = rt.malloc("temp_a", kGrid * kGrid * 4);
    const DevArray tB = rt.malloc("temp_b", kGrid * kGrid * 4);

    // Device-side initialization performs the first touch: pages land
    // on the chiplet that will own them, and the CP's home model
    // learns the same partition. Skipping this would leave the
    // placement unknown to the CP, degrading CPElide to conservative
    // invalidates (try deleting it and watch the table below change).
    {
        KernelDesc init;
        init.name = "init";
        init.numWgs = kWgs;
        rt.setAccessMode(init, tA, AccessMode::ReadWrite);
        rt.setAccessMode(init, tB, AccessMode::ReadWrite);
        init.trace = [tA, tB](int wg, TraceSink &sink) {
            const std::uint64_t lo =
                kGrid * kRowLines * std::uint64_t(wg) / kWgs;
            const std::uint64_t hi =
                kGrid * kRowLines * std::uint64_t(wg + 1) / kWgs;
            for (std::uint64_t l = lo; l < hi; ++l) {
                sink.touch(tA.id, l, true);
                sink.touch(tB.id, l, true);
            }
        };
        rt.launchKernel(std::move(init));
    }

    for (int it = 0; it < kIterations; ++it) {
        const DevArray &src = (it % 2 == 0) ? tA : tB;
        const DevArray &dst = (it % 2 == 0) ? tB : tA;

        KernelDesc step;
        step.name = "diffuse";
        step.numWgs = kWgs;
        step.mlp = 16;
        step.computeCyclesPerWg = 128;
        // Halo reads cross chiplet boundaries: declare Full.
        rt.setAccessMode(step, src, AccessMode::ReadOnly,
                         RangeKind::Full);
        // Writes are perfectly row-partitioned: the CP derives ranges.
        rt.setAccessMode(step, dst, AccessMode::ReadWrite);
        step.trace = [src, dst](int wg, TraceSink &sink) {
            const std::uint64_t rLo = kGrid * std::uint64_t(wg) / kWgs;
            const std::uint64_t rHi =
                kGrid * std::uint64_t(wg + 1) / kWgs;
            const std::uint64_t hLo = rLo > 0 ? rLo - 1 : 0;
            const std::uint64_t hHi = rHi < kGrid ? rHi + 1 : kGrid;
            for (std::uint64_t r = hLo; r < hHi; ++r) {
                for (std::uint64_t l = 0; l < kRowLines; ++l)
                    sink.touch(src.id, r * kRowLines + l, false);
            }
            for (std::uint64_t r = rLo; r < rHi; ++r) {
                for (std::uint64_t l = 0; l < kRowLines; ++l)
                    sink.touch(dst.id, r * kRowLines + l, true);
            }
        };
        rt.launchKernel(std::move(step));
    }
}

RunResult
runStencil(ProtocolKind kind)
{
    RunRequest req;
    req.protocol = kind;
    req.builder = buildStencil;
    req.label = "stencil";
    return run(req);
}

} // namespace

int
main()
{
    std::puts("Iterative 2D stencil on a 4-chiplet GPU\n");

    AsciiTable t({"config", "cycles", "L2 hit rate", "flushes",
                  "invalidates", "DRAM accesses"});
    RunResult base{};
    for (ProtocolKind kind : {ProtocolKind::Baseline,
                              ProtocolKind::Hmg,
                              ProtocolKind::CpElide}) {
        const RunResult r = runStencil(kind);
        if (kind == ProtocolKind::Baseline)
            base = r;
        t.addRow({protocolName(kind), std::to_string(r.cycles),
                  fmtPct(r.l2.hitRate()),
                  std::to_string(r.l2FlushesIssued),
                  std::to_string(r.l2InvalidatesIssued),
                  std::to_string(r.dramAccesses)});
        if (kind == ProtocolKind::CpElide) {
            std::printf(
                "CPElide vs Baseline: %.2fx, invalidates elided: %llu\n",
                static_cast<double>(base.cycles) / r.cycles,
                static_cast<unsigned long long>(r.l2InvalidatesElided));
        }
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
