/**
 * @file
 * Domain example: two independent streams bound to disjoint chiplet
 * halves (the paper's hipSetDevice binding, Section VI "Multi-Stream
 * Workloads").
 *
 * Each stream iterates its own streaming kernel. With CPElide, each
 * launch synchronizes only the chiplets its stream touches, so the
 * streams never stall each other; the Baseline's implicit
 * synchronization is GPU-wide and serializes everything.
 */

#include <cstdio>

#include "harness/harness.hh"
#include "runtime/runtime.hh"
#include "stats/report.hh"

using namespace cpelide;

namespace
{

void
buildTwoStreams(Runtime &rt, double)
{
    rt.setStreamChiplets(0, {0, 1});
    rt.setStreamChiplets(1, {2, 3});

    constexpr std::uint64_t kBytes = 2ull * 1024 * 1024;
    constexpr int kWgs = 120; // half the GPU per stream
    const DevArray bufs[2] = {rt.malloc("stream0_buf", kBytes),
                              rt.malloc("stream1_buf", kBytes)};

    for (int it = 0; it < 10; ++it) {
        for (int s = 0; s < 2; ++s) {
            const DevArray buf = bufs[s];
            const std::uint64_t lines = buf.numLines();
            KernelDesc k;
            k.name = "stream" + std::to_string(s) + "_iter";
            k.streamId = s;
            k.numWgs = kWgs;
            k.mlp = 24;
            rt.setAccessMode(k, buf, AccessMode::ReadWrite);
            k.trace = [buf, lines](int wg, TraceSink &sink) {
                for (std::uint64_t l = lines * wg / kWgs;
                     l < lines * (wg + 1) / kWgs; ++l) {
                    sink.touch(buf.id, l, false);
                    sink.touch(buf.id, l, true);
                }
            };
            rt.launchKernel(std::move(k));
        }
    }
}

RunResult
runTwoStreams(ProtocolKind kind)
{
    RunRequest req;
    req.protocol = kind;
    req.builder = buildTwoStreams;
    req.label = "two_streams";
    return run(req);
}

} // namespace

int
main()
{
    std::puts("Two independent streams on disjoint chiplet halves\n");

    AsciiTable t({"config", "cycles", "sync stall cycles",
                  "L2 invalidates", "L2 hit rate"});
    RunResult base{};
    for (ProtocolKind kind : {ProtocolKind::Baseline, ProtocolKind::Hmg,
                              ProtocolKind::CpElide}) {
        const RunResult r = runTwoStreams(kind);
        if (kind == ProtocolKind::Baseline)
            base = r;
        t.addRow({protocolName(kind), std::to_string(r.cycles),
                  std::to_string(r.syncStallCycles),
                  std::to_string(r.l2InvalidatesIssued),
                  fmtPct(r.l2.hitRate())});
        if (kind == ProtocolKind::CpElide) {
            std::printf("CPElide vs Baseline: %.2fx\n",
                        static_cast<double>(base.cycles) / r.cycles);
        }
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
