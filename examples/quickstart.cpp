/**
 * @file
 * Quickstart: the paper's Listing-1 "square" program on a 4-chiplet
 * GPU, run under Baseline and CPElide, printing the headline effect —
 * CPElide elides every per-kernel L2 flush/invalidate for this
 * perfectly affine workload and runs measurably faster.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/harness.hh"
#include "runtime/runtime.hh"
#include "stats/report.hh"

using namespace cpelide;

namespace
{

void
buildSquare(Runtime &rt, double)
{
    // Listing 1: square kernel with A (R) as input, C (R/W) as output.
    constexpr std::uint64_t kFloats = 524288;
    const DevArray a = rt.malloc("A", kFloats * 4);
    const DevArray c = rt.malloc("C", kFloats * 4);
    const std::uint64_t lines = a.numLines();
    constexpr int kWgs = 240;

    for (int iter = 0; iter < 20; ++iter) {
        KernelDesc square;
        square.name = "square";
        square.numWgs = kWgs;
        square.mlp = 24;
        rt.setAccessMode(square, a, AccessMode::ReadOnly);
        rt.setAccessMode(square, c, AccessMode::ReadWrite);
        square.trace = [a, c, lines](int wg, TraceSink &sink) {
            for (std::uint64_t l = lines * wg / kWgs;
                 l < lines * (wg + 1) / kWgs; ++l) {
                sink.touch(a.id, l, false); // load A[i]
                sink.touch(c.id, l, true);  // store C[i] = A[i]*A[i]
            }
        };
        rt.launchKernel(std::move(square));
    }
}

RunResult
runSquare(ProtocolKind kind)
{
    // A 4-chiplet Radeon VII-class GPU (paper Table I); run() honors
    // CPELIDE_TRACE, so this example is traceable out of the box.
    RunRequest req;
    req.protocol = kind;
    req.builder = buildSquare;
    req.label = "square";
    return run(req);
}

} // namespace

int
main()
{
    std::puts("CPElide quickstart: 20 x square on a 4-chiplet GPU\n");

    const RunResult base = runSquare(ProtocolKind::Baseline);
    const RunResult elide = runSquare(ProtocolKind::CpElide);

    AsciiTable t({"metric", "Baseline", "CPElide"});
    t.addRow({"cycles", std::to_string(base.cycles),
              std::to_string(elide.cycles)});
    t.addRow({"L2 hit rate", fmtPct(base.l2.hitRate()),
              fmtPct(elide.l2.hitRate())});
    t.addRow({"L2 flushes", std::to_string(base.l2FlushesIssued),
              std::to_string(elide.l2FlushesIssued)});
    t.addRow({"L2 invalidates",
              std::to_string(base.l2InvalidatesIssued),
              std::to_string(elide.l2InvalidatesIssued)});
    t.addRow({"NoC flits", std::to_string(base.flits.total()),
              std::to_string(elide.flits.total())});
    t.addRow({"energy (uJ)", fmt(base.energy.total() / 1e6),
              fmt(elide.energy.total() / 1e6)});
    std::fputs(t.render().c_str(), stdout);

    const double speedup = static_cast<double>(base.cycles) /
                           static_cast<double>(elide.cycles);
    std::printf("\nCPElide speedup over Baseline: %.2fx\n", speedup);
    std::printf("Stale reads detected (must be 0): %llu + %llu\n",
                static_cast<unsigned long long>(base.staleReads),
                static_cast<unsigned long long>(elide.staleReads));
    return 0;
}
