#include "exec/journal.hh"

#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sim/log.hh"

namespace cpelide
{

JobErrorKind
jobErrorFromName(const std::string &name)
{
    if (name == "ok")
        return JobErrorKind::None;
    if (name == "timeout")
        return JobErrorKind::Timeout;
    if (name == "budget")
        return JobErrorKind::Budget;
    if (name == "panic")
        return JobErrorKind::SimPanic;
    if (name == "invariant")
        return JobErrorKind::InvariantViolation;
    return JobErrorKind::Unknown;
}

namespace
{

/** FNV-1a 64-bit, the usual offset basis / prime. */
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
fnvMix(std::uint64_t &h, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
}

void
fnvMixStr(std::uint64_t &h, const std::string &s)
{
    // Length-prefix each field so ("ab","c") != ("a","bc").
    const std::uint64_t len = s.size();
    fnvMix(h, &len, sizeof(len));
    fnvMix(h, s.data(), s.size());
}

// --- JSON encode helpers -------------------------------------------------

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendStr(std::string &out, const char *key, const std::string &value)
{
    if (out.back() != '{')
        out += ',';
    out += '"';
    out += key;
    out += "\":";
    appendEscaped(out, value);
}

void
appendU64(std::string &out, const char *key, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    if (out.back() != '{')
        out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

void
appendI64(std::string &out, const char *key, std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    if (out.back() != '{')
        out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

void
appendDouble(std::string &out, const char *key, double value)
{
    // %.17g round-trips every finite IEEE-754 double exactly, which is
    // what makes resumed sweep output byte-identical.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    if (out.back() != '{')
        out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

// --- JSON decode helpers -------------------------------------------------

/**
 * Minimal cursor parser for the flat one-level objects this journal
 * writes: string and number values only. Any structural surprise makes
 * the caller treat the line as torn and skip it.
 */
class LineParser
{
  public:
    explicit LineParser(const std::string &line)
        : _s(line.c_str()), _n(line.size())
    {}

    bool
    parse()
    {
        skipWs();
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            std::string key, value;
            bool isString = false;
            if (!parseString(&key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (peek() == '"') {
                if (!parseString(&value))
                    return false;
                isString = true;
            } else if (!parseNumber(&value)) {
                return false;
            }
            _fields[key] = value;
            (void)isString;
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            return eat('}');
        }
    }

    bool has(const char *key) const { return _fields.count(key) != 0; }

    bool
    str(const char *key, std::string *out) const
    {
        auto it = _fields.find(key);
        if (it == _fields.end())
            return false;
        *out = it->second;
        return true;
    }

    bool
    u64(const char *key, std::uint64_t *out) const
    {
        auto it = _fields.find(key);
        if (it == _fields.end())
            return false;
        errno = 0;
        char *end = nullptr;
        const std::uint64_t v =
            std::strtoull(it->second.c_str(), &end, 10);
        if (errno != 0 || end == it->second.c_str() || *end != '\0')
            return false;
        *out = v;
        return true;
    }

    bool
    i64(const char *key, std::int64_t *out) const
    {
        auto it = _fields.find(key);
        if (it == _fields.end())
            return false;
        errno = 0;
        char *end = nullptr;
        const long long v = std::strtoll(it->second.c_str(), &end, 10);
        if (errno != 0 || end == it->second.c_str() || *end != '\0')
            return false;
        *out = v;
        return true;
    }

    bool
    dbl(const char *key, double *out) const
    {
        auto it = _fields.find(key);
        if (it == _fields.end())
            return false;
        char *end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0')
            return false;
        *out = v;
        return true;
    }

  private:
    char peek() const { return _pos < _n ? _s[_pos] : '\0'; }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++_pos;
        return true;
    }

    void
    skipWs()
    {
        while (_pos < _n &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    bool
    parseString(std::string *out)
    {
        if (!eat('"'))
            return false;
        std::string result;
        while (_pos < _n) {
            const char c = _s[_pos++];
            if (c == '"') {
                *out = std::move(result);
                return true;
            }
            if (c != '\\') {
                result += c;
                continue;
            }
            if (_pos >= _n)
                return false;
            const char esc = _s[_pos++];
            switch (esc) {
              case '"': result += '"'; break;
              case '\\': result += '\\'; break;
              case '/': result += '/'; break;
              case 'n': result += '\n'; break;
              case 'r': result += '\r'; break;
              case 't': result += '\t'; break;
              case 'u': {
                  if (_pos + 4 > _n)
                      return false;
                  char hex[5] = {_s[_pos], _s[_pos + 1], _s[_pos + 2],
                                 _s[_pos + 3], '\0'};
                  _pos += 4;
                  char *end = nullptr;
                  const unsigned long code = std::strtoul(hex, &end, 16);
                  if (end != hex + 4 || code > 0xFF)
                      return false; // we only ever emit control chars
                  result += static_cast<char>(code);
                  break;
              }
              default: return false;
            }
        }
        return false;
    }

    bool
    parseNumber(std::string *out)
    {
        const std::size_t start = _pos;
        while (_pos < _n) {
            const char c = _s[_pos];
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                c == '-' || c == '+' || c == '.' || c == 'e' ||
                c == 'E') {
                ++_pos;
            } else {
                break;
            }
        }
        if (_pos == start)
            return false;
        out->assign(_s + start, _pos - start);
        return true;
    }

    const char *_s;
    std::size_t _n;
    std::size_t _pos = 0;
    std::unordered_map<std::string, std::string> _fields;
};

} // namespace

std::uint64_t
jobHash(const SweepSpec &spec, std::size_t index)
{
    const Job &job = spec.jobs.at(index);
    std::uint64_t h = kFnvOffset;
    fnvMixStr(h, spec.name);
    const std::uint64_t idx = index;
    fnvMix(h, &idx, sizeof(idx));
    fnvMixStr(h, job.label);
    fnvMixStr(h, job.workload);
    fnvMixStr(h, job.protocol);
    const std::int64_t chiplets = job.chiplets;
    fnvMix(h, &chiplets, sizeof(chiplets));
    // Hash the exact bit pattern: any change in scale is a new job.
    std::uint64_t scaleBits = 0;
    static_assert(sizeof(scaleBits) == sizeof(job.scale),
                  "double must be 64-bit for scale hashing");
    std::memcpy(&scaleBits, &job.scale, sizeof(scaleBits));
    fnvMix(h, &scaleBits, sizeof(scaleBits));
    return h;
}

std::string
encodeOutcome(std::uint64_t hash, const std::string &sweep,
              const std::string &label, const JobOutcome &outcome)
{
    std::string out = "{";
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, hash);
        appendStr(out, "hash", buf); // string: uint64 > 2^53 is legal
    }
    appendStr(out, "sweep", sweep);
    appendStr(out, "label", label);
    appendU64(out, "ok", outcome.ok ? 1 : 0);
    appendStr(out, "kind", jobErrorName(outcome.kind));
    appendI64(out, "attempts", outcome.attempts);
    appendStr(out, "error", outcome.error);

    const RunMetrics &m = outcome.metrics;
    appendDouble(out, "wallSeconds", m.wallSeconds);
    appendI64(out, "peakRssKb", m.peakRssKb);
    appendU64(out, "metricEvents", m.simEvents);
    appendI64(out, "worker", m.worker);

    const RunResult &r = outcome.result;
    appendStr(out, "workload", r.workload);
    appendStr(out, "protocol", r.protocol);
    appendI64(out, "numChiplets", r.numChiplets);
    appendU64(out, "cycles", r.cycles);
    appendU64(out, "kernels", r.kernels);
    appendU64(out, "accesses", r.accesses);
    appendU64(out, "l1Hits", r.l1.hits);
    appendU64(out, "l1Misses", r.l1.misses);
    appendU64(out, "l2Hits", r.l2.hits);
    appendU64(out, "l2Misses", r.l2.misses);
    appendU64(out, "l3Hits", r.l3.hits);
    appendU64(out, "l3Misses", r.l3.misses);
    appendU64(out, "dramAccesses", r.dramAccesses);
    appendU64(out, "flitsL1L2", r.flits.l1l2);
    appendU64(out, "flitsL2L3", r.flits.l2l3);
    appendU64(out, "flitsRemote", r.flits.remote);
    appendDouble(out, "energyL1i", r.energy.l1i);
    appendDouble(out, "energyL1d", r.energy.l1d);
    appendDouble(out, "energyLds", r.energy.lds);
    appendDouble(out, "energyL2", r.energy.l2);
    appendDouble(out, "energyNoc", r.energy.noc);
    appendDouble(out, "energyDram", r.energy.dram);
    appendU64(out, "l2FlushesIssued", r.l2FlushesIssued);
    appendU64(out, "l2InvalidatesIssued", r.l2InvalidatesIssued);
    appendU64(out, "l2FlushesElided", r.l2FlushesElided);
    appendU64(out, "l2InvalidatesElided", r.l2InvalidatesElided);
    appendU64(out, "linesWrittenBack", r.linesWrittenBack);
    appendU64(out, "syncStallCycles", r.syncStallCycles);
    appendU64(out, "directoryEvictions", r.directoryEvictions);
    appendU64(out, "sharerInvalidations", r.sharerInvalidations);
    appendU64(out, "simEvents", r.simEvents);
    appendU64(out, "tableMaxEntries", r.tableMaxEntries);
    appendU64(out, "staleReads", r.staleReads);
    appendU64(out, "hostVisibilityViolations",
              r.hostVisibilityViolations);
    out += '}';
    return out;
}

bool
decodeOutcome(const std::string &line, std::uint64_t *hash,
              std::string *sweep, std::string *label, JobOutcome *outcome)
{
    LineParser p(line);
    if (!p.parse())
        return false;

    std::string hashStr;
    if (!p.str("hash", &hashStr))
        return false;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t h = std::strtoull(hashStr.c_str(), &end, 10);
    if (errno != 0 || end == hashStr.c_str() || *end != '\0')
        return false;

    JobOutcome o;
    std::string sweepName, labelName, kindName;
    std::uint64_t okFlag = 0;
    std::int64_t attempts = 1, chiplets = 0, rssKb = 0, worker = -1;
    bool good = p.str("sweep", &sweepName) && p.str("label", &labelName) &&
                p.u64("ok", &okFlag) && p.str("kind", &kindName) &&
                p.i64("attempts", &attempts) && p.str("error", &o.error);

    RunMetrics &m = o.metrics;
    good = good && p.dbl("wallSeconds", &m.wallSeconds) &&
           p.i64("peakRssKb", &rssKb) &&
           p.u64("metricEvents", &m.simEvents) && p.i64("worker", &worker);

    RunResult &r = o.result;
    good = good && p.str("workload", &r.workload) &&
           p.str("protocol", &r.protocol) &&
           p.i64("numChiplets", &chiplets) && p.u64("cycles", &r.cycles) &&
           p.u64("kernels", &r.kernels) && p.u64("accesses", &r.accesses) &&
           p.u64("l1Hits", &r.l1.hits) && p.u64("l1Misses", &r.l1.misses) &&
           p.u64("l2Hits", &r.l2.hits) && p.u64("l2Misses", &r.l2.misses) &&
           p.u64("l3Hits", &r.l3.hits) && p.u64("l3Misses", &r.l3.misses) &&
           p.u64("dramAccesses", &r.dramAccesses) &&
           p.u64("flitsL1L2", &r.flits.l1l2) &&
           p.u64("flitsL2L3", &r.flits.l2l3) &&
           p.u64("flitsRemote", &r.flits.remote) &&
           p.dbl("energyL1i", &r.energy.l1i) &&
           p.dbl("energyL1d", &r.energy.l1d) &&
           p.dbl("energyLds", &r.energy.lds) &&
           p.dbl("energyL2", &r.energy.l2) &&
           p.dbl("energyNoc", &r.energy.noc) &&
           p.dbl("energyDram", &r.energy.dram) &&
           p.u64("l2FlushesIssued", &r.l2FlushesIssued) &&
           p.u64("l2InvalidatesIssued", &r.l2InvalidatesIssued) &&
           p.u64("l2FlushesElided", &r.l2FlushesElided) &&
           p.u64("l2InvalidatesElided", &r.l2InvalidatesElided) &&
           p.u64("linesWrittenBack", &r.linesWrittenBack) &&
           p.u64("syncStallCycles", &r.syncStallCycles) &&
           p.u64("directoryEvictions", &r.directoryEvictions) &&
           p.u64("sharerInvalidations", &r.sharerInvalidations) &&
           p.u64("simEvents", &r.simEvents) &&
           p.u64("tableMaxEntries", &r.tableMaxEntries) &&
           p.u64("staleReads", &r.staleReads) &&
           p.u64("hostVisibilityViolations", &r.hostVisibilityViolations);
    if (!good)
        return false;

    o.ok = okFlag != 0;
    o.kind = jobErrorFromName(kindName);
    o.attempts = static_cast<int>(attempts);
    m.peakRssKb = static_cast<long>(rssKb);
    m.worker = static_cast<int>(worker);
    r.numChiplets = static_cast<int>(chiplets);

    *hash = h;
    *sweep = std::move(sweepName);
    *label = std::move(labelName);
    *outcome = std::move(o);
    return true;
}

SweepJournal::~SweepJournal()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

bool
SweepJournal::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _path = path;
    _loaded.clear();

    std::ifstream in(path);
    if (in.is_open()) {
        std::string line;
        std::size_t torn = 0;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::uint64_t hash = 0;
            std::string sweep, label;
            JobOutcome outcome;
            if (!decodeOutcome(line, &hash, &sweep, &label, &outcome)) {
                ++torn;
                continue;
            }
            outcome.fromCheckpoint = true;
            _loaded[hash] = std::move(outcome);
        }
        if (torn > 0) {
            warn("journal " + path + ": skipped " +
                 std::to_string(torn) + " unparsable line(s)");
        }
    }

    _file = std::fopen(path.c_str(), "a");
    return _file != nullptr;
}

bool
SweepJournal::lookup(std::uint64_t hash, JobOutcome *out) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _loaded.find(hash);
    if (it == _loaded.end() || !it->second.ok)
        return false;
    *out = it->second;
    return true;
}

void
SweepJournal::append(std::uint64_t hash, const std::string &sweep,
                     const std::string &label, const JobOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_file)
        return;
    const std::string line = encodeOutcome(hash, sweep, label, outcome);
    std::fwrite(line.data(), 1, line.size(), _file);
    std::fputc('\n', _file);
    std::fflush(_file);
}

} // namespace cpelide
