#include "exec/journal.hh"

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "sim/log.hh"
#include "stats/json_util.hh"
#include "stats/run_result_io.hh"

namespace cpelide
{

JobErrorKind
jobErrorFromName(const std::string &name)
{
    if (name == "ok")
        return JobErrorKind::None;
    if (name == "timeout")
        return JobErrorKind::Timeout;
    if (name == "budget")
        return JobErrorKind::Budget;
    if (name == "panic")
        return JobErrorKind::SimPanic;
    if (name == "invariant")
        return JobErrorKind::InvariantViolation;
    return JobErrorKind::Unknown;
}

using json::fnvMix;
using json::fnvMixStr;

std::uint64_t
jobHash(const SweepSpec &spec, std::size_t index)
{
    const Job &job = spec.jobs.at(index);
    std::uint64_t h = json::kFnvOffset;
    fnvMixStr(h, spec.name);
    const std::uint64_t idx = index;
    fnvMix(h, &idx, sizeof(idx));
    fnvMixStr(h, job.label);
    fnvMixStr(h, job.workload);
    fnvMixStr(h, job.protocol);
    const std::int64_t chiplets = job.chiplets;
    fnvMix(h, &chiplets, sizeof(chiplets));
    // Hash the exact bit pattern: any change in scale is a new job.
    std::uint64_t scaleBits = 0;
    static_assert(sizeof(scaleBits) == sizeof(job.scale),
                  "double must be 64-bit for scale hashing");
    std::memcpy(&scaleBits, &job.scale, sizeof(scaleBits));
    fnvMix(h, &scaleBits, sizeof(scaleBits));
    return h;
}

std::string
encodeOutcome(std::uint64_t hash, const std::string &sweep,
              const std::string &label, const JobOutcome &outcome)
{
    std::string out = "{";
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, hash);
        json::appendStr(out, "hash", buf); // string: uint64 > 2^53 is legal
    }
    json::appendStr(out, "sweep", sweep);
    json::appendStr(out, "label", label);
    json::appendU64(out, "ok", outcome.ok ? 1 : 0);
    json::appendStr(out, "kind", jobErrorName(outcome.kind));
    json::appendI64(out, "attempts", outcome.attempts);
    json::appendStr(out, "error", outcome.error);

    const RunMetrics &m = outcome.metrics;
    json::appendDouble(out, "wallSeconds", m.wallSeconds);
    json::appendI64(out, "peakRssKb", m.peakRssKb);
    json::appendI64(out, "rssDeltaKb", m.rssDeltaKb);
    json::appendU64(out, "rssShared", m.rssShared ? 1 : 0);
    json::appendU64(out, "metricEvents", m.simEvents);
    json::appendI64(out, "worker", m.worker);

    appendRunResultFields(out, outcome.result);
    // Per-launch phases travel as one compact string field so the
    // journal line stays a flat one-level object.
    json::appendStr(out, "kernelPhases",
                    encodeKernelPhasesCompact(
                        outcome.result.kernelPhases));
    out += '}';
    return out;
}

bool
decodeOutcome(const std::string &line, std::uint64_t *hash,
              std::string *sweep, std::string *label, JobOutcome *outcome)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;

    std::string hashStr;
    if (!p.str("hash", &hashStr))
        return false;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t h = std::strtoull(hashStr.c_str(), &end, 10);
    if (errno != 0 || end == hashStr.c_str() || *end != '\0')
        return false;

    JobOutcome o;
    std::string sweepName, labelName, kindName;
    std::uint64_t okFlag = 0;
    std::int64_t attempts = 1, rssKb = 0, worker = -1;
    bool good = p.str("sweep", &sweepName) && p.str("label", &labelName) &&
                p.u64("ok", &okFlag) && p.str("kind", &kindName) &&
                p.i64("attempts", &attempts) && p.str("error", &o.error);

    RunMetrics &m = o.metrics;
    good = good && p.dbl("wallSeconds", &m.wallSeconds) &&
           p.i64("peakRssKb", &rssKb) &&
           p.u64("metricEvents", &m.simEvents) && p.i64("worker", &worker);

    good = good && parseRunResultFields(p, &o.result);
    if (!good)
        return false;

    // Tolerated-absent: journals written before the phase breakdown
    // existed simply restore with an empty kernelPhases vector.
    std::string phases;
    if (p.str("kernelPhases", &phases) &&
        !decodeKernelPhasesCompact(phases, &o.result.kernelPhases)) {
        return false;
    }

    o.ok = okFlag != 0;
    o.kind = jobErrorFromName(kindName);
    o.attempts = static_cast<int>(attempts);
    m.peakRssKb = static_cast<long>(rssKb);
    m.worker = static_cast<int>(worker);
    // Tolerated-absent (like kernelPhases): journals written before
    // the RSS-attribution fix restore with delta 0, not shared.
    std::int64_t rssDelta = 0;
    std::uint64_t rssShared = 0;
    m.rssDeltaKb =
        p.i64("rssDeltaKb", &rssDelta) ? static_cast<long>(rssDelta) : 0;
    m.rssShared = p.u64("rssShared", &rssShared) && rssShared != 0;

    *hash = h;
    *sweep = std::move(sweepName);
    *label = std::move(labelName);
    *outcome = std::move(o);
    return true;
}

SweepJournal::~SweepJournal()
{
    MutexGuard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

bool
SweepJournal::open(const std::string &path)
{
    MutexGuard lock(_mutex);
    _path = path;
    _loaded.clear();

    // Read the whole file up front: a process killed mid-append leaves
    // an unterminated final line, and the repair below needs to know
    // exactly where the last complete line ends.
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (in.is_open()) {
            text.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
        }
    }

    const bool tornTail = !text.empty() && text.back() != '\n';
    std::size_t torn = 0;
    bool tailParsed = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        const bool isTail = end == std::string::npos;
        if (isTail)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        std::uint64_t hash = 0;
        std::string sweep, label;
        JobOutcome outcome;
        if (!decodeOutcome(line, &hash, &sweep, &label, &outcome)) {
            ++torn;
            continue;
        }
        if (isTail)
            tailParsed = true;
        outcome.fromCheckpoint = true;
        _loaded[hash] = std::move(outcome);
    }
    if (torn > 0) {
        warn("journal " + path + ": skipped " + std::to_string(torn) +
             " unparsable line(s)");
    }

    // Repair an unterminated tail BEFORE reopening for append:
    // otherwise the next record is glued onto the torn fragment and
    // both lines are lost on the following open — one crash mid-write
    // would poison every later append. A tail that parses is a
    // complete record missing only its '\n' (killed between the write
    // and the newline); finish it. Anything else is a true fragment;
    // truncate it away.
    if (tornTail && !tailParsed) {
        const std::size_t lastNl = text.find_last_of('\n');
        const std::size_t keep =
            lastNl == std::string::npos ? 0 : lastNl + 1;
        std::error_code ec;
        std::filesystem::resize_file(path, keep, ec);
        if (ec) {
            warn("journal " + path + ": cannot truncate torn tail (" +
                 ec.message() + "); appends may be lost");
        }
    }

    _file = std::fopen(path.c_str(), "a");
    if (_file && tornTail && tailParsed) {
        std::fputc('\n', _file);
        std::fflush(_file);
    }
    return _file != nullptr;
}

bool
SweepJournal::lookup(std::uint64_t hash, JobOutcome *out) const
{
    MutexGuard lock(_mutex);
    auto it = _loaded.find(hash);
    if (it == _loaded.end() || !it->second.ok)
        return false;
    *out = it->second;
    return true;
}

void
SweepJournal::append(std::uint64_t hash, const std::string &sweep,
                     const std::string &label, const JobOutcome &outcome)
{
    MutexGuard lock(_mutex);
    if (!_file)
        return;
    const std::string line = encodeOutcome(hash, sweep, label, outcome);
    std::fwrite(line.data(), 1, line.size(), _file);
    std::fputc('\n', _file);
    std::fflush(_file);
}

} // namespace cpelide
