/**
 * @file
 * SweepRunner: fan a SweepSpec's jobs out across a work-stealing
 * thread pool and merge the results back in deterministic job order.
 *
 * - Results are written to the job's own slot, so the returned vector
 *   is in SweepSpec order regardless of completion order, and a
 *   parallel sweep's output is byte-identical to the serial run.
 * - A throwing job records an error outcome (ok == false, the
 *   exception text in `error`) instead of killing the sweep.
 * - Thread count comes from the CPELIDE_JOBS environment variable
 *   (default: hardware concurrency). CPELIDE_JOBS=1 bypasses the pool
 *   entirely and runs every job inline on the caller thread — the
 *   legacy serial path.
 * - Per-job wall time, peak RSS, and simulator event counts are
 *   recorded in MetricsRegistry::global(); set CPELIDE_METRICS=1 to
 *   dump them to stderr after each sweep.
 */

#ifndef CPELIDE_EXEC_SWEEP_RUNNER_HH
#define CPELIDE_EXEC_SWEEP_RUNNER_HH

#include <vector>

#include "exec/job.hh"

namespace cpelide
{

/**
 * Worker count from CPELIDE_JOBS: default hardware concurrency,
 * clamped to >= 1; unparsable or non-positive values fall back to the
 * default.
 */
int jobsFromEnv();

class SweepRunner
{
  public:
    /** @p jobs worker threads; <= 1 selects the serial path. */
    explicit SweepRunner(int jobs = jobsFromEnv());

    int jobCount() const { return _jobs; }

    /** Run every job; outcomes are indexed exactly like spec.jobs. */
    std::vector<JobOutcome> run(const SweepSpec &spec) const;

  private:
    JobOutcome runOne(const SweepSpec &spec, const Job &job) const;

    int _jobs;
};

} // namespace cpelide

#endif // CPELIDE_EXEC_SWEEP_RUNNER_HH
