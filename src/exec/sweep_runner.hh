/**
 * @file
 * SweepRunner: fan a SweepSpec's jobs out across a work-stealing
 * thread pool and merge the results back in deterministic job order.
 *
 * - Results are written to the job's own slot, so the returned vector
 *   is in SweepSpec order regardless of completion order, and a
 *   parallel sweep's output is byte-identical to the serial run.
 * - A throwing job records a classified error outcome (ok == false,
 *   the exception text in `error`, the cause in `kind`) instead of
 *   killing the sweep; retry-safe failures are retried with
 *   exponential backoff up to CPELIDE_RETRIES times.
 * - Each job runs under a SimBudget watchdog (spec.budget, falling
 *   back to CPELIDE_TIMEOUT_MS / CPELIDE_MAX_EVENTS): the monitor
 *   thread flags overdue jobs, and the simulation kernel's next
 *   cooperative charge point turns the flag into a Timeout outcome.
 * - CPELIDE_RESUME=<path> (or setJournal) journals every completed
 *   job to JSONL; a rerun against the same journal restores finished
 *   jobs instead of re-running them, with byte-identical output.
 * - Thread count comes from the CPELIDE_JOBS environment variable
 *   (default: hardware concurrency). CPELIDE_JOBS=1 bypasses the pool
 *   entirely and runs every job inline on the caller thread — the
 *   legacy serial path.
 * - Per-job wall time, peak RSS, and simulator event counts are
 *   recorded in MetricsRegistry::global(); set CPELIDE_METRICS=1 to
 *   dump them to stderr after each sweep.
 */

#ifndef CPELIDE_EXEC_SWEEP_RUNNER_HH
#define CPELIDE_EXEC_SWEEP_RUNNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exec/job.hh"

namespace cpelide
{

class SweepJournal;

/**
 * Worker count from CPELIDE_JOBS: default hardware concurrency,
 * clamped to >= 1; unparsable or non-positive values fall back to the
 * default.
 */
int jobsFromEnv();

/** Retry count from CPELIDE_RETRIES (default 0: no retries). */
int retriesFromEnv();

/** Retry backoff base from CPELIDE_RETRY_BACKOFF_MS (default 50). */
double retryBackoffMsFromEnv();

class SweepRunner
{
  public:
    /** @p jobs worker threads; <= 1 selects the serial path. */
    explicit SweepRunner(int jobs = jobsFromEnv());

    int jobCount() const { return _jobs; }

    /**
     * Checkpoint journal path; overrides CPELIDE_RESUME. "" (the
     * default) falls back to the environment variable; journaling is
     * off when neither is set.
     */
    void setJournal(std::string path) { _journalPath = std::move(path); }

    /** Run every job; outcomes are indexed exactly like spec.jobs. */
    std::vector<JobOutcome> run(const SweepSpec &spec) const;

  private:
    JobOutcome runOne(const SweepSpec &spec, std::size_t index,
                      SweepJournal *journal) const;

    JobOutcome runAttempt(const Job &job, const SimBudget &budget) const;

    int _jobs;
    std::string _journalPath;
};

} // namespace cpelide

#endif // CPELIDE_EXEC_SWEEP_RUNNER_HH
