/**
 * @file
 * Sweep checkpoint journal (CPELIDE_RESUME).
 *
 * SweepRunner appends one JSONL record per completed job, keyed by a
 * deterministic hash of the job's identity within the sweep (sweep
 * name, slot index, label, workload, protocol, chiplet count, scale).
 * On the next run with the same journal path, jobs whose hash already
 * has a successful record are restored instead of re-run, so an
 * interrupted sweep resumes where it died with byte-identical merged
 * output. Failed outcomes are journaled too (post-mortem), but are
 * re-run on resume — a timeout on an overloaded host should get a
 * second chance.
 *
 * The format round-trips every RunResult field exactly (integers
 * verbatim, doubles via %.17g) and tolerates a torn final line from a
 * killed process: unparsable lines are skipped, and open() repairs an
 * unterminated tail (newline-completing a full record, truncating a
 * true fragment) before reopening for append, so later appends are
 * never glued onto the wreckage of a crash.
 */

#ifndef CPELIDE_EXEC_JOURNAL_HH
#define CPELIDE_EXEC_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "exec/job.hh"
#include "sim/thread_annotations.hh"

namespace cpelide
{

/**
 * Deterministic identity of job @p index of @p spec (FNV-1a over the
 * sweep name, slot index, and the job's descriptive fields). Stable
 * across processes; changes whenever the sweep definition changes, so
 * a stale journal never pollutes a redefined sweep.
 */
std::uint64_t jobHash(const SweepSpec &spec, std::size_t index);

/** One JSONL line for a completed job (no trailing newline). */
std::string encodeOutcome(std::uint64_t hash, const std::string &sweep,
                          const std::string &label,
                          const JobOutcome &outcome);

/**
 * Parse a journal line. @return false (leaving outputs untouched) on
 * any syntax problem — e.g. a line torn by a SIGKILL mid-append.
 */
bool decodeOutcome(const std::string &line, std::uint64_t *hash,
                   std::string *sweep, std::string *label,
                   JobOutcome *outcome);

/**
 * The journal file: loads existing records on open, then appends (and
 * flushes) one line per completed job. Thread-safe; SweepRunner's
 * workers append concurrently.
 */
class SweepJournal
{
  public:
    SweepJournal() = default;
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Load @p path (missing file = empty journal) and open it for
     * appending. @return false if the file cannot be created.
     */
    bool open(const std::string &path) CPELIDE_EXCLUDES(_mutex);

    bool
    isOpen() const CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        return _file != nullptr;
    }

    std::string
    path() const CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        return _path;
    }

    /** Records loaded from the file at open(). */
    std::size_t
    loadedRecords() const CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        return _loaded.size();
    }

    /**
     * Look up a previously journaled *successful* outcome.
     * @retval true and fills @p out (with fromCheckpoint set).
     */
    bool lookup(std::uint64_t hash, JobOutcome *out) const
        CPELIDE_EXCLUDES(_mutex);

    /** Append one completed job's record and flush it to disk. */
    void append(std::uint64_t hash, const std::string &sweep,
                const std::string &label, const JobOutcome &outcome)
        CPELIDE_EXCLUDES(_mutex);

  private:
    mutable Mutex _mutex;
    std::string _path CPELIDE_GUARDED_BY(_mutex);
    std::FILE *_file CPELIDE_GUARDED_BY(_mutex) = nullptr;
    /** Keyed lookups only — never iterated (determinism lint). */
    std::unordered_map<std::uint64_t, JobOutcome>
        _loaded CPELIDE_GUARDED_BY(_mutex);
};

} // namespace cpelide

#endif // CPELIDE_EXEC_JOURNAL_HH
