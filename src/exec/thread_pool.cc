#include "exec/thread_pool.hh"

#include <algorithm>

namespace cpelide
{

namespace
{

thread_local int tlWorkerIndex = -1;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(1, threads);
    _workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexGuard lock(_mutex);
        _stop = true;
    }
    _workCv.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    std::size_t target;
    {
        MutexGuard lock(_mutex);
        target = _nextDeque++ % _workers.size();
        ++_queued;
        ++_outstanding;
    }
    {
        MutexGuard lock(_workers[target]->mutex);
        _workers[target]->tasks.push_back(std::move(task));
    }
    _workCv.notify_one();
}

void
ThreadPool::wait()
{
    MutexGuard lock(_mutex);
    while (_outstanding != 0)
        lock.wait(_idleCv);
}

int
ThreadPool::currentWorker()
{
    return tlWorkerIndex;
}

bool
ThreadPool::takeTask(int index, Task &out)
{
    // Own deque first (front), then steal from the back of the others.
    Worker &own = *_workers[static_cast<std::size_t>(index)];
    {
        MutexGuard lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    const int n = threadCount();
    for (int k = 1; k < n; ++k) {
        Worker &victim = *_workers[static_cast<std::size_t>(
            (index + k) % n)];
        MutexGuard lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(int index)
{
    tlWorkerIndex = index;
    for (;;) {
        Task task;
        if (takeTask(index, task)) {
            {
                MutexGuard lock(_mutex);
                --_queued;
            }
            task();
            bool idle;
            {
                MutexGuard lock(_mutex);
                idle = --_outstanding == 0;
            }
            if (idle)
                _idleCv.notify_all();
            continue;
        }
        MutexGuard lock(_mutex);
        while (!_stop && _queued == 0)
            lock.wait(_workCv);
        if (_stop && _queued == 0)
            return;
    }
}

} // namespace cpelide
