/**
 * @file
 * Watchdog: the sweep engine's monitor thread.
 *
 * SweepRunner registers every in-flight job's BudgetGuard state; the
 * watchdog periodically scans them and flags any job that has
 * exceeded its wall-clock budget by setting the state's cancel flag.
 * The simulation kernel's next cooperative charge point (see
 * sim/sim_budget.hh) then throws TimeoutError, converting a hung or
 * runaway job into a structured Timeout outcome instead of a stalled
 * sweep.
 *
 * The monitor thread is started lazily on the first registration and
 * joined when the process-wide instance is destroyed at exit.
 */

#ifndef CPELIDE_EXEC_WATCHDOG_HH
#define CPELIDE_EXEC_WATCHDOG_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>

#include "prof/counter.hh"
#include "sim/sim_budget.hh"
#include "sim/thread_annotations.hh"

namespace cpelide
{

class Watchdog
{
  public:
    /** The process-wide instance used by SweepRunner. */
    static Watchdog &global();

    Watchdog() = default;
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Start monitoring @p state (no-op handle when the state has no
     * wall limit). @return a ticket to pass to unwatch().
     */
    std::uint64_t watch(std::shared_ptr<BudgetGuard::State> state)
        CPELIDE_EXCLUDES(_mutex);

    /** Stop monitoring a ticket returned by watch(). */
    void unwatch(std::uint64_t ticket) CPELIDE_EXCLUDES(_mutex);

    /** Jobs the watchdog has cancelled so far (tests). */
    std::uint64_t cancellations() const CPELIDE_EXCLUDES(_mutex);

    /** Scan period; short so tests with ~100 ms budgets stay snappy. */
    static constexpr std::chrono::milliseconds kScanPeriod{10};

  private:
    /** RAII registration used by SweepRunner. */
    void monitorLoop() CPELIDE_EXCLUDES(_mutex);

    mutable Mutex _mutex;
    std::condition_variable _cv;
    /** Ordered map: the scan visits tickets in registration order,
     *  not hash order (determinism lint, rule unordered-iter). */
    std::map<std::uint64_t, std::shared_ptr<BudgetGuard::State>>
        _watched CPELIDE_GUARDED_BY(_mutex);
    std::uint64_t _nextTicket CPELIDE_GUARDED_BY(_mutex) = 1;
    prof::Counter _cancellations CPELIDE_GUARDED_BY(_mutex);
    /** Started once under _mutex (watch()), joined by the destructor
     *  after the monitor loop observed _stop — joining under the lock
     *  would deadlock against the loop, so the handle itself is not
     *  guarded; no other thread touches it. */
    std::thread _thread;
    bool _stop CPELIDE_GUARDED_BY(_mutex) = false;
};

/** Scoped watch/unwatch of one job's budget state. */
class WatchdogScope
{
  public:
    WatchdogScope(Watchdog &dog, std::shared_ptr<BudgetGuard::State> s)
        : _dog(dog), _ticket(dog.watch(std::move(s)))
    {}

    ~WatchdogScope() { _dog.unwatch(_ticket); }

    WatchdogScope(const WatchdogScope &) = delete;
    WatchdogScope &operator=(const WatchdogScope &) = delete;

  private:
    Watchdog &_dog;
    std::uint64_t _ticket;
};

} // namespace cpelide

#endif // CPELIDE_EXEC_WATCHDOG_HH
