#include "exec/watchdog.hh"

namespace cpelide
{

Watchdog &
Watchdog::global()
{
    static Watchdog dog;
    return dog;
}

Watchdog::~Watchdog()
{
    {
        MutexGuard lock(_mutex);
        _stop = true;
    }
    _cv.notify_all();
    if (_thread.joinable())
        _thread.join();
}

std::uint64_t
Watchdog::watch(std::shared_ptr<BudgetGuard::State> state)
{
    if (!state || state->maxWallMs <= 0.0)
        return 0; // nothing to monitor
    MutexGuard lock(_mutex);
    const std::uint64_t ticket = _nextTicket++;
    _watched.emplace(ticket, std::move(state));
    if (!_thread.joinable())
        _thread = std::thread([this] { monitorLoop(); });
    _cv.notify_all();
    return ticket;
}

void
Watchdog::unwatch(std::uint64_t ticket)
{
    if (ticket == 0)
        return;
    MutexGuard lock(_mutex);
    _watched.erase(ticket);
}

std::uint64_t
Watchdog::cancellations() const
{
    MutexGuard lock(_mutex);
    return _cancellations;
}

void
Watchdog::monitorLoop()
{
    MutexGuard lock(_mutex);
    while (!_stop) {
        lock.waitFor(_cv, kScanPeriod);
        for (auto &[ticket, state] : _watched) {
            if (state->cancel.load(std::memory_order_relaxed))
                continue;
            if (state->elapsedMs() > state->maxWallMs) {
                state->cancel.store(true, std::memory_order_relaxed);
                ++_cancellations;
            }
        }
    }
}

} // namespace cpelide
