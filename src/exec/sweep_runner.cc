#include "exec/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>

#include "exec/thread_pool.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cpelide
{

namespace
{

long
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<long>(ru.ru_maxrss / 1024); // bytes -> KiB
#else
        return static_cast<long>(ru.ru_maxrss); // already KiB
#endif
    }
#endif
    return 0;
}

} // namespace

int
jobsFromEnv()
{
    const int fallback = std::max(
        1u, std::thread::hardware_concurrency());
    if (const char *s = std::getenv("CPELIDE_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(s, &end, 10);
        if (end != s && *end == '\0' && v > 0)
            return static_cast<int>(std::min<long>(v, 256));
    }
    return fallback;
}

SweepRunner::SweepRunner(int jobs) : _jobs(std::max(1, jobs)) {}

JobOutcome
SweepRunner::runOne(const SweepSpec &spec, const Job &job) const
{
    JobOutcome out;
    const auto start = std::chrono::steady_clock::now();
    try {
        out.result = job.body();
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    const auto end = std::chrono::steady_clock::now();
    out.metrics.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    out.metrics.peakRssKb = peakRssKb();
    out.metrics.simEvents = out.ok ? out.result.simEvents : 0;
    out.metrics.worker = ThreadPool::currentWorker();
    MetricsRegistry::global().record(spec.name, job.label, out.ok,
                                     out.metrics);
    return out;
}

std::vector<JobOutcome>
SweepRunner::run(const SweepSpec &spec) const
{
    std::vector<JobOutcome> outcomes(spec.jobs.size());

    const int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(_jobs),
                              spec.jobs.size()));
    if (workers <= 1) {
        // Legacy serial path: inline on the caller thread, no pool.
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            outcomes[i] = runOne(spec, spec.jobs[i]);
    } else {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
            pool.submit([this, &spec, &outcomes, i] {
                // Each job writes only its own slot: the merged vector
                // is in spec order whatever the completion order.
                outcomes[i] = runOne(spec, spec.jobs[i]);
            });
        }
        pool.wait();
    }

    if (std::getenv("CPELIDE_METRICS")) {
        const std::string table =
            MetricsRegistry::global().render(spec.name);
        std::fprintf(stderr, "-- metrics: sweep '%s' (%d workers) --\n%s",
                     spec.name.c_str(), workers, table.c_str());
    }
    return outcomes;
}

} // namespace cpelide
