#include "exec/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "exec/journal.hh"
#include "exec/thread_pool.hh"
#include "exec/watchdog.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cpelide
{

namespace
{

long
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<long>(ru.ru_maxrss / 1024); // bytes -> KiB
#else
        return static_cast<long>(ru.ru_maxrss); // already KiB
#endif
    }
#endif
    return 0;
}

/**
 * RSS-attribution bookkeeping: getrusage() reports the process-wide
 * peak, so a job that merely ran while a bigger job was resident used
 * to be charged the whole peak. Each attempt now records the peak's
 * growth across its own body (rssDeltaKb) and whether any other
 * attempt overlapped it (rssShared) — overlap means neither the peak
 * nor the delta is attributable to this job alone.
 */
std::atomic<int> jobsInFlight{0};
std::atomic<std::uint64_t> jobsStarted{0};

} // namespace

int
jobsFromEnv()
{
    return ExecOptions::fromEnv().jobs;
}

int
retriesFromEnv()
{
    return ExecOptions::fromEnv().retries;
}

double
retryBackoffMsFromEnv()
{
    return ExecOptions::fromEnv().retryBackoffMs;
}

SweepRunner::SweepRunner(int jobs) : _jobs(std::max(1, jobs)) {}

JobOutcome
SweepRunner::runAttempt(const Job &job, const SimBudget &budget) const
{
    JobOutcome out;
    const long rssBefore = peakRssKb();
    const std::uint64_t startGen = jobsStarted.fetch_add(1) + 1;
    const int concurrentAtStart = jobsInFlight.fetch_add(1);
    const auto start = std::chrono::steady_clock::now();
    try {
        // The guard makes the budget this thread's active budget; the
        // watchdog scan flags it once overdue. Both unwind before the
        // catch blocks run, so a retry starts from a clean slate.
        BudgetGuard guard(budget);
        WatchdogScope watch(Watchdog::global(), guard.state());
        out.result = job.body();
        out.ok = true;
    } catch (const TimeoutError &e) {
        out.kind = JobErrorKind::Timeout;
        out.error = e.what();
    } catch (const BudgetError &e) {
        out.kind = JobErrorKind::Budget;
        out.error = e.what();
    } catch (const InvariantError &e) {
        out.kind = JobErrorKind::InvariantViolation;
        out.error = e.what();
    } catch (const SimPanicError &e) {
        out.kind = JobErrorKind::SimPanic;
        out.error = e.what();
    } catch (const std::exception &e) {
        out.kind = JobErrorKind::Unknown;
        out.error = e.what();
    } catch (...) {
        out.kind = JobErrorKind::Unknown;
        out.error = "unknown exception";
    }
    const auto end = std::chrono::steady_clock::now();
    out.metrics.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    out.metrics.wallStartSeconds =
        std::chrono::duration<double>(start - processEpoch()).count();
    out.metrics.peakRssKb = peakRssKb();
    out.metrics.rssDeltaKb =
        std::max(0L, out.metrics.peakRssKb - rssBefore);
    // Shared if anything was already running when we started, was
    // still running when we finished, or started (however briefly)
    // while we ran.
    const int concurrentAtEnd = jobsInFlight.fetch_sub(1) - 1;
    out.metrics.rssShared = concurrentAtStart > 0 ||
                            concurrentAtEnd > 0 ||
                            jobsStarted.load() != startGen;
    out.metrics.simEvents = out.ok ? out.result.simEvents : 0;
    out.metrics.worker = ThreadPool::currentWorker();
    return out;
}

JobOutcome
SweepRunner::runOne(const SweepSpec &spec, std::size_t index,
                    SweepJournal *journal) const
{
    const Job &job = spec.jobs[index];

    if (journal) {
        JobOutcome cached;
        if (journal->lookup(jobHash(spec, index), &cached)) {
            // Restored, not re-run; keep the metrics table complete.
            MetricsRegistry::global().record(spec.name, job.label,
                                             cached.ok, cached.metrics,
                                             "checkpoint");
            if (spec.onOutcome)
                spec.onOutcome(index, cached);
            return cached;
        }
    }

    const SimBudget budget =
        job.budget.enabled()
            ? job.budget
            : (spec.budget.enabled() ? spec.budget : SimBudget::fromEnv());
    const int retries =
        spec.maxRetries >= 0 ? spec.maxRetries : retriesFromEnv();
    const double backoffMs = spec.retryBackoffMs >= 0
                                 ? spec.retryBackoffMs
                                 : retryBackoffMsFromEnv();

    JobOutcome out;
    for (int attempt = 0;; ++attempt) {
        out = runAttempt(job, budget);
        out.attempts = attempt + 1;
        if (out.ok || attempt >= retries || !jobErrorRetrySafe(out.kind))
            break;
        warn("job '" + job.label + "' failed (" + jobErrorName(out.kind) +
             "); retry " + std::to_string(attempt + 1) + "/" +
             std::to_string(retries));
        const double delayMs =
            backoffMs * static_cast<double>(1ULL << std::min(attempt, 10));
        if (delayMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delayMs));
        }
    }

    MetricsRegistry::global().record(spec.name, job.label, out.ok,
                                     out.metrics, jobErrorName(out.kind));
    if (journal)
        journal->append(jobHash(spec, index), spec.name, job.label, out);
    if (spec.onOutcome)
        spec.onOutcome(index, out);
    return out;
}

std::vector<JobOutcome>
SweepRunner::run(const SweepSpec &spec) const
{
    std::vector<JobOutcome> outcomes(spec.jobs.size());

    const ExecOptions eo = ExecOptions::fromEnv();
    SweepJournal journal;
    std::string journalPath = _journalPath;
    if (journalPath.empty())
        journalPath = eo.resumePath;
    if (!journalPath.empty() && !journal.open(journalPath)) {
        warn("cannot open resume journal '" + journalPath +
             "'; checkpointing disabled for sweep '" + spec.name + "'");
    }
    SweepJournal *jp = journal.isOpen() ? &journal : nullptr;

    const int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(_jobs),
                              spec.jobs.size()));
    if (workers <= 1) {
        // Legacy serial path: inline on the caller thread, no pool.
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            outcomes[i] = runOne(spec, i, jp);
    } else {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
            pool.submit([this, &spec, &outcomes, jp, i] {
                // Each job writes only its own slot: the merged vector
                // is in spec order whatever the completion order.
                outcomes[i] = runOne(spec, i, jp);
            });
        }
        pool.wait();
    }

    if (eo.metrics) {
        const std::string table =
            MetricsRegistry::global().render(spec.name);
        std::fprintf(stderr, "-- metrics: sweep '%s' (%d workers) --\n%s",
                     spec.name.c_str(), workers, table.c_str());
    }
    return outcomes;
}

} // namespace cpelide
