/**
 * @file
 * Job / SweepSpec / JobOutcome: the unit of work of the experiment
 * execution engine. A Job describes one simulation (workload,
 * protocol, chiplet count, scale) and carries the bound body that
 * constructs a private Runtime and returns its RunResult; a SweepSpec
 * is an ordered batch whose results merge back in spec order, so
 * bench output is byte-identical however many threads ran it.
 */

#ifndef CPELIDE_EXEC_JOB_HH
#define CPELIDE_EXEC_JOB_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "stats/run_metrics.hh"
#include "stats/run_result.hh"

namespace cpelide
{

/** One simulation to run. The body must be self-contained: it owns
 *  its Runtime and must not touch shared mutable state. */
struct Job
{
    std::string label;    //!< metrics/error identification
    std::string workload; //!< descriptive: workload name
    std::string protocol; //!< descriptive: protocol name
    int chiplets = 0;     //!< descriptive: chiplet count
    double scale = 1.0;   //!< descriptive: iteration-count scale

    std::function<RunResult()> body;
};

/** An ordered batch of jobs, merged back in this order. */
struct SweepSpec
{
    std::string name; //!< sweep identification in the metrics registry
    std::vector<Job> jobs;

    void
    add(std::string label, std::function<RunResult()> body)
    {
        Job j;
        j.label = std::move(label);
        j.body = std::move(body);
        jobs.push_back(std::move(j));
    }
};

/** Result slot of one job, at the job's index in the SweepSpec. */
struct JobOutcome
{
    /** Valid when ok; zero-initialized (error row) otherwise. */
    RunResult result;
    RunMetrics metrics;
    bool ok = false;
    std::string error; //!< exception text when !ok
};

} // namespace cpelide

#endif // CPELIDE_EXEC_JOB_HH
