/**
 * @file
 * Job / SweepSpec / JobOutcome: the unit of work of the experiment
 * execution engine. A Job describes one simulation (workload,
 * protocol, chiplet count, scale) and carries the bound body that
 * constructs a private Runtime and returns its RunResult; a SweepSpec
 * is an ordered batch whose results merge back in spec order, so
 * bench output is byte-identical however many threads ran it.
 */

#ifndef CPELIDE_EXEC_JOB_HH
#define CPELIDE_EXEC_JOB_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/sim_budget.hh"
#include "stats/run_metrics.hh"
#include "stats/run_result.hh"

namespace cpelide
{

/**
 * Classified failure cause of a job. The class decides whether a
 * bounded retry makes sense: Timeout and Unknown may be transient
 * host-side conditions (an overloaded machine, a flaky resource);
 * Budget, SimPanic and InvariantViolation are deterministic properties
 * of the simulation and would simply recur.
 */
enum class JobErrorKind
{
    None,               //!< job succeeded
    Timeout,            //!< wall-clock budget / watchdog cancellation
    Budget,             //!< simulation-work budget exceeded
    SimPanic,           //!< panic(): internal simulator invariant
    InvariantViolation, //!< correctness checker (staleness/annotation)
    Unknown,            //!< any other exception
};

/** Short, stable name used in logs, metrics, and journal rows. */
constexpr const char *
jobErrorName(JobErrorKind k)
{
    switch (k) {
      case JobErrorKind::None: return "ok";
      case JobErrorKind::Timeout: return "timeout";
      case JobErrorKind::Budget: return "budget";
      case JobErrorKind::SimPanic: return "panic";
      case JobErrorKind::InvariantViolation: return "invariant";
      case JobErrorKind::Unknown: return "error";
    }
    return "?";
}

/** Name -> kind (journal decode); Unknown for unrecognized names. */
JobErrorKind jobErrorFromName(const std::string &name);

/** Whether a bounded retry may help for this failure class. */
constexpr bool
jobErrorRetrySafe(JobErrorKind k)
{
    return k == JobErrorKind::Timeout || k == JobErrorKind::Unknown;
}

/** One simulation to run. The body must be self-contained: it owns
 *  its Runtime and must not touch shared mutable state. */
struct Job
{
    std::string label;    //!< metrics/error identification
    std::string workload; //!< descriptive: workload name
    std::string protocol; //!< descriptive: protocol name
    int chiplets = 0;     //!< descriptive: chiplet count
    double scale = 1.0;   //!< descriptive: iteration-count scale

    /**
     * Per-job watchdog budget override. When enabled it takes
     * precedence over the SweepSpec budget and the environment knobs —
     * the serve subsystem uses this to clamp a request's remaining
     * deadline onto its job. Disabled (the default) defers to the
     * spec/env resolution in SweepRunner.
     */
    SimBudget budget;

    std::function<RunResult()> body;
};

/** Result slot of one job, at the job's index in the SweepSpec. */
struct JobOutcome
{
    /** Valid when ok; zero-initialized (error row) otherwise. */
    RunResult result;
    RunMetrics metrics;
    bool ok = false;
    std::string error; //!< exception text when !ok
    /** Classified failure cause (None when ok). */
    JobErrorKind kind = JobErrorKind::None;
    /** Executions of the job body, including retries (>= 1). */
    int attempts = 1;
    /** Restored from a CPELIDE_RESUME journal, not re-run. */
    bool fromCheckpoint = false;
};

/** An ordered batch of jobs, merged back in this order. */
struct SweepSpec
{
    SweepSpec() = default;
    SweepSpec(std::string name_, std::vector<Job> jobs_)
        : name(std::move(name_)), jobs(std::move(jobs_))
    {}

    std::string name; //!< sweep identification in the metrics registry
    std::vector<Job> jobs;

    /**
     * Per-job watchdog budget. When disabled (both limits 0, the
     * default) SweepRunner falls back to the CPELIDE_TIMEOUT_MS /
     * CPELIDE_MAX_EVENTS environment knobs.
     */
    SimBudget budget;

    /**
     * Max retries of a retry-safe failure (so up to 1 + maxRetries
     * executions). -1 (default) falls back to CPELIDE_RETRIES (0 when
     * unset: no retries, preserving byte-identical reruns).
     */
    int maxRetries = -1;

    /**
     * Base backoff before retry k, doubled each attempt. -1 falls back
     * to CPELIDE_RETRY_BACKOFF_MS (default 50 ms).
     */
    double retryBackoffMs = -1.0;

    /**
     * Submission hook: called once per job as it completes (after
     * retries, metrics, and journaling), with the job's spec index and
     * final outcome — including jobs restored from a checkpoint
     * journal. Unlike the returned vector this fires in *completion*
     * order, from whichever worker thread finished the job, so the
     * serve subsystem can stream results the moment they exist; the
     * callback must therefore be thread-safe and must not touch the
     * spec it rode in on. Null (the default) is skipped.
     */
    std::function<void(std::size_t, const JobOutcome &)> onOutcome;

    void
    add(std::string label, std::function<RunResult()> body)
    {
        Job j;
        j.label = std::move(label);
        j.body = std::move(body);
        jobs.push_back(std::move(j));
    }
};

} // namespace cpelide

#endif // CPELIDE_EXEC_JOB_HH
