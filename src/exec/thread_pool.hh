/**
 * @file
 * Work-stealing thread pool for the experiment-execution engine.
 *
 * Each worker owns a deque: submit() deals tasks round-robin across
 * the deques, a worker pops its own deque from the front, and an idle
 * worker steals from the back of a victim's deque. Simulation jobs
 * are coarse (milliseconds to minutes each), so the deques are
 * mutex-protected rather than lock-free — contention is negligible
 * next to job runtime, and the code stays auditable.
 */

#ifndef CPELIDE_EXEC_THREAD_POOL_HH
#define CPELIDE_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cpelide
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Start @p threads workers (clamped to >= 1). */
    explicit ThreadPool(int threads);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(_workers.size()); }

    /** Enqueue @p task; runs on some worker, in no particular order. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Index of the pool worker running the calling thread, or -1 when
     * called from a thread outside any pool (e.g. the serial path).
     */
    static int currentWorker();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(int index);
    bool takeTask(int index, Task &out);

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    std::mutex _mutex; //!< guards the counters and both condvars
    std::condition_variable _workCv;
    std::condition_variable _idleCv;
    std::size_t _queued = 0;      //!< submitted, not yet popped
    std::size_t _outstanding = 0; //!< submitted, not yet finished
    std::size_t _nextDeque = 0;   //!< round-robin submit cursor
    bool _stop = false;
};

} // namespace cpelide

#endif // CPELIDE_EXEC_THREAD_POOL_HH
