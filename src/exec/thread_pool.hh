/**
 * @file
 * Work-stealing thread pool for the experiment-execution engine.
 *
 * Each worker owns a deque: submit() deals tasks round-robin across
 * the deques, a worker pops its own deque from the front, and an idle
 * worker steals from the back of a victim's deque. Simulation jobs
 * are coarse (milliseconds to minutes each), so the deques are
 * mutex-protected rather than lock-free — contention is negligible
 * next to job runtime, and the code stays auditable (every guarded
 * member is compiler-checked under -Wthread-safety).
 */

#ifndef CPELIDE_EXEC_THREAD_POOL_HH
#define CPELIDE_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/thread_annotations.hh"

namespace cpelide
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Start @p threads workers (clamped to >= 1). */
    explicit ThreadPool(int threads);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(_workers.size()); }

    /** Enqueue @p task; runs on some worker, in no particular order. */
    void submit(Task task) CPELIDE_EXCLUDES(_mutex);

    /** Block until every submitted task has finished. */
    void wait() CPELIDE_EXCLUDES(_mutex);

    /**
     * Index of the pool worker running the calling thread, or -1 when
     * called from a thread outside any pool (e.g. the serial path).
     */
    static int currentWorker();

  private:
    struct Worker
    {
        Mutex mutex;
        std::deque<Task> tasks CPELIDE_GUARDED_BY(mutex);
    };

    void workerLoop(int index) CPELIDE_EXCLUDES(_mutex);
    bool takeTask(int index, Task &out) CPELIDE_EXCLUDES(_mutex);

    /** Immutable after construction (sized in the constructor, before
     *  any worker thread starts). */
    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    Mutex _mutex; //!< guards the counters and both condvars
    std::condition_variable _workCv;
    std::condition_variable _idleCv;
    /** Submitted, not yet popped. */
    std::size_t _queued CPELIDE_GUARDED_BY(_mutex) = 0;
    /** Submitted, not yet finished. */
    std::size_t _outstanding CPELIDE_GUARDED_BY(_mutex) = 0;
    /** Round-robin submit cursor. */
    std::size_t _nextDeque CPELIDE_GUARDED_BY(_mutex) = 0;
    bool _stop CPELIDE_GUARDED_BY(_mutex) = false;
};

} // namespace cpelide

#endif // CPELIDE_EXEC_THREAD_POOL_HH
