/**
 * @file
 * Hotspot (Rodinia) — 2D thermal stencil, 512x512, 20 iterations.
 *
 * Modeling notes:
 *  - compute-bound: large per-WG ALU cost and LDS traffic dominate,
 *    so faster LDS loading via L2 hits barely moves the needle
 *    (paper: Hotspot is "bottlenecked by compute stalls");
 *  - ping-pong temperature arrays + read-only power array, row
 *    partitioned with one halo row exchanged at chiplet boundaries.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kGrid = 512;
constexpr std::uint64_t kRowLines = kGrid * 4 / kLineBytes; // 32
constexpr int kWgs = 128; // 4 rows per WG

class Hotspot : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Hotspot", "Rodinia", true,
                "512x512 grid, 20 iterations"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const std::uint64_t bytes = kGrid * kGrid * 4;
        const DevArray tempA = rt.malloc("temp_a", bytes);
        const DevArray tempB = rt.malloc("temp_b", bytes);
        const DevArray power = rt.malloc("power", bytes);
        const int iterations = scaled(20, scale);

        // Init: affine first touch (see hotspot3d.cc).
        {
            KernelDesc init;
            init.name = "hotspot_init";
            init.numWgs = kWgs;
            init.mlp = 32;
            rt.setAccessMode(init, tempA, AccessMode::ReadWrite);
            rt.setAccessMode(init, tempB, AccessMode::ReadWrite);
            rt.setAccessMode(init, power, AccessMode::ReadWrite);
            init.trace = [tempA, tempB, power](int wg, TraceSink &sink) {
                const std::uint64_t lo =
                    kGrid * kRowLines * std::uint64_t(wg) / kWgs;
                const std::uint64_t hi =
                    kGrid * kRowLines * std::uint64_t(wg + 1) / kWgs;
                streamLines(sink, tempA.id, lo, hi, true);
                streamLines(sink, tempB.id, lo, hi, true);
                streamLines(sink, power.id, lo, hi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int it = 0; it < iterations; ++it) {
            const DevArray &src = (it % 2 == 0) ? tempA : tempB;
            const DevArray &dst = (it % 2 == 0) ? tempB : tempA;

            KernelDesc k;
            k.name = "hotspot_step";
            k.numWgs = kWgs;
            k.mlp = 8;
            // Compute-bound: ~6K ALU cycles per WG plus LDS traffic.
            k.computeCyclesPerWg = 6000;
            k.ldsAccessesPerWg = 1024;
            rt.setAccessMode(k, src, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k, power, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k, dst, AccessMode::ReadWrite);
            k.trace = [src, dst, power](int wg, TraceSink &sink) {
                const std::uint64_t rLo =
                    std::uint64_t(wg) * kGrid / kWgs;
                const std::uint64_t rHi =
                    std::uint64_t(wg + 1) * kGrid / kWgs;
                stencilRows(sink, src.id, kRowLines, kGrid, rLo, rHi,
                            false);
                stencilRows(sink, power.id, kRowLines, kGrid, rLo, rHi,
                            false);
                stencilRows(sink, dst.id, kRowLines, kGrid, rLo, rHi,
                            true);
            };
            rt.launchKernel(std::move(k));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeHotspot()
{
    return std::make_unique<Hotspot>();
}

} // namespace cpelide
