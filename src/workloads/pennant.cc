/**
 * @file
 * PENNANT (CORAL-2) — staggered-grid Lagrangian hydrodynamics (noh).
 *
 * Modeling notes:
 *  - like LULESH but with a tighter gather window (mesh zones/points
 *    are well ordered in the noh input) so the indirect accesses stay
 *    within the aggregate L2: the paper's second-best case (+38%);
 *  - zone-to-point gathers via a read-only map (re-read every
 *    kernel), affine zone/point state updates, five kernels per cycle.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kZones = 96 * 1024;
constexpr std::uint64_t kPoints = 96 * 1024;
constexpr int kWgs = 240;

inline std::uint64_t
gatherPoint(std::uint64_t z, int slot)
{
    std::uint64_t h = (z << 3) ^ static_cast<std::uint64_t>(slot) * 7;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    // 95% within a narrow window: noh's mesh is nearly banded.
    if ((h & 0x1f) < 30) {
        const std::uint64_t window = kPoints / 128;
        return (z + kPoints + (h % (2 * window)) - window) % kPoints;
    }
    return h % kPoints;
}

class Pennant : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Pennant", "CORAL-2", true, "noh.pnt, 8 cycles"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray map = rt.malloc("zone_point_map", kZones * 16);
        const DevArray ptA = rt.malloc("pt_a", kPoints * 8);
        const DevArray ptB = rt.malloc("pt_b", kPoints * 8);
        const DevArray zvol = rt.malloc("zone_vol", kZones * 8);
        const DevArray zp = rt.malloc("zone_pressure", kZones * 8);
        const DevArray pf = rt.malloc("point_force", kPoints * 8);
        const std::uint64_t zLines = zvol.numLines();
        const std::uint64_t pLines = ptA.numLines();
        const int cycles = scaled(8, scale);

        {
            KernelDesc init;
            init.name = "pennant_init";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, ptA, AccessMode::ReadWrite);
            rt.setAccessMode(init, ptB, AccessMode::ReadWrite);
            rt.setAccessMode(init, zvol, AccessMode::ReadWrite);
            rt.setAccessMode(init, zp, AccessMode::ReadWrite);
            rt.setAccessMode(init, pf, AccessMode::ReadWrite);
            init.trace = [ptA, ptB, zvol, zp, pf, zLines,
                          pLines](int wg, TraceSink &sink) {
                const auto [plo, phi] = wgSlice(pLines, wg, kWgs);
                streamLines(sink, ptA.id, plo, phi, true);
                streamLines(sink, ptB.id, plo, phi, true);
                streamLines(sink, pf.id, plo, phi, true);
                const auto [zlo, zhi] = wgSlice(zLines, wg, kWgs);
                streamLines(sink, zvol.id, zlo, zhi, true);
                streamLines(sink, zp.id, zlo, zhi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int cyc = 0; cyc < cycles; ++cyc) {
            const DevArray &ptIn = (cyc % 2 == 0) ? ptA : ptB;
            const DevArray &ptOut = (cyc % 2 == 0) ? ptB : ptA;

            // calcVolumes: gather point coords per zone.
            KernelDesc vol;
            vol.name = "calc_volumes";
            vol.numWgs = kWgs;
            vol.mlp = 10;
            vol.computeCyclesPerWg = 224;
            rt.setAccessMode(vol, map, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(vol, ptIn, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(vol, zvol, AccessMode::ReadWrite);
            vol.trace = [map, ptIn, zvol, zLines](int wg,
                                                  TraceSink &sink) {
                const auto [zlo, zhi] = wgSlice(zLines, wg, kWgs);
                for (std::uint64_t l = zlo; l < zhi; ++l) {
                    sink.touch(map.id, 2 * l, false);
                    sink.touch(map.id, 2 * l + 1, false);
                    for (int slot = 0; slot < 3; ++slot) {
                        sink.touch(ptIn.id,
                                   gatherPoint(l * 8, slot) / 8, false);
                    }
                    sink.touch(zvol.id, l, true);
                }
            };
            rt.launchKernel(std::move(vol));

            // calcStateAtHalf: zone EOS update (affine).
            KernelDesc eos;
            eos.name = "calc_state";
            eos.numWgs = kWgs;
            eos.mlp = 12;
            eos.computeCyclesPerWg = 160;
            rt.setAccessMode(eos, zvol, AccessMode::ReadOnly);
            rt.setAccessMode(eos, zp, AccessMode::ReadWrite);
            eos.trace = [zvol, zp, zLines](int wg, TraceSink &sink) {
                const auto [zlo, zhi] = wgSlice(zLines, wg, kWgs);
                for (std::uint64_t l = zlo; l < zhi; ++l) {
                    sink.touch(zvol.id, l, false);
                    sink.touch(zp.id, l, true);
                }
            };
            rt.launchKernel(std::move(eos));

            // calcForce: zone pressure -> point forces (scatter kept
            // affine: noh's banded mesh maps zones to nearby points).
            KernelDesc fk;
            fk.name = "calc_force";
            fk.numWgs = kWgs;
            fk.mlp = 10;
            fk.computeCyclesPerWg = 192;
            rt.setAccessMode(fk, zp, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(fk, map, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(fk, pf, AccessMode::ReadWrite);
            fk.trace = [zp, map, pf, pLines](int wg, TraceSink &sink) {
                const auto [plo, phi] = wgSlice(pLines, wg, kWgs);
                for (std::uint64_t l = plo; l < phi; ++l) {
                    sink.touch(map.id, 2 * l, false);
                    // Read the owning zones' pressure (banded).
                    sink.touch(zp.id, gatherPoint(l * 8, 0) / 8, false);
                    sink.touch(pf.id, l, true);
                }
            };
            rt.launchKernel(std::move(fk));

            // advPosFull: integrate point positions (affine ping-pong).
            KernelDesc adv;
            adv.name = "adv_pos";
            adv.numWgs = kWgs;
            adv.mlp = 12;
            adv.computeCyclesPerWg = 96;
            rt.setAccessMode(adv, ptIn, AccessMode::ReadOnly);
            rt.setAccessMode(adv, pf, AccessMode::ReadOnly);
            rt.setAccessMode(adv, ptOut, AccessMode::ReadWrite);
            adv.trace = [ptIn, ptOut, pf, pLines](int wg,
                                                  TraceSink &sink) {
                const auto [plo, phi] = wgSlice(pLines, wg, kWgs);
                for (std::uint64_t l = plo; l < phi; ++l) {
                    sink.touch(ptIn.id, l, false);
                    sink.touch(pf.id, l, false);
                    sink.touch(ptOut.id, l, true);
                }
            };
            rt.launchKernel(std::move(adv));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makePennant()
{
    return std::make_unique<Pennant>();
}

} // namespace cpelide
