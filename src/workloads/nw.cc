/**
 * @file
 * Needleman-Wunsch (Rodinia) — diagonal-wavefront sequence alignment.
 *
 * Modeling notes:
 *  - 2048x2048 score matrix + reference matrix (16 MB each), swept as
 *    64x64 blocks along anti-diagonals: 2 x 31 wavefront kernels;
 *  - every block is processed exactly once and the per-kernel working
 *    set moves each step: essentially no inter-kernel reuse (paper's
 *    low-reuse group; Baseline ~= CPElide);
 *  - the block row above is produced by a different WG/chiplet, so
 *    the score matrix is annotated Full (conservative).
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kN = 2048;
constexpr std::uint64_t kBlock = 64;
constexpr std::uint64_t kBlocks = kN / kBlock; // 32
constexpr std::uint64_t kRowLines = kN * 4 / kLineBytes; // 128
constexpr int kWgs = static_cast<int>(kBlocks);

void
touchBlock(TraceSink &sink, DsId ds, std::uint64_t brow,
           std::uint64_t bcol, bool write)
{
    const std::uint64_t colLine = bcol * kBlock * 4 / kLineBytes;
    const std::uint64_t colLines = kBlock * 4 / kLineBytes;
    for (std::uint64_t r = brow * kBlock; r < (brow + 1) * kBlock; ++r) {
        for (std::uint64_t l = 0; l < colLines; ++l)
            sink.touch(ds, r * kRowLines + colLine + l, write);
    }
}

class Nw : public Workload
{
  public:
    Info
    info() const override
    {
        return {"NW", "Rodinia", false, "2048x2048 (8192 10)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray score = rt.malloc("score", kN * kN * 4);
        const DevArray ref = rt.malloc("reference", kN * kN * 4);
        const int diags = scaled(static_cast<int>(kBlocks), scale);

        // Forward then backward wavefronts (Rodinia's two loops).
        for (int dir = 0; dir < 2; ++dir) {
            for (int d = 0; d < diags; ++d) {
                const std::uint64_t diag =
                    dir == 0 ? static_cast<std::uint64_t>(d)
                             : static_cast<std::uint64_t>(diags - 1 - d);
                KernelDesc k;
                k.name = dir == 0 ? "nw_forward" : "nw_backward";
                k.numWgs = kWgs;
                k.mlp = 10;
                k.computeCyclesPerWg = 384;
                k.ldsAccessesPerWg = 2048;
                rt.setAccessMode(k, ref, AccessMode::ReadOnly,
                                 RangeKind::Full);
                rt.setAccessMode(k, score, AccessMode::ReadWrite,
                                 RangeKind::Full);
                k.trace = [score, ref, diag](int wg, TraceSink &sink) {
                    // WG i handles block (i, diag - i) if on the
                    // diagonal.
                    const std::uint64_t i = static_cast<std::uint64_t>(wg);
                    if (i > diag || diag - i >= kBlocks)
                        return;
                    const std::uint64_t j = diag - i;
                    touchBlock(sink, ref.id, i, j, false);
                    // Read halo from the block above (previous diag).
                    if (i > 0)
                        touchBlock(sink, score.id, i - 1, j, false);
                    touchBlock(sink, score.id, i, j, true);
                };
                rt.launchKernel(std::move(k));
            }
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeNw()
{
    return std::make_unique<Nw>();
}

} // namespace cpelide
