#include "workloads/workload.hh"

#include <algorithm>

#include "sim/log.hh"
#include "workloads/suite.hh"

namespace cpelide
{

const std::vector<WorkloadFactory> &
allWorkloadFactories()
{
    // Table II order: moderate-to-high reuse group, then low reuse.
    static const std::vector<WorkloadFactory> factories = {
        makeBabelStream,
        makeBackprop,
        makeBfs,
        makeColorMax,
        makeFw,
        makeGaussian,
        makeHacc,
        makeHotspot3D,
        makeHotspot,
        makeLud,
        makeLulesh,
        makePennant,
        makeRnnGruSmall,
        makeRnnGruLarge,
        makeRnnLstmSmall,
        makeRnnLstmLarge,
        makeSquare,
        makeSssp,
        makeBtree,
        makeCnn,
        makeDwt2d,
        makeNw,
        makePathfinder,
        makeSradV2,
    };
    return factories;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const WorkloadFactory &f : allWorkloadFactories()) {
        auto w = f();
        if (w->info().name == name)
            return w;
    }
    fatal("unknown workload: " + name);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadFactory &f : allWorkloadFactories())
        names.push_back(f()->info().name);
    return names;
}

} // namespace cpelide
