/**
 * @file
 * SRAD_v2 (Rodinia) — speckle-reducing anisotropic diffusion.
 *
 * Modeling notes:
 *  - six 6.25 MB arrays (image J, coefficient c, four directional
 *    derivatives): the ~37 MB footprint exceeds the aggregate L2, so
 *    the L2s thrash and there is little reuse to preserve (low-reuse
 *    group, Baseline ~= CPElide);
 *  - the many distinct lines cycled through HMG's directory cause
 *    eviction/invalidation storms: the paper's "Baseline outperforms
 *    HMG by ~15%" case (together with BTree);
 *  - paper input runs exactly 2 iterations.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kDim = 1280;
constexpr std::uint64_t kRowLines = kDim * 4 / kLineBytes; // 80
constexpr int kWgs = 240;

class SradV2 : public Workload
{
  public:
    Info
    info() const override
    {
        return {"SRAD_v2", "Rodinia", false, "1280x1280, 2 iterations"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const std::uint64_t bytes = kDim * kDim * 4;
        const DevArray j = rt.malloc("J", bytes);
        const DevArray c = rt.malloc("c", bytes);
        const DevArray dN = rt.malloc("dN", bytes);
        const DevArray dS = rt.malloc("dS", bytes);
        const DevArray dE = rt.malloc("dE", bytes);
        const DevArray dW = rt.malloc("dW", bytes);
        const int iterations = scaled(2, scale);

        // Init: affine first touch of all six arrays.
        {
            KernelDesc init;
            init.name = "srad_init";
            init.numWgs = kWgs;
            init.mlp = 32;
            for (const DevArray *arr : {&j, &c, &dN, &dS, &dE, &dW})
                rt.setAccessMode(init, *arr, AccessMode::ReadWrite);
            init.trace = [j, c, dN, dS, dE, dW](int wg,
                                                TraceSink &sink) {
                const std::uint64_t lo =
                    kDim * kRowLines * std::uint64_t(wg) / kWgs;
                const std::uint64_t hi =
                    kDim * kRowLines * std::uint64_t(wg + 1) / kWgs;
                for (DsId id : {j.id, c.id, dN.id, dS.id, dE.id, dW.id})
                    streamLines(sink, id, lo, hi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int it = 0; it < iterations; ++it) {
            // Kernel 1: derivatives + diffusion coefficient.
            KernelDesc k1;
            k1.name = "srad_cuda_1";
            k1.numWgs = kWgs;
            k1.mlp = 24;
            k1.computeCyclesPerWg = 256;
            const int chiplets = rt.gpu().config().numChiplets;
            rt.setAccessMode(k1, j, AccessMode::ReadOnly,
                             RangeKind::Full);
            for (const DevArray *arr : {&dN, &dS, &dE, &dW, &c}) {
                rt.setAccessModeRange(
                    k1, *arr, AccessMode::ReadWrite,
                    rowSlicedRanges(*arr, kDim, kRowLines, kWgs,
                                    chiplets));
            }
            k1.trace = [j, c, dN, dS, dE, dW](int wg, TraceSink &sink) {
                const std::uint64_t rLo = kDim * std::uint64_t(wg) / kWgs;
                const std::uint64_t rHi =
                    kDim * std::uint64_t(wg + 1) / kWgs;
                stencilRows(sink, j.id, kRowLines, kDim, rLo, rHi,
                            false);
                for (std::uint64_t r = rLo; r < rHi; ++r) {
                    streamLines(sink, dN.id, r * kRowLines,
                                (r + 1) * kRowLines, true);
                    streamLines(sink, dS.id, r * kRowLines,
                                (r + 1) * kRowLines, true);
                    streamLines(sink, dE.id, r * kRowLines,
                                (r + 1) * kRowLines, true);
                    streamLines(sink, dW.id, r * kRowLines,
                                (r + 1) * kRowLines, true);
                    streamLines(sink, c.id, r * kRowLines,
                                (r + 1) * kRowLines, true);
                }
            };
            rt.launchKernel(std::move(k1));

            // Kernel 2: divergence + image update.
            KernelDesc k2;
            k2.name = "srad_cuda_2";
            k2.numWgs = kWgs;
            k2.mlp = 24;
            k2.computeCyclesPerWg = 224;
            rt.setAccessMode(k2, c, AccessMode::ReadOnly,
                             RangeKind::Full);
            for (const DevArray *arr : {&dN, &dS, &dE, &dW}) {
                rt.setAccessModeRange(
                    k2, *arr, AccessMode::ReadOnly,
                    rowSlicedRanges(*arr, kDim, kRowLines, kWgs,
                                    chiplets));
            }
            rt.setAccessModeRange(
                k2, j, AccessMode::ReadWrite,
                rowSlicedRanges(j, kDim, kRowLines, kWgs, chiplets));
            k2.trace = [j, c, dN, dS, dE, dW](int wg, TraceSink &sink) {
                const std::uint64_t rLo = kDim * std::uint64_t(wg) / kWgs;
                const std::uint64_t rHi =
                    kDim * std::uint64_t(wg + 1) / kWgs;
                stencilRows(sink, c.id, kRowLines, kDim, rLo, rHi,
                            false);
                for (std::uint64_t r = rLo; r < rHi; ++r) {
                    streamLines(sink, dN.id, r * kRowLines,
                                (r + 1) * kRowLines, false);
                    streamLines(sink, dS.id, r * kRowLines,
                                (r + 1) * kRowLines, false);
                    streamLines(sink, dE.id, r * kRowLines,
                                (r + 1) * kRowLines, false);
                    streamLines(sink, dW.id, r * kRowLines,
                                (r + 1) * kRowLines, false);
                    streamLines(sink, j.id, r * kRowLines,
                                (r + 1) * kRowLines, true);
                }
            };
            rt.launchKernel(std::move(k2));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeSradV2()
{
    return std::make_unique<SradV2>();
}

} // namespace cpelide
