/**
 * @file
 * BabelStream (Deakin et al.) — memory-bandwidth microbenchmark.
 *
 * Modeling notes:
 *  - three 2 MB arrays (paper input: 524288 floats), five kernels per
 *    iteration (copy, mul, add, triad, dot), 5 iterations;
 *  - perfectly affine: each chiplet's slice stays resident in its L2
 *    across all kernels, so CPElide elides every flush/invalidate and
 *    there are ~no remote accesses;
 *  - HMG's write-through L2 pushes every store to the LLC/memory,
 *    the behaviour behind the paper's 37% CPElide-over-HMG gap.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kBytes = 524288ull * 4;
constexpr int kWgs = 240;

class BabelStream : public Workload
{
  public:
    Info
    info() const override
    {
        return {"BabelStream", "BabelStream", true,
                "524288 floats x3 arrays, 5 iterations"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const int iterations = scaled(5, scale);

        const DevArray a = rt.malloc("a", kBytes);
        const DevArray b = rt.malloc("b", kBytes);
        const DevArray c = rt.malloc("c", kBytes);
        const DevArray partials = rt.malloc("dot_partials",
                                            kWgs * kLineBytes);
        const std::uint64_t lines = a.numLines();

        auto streamKernel = [&](const std::string &name,
                                std::vector<std::pair<DevArray, bool>>
                                    arrays) {
            KernelDesc k;
            k.name = name;
            k.numWgs = kWgs;
            k.mlp = 24;
            k.computeCyclesPerWg = 32;
            for (const auto &[arr, write] : arrays) {
                rt.setAccessMode(k, arr,
                                 write ? AccessMode::ReadWrite
                                       : AccessMode::ReadOnly);
            }
            k.trace = [arrays, lines](int wg, TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    for (const auto &[arr, write] : arrays)
                        sink.touch(arr.id, l, write);
                }
            };
            rt.launchKernel(std::move(k));
        };

        for (int it = 0; it < iterations; ++it) {
            streamKernel("copy", {{a, false}, {c, true}});
            streamKernel("mul", {{c, false}, {b, true}});
            streamKernel("add", {{a, false}, {b, false}, {c, true}});
            streamKernel("triad", {{b, false}, {c, false}, {a, true}});

            // dot: reads a and b, one partial-sum line per WG.
            KernelDesc dot;
            dot.name = "dot";
            dot.numWgs = kWgs;
            dot.mlp = 24;
            dot.computeCyclesPerWg = 64;
            rt.setAccessMode(dot, a, AccessMode::ReadOnly);
            rt.setAccessMode(dot, b, AccessMode::ReadOnly);
            rt.setAccessMode(dot, partials, AccessMode::ReadWrite);
            const std::uint64_t pLines = partials.numLines();
            dot.trace = [a, b, partials, lines, pLines](int wg,
                                                        TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touch(a.id, l, false);
                    sink.touch(b.id, l, false);
                }
                // One partial-sum line inside the WG's affine slice.
                sink.touch(partials.id, pLines * wg / kWgs, true);
            };
            rt.launchKernel(std::move(dot));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeBabelStream()
{
    return std::make_unique<BabelStream>();
}

} // namespace cpelide
