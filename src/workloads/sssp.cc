/**
 * @file
 * SSSP (Pannotia) — Bellman-Ford style single-source shortest paths.
 *
 * Modeling notes:
 *  - adjacency + edge weights (RO, ~8 MB) are re-swept for 20
 *    iterations: the read-only reuse CPElide preserves (paper: +14%);
 *  - dist relaxations are atomicMin scatter updates -> bypass
 *    accesses, untracked;
 *  - low graph locality => many remote reads; HMG's remote caching
 *    causes directory churn, Baseline/CPElide just pay the hop.
 */

#include "workloads/suite.hh"

#include "workloads/graph.hh"
#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

class Sssp : public Workload
{
  public:
    Info
    info() const override
    {
        return {"SSSP", "Pannotia", true, "AK.gr (~64K nodes)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr std::uint32_t kNodes = 64 * 1024;
        auto graph = CsrGraph::synthesize(kNodes, 12, 0.4, 0x55b);
        constexpr int kWgs = 240;
        const int iterations = scaled(10, scale);

        const DevArray rowOff =
            rt.malloc("row_offsets", (kNodes + 1) * 4);
        const DevArray cols = rt.malloc("cols", graph->numEdges() * 4);
        const DevArray weights =
            rt.malloc("weights", graph->numEdges() * 4);
        const DevArray dist = rt.malloc("dist", kNodes * 4);
        const DevArray distUpd = rt.malloc("dist_updating", kNodes * 4);
        const std::uint64_t nodeLines = dist.numLines();

        // Init: first touch of dist arrays, affine placement.
        {
            KernelDesc init;
            init.name = "sssp_init";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, dist, AccessMode::ReadWrite);
            init.trace = [dist, distUpd, nodeLines](int wg,
                                                    TraceSink &sink) {
                const auto [lo, hi] = wgSlice(nodeLines, wg, kWgs);
                streamLines(sink, dist.id, lo, hi, true);
                for (std::uint64_t l = lo; l < hi; ++l)
                    sink.touchBypass(distUpd.id, l, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int it = 0; it < iterations; ++it) {
            // Active fraction: wide in the middle iterations.
            const double frac =
                it < 2 ? 0.1 + 0.2 * it : (it < 6 ? 0.5 : 0.25);

            KernelDesc k1;
            k1.name = "sssp_kernel1";
            k1.numWgs = kWgs;
            k1.mlp = 6;
            k1.computeCyclesPerWg = 48;
            rt.setAccessMode(k1, rowOff, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, cols, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, weights, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, dist, AccessMode::ReadOnly);
            const std::uint64_t dLines = dist.numLines();
            k1.trace = [graph, rowOff, cols, weights, dist, distUpd, it,
                        frac, dLines](int wg, TraceSink &sink) {
                // Dense line-granular read of the WG's dist slice
                // (matches the affine annotation exactly).
                const auto [dlo, dhi] = wgSlice(dLines, wg, kWgs);
                streamLines(sink, dist.id, dlo, dhi, false);
                const std::uint32_t nLo = static_cast<std::uint32_t>(
                    std::uint64_t(graph->numNodes) * wg / kWgs);
                const std::uint32_t nHi = static_cast<std::uint32_t>(
                    std::uint64_t(graph->numNodes) * (wg + 1) / kWgs);
                for (std::uint32_t u = nLo; u < nHi; ++u) {
                    std::uint64_t h = (std::uint64_t(u) << 9) ^
                                      (std::uint64_t(it) * 0x2545f491);
                    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
                    if (static_cast<double>(h & 0xffffff) >=
                        frac * static_cast<double>(0x1000000)) {
                        continue;
                    }
                    sink.touch(rowOff.id, u / 16, false);
                    const std::uint32_t eLo = graph->rowOffsets[u];
                    const std::uint32_t eHi = graph->rowOffsets[u + 1];
                    for (std::uint32_t l = eLo / 16;
                         l <= (eHi - 1) / 16; ++l) {
                        sink.touch(cols.id, l, false);
                        sink.touch(weights.id, l, false);
                    }
                    // Relax two neighbors: atomicMin on dist_updating.
                    for (std::uint32_t e = eLo;
                         e < eHi && e < eLo + 2; ++e) {
                        sink.touchBypass(distUpd.id,
                                         graph->cols[e] / 16, true);
                    }
                }
            };
            rt.launchKernel(std::move(k1));

            KernelDesc k2;
            k2.name = "sssp_kernel2";
            k2.numWgs = kWgs;
            k2.mlp = 16;
            k2.computeCyclesPerWg = 16;
            rt.setAccessMode(k2, dist, AccessMode::ReadWrite);
            k2.trace = [dist, distUpd, nodeLines](int wg,
                                                  TraceSink &sink) {
                const auto [lo, hi] = wgSlice(nodeLines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touchBypass(distUpd.id, l, false);
                    sink.touch(dist.id, l, true);
                }
            };
            rt.launchKernel(std::move(k2));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeSssp()
{
    return std::make_unique<Sssp>();
}

} // namespace cpelide
