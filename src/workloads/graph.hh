/**
 * @file
 * Deterministic synthetic CSR graph for the Pannotia/Rodinia graph
 * workloads (BFS, SSSP, Color-max).
 *
 * Stands in for the paper's graph inputs (graph128k.txt, AK.gr):
 * degree-skewed, with a locality knob controlling what fraction of
 * edges stay near the source node. Low locality => many remote
 * accesses under first-touch placement, the regime where the paper
 * reports HMG suffering from invalidation traffic.
 */

#ifndef CPELIDE_WORKLOADS_GRAPH_HH
#define CPELIDE_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hh"

namespace cpelide
{

/** Compressed-sparse-row graph. */
struct CsrGraph
{
    std::uint32_t numNodes = 0;
    std::vector<std::uint32_t> rowOffsets; //!< numNodes + 1
    std::vector<std::uint32_t> cols;       //!< neighbor node ids

    std::uint32_t numEdges() const
    {
        return static_cast<std::uint32_t>(cols.size());
    }

    /**
     * Build a graph with @p avg_degree edges per node (skewed 1x-3x)
     * where @p locality of the edges land within +/- numNodes/16 of
     * the source.
     */
    static std::shared_ptr<CsrGraph>
    synthesize(std::uint32_t num_nodes, std::uint32_t avg_degree,
               double locality, std::uint64_t seed)
    {
        auto g = std::make_shared<CsrGraph>();
        g->numNodes = num_nodes;
        g->rowOffsets.reserve(num_nodes + 1);
        g->rowOffsets.push_back(0);
        Rng rng(seed);
        const std::uint32_t window = num_nodes / 16 + 1;
        for (std::uint32_t u = 0; u < num_nodes; ++u) {
            const std::uint32_t degree = static_cast<std::uint32_t>(
                rng.range(avg_degree / 2 + 1, avg_degree * 3 / 2 + 1));
            for (std::uint32_t e = 0; e < degree; ++e) {
                std::uint32_t v;
                if (rng.chance(locality)) {
                    const std::uint32_t off =
                        static_cast<std::uint32_t>(rng.below(2 * window));
                    v = (u + num_nodes + off - window) % num_nodes;
                } else {
                    v = static_cast<std::uint32_t>(rng.below(num_nodes));
                }
                g->cols.push_back(v);
            }
            g->rowOffsets.push_back(
                static_cast<std::uint32_t>(g->cols.size()));
        }
        return g;
    }
};

} // namespace cpelide

#endif // CPELIDE_WORKLOADS_GRAPH_HH
