/**
 * @file
 * Pathfinder (Rodinia) — dynamic-programming grid walk (200000x100).
 *
 * Modeling notes:
 *  - each step consumes five fresh wall rows (read once, never again)
 *    plus a small ping-pong result row: the textbook low-reuse
 *    streaming workload (Baseline ~= CPElide, paper);
 *  - column-partitioned and perfectly affine.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kCols = 65536;
constexpr std::uint64_t kRows = 100;
constexpr std::uint64_t kRowLines = kCols * 4 / kLineBytes; // 4096
constexpr int kWgs = 240;
constexpr int kPyramidHeight = 5;

class Pathfinder : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Pathfinder", "Rodinia", false, "200000 100 20 (scaled)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray wall =
            rt.malloc("wall", kRows * kRowLines * kLineBytes);
        const DevArray resA = rt.malloc("result_a", kCols * 4);
        const DevArray resB = rt.malloc("result_b", kCols * 4);
        const int steps =
            scaled(static_cast<int>(kRows) / kPyramidHeight, scale);

        for (int s = 0; s < steps; ++s) {
            const DevArray &src = (s % 2 == 0) ? resA : resB;
            const DevArray &dst = (s % 2 == 0) ? resB : resA;
            const std::uint64_t row0 =
                static_cast<std::uint64_t>(s) * kPyramidHeight;

            KernelDesc k;
            k.name = "dynproc_kernel";
            k.numWgs = kWgs;
            k.mlp = 20;
            k.computeCyclesPerWg = 160;
            k.ldsAccessesPerWg = 512;
            // The wall is consumed in row windows x column slices —
            // not an affine slice of the whole allocation (and never
            // written, so Full costs nothing).
            rt.setAccessMode(k, wall, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k, src, AccessMode::ReadOnly);
            rt.setAccessMode(k, dst, AccessMode::ReadWrite);
            k.trace = [wall, src, dst, row0](int wg, TraceSink &sink) {
                const auto [cLo, cHi] = wgSlice(kRowLines, wg, kWgs);
                for (int r = 0; r < kPyramidHeight; ++r) {
                    streamLines(sink, wall.id,
                                (row0 + r) * kRowLines + cLo,
                                (row0 + r) * kRowLines + cHi, false);
                }
                streamLines(sink, src.id, cLo, cHi, false);
                streamLines(sink, dst.id, cLo, cHi, true);
            };
            rt.launchKernel(std::move(k));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makePathfinder()
{
    return std::make_unique<Pathfinder>();
}

} // namespace cpelide
