/**
 * @file
 * Access-pattern primitives shared by the workload generators.
 *
 * All traces operate at cache-line granularity: a wavefront's coalesced
 * touch of 64 consecutive bytes is one trace event. Helpers here cover
 * the recurring GPGPU shapes: contiguous streaming, strided/tiled
 * walks, 2D/3D stencils, and WG-to-slice partitioning.
 */

#ifndef CPELIDE_WORKLOADS_PATTERNS_HH
#define CPELIDE_WORKLOADS_PATTERNS_HH

#include <cstdint>
#include <utility>

#include "cp/kernel.hh"
#include "sim/types.hh"

namespace cpelide
{

/** Lines [lo, hi) of a structure assigned to @p wg of @p num_wgs. */
inline std::pair<std::uint64_t, std::uint64_t>
wgSlice(std::uint64_t total_lines, int wg, int num_wgs)
{
    const std::uint64_t lo =
        total_lines * static_cast<std::uint64_t>(wg) / num_wgs;
    const std::uint64_t hi =
        total_lines * static_cast<std::uint64_t>(wg + 1) / num_wgs;
    return {lo, hi};
}

/** Touch every line of [lo, hi) once. */
inline void
streamLines(TraceSink &sink, DsId ds, std::uint64_t lo, std::uint64_t hi,
            bool write)
{
    for (std::uint64_t l = lo; l < hi; ++l)
        sink.touch(ds, l, write);
}

/** Touch every @p stride-th line of [lo, hi) once. */
inline void
strideLines(TraceSink &sink, DsId ds, std::uint64_t lo, std::uint64_t hi,
            std::uint64_t stride, bool write)
{
    for (std::uint64_t l = lo; l < hi; l += stride)
        sink.touch(ds, l, write);
}

/**
 * Read a row-major 2D region with its vertical halo (a 5-point 2D
 * stencil's input footprint). Rows are @p row_lines lines wide; the WG
 * owns rows [row_lo, row_hi) and additionally reads one halo row on
 * each side (clamped).
 */
inline void
stencilRows(TraceSink &sink, DsId ds, std::uint64_t row_lines,
            std::uint64_t num_rows, std::uint64_t row_lo,
            std::uint64_t row_hi, bool write)
{
    const std::uint64_t lo = row_lo > 0 ? row_lo - 1 : 0;
    const std::uint64_t hi = row_hi < num_rows ? row_hi + 1 : num_rows;
    for (std::uint64_t r = write ? row_lo : lo;
         r < (write ? row_hi : hi); ++r) {
        streamLines(sink, ds, r * row_lines, (r + 1) * row_lines, write);
    }
}

/** Rows [lo, hi) of a 2D structure assigned to @p wg of @p num_wgs. */
inline std::pair<std::uint64_t, std::uint64_t>
wgRowSlice(std::uint64_t num_rows, int wg, int num_wgs)
{
    return wgSlice(num_rows, wg, num_wgs);
}

/**
 * Explicit per-chiplet byte ranges for a row-sliced 2D access pattern
 * (for hipSetAccessModeRange): chiplet boundaries land exactly on the
 * rows the WG partition produces, which a line-proportional affine
 * annotation cannot express when rows * wgEnd / numWgs does not divide
 * evenly. Mirrors partitionWgs' contiguous ceil-division chunks.
 */
inline std::vector<AddrRange>
rowSlicedRanges(const DevArray &arr, std::uint64_t num_rows,
                std::uint64_t row_lines, int num_wgs, int num_chiplets)
{
    std::vector<AddrRange> out;
    out.reserve(static_cast<std::size_t>(num_chiplets));
    const int base = num_wgs / num_chiplets;
    const int extra = num_wgs % num_chiplets;
    int wg = 0;
    for (int c = 0; c < num_chiplets; ++c) {
        const int wgEnd = wg + base + (c < extra ? 1 : 0);
        const std::uint64_t rLo = num_rows * std::uint64_t(wg) / num_wgs;
        const std::uint64_t rHi =
            num_rows * std::uint64_t(wgEnd) / num_wgs;
        out.push_back(arr.lineRange(rLo * row_lines, rHi * row_lines));
        wg = wgEnd;
    }
    return out;
}

} // namespace cpelide

#endif // CPELIDE_WORKLOADS_PATTERNS_HH
