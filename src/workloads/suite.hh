/**
 * @file
 * Factory declarations for the 24 Table-II workloads (one translation
 * unit per workload; see each .cc for the modeling notes).
 */

#ifndef CPELIDE_WORKLOADS_SUITE_HH
#define CPELIDE_WORKLOADS_SUITE_HH

#include <memory>

#include "workloads/workload.hh"

namespace cpelide
{

// Moderate-to-high inter-kernel reuse (Table II, top group).
std::unique_ptr<Workload> makeBabelStream();
std::unique_ptr<Workload> makeBackprop();
std::unique_ptr<Workload> makeBfs();
std::unique_ptr<Workload> makeColorMax();
std::unique_ptr<Workload> makeFw();
std::unique_ptr<Workload> makeGaussian();
std::unique_ptr<Workload> makeHacc();
std::unique_ptr<Workload> makeHotspot3D();
std::unique_ptr<Workload> makeHotspot();
std::unique_ptr<Workload> makeLud();
std::unique_ptr<Workload> makeLulesh();
std::unique_ptr<Workload> makePennant();
// Each RNN has the two Table-II input configurations; with them the
// suite counts 24 benchmarks, matching the paper's "24 workloads".
std::unique_ptr<Workload> makeRnnGruSmall();
std::unique_ptr<Workload> makeRnnGruLarge();
std::unique_ptr<Workload> makeRnnLstmSmall();
std::unique_ptr<Workload> makeRnnLstmLarge();
std::unique_ptr<Workload> makeSquare();
std::unique_ptr<Workload> makeSssp();

// Low inter-kernel reuse (Table II, bottom group).
std::unique_ptr<Workload> makeBtree();
std::unique_ptr<Workload> makeCnn();
std::unique_ptr<Workload> makeDwt2d();
std::unique_ptr<Workload> makeNw();
std::unique_ptr<Workload> makePathfinder();
std::unique_ptr<Workload> makeSradV2();

} // namespace cpelide

#endif // CPELIDE_WORKLOADS_SUITE_HH
