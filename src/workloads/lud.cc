/**
 * @file
 * LUD (Rodinia) — blocked LU decomposition, 512x512 matrix.
 *
 * Modeling notes:
 *  - LDS-heavy with memory-bound load/store phases: the paper's best
 *    case (+48%), with ~0% remote traffic because the block-row
 *    partition is stable and the working set fits the LLC;
 *  - WGs map to absolute block rows (idle below the pivot), so each
 *    chiplet's slice of the matrix never moves;
 *  - the matrix carries two annotations per kernel — its own
 *    block-row slices (R/W, affine) and the pivot row panel (R,
 *    explicit range) — the paper's "chiplet vector per range"
 *    pattern, which turns the cross-chiplet pivot reads into cheap
 *    releases instead of reuse-destroying invalidates.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kN = 512;
constexpr std::uint64_t kBlock = 64;
constexpr std::uint64_t kBlocks = kN / kBlock;
constexpr std::uint64_t kRowLines = kN * 4 / kLineBytes; // 32
constexpr int kWgs = static_cast<int>(kBlocks);

void
touchBlock(TraceSink &sink, DsId ds, std::uint64_t row, std::uint64_t col,
           bool write)
{
    const std::uint64_t colLine = col * 4 / kLineBytes;
    const std::uint64_t colLines = kBlock * 4 / kLineBytes;
    for (std::uint64_t r = row; r < row + kBlock; ++r) {
        for (std::uint64_t l = 0; l < colLines; ++l)
            sink.touch(ds, r * kRowLines + colLine + l, write);
    }
}

class Lud : public Workload
{
  public:
    Info
    info() const override
    {
        return {"LUD", "Rodinia", true, "512x512 matrix (512.dat)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray m = rt.malloc("matrix", kN * kN * 4);
        const int steps = scaled(static_cast<int>(kBlocks), scale);

        // First touch: block-row partition.
        {
            KernelDesc init;
            init.name = "lud_init";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, m, AccessMode::ReadWrite);
            init.trace = [m](int wg, TraceSink &sink) {
                const std::uint64_t r0 = std::uint64_t(wg) * kBlock;
                streamLines(sink, m.id, r0 * kRowLines,
                            (r0 + kBlock) * kRowLines, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int k = 0; k < steps; ++k) {
            const std::uint64_t kb = static_cast<std::uint64_t>(k);
            const AddrRange pivotRow = {
                m.base + kb * kBlock * kRowLines * kLineBytes,
                m.base + (kb + 1) * kBlock * kRowLines * kLineBytes};

            // Diagonal: factor the pivot block (pivot WG only).
            KernelDesc diag;
            diag.name = "lud_diagonal";
            diag.numWgs = kWgs;
            diag.mlp = 8;
            diag.computeCyclesPerWg = 64;
            diag.ldsAccessesPerWg = 512;
            rt.setAccessMode(diag, m, AccessMode::ReadWrite);
            diag.trace = [m, kb](int wg, TraceSink &sink) {
                if (std::uint64_t(wg) != kb)
                    return;
                touchBlock(sink, m.id, kb * kBlock, kb * kBlock, false);
                touchBlock(sink, m.id, kb * kBlock, kb * kBlock, true);
            };
            rt.launchKernel(std::move(diag));

            // Perimeter: pivot WG updates its row panel; WGs below
            // update their pivot-column block.
            KernelDesc peri;
            peri.name = "lud_perimeter";
            peri.numWgs = kWgs;
            peri.mlp = 8;
            peri.computeCyclesPerWg = 192;
            peri.ldsAccessesPerWg = 1024;
            rt.setAccessMode(peri, m, AccessMode::ReadWrite);
            {
                std::vector<AddrRange> pivotReads(
                    static_cast<std::size_t>(
                        rt.gpu().config().numChiplets),
                    pivotRow);
                rt.setAccessModeRange(peri, m, AccessMode::ReadOnly,
                                      std::move(pivotReads));
            }
            peri.trace = [m, kb](int wg, TraceSink &sink) {
                const std::uint64_t r0 = std::uint64_t(wg) * kBlock;
                if (std::uint64_t(wg) == kb) {
                    // Row panel: trailing blocks only (the diagonal
                    // block was factored by the previous kernel and is
                    // being read by the column-panel WGs right now).
                    for (std::uint64_t r = r0; r < r0 + kBlock; ++r) {
                        for (std::uint64_t l = (kb + 1) * kBlock * 4 /
                                               kLineBytes;
                             l < kRowLines; ++l) {
                            sink.touch(m.id, r * kRowLines + l, true);
                        }
                    }
                } else if (std::uint64_t(wg) > kb) {
                    touchBlock(sink, m.id, kb * kBlock, kb * kBlock,
                               false); // read pivot block
                    touchBlock(sink, m.id, r0, kb * kBlock, true);
                }
            };
            rt.launchKernel(std::move(peri));

            // Internal: trailing blocks update from the two panels.
            KernelDesc inner;
            inner.name = "lud_internal";
            inner.numWgs = kWgs;
            inner.mlp = 8;
            inner.computeCyclesPerWg = 320;
            inner.ldsAccessesPerWg = 2048;
            rt.setAccessMode(inner, m, AccessMode::ReadWrite);
            {
                std::vector<AddrRange> pivotReads(
                    static_cast<std::size_t>(
                        rt.gpu().config().numChiplets),
                    pivotRow);
                rt.setAccessModeRange(inner, m, AccessMode::ReadOnly,
                                      std::move(pivotReads));
            }
            inner.trace = [m, kb](int wg, TraceSink &sink) {
                const std::uint64_t r0 = std::uint64_t(wg) * kBlock;
                if (std::uint64_t(wg) <= kb)
                    return;
                // Read the pivot row panel's trailing part.
                for (std::uint64_t r = kb * kBlock;
                     r < (kb + 1) * kBlock; ++r) {
                    for (std::uint64_t l = (kb + 1) * kBlock * 4 /
                                           kLineBytes;
                         l < kRowLines; ++l) {
                        sink.touch(m.id, r * kRowLines + l, false);
                    }
                }
                // Read own column block; update own trailing row band.
                touchBlock(sink, m.id, r0, kb * kBlock, false);
                for (std::uint64_t r = r0; r < r0 + kBlock; ++r) {
                    for (std::uint64_t l = (kb + 1) * kBlock * 4 /
                                           kLineBytes;
                         l < kRowLines; ++l) {
                        sink.touch(m.id, r * kRowLines + l, true);
                    }
                }
            };
            rt.launchKernel(std::move(inner));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeLud()
{
    return std::make_unique<Lud>();
}

} // namespace cpelide
