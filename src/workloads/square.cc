/**
 * @file
 * Square (HIP-Examples) — the paper's running example (Listing 1).
 *
 * Modeling notes:
 *  - input 524288 floats (2 MB in, 2 MB out), iterated 20 times:
 *    C[i] = A[i] * A[i] each kernel, perfectly affine;
 *  - both arrays fit comfortably in a chiplet's 8 MB L2 slice, so with
 *    CPElide each chiplet keeps its slice resident across all kernels
 *    and every boundary flush/invalidate is elided (the paper reports
 *    ~31%-40% gains for BabelStream/Square class workloads and a 40%
 *    CPElide-over-HMG gap caused by HMG's write-through L2).
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

class SquareWorkload : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Square", "HIP-Examples", true,
                "524288 floats, 20 iterations"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr std::uint64_t kFloats = 524288;
        constexpr std::uint64_t kBytes = kFloats * 4;
        const int iterations = scaled(20, scale);
        constexpr int kWgs = 256;

        const DevArray a = rt.malloc("A", kBytes);
        const DevArray c = rt.malloc("C", kBytes);
        const std::uint64_t lines = a.numLines();

        for (int it = 0; it < iterations; ++it) {
            KernelDesc k;
            k.name = "square";
            k.numWgs = kWgs;
            k.mlp = 24;
            k.computeCyclesPerWg = 64;
            rt.setAccessMode(k, a, AccessMode::ReadOnly);
            rt.setAccessMode(k, c, AccessMode::ReadWrite);
            k.trace = [a, c, lines](int wg, TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touch(a.id, l, false);
                    sink.touch(c.id, l, true);
                }
            };
            rt.launchKernel(std::move(k));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeSquare()
{
    return std::make_unique<SquareWorkload>();
}

} // namespace cpelide
