/**
 * @file
 * BFS (Rodinia) — level-synchronous breadth-first search, graph128k.
 *
 * Modeling notes:
 *  - CSR adjacency (rowOffsets/cols) is read-only and re-read every
 *    level: annotated RO + Full range, CPElide keeps it resident and
 *    elides every acquire for it (paper: +6%, limited by BFS's modest
 *    total reuse);
 *  - cost/frontier scatter updates are system-scope atomics served
 *    at the LLC (touchBypass): they cache nowhere, need no implicit
 *    synchronization, and are not tracked in the coherence table;
 *  - the frontier sweeps a per-level active set derived from a
 *    deterministic hash so every configuration replays the same trace.
 */

#include "workloads/suite.hh"

#include "workloads/graph.hh"
#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

/** Deterministic per-(node, level) activity hash. */
inline bool
activeNode(std::uint32_t u, int level, double frac)
{
    std::uint64_t x = (static_cast<std::uint64_t>(u) << 8) ^
                      static_cast<std::uint64_t>(level) * 0x9e3779b9;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x ^= x >> 31;
    return static_cast<double>(x & 0xffffff) <
           frac * static_cast<double>(0x1000000);
}

class Bfs : public Workload
{
  public:
    Info
    info() const override
    {
        return {"BFS", "Rodinia", true, "graph128k.txt (~96K nodes)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr std::uint32_t kNodes = 96 * 1024;
        auto graph = CsrGraph::synthesize(kNodes, 6, 0.6, 0xbf5);
        constexpr int kWgs = 240;
        const int levels = scaled(12, scale);
        static const double kFrac[] = {0.02, 0.06, 0.15, 0.30, 0.45,
                                       0.35, 0.20, 0.10, 0.05, 0.02,
                                       0.01, 0.005};

        const DevArray rowOff =
            rt.malloc("row_offsets", (kNodes + 1) * 4);
        const DevArray cols = rt.malloc("cols", graph->numEdges() * 4);
        const DevArray cost = rt.malloc("cost", kNodes * 4);
        const DevArray maskIn = rt.malloc("mask_in", kNodes / 8);
        const DevArray maskOut = rt.malloc("mask_out", kNodes / 8);
        const std::uint64_t maskLines = maskIn.numLines();

        for (int lv = 0; lv < levels; ++lv) {
            const double frac = kFrac[lv % 12];

            KernelDesc k1;
            k1.name = "bfs_kernel1";
            k1.numWgs = kWgs;
            k1.mlp = 6;
            k1.computeCyclesPerWg = 48;
            rt.setAccessMode(k1, rowOff, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, cols, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, maskIn, AccessMode::ReadOnly);
            // cost/maskOut are bypass-only (atomics): untracked.
            k1.trace = [graph, rowOff, cols, cost, maskIn, maskOut,
                        maskLines, lv, frac](int wg, TraceSink &sink) {
                const auto [mlo, mhi] = wgSlice(maskLines, wg, kWgs);
                streamLines(sink, maskIn.id, mlo, mhi, false);
                const std::uint32_t nLo = static_cast<std::uint32_t>(
                    std::uint64_t(graph->numNodes) * wg / kWgs);
                const std::uint32_t nHi = static_cast<std::uint32_t>(
                    std::uint64_t(graph->numNodes) * (wg + 1) / kWgs);
                for (std::uint32_t u = nLo; u < nHi; ++u) {
                    if (!activeNode(u, lv, frac))
                        continue;
                    sink.touch(rowOff.id, u / 16, false);
                    const std::uint32_t eLo = graph->rowOffsets[u];
                    const std::uint32_t eHi = graph->rowOffsets[u + 1];
                    for (std::uint32_t l = eLo / 16; l <= (eHi - 1) / 16;
                         ++l) {
                        sink.touch(cols.id, l, false);
                    }
                    // Visit up to two neighbors: cost + frontier update.
                    for (std::uint32_t e = eLo;
                         e < eHi && e < eLo + 2; ++e) {
                        const std::uint32_t v = graph->cols[e];
                        sink.touchBypass(cost.id, v / 16, true);
                        sink.touchBypass(maskOut.id, v / 512, true);
                    }
                }
            };
            rt.launchKernel(std::move(k1));

            KernelDesc k2;
            k2.name = "bfs_kernel2";
            k2.numWgs = kWgs;
            k2.mlp = 16;
            k2.computeCyclesPerWg = 16;
            rt.setAccessMode(k2, maskIn, AccessMode::ReadWrite);
            k2.trace = [maskIn, maskOut, maskLines](int wg,
                                                    TraceSink &sink) {
                const auto [lo, hi] = wgSlice(maskLines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touchBypass(maskOut.id, l, false);
                    sink.touch(maskIn.id, l, true);
                }
            };
            rt.launchKernel(std::move(k2));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeBfs()
{
    return std::make_unique<Bfs>();
}

} // namespace cpelide
