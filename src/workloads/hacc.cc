/**
 * @file
 * HACC (CORAL-2) — short-force particle kernel sequence.
 *
 * Modeling notes:
 *  - five particle arrays of 3 MB each (~786K particles), streamed by
 *    force/velocity/position kernels over two timesteps;
 *  - high memory-level parallelism: latency from the boundary-sync
 *    refetches is hidden, so CPElide helps little (paper groups HACC
 *    with FW/Gaussian as "MLP hides the misses");
 *  - neighbor-force gathers stay within a small window, so accesses
 *    are nearly affine with a thin halo.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

class Hacc : public Workload
{
  public:
    Info
    info() const override
    {
        return {"HACC", "CORAL-2", true, "~786K particles, 2 steps"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr std::uint64_t kBytes = 3ull * 1024 * 1024;
        constexpr int kWgs = 240;
        const int steps = scaled(2, scale);

        const DevArray pos = rt.malloc("pos", kBytes);
        const DevArray vel = rt.malloc("vel", kBytes);
        const DevArray acc = rt.malloc("acc", kBytes);
        const DevArray mass = rt.malloc("mass", kBytes);
        const DevArray grid = rt.malloc("grid", kBytes);
        const std::uint64_t lines = pos.numLines();

        // Init: affine first touch of the particle arrays.
        {
            KernelDesc init;
            init.name = "hacc_init";
            init.numWgs = kWgs;
            init.mlp = 48;
            for (const DevArray *arr : {&pos, &vel, &acc, &mass, &grid})
                rt.setAccessMode(init, *arr, AccessMode::ReadWrite);
            init.trace = [pos, vel, acc, mass, grid,
                          lines](int wg, TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                for (DsId id :
                     {pos.id, vel.id, acc.id, mass.id, grid.id})
                    streamLines(sink, id, lo, hi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int s = 0; s < steps; ++s) {
            // Force kernel: gather neighbors (windowed), write acc.
            KernelDesc force;
            force.name = "hacc_force";
            force.numWgs = kWgs;
            force.mlp = 48;
            force.computeCyclesPerWg = 512;
            rt.setAccessMode(force, pos, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(force, mass, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(force, grid, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(force, acc, AccessMode::ReadWrite);
            force.trace = [pos, mass, grid, acc, lines](int wg,
                                                        TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                // Window: own slice plus one neighboring line each side.
                const std::uint64_t wlo = lo > 0 ? lo - 1 : 0;
                const std::uint64_t whi = hi < lines ? hi + 1 : lines;
                streamLines(sink, pos.id, wlo, whi, false);
                streamLines(sink, mass.id, lo, hi, false);
                streamLines(sink, grid.id, lo, hi, false);
                streamLines(sink, acc.id, lo, hi, true);
            };
            rt.launchKernel(std::move(force));

            // Velocity update: vel += acc.
            KernelDesc velk;
            velk.name = "hacc_vel";
            velk.numWgs = kWgs;
            velk.mlp = 48;
            velk.computeCyclesPerWg = 64;
            rt.setAccessMode(velk, acc, AccessMode::ReadOnly);
            rt.setAccessMode(velk, vel, AccessMode::ReadWrite);
            velk.trace = [acc, vel, lines](int wg, TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touch(acc.id, l, false);
                    sink.touch(vel.id, l, true);
                }
            };
            rt.launchKernel(std::move(velk));

            // Position update: pos += vel (pos becomes dirty for the
            // next step's windowed gather -> a real producer/consumer
            // halo across chiplets).
            KernelDesc posk;
            posk.name = "hacc_pos";
            posk.numWgs = kWgs;
            posk.mlp = 48;
            posk.computeCyclesPerWg = 64;
            rt.setAccessMode(posk, vel, AccessMode::ReadOnly);
            rt.setAccessMode(posk, pos, AccessMode::ReadWrite);
            posk.trace = [vel, pos, lines](int wg, TraceSink &sink) {
                const auto [lo, hi] = wgSlice(lines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touch(vel.id, l, false);
                    sink.touch(pos.id, l, true);
                }
            };
            rt.launchKernel(std::move(posk));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeHacc()
{
    return std::make_unique<Hacc>();
}

} // namespace cpelide
