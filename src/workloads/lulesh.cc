/**
 * @file
 * LULESH (CORAL-2) — unstructured shock hydrodynamics mini-app.
 *
 * Modeling notes:
 *  - indirect element->node gathers through a read-only connectivity
 *    array (1 MB) that is re-read every kernel: the reuse CPElide
 *    preserves (paper: +16%);
 *  - node coordinates ping-pong: read by everyone through gathers
 *    (RO + Full), written affinely — so CPElide issues releases but
 *    no invalidates;
 *  - the gather window is moderately wide, creating the irregular
 *    remote reads that flood HMG with invalidation traffic (paper:
 *    CPElide beats HMG by 33% here).
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kElems = 64 * 1024;
constexpr std::uint64_t kNodes = 64 * 1024;
constexpr int kWgs = 240;

/** Deterministic gather target for (element, slot). */
inline std::uint64_t
gatherNode(std::uint64_t e, int slot)
{
    std::uint64_t h = (e << 4) ^ static_cast<std::uint64_t>(slot);
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    // 80% within a +/- kNodes/32 window, 20% anywhere.
    if ((h & 0xf) < 13) {
        const std::uint64_t window = kNodes / 32;
        return (e + kNodes + (h % (2 * window)) - window) % kNodes;
    }
    return h % kNodes;
}

class Lulesh : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Lulesh", "CORAL-2", true, "~64K elements, 8 steps"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray conn = rt.malloc("connectivity", kElems * 16);
        const DevArray posA = rt.malloc("pos_a", kNodes * 8);
        const DevArray posB = rt.malloc("pos_b", kNodes * 8);
        const DevArray force = rt.malloc("node_force", kNodes * 8);
        const DevArray evol = rt.malloc("elem_volume", kElems * 8);
        const std::uint64_t nodeLines = posA.numLines();
        const std::uint64_t elemLines = evol.numLines();
        const int steps = scaled(8, scale);

        // Init: affine first touch for the node/element arrays.
        {
            KernelDesc init;
            init.name = "lulesh_init";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, posA, AccessMode::ReadWrite);
            rt.setAccessMode(init, posB, AccessMode::ReadWrite);
            rt.setAccessMode(init, force, AccessMode::ReadWrite);
            rt.setAccessMode(init, evol, AccessMode::ReadWrite);
            init.trace = [posA, posB, force, evol, nodeLines,
                          elemLines](int wg, TraceSink &sink) {
                const auto [nlo, nhi] = wgSlice(nodeLines, wg, kWgs);
                streamLines(sink, posA.id, nlo, nhi, true);
                streamLines(sink, posB.id, nlo, nhi, true);
                streamLines(sink, force.id, nlo, nhi, true);
                const auto [elo, ehi] = wgSlice(elemLines, wg, kWgs);
                streamLines(sink, evol.id, elo, ehi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int s = 0; s < steps; ++s) {
            const DevArray &posIn = (s % 2 == 0) ? posA : posB;
            const DevArray &posOut = (s % 2 == 0) ? posB : posA;

            // CalcVolumeForElems: gather node positions per element.
            KernelDesc vol;
            vol.name = "calc_volume";
            vol.numWgs = kWgs;
            vol.mlp = 8;
            vol.computeCyclesPerWg = 256;
            rt.setAccessMode(vol, conn, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(vol, posIn, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(vol, evol, AccessMode::ReadWrite);
            vol.trace = [conn, posIn, evol, elemLines](
                            int wg, TraceSink &sink) {
                // Iterate at line granularity: one evol line covers 8
                // elements and two connectivity lines.
                const auto [elo, ehi] = wgSlice(elemLines, wg, kWgs);
                for (std::uint64_t l = elo; l < ehi; ++l) {
                    sink.touch(conn.id, 2 * l, false);
                    sink.touch(conn.id, 2 * l + 1, false);
                    for (int slot = 0; slot < 3; ++slot) {
                        const std::uint64_t n = gatherNode(l * 8, slot);
                        sink.touch(posIn.id, n / 8, false);
                    }
                    sink.touch(evol.id, l, true);
                }
            };
            rt.launchKernel(std::move(vol));

            // CalcForceForNodes: own-slice streams.
            KernelDesc fk;
            fk.name = "calc_force";
            fk.numWgs = kWgs;
            fk.mlp = 12;
            fk.computeCyclesPerWg = 192;
            rt.setAccessMode(fk, evol, AccessMode::ReadOnly);
            rt.setAccessMode(fk, force, AccessMode::ReadWrite);
            fk.trace = [evol, force, nodeLines, elemLines](
                           int wg, TraceSink &sink) {
                const auto [elo, ehi] = wgSlice(elemLines, wg, kWgs);
                streamLines(sink, evol.id, elo, ehi, false);
                const auto [nlo, nhi] = wgSlice(nodeLines, wg, kWgs);
                streamLines(sink, force.id, nlo, nhi, true);
            };
            rt.launchKernel(std::move(fk));

            // UpdatePositions: posOut = posIn + dt * force (affine).
            KernelDesc up;
            up.name = "update_pos";
            up.numWgs = kWgs;
            up.mlp = 12;
            up.computeCyclesPerWg = 96;
            rt.setAccessMode(up, posIn, AccessMode::ReadOnly);
            rt.setAccessMode(up, force, AccessMode::ReadOnly);
            rt.setAccessMode(up, posOut, AccessMode::ReadWrite);
            up.trace = [posIn, posOut, force, nodeLines](
                           int wg, TraceSink &sink) {
                const auto [nlo, nhi] = wgSlice(nodeLines, wg, kWgs);
                for (std::uint64_t l = nlo; l < nhi; ++l) {
                    sink.touch(posIn.id, l, false);
                    sink.touch(force.id, l, false);
                    sink.touch(posOut.id, l, true);
                }
            };
            rt.launchKernel(std::move(up));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeLulesh()
{
    return std::make_unique<Lulesh>();
}

} // namespace cpelide
