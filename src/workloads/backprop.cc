/**
 * @file
 * Backprop (Rodinia) — MLP training step, input layer 65536.
 *
 * Modeling notes:
 *  - weights 65536 x 17 floats (~4.4 MB) are read by the forward pass
 *    and read-modified by the weight-adjust pass every iteration: the
 *    inter-kernel reuse CPElide preserves (paper: ~10% gain);
 *  - memory-bound with little ALU work (the paper's "load LDS, few
 *    ALU ops, write back" category).
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

class Backprop : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Backprop", "Rodinia", true, "65536 input units"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr std::uint64_t kIn = 65536;
        constexpr int kWgs = 240;
        const int iterations = scaled(8, scale);

        const DevArray input = rt.malloc("input_units", kIn * 4);
        const DevArray weights = rt.malloc("input_weights",
                                           kIn * 17 * 4);
        const DevArray hidden = rt.malloc("hidden_partial",
                                          kWgs * kLineBytes);
        const std::uint64_t inLines = input.numLines();
        const std::uint64_t wLines = weights.numLines();

        for (int it = 0; it < iterations; ++it) {
            KernelDesc fwd;
            fwd.name = "bpnn_layerforward";
            fwd.numWgs = kWgs;
            fwd.mlp = 16;
            fwd.computeCyclesPerWg = 96;
            fwd.ldsAccessesPerWg = 256;
            rt.setAccessMode(fwd, input, AccessMode::ReadOnly);
            rt.setAccessMode(fwd, weights, AccessMode::ReadOnly);
            rt.setAccessMode(fwd, hidden, AccessMode::ReadWrite);
            const std::uint64_t hLines = hidden.numLines();
            fwd.trace = [input, weights, hidden, inLines, wLines,
                         hLines](int wg, TraceSink &sink) {
                const auto [ilo, ihi] = wgSlice(inLines, wg, kWgs);
                streamLines(sink, input.id, ilo, ihi, false);
                const auto [wlo, whi] = wgSlice(wLines, wg, kWgs);
                streamLines(sink, weights.id, wlo, whi, false);
                sink.touch(hidden.id, hLines * wg / kWgs, true);
            };
            rt.launchKernel(std::move(fwd));

            KernelDesc adj;
            adj.name = "bpnn_adjust_weights";
            adj.numWgs = kWgs;
            adj.mlp = 16;
            adj.computeCyclesPerWg = 64;
            rt.setAccessMode(adj, input, AccessMode::ReadOnly);
            rt.setAccessMode(adj, weights, AccessMode::ReadWrite);
            adj.trace = [input, weights, inLines, wLines](int wg,
                                                          TraceSink &sink) {
                const auto [ilo, ihi] = wgSlice(inLines, wg, kWgs);
                streamLines(sink, input.id, ilo, ihi, false);
                const auto [wlo, whi] = wgSlice(wLines, wg, kWgs);
                for (std::uint64_t l = wlo; l < whi; ++l) {
                    sink.touch(weights.id, l, false);
                    sink.touch(weights.id, l, true);
                }
            };
            rt.launchKernel(std::move(adj));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeBackprop()
{
    return std::make_unique<Backprop>();
}

} // namespace cpelide
