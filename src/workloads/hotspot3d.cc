/**
 * @file
 * Hotspot3D (Rodinia) — 3D thermal stencil, 256x256x8, memory-bound.
 *
 * Modeling notes:
 *  - three 2 MB arrays (temp ping-pong + read-only power): the whole
 *    footprint sits comfortably in the aggregate L2, and the kernel
 *    has little ALU work — the best case for CPElide (paper: +37%);
 *  - per iteration CPElide issues only releases (the halo rows are
 *    consumed remotely) but no invalidates, so all clean data stays
 *    resident; the baseline flushes *and* invalidates everything;
 *  - layer-major layout: a WG owns a row band across all 8 layers.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kDim = 256;
constexpr std::uint64_t kLayers = 8;
constexpr std::uint64_t kRows = kDim * kLayers; // row-major, all layers
constexpr std::uint64_t kRowLines = kDim * 4 / kLineBytes; // 16
constexpr int kWgs = 256;

class Hotspot3D : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Hotspot3D", "Rodinia", true,
                "256x256x8 grid, 14 iterations"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const std::uint64_t bytes = kRows * kDim * 4;
        const DevArray tempA = rt.malloc("temp_a", bytes);
        const DevArray tempB = rt.malloc("temp_b", bytes);
        const DevArray power = rt.malloc("power", bytes);
        const int iterations = scaled(14, scale);

        // Init kernel: device-side initialization performs the first
        // touch, giving every array an affine (page-aligned) placement
        // and teaching the CP's home model the same.
        {
            KernelDesc init;
            init.name = "hotspot3d_init";
            init.numWgs = kWgs;
            init.mlp = 32;
            rt.setAccessMode(init, tempA, AccessMode::ReadWrite);
            rt.setAccessMode(init, tempB, AccessMode::ReadWrite);
            rt.setAccessMode(init, power, AccessMode::ReadWrite);
            init.trace = [tempA, tempB, power](int wg, TraceSink &sink) {
                const std::uint64_t lo =
                    kRows * kRowLines * std::uint64_t(wg) / kWgs;
                const std::uint64_t hi =
                    kRows * kRowLines * std::uint64_t(wg + 1) / kWgs;
                streamLines(sink, tempA.id, lo, hi, true);
                streamLines(sink, tempB.id, lo, hi, true);
                streamLines(sink, power.id, lo, hi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int it = 0; it < iterations; ++it) {
            const DevArray &src = (it % 2 == 0) ? tempA : tempB;
            const DevArray &dst = (it % 2 == 0) ? tempB : tempA;

            KernelDesc k;
            k.name = "hotspot3d_step";
            k.numWgs = kWgs;
            k.mlp = 16;
            k.computeCyclesPerWg = 192;
            rt.setAccessMode(k, src, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k, power, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k, dst, AccessMode::ReadWrite);
            k.trace = [src, dst, power](int wg, TraceSink &sink) {
                const std::uint64_t rLo = std::uint64_t(wg) * kRows / kWgs;
                const std::uint64_t rHi =
                    std::uint64_t(wg + 1) * kRows / kWgs;
                // 7-point stencil: own rows + one halo row either side
                // (the z-neighbors fall within the band for this
                // layout; the halo models the cross-WG faces).
                stencilRows(sink, src.id, kRowLines, kRows, rLo, rHi,
                            false);
                streamLines(sink, power.id, rLo * kRowLines,
                            rHi * kRowLines, false);
                stencilRows(sink, dst.id, kRowLines, kRows, rLo, rHi,
                            true);
            };
            rt.launchKernel(std::move(k));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeHotspot3D()
{
    return std::make_unique<Hotspot3D>();
}

} // namespace cpelide
