/**
 * @file
 * Color-max (Pannotia) — greedy graph coloring, AK.gr-like input.
 *
 * Modeling notes:
 *  - the full adjacency (RO) is swept every iteration over the
 *    still-uncolored nodes: large read-only reuse that CPElide keeps
 *    in the L2s by eliding acquires (paper: +16%);
 *  - neighbor color reads are input-dependent and low-locality, so
 *    the first-touch policy leaves many remote accesses — the regime
 *    where HMG's remote caching floods its directory and invalidation
 *    traffic (paper: CPElide ~26% faster than HMG on graph suites).
 */

#include "workloads/suite.hh"

#include "workloads/graph.hh"
#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

class ColorMax : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Color-max", "Pannotia", true, "AK.gr (~64K nodes)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr std::uint32_t kNodes = 64 * 1024;
        auto graph = CsrGraph::synthesize(kNodes, 12, 0.4, 0xc01);
        constexpr int kWgs = 240;
        const int iterations = scaled(8, scale);

        const DevArray rowOff =
            rt.malloc("row_offsets", (kNodes + 1) * 4);
        const DevArray cols = rt.malloc("cols", graph->numEdges() * 4);
        const DevArray colors = rt.malloc("colors", kNodes * 4);
        const DevArray maxcw = rt.malloc("max_cw", kNodes * 4);
        const std::uint64_t nodeLines = colors.numLines();

        // Initialization kernel (real apps memset these): performs the
        // first touch, giving colors/maxcw an affine page placement.
        {
            KernelDesc init;
            init.name = "init_colors";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, colors, AccessMode::ReadWrite);
            rt.setAccessMode(init, maxcw, AccessMode::ReadWrite);
            init.trace = [colors, maxcw, nodeLines](int wg,
                                                    TraceSink &sink) {
                const auto [lo, hi] = wgSlice(nodeLines, wg, kWgs);
                streamLines(sink, colors.id, lo, hi, true);
                streamLines(sink, maxcw.id, lo, hi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int it = 0; it < iterations; ++it) {
            // Fraction of nodes still uncolored decays geometrically.
            double frac = 1.0;
            for (int j = 0; j < it; ++j)
                frac *= 0.8;

            KernelDesc k1;
            k1.name = "color_max1";
            k1.numWgs = kWgs;
            k1.mlp = 6;
            k1.computeCyclesPerWg = 48;
            rt.setAccessMode(k1, rowOff, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, cols, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k1, colors, AccessMode::ReadOnly,
                             RangeKind::Full);
            // maxcw[u] is written for the WG's own nodes: affine.
            rt.setAccessMode(k1, maxcw, AccessMode::ReadWrite);
            const std::uint64_t mLines = maxcw.numLines();
            k1.trace = [graph, rowOff, cols, colors, maxcw, it, frac,
                        mLines](int wg, TraceSink &sink) {
                // Dense per-WG output slice (line-granular, matching
                // the affine annotation).
                const auto [mlo, mhi] = wgSlice(mLines, wg, kWgs);
                streamLines(sink, maxcw.id, mlo, mhi, true);
                const std::uint32_t nLo = static_cast<std::uint32_t>(
                    std::uint64_t(graph->numNodes) * wg / kWgs);
                const std::uint32_t nHi = static_cast<std::uint32_t>(
                    std::uint64_t(graph->numNodes) * (wg + 1) / kWgs);
                for (std::uint32_t u = nLo; u < nHi; ++u) {
                    // Deterministic "still uncolored" subset.
                    std::uint64_t h = (std::uint64_t(u) << 8) ^
                                      (std::uint64_t(it) * 0x9e3779b9);
                    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
                    if (static_cast<double>(h & 0xffffff) >=
                        frac * static_cast<double>(0x1000000)) {
                        continue;
                    }
                    sink.touch(rowOff.id, u / 16, false);
                    const std::uint32_t eLo = graph->rowOffsets[u];
                    const std::uint32_t eHi = graph->rowOffsets[u + 1];
                    for (std::uint32_t l = eLo / 16;
                         l <= (eHi - 1) / 16; ++l) {
                        sink.touch(cols.id, l, false);
                    }
                    // Read up to three neighbors' colors (scattered).
                    for (std::uint32_t e = eLo;
                         e < eHi && e < eLo + 3; ++e) {
                        sink.touch(colors.id, graph->cols[e] / 16,
                                   false);
                    }
                }
            };
            rt.launchKernel(std::move(k1));

            KernelDesc k2;
            k2.name = "color_max2";
            k2.numWgs = kWgs;
            k2.mlp = 16;
            k2.computeCyclesPerWg = 16;
            rt.setAccessMode(k2, maxcw, AccessMode::ReadOnly);
            rt.setAccessMode(k2, colors, AccessMode::ReadWrite);
            k2.trace = [colors, maxcw, nodeLines](int wg,
                                                  TraceSink &sink) {
                const auto [lo, hi] = wgSlice(nodeLines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touch(maxcw.id, l, false);
                    sink.touch(colors.id, l, true);
                }
            };
            rt.launchKernel(std::move(k2));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeColorMax()
{
    return std::make_unique<ColorMax>();
}

} // namespace cpelide
