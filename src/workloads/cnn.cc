/**
 * @file
 * CNN (DNNMark) — Conv + Pool + FC inference, 128x128x3, batch 4.
 *
 * Modeling notes:
 *  - convolution dominates and is compute-bound (large per-WG ALU
 *    cost, heavy LDS tiling): synchronization overheads are noise,
 *    so all three configurations perform alike (paper);
 *  - layer outputs are consumed exactly once by the next layer: no
 *    inter-kernel reuse to preserve (low-reuse group).
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

class Cnn : public Workload
{
  public:
    Info
    info() const override
    {
        return {"CNN", "DNNMark", false, "128x128x3, BS:4"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        constexpr int kWgs = 240;
        const int batches = scaled(2, scale);

        const DevArray image = rt.malloc("image", 4ull * 128 * 128 * 3 * 4);
        const DevArray convW = rt.malloc("conv_filters", 64ull * 27 * 4);
        const DevArray convOut = rt.malloc("conv_out", 2ull << 20);
        const DevArray poolOut = rt.malloc("pool_out",
                                           convOut.bytes / 4);
        const DevArray fcW = rt.malloc("fc_weights", 1ull << 20);
        const DevArray fcOut = rt.malloc("fc_out", 64 * 1024);

        for (int b = 0; b < batches; ++b) {
            KernelDesc conv;
            conv.name = "conv2d";
            conv.numWgs = kWgs;
            conv.mlp = 8;
            conv.computeCyclesPerWg = 9000; // compute-bound
            conv.ldsAccessesPerWg = 4096;
            rt.setAccessMode(conv, image, AccessMode::ReadOnly);
            rt.setAccessMode(conv, convW, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(conv, convOut, AccessMode::ReadWrite);
            conv.trace = [image, convW, convOut](int wg,
                                                 TraceSink &sink) {
                const auto [ilo, ihi] =
                    wgSlice(image.numLines(), wg, kWgs);
                streamLines(sink, image.id, ilo, ihi, false);
                streamLines(sink, convW.id, 0, convW.numLines(), false);
                const auto [olo, ohi] =
                    wgSlice(convOut.numLines(), wg, kWgs);
                streamLines(sink, convOut.id, olo, ohi, true);
            };
            rt.launchKernel(std::move(conv));

            KernelDesc pool;
            pool.name = "maxpool";
            pool.numWgs = kWgs;
            pool.mlp = 16;
            pool.computeCyclesPerWg = 256;
            rt.setAccessMode(pool, convOut, AccessMode::ReadOnly);
            rt.setAccessMode(pool, poolOut, AccessMode::ReadWrite);
            pool.trace = [convOut, poolOut](int wg, TraceSink &sink) {
                const auto [ilo, ihi] =
                    wgSlice(convOut.numLines(), wg, kWgs);
                streamLines(sink, convOut.id, ilo, ihi, false);
                const auto [olo, ohi] =
                    wgSlice(poolOut.numLines(), wg, kWgs);
                streamLines(sink, poolOut.id, olo, ohi, true);
            };
            rt.launchKernel(std::move(pool));

            KernelDesc fc;
            fc.name = "fully_connected";
            fc.numWgs = kWgs;
            fc.mlp = 12;
            fc.computeCyclesPerWg = 2000;
            fc.ldsAccessesPerWg = 1024;
            rt.setAccessMode(fc, poolOut, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(fc, fcW, AccessMode::ReadOnly);
            rt.setAccessMode(fc, fcOut, AccessMode::ReadWrite);
            fc.trace = [poolOut, fcW, fcOut](int wg, TraceSink &sink) {
                const auto [plo, phi] =
                    wgSlice(poolOut.numLines(), wg, kWgs);
                streamLines(sink, poolOut.id, plo, phi, false);
                const auto [wlo, whi] =
                    wgSlice(fcW.numLines(), wg, kWgs);
                streamLines(sink, fcW.id, wlo, whi, false);
                const auto [olo, ohi] =
                    wgSlice(fcOut.numLines(), wg, kWgs);
                streamLines(sink, fcOut.id, olo, ohi, true);
            };
            rt.launchKernel(std::move(fc));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeCnn()
{
    return std::make_unique<Cnn>();
}

} // namespace cpelide
