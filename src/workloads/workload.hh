/**
 * @file
 * Workload interface and registry.
 *
 * Each of the paper's 24 Table-II applications is reproduced as a
 * synthetic kernel-trace generator: the same kernel structure (count,
 * iteration shape), data structures, footprint-to-L2 ratio, access
 * pattern, compute/memory balance, and access-mode annotations as the
 * real application, at a scale the simulator covers in seconds. The
 * generators are deterministic: every configuration replays the exact
 * same trace, so Baseline/HMG/CPElide comparisons are apples to
 * apples.
 */

#ifndef CPELIDE_WORKLOADS_WORKLOAD_HH
#define CPELIDE_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/runtime.hh"

namespace cpelide
{

/** A Table-II application. */
class Workload
{
  public:
    struct Info
    {
        std::string name;
        /** Benchmark suite of the original ("Rodinia", "Pannotia"...). */
        std::string suite;
        /** Paper grouping: moderate-to-high inter-kernel reuse? */
        bool highReuse = false;
        /** Input configuration note (Table II column 2 analogue). */
        std::string input;
    };

    virtual ~Workload() = default;

    virtual Info info() const = 0;

    /**
     * Enqueue the whole application on @p rt.
     * @param scale in (0, 1]: shrinks iteration counts (not
     *        footprints) for quick runs; 1.0 reproduces the paper's
     *        kernel counts.
     */
    virtual void build(Runtime &rt, double scale) const = 0;
};

using WorkloadFactory =
    std::function<std::unique_ptr<Workload>()>;

/** All 24 Table-II workloads, in the paper's listing order. */
const std::vector<WorkloadFactory> &allWorkloadFactories();

/** Instantiate a workload by name; throws FatalError if unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** Names of all workloads, paper order. */
std::vector<std::string> workloadNames();

/** Scale iteration counts like build()'s scale, never below 1. */
inline int
scaled(int iterations, double scale)
{
    const int n = static_cast<int>(iterations * scale);
    return n < 1 ? 1 : n;
}

} // namespace cpelide

#endif // CPELIDE_WORKLOADS_WORKLOAD_HH
