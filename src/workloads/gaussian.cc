/**
 * @file
 * Gaussian (Rodinia) — Gaussian elimination, 256x256 matrix.
 *
 * Modeling notes:
 *  - 255 row-elimination steps x 2 kernels (Fan1 scales the pivot
 *    column, Fan2 updates the trailing submatrix) = 510 dynamic
 *    kernels — the paper's maximum dynamic-kernel count;
 *  - tiny working set (256 KB) and short kernels: per-kernel CP and
 *    synchronization overheads dominate and ample MLP hides the
 *    misses, so CPElide is roughly performance-neutral here (paper);
 *  - WGs map to absolute rows, keeping each chiplet's slice stable.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kN = 256;
constexpr std::uint64_t kRowLines = kN * 4 / kLineBytes; // 16 lines/row
constexpr int kWgs = 64; // 4 rows per WG

class Gaussian : public Workload
{
  public:
    Info
    info() const override
    {
        return {"Gaussian", "Rodinia", true, "256x256 matrix"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray a = rt.malloc("a", kN * kN * 4);
        const DevArray m = rt.malloc("m", kN * kN * 4);
        const DevArray b = rt.malloc("b", kN * 4);
        const int steps = scaled(static_cast<int>(kN) - 1, scale);

        // First touch: row-partitioned homes for both matrices.
        {
            KernelDesc init;
            init.name = "gaussian_init";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, a, AccessMode::ReadWrite);
            rt.setAccessMode(init, m, AccessMode::ReadWrite);
            init.trace = [a, m](int wg, TraceSink &sink) {
                const auto [lo, hi] =
                    wgSlice(kN * kRowLines, wg, kWgs);
                streamLines(sink, a.id, lo, hi, true);
                streamLines(sink, m.id, lo, hi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int t = 0; t < steps; ++t) {
            const std::uint64_t piv = static_cast<std::uint64_t>(t);

            // Fan1: m[i][t] = a[i][t] / a[t][t] for rows i > t.
            KernelDesc fan1;
            fan1.name = "fan1";
            fan1.numWgs = kWgs;
            fan1.mlp = 16;
            fan1.computeCyclesPerWg = 32;
            rt.setAccessMode(fan1, a, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(fan1, m, AccessMode::ReadWrite);
            fan1.trace = [a, m, piv](int wg, TraceSink &sink) {
                const std::uint64_t rLo = std::uint64_t(wg) * kN / kWgs;
                const std::uint64_t rHi =
                    std::uint64_t(wg + 1) * kN / kWgs;
                const std::uint64_t pivLine = piv * 4 / kLineBytes;
                for (std::uint64_t r = std::max(rLo, piv + 1); r < rHi;
                     ++r) {
                    sink.touch(a.id, r * kRowLines + pivLine, false);
                    sink.touch(m.id, r * kRowLines + pivLine, true);
                }
            };
            rt.launchKernel(std::move(fan1));

            // Fan2: trailing submatrix update using the pivot row.
            KernelDesc fan2;
            fan2.name = "fan2";
            fan2.numWgs = kWgs;
            fan2.mlp = 16;
            fan2.computeCyclesPerWg = 64;
            rt.setAccessMode(fan2, m, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(fan2, a, AccessMode::ReadWrite,
                             RangeKind::Full);
            rt.setAccessMode(fan2, b, AccessMode::ReadWrite);
            const std::uint64_t bLines = b.numLines();
            fan2.trace = [a, m, b, piv, bLines](int wg,
                                                TraceSink &sink) {
                const std::uint64_t rLo = std::uint64_t(wg) * kN / kWgs;
                const std::uint64_t rHi =
                    std::uint64_t(wg + 1) * kN / kWgs;
                const std::uint64_t cLine = piv * 4 / kLineBytes;
                // RHS update: one line in the WG's affine slice.
                sink.touch(b.id, bLines * wg / kWgs, true);
                // Everyone reads the pivot row's trailing part.
                for (std::uint64_t l = cLine; l < kRowLines; ++l)
                    sink.touch(a.id, piv * kRowLines + l, false);
                for (std::uint64_t r = std::max(rLo, piv + 1); r < rHi;
                     ++r) {
                    sink.touch(m.id, r * kRowLines + cLine, false);
                    for (std::uint64_t l = cLine; l < kRowLines; ++l)
                        sink.touch(a.id, r * kRowLines + l, true);
                }
            };
            rt.launchKernel(std::move(fan2));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeGaussian()
{
    return std::make_unique<Gaussian>();
}

} // namespace cpelide
