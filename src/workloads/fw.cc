/**
 * @file
 * FW (Pannotia) — blocked Floyd-Warshall all-pairs shortest paths.
 *
 * Modeling notes:
 *  - 512x512 dense distance matrix (1 MB), 64x64 blocks, three kernels
 *    per block step (diagonal, row/col panels, trailing update);
 *  - the trailing update reads a pivot row panel and a pivot column
 *    panel; the column panel is strided across the whole matrix, so
 *    under the row-partitioned first touch it is mostly remote —
 *    plenty of memory-level parallelism hides the misses, which is why
 *    the paper sees little CPElide gain here (and why HMG's remote
 *    caching of low-locality panels hurts it);
 *  - WGs map to absolute block rows, so each chiplet's matrix slice is
 *    stable across kernels and steps.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kN = 512;           // nodes
constexpr std::uint64_t kBlock = 64;        // block edge
constexpr std::uint64_t kBlocks = kN / kBlock;
constexpr std::uint64_t kRowLines = kN * 4 / kLineBytes; // 32 lines/row
constexpr int kWgs = static_cast<int>(kBlocks); // one WG per block row

/** Touch a kBlock x kBlock tile starting at (row, col). */
void
touchBlock(TraceSink &sink, DsId ds, std::uint64_t row, std::uint64_t col,
           bool write)
{
    const std::uint64_t colLine = col * 4 / kLineBytes;
    const std::uint64_t colLines = kBlock * 4 / kLineBytes;
    for (std::uint64_t r = row; r < row + kBlock; ++r) {
        for (std::uint64_t l = 0; l < colLines; ++l)
            sink.touch(ds, r * kRowLines + colLine + l, write);
    }
}

class Fw : public Workload
{
  public:
    Info
    info() const override
    {
        return {"FW", "Pannotia", true, "512 nodes dense (512_65536.gr)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const DevArray dist = rt.malloc("dist", kN * kN * 4);
        const int steps = scaled(static_cast<int>(kBlocks), scale);

        // First touch: one WG per block row -> row-partitioned homes.
        {
            KernelDesc init;
            init.name = "fw_init";
            init.numWgs = kWgs;
            init.mlp = 24;
            rt.setAccessMode(init, dist, AccessMode::ReadWrite);
            init.trace = [dist](int wg, TraceSink &sink) {
                const std::uint64_t r0 = std::uint64_t(wg) * kBlock;
                streamLines(sink, dist.id, r0 * kRowLines,
                            (r0 + kBlock) * kRowLines, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int k = 0; k < steps; ++k) {
            const std::uint64_t kb = static_cast<std::uint64_t>(k);

            // Phase 1+2 merged: pivot row/col panels (the pivot block
            // row WG updates the row panel; every WG updates its own
            // block in the pivot column).
            KernelDesc panel;
            panel.name = "fw_panel";
            panel.numWgs = kWgs;
            panel.mlp = 12;
            panel.computeCyclesPerWg = 128;
            // Reads and writes cross block rows (the pivot row is read
            // by everyone): conservative full-range annotation.
            rt.setAccessMode(panel, dist, AccessMode::ReadWrite,
                             RangeKind::Full);
            panel.trace = [dist, kb](int wg, TraceSink &sink) {
                const std::uint64_t r0 = std::uint64_t(wg) * kBlock;
                if (std::uint64_t(wg) == kb) {
                    // Pivot block row: update the whole row panel
                    // (includes the pivot block itself).
                    streamLines(sink, dist.id, r0 * kRowLines,
                                (r0 + kBlock) * kRowLines, true);
                } else {
                    // Update own block in the pivot column panel (the
                    // pivot-block read is served from the previous
                    // step's copy; keeping it out of the trace avoids
                    // an in-kernel race at line granularity).
                    touchBlock(sink, dist.id, r0, kb * kBlock, true);
                }
            };
            rt.launchKernel(std::move(panel));

            // Phase 3: trailing update — each WG updates its block row
            // using the pivot row panel and its own pivot-column block.
            KernelDesc update;
            update.name = "fw_update";
            update.numWgs = kWgs;
            update.mlp = 12;
            update.computeCyclesPerWg = 256;
            rt.setAccessMode(update, dist, AccessMode::ReadWrite,
                             RangeKind::Full);
            update.trace = [dist, kb](int wg, TraceSink &sink) {
                if (std::uint64_t(wg) == kb)
                    return; // the pivot row panel is not updated
                const std::uint64_t r0 = std::uint64_t(wg) * kBlock;
                // Read the pivot row panel (remote for most WGs).
                streamLines(sink, dist.id, kb * kBlock * kRowLines,
                            (kb * kBlock + kBlock) * kRowLines, false);
                // Read own pivot-column block, update own block row.
                touchBlock(sink, dist.id, r0, kb * kBlock, false);
                streamLines(sink, dist.id, r0 * kRowLines,
                            (r0 + kBlock) * kRowLines, true);
            };
            rt.launchKernel(std::move(update));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeFw()
{
    return std::make_unique<Fw>();
}

} // namespace cpelide
