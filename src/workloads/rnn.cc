/**
 * @file
 * RNN-GRU / RNN-LSTM (DeepBench) — recurrent cell inference.
 *
 * Modeling notes (each RNN has the two Table-II input configs):
 *  - per timestep: one fused gate GEMM (reads the whole weight
 *    matrix), a gate nonlinearity, and a state update;
 *  - the GEMM uses persistent tile scheduling (the paper cites
 *    Persistent RNNs): each WG re-reads the same weight rows every
 *    timestep, so weight reuse is chiplet-local and CPElide preserves
 *    it. The shared hidden-state vector, however, is read by every
 *    chiplet each timestep; HMG caches those remote reads while
 *    CPElide/baseline do not — the paper's "HMG slightly outperforms
 *    (3%) CPElide for the RNNs";
 *  - hidden state and gate buffers ping-pong with producer-consumer
 *    reuse within 4 kernels, the deepest reuse distance the paper's
 *    table-sizing analysis found.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

struct RnnShape
{
    const char *name;
    int gates;        //!< 3 for GRU, 4 for LSTM
    int hidden;       //!< hidden size
    int batch;        //!< batch size
    int timesteps;    //!< sequence length
    const char *input;
};

class Rnn : public Workload
{
  public:
    explicit Rnn(const RnnShape &shape) : _s(shape) {}

    Info
    info() const override
    {
        return {_s.name, "DeepBench", true, _s.input};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const std::uint64_t wBytes = std::uint64_t(_s.gates) *
                                     _s.hidden * _s.hidden * 4;
        const std::uint64_t gBytes =
            std::uint64_t(_s.gates) * _s.batch * _s.hidden * 4;
        const std::uint64_t hBytes = std::uint64_t(_s.batch) *
                                     _s.hidden * 4;
        constexpr int kWgs = 64;

        const DevArray w = rt.malloc("weights", wBytes);
        const DevArray gates = rt.malloc("gate_buf", gBytes);
        const DevArray hA = rt.malloc("h_a", hBytes);
        const DevArray hB = rt.malloc("h_b", hBytes);
        const DevArray x = rt.malloc("x", hBytes);
        const std::uint64_t wLines = w.numLines();
        const std::uint64_t gLines = gates.numLines();
        const std::uint64_t hLines = hA.numLines();
        const int steps = scaled(_s.timesteps, scale);

        // Init: affine first touch of the state/gate buffers.
        {
            KernelDesc init;
            init.name = "rnn_init";
            init.numWgs = kWgs;
            init.mlp = 32;
            rt.setAccessMode(init, hA, AccessMode::ReadWrite);
            rt.setAccessMode(init, hB, AccessMode::ReadWrite);
            rt.setAccessMode(init, x, AccessMode::ReadWrite);
            rt.setAccessMode(init, gates, AccessMode::ReadWrite);
            init.trace = [hA, hB, x, gates, hLines,
                          gLines](int wg, TraceSink &sink) {
                const auto [hlo, hhi] = wgSlice(hLines, wg, kWgs);
                streamLines(sink, hA.id, hlo, hhi, true);
                streamLines(sink, hB.id, hlo, hhi, true);
                streamLines(sink, x.id, hlo, hhi, true);
                const auto [glo, ghi] = wgSlice(gLines, wg, kWgs);
                streamLines(sink, gates.id, glo, ghi, true);
            };
            rt.launchKernel(std::move(init));
        }

        for (int t = 0; t < steps; ++t) {
            const DevArray &hIn = (t % 2 == 0) ? hA : hB;
            const DevArray &hOut = (t % 2 == 0) ? hB : hA;

            // Fused gate GEMM: gates = W x [h, x]. Persistent tile
            // scheduling: each WG owns the same weight rows every
            // timestep (affine), while h/x are read by everyone.
            KernelDesc gemm;
            gemm.name = "gate_gemm";
            gemm.numWgs = kWgs;
            gemm.mlp = 20;
            gemm.computeCyclesPerWg = 2400;
            gemm.ldsAccessesPerWg = 3072;
            rt.setAccessMode(gemm, w, AccessMode::ReadOnly);
            rt.setAccessMode(gemm, hIn, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(gemm, x, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(gemm, gates, AccessMode::ReadWrite);
            gemm.trace = [w, gates, hIn, x, wLines, gLines,
                          hLines](int wg, TraceSink &sink) {
                const auto [wlo, whi] = wgSlice(wLines, wg, kWgs);
                streamLines(sink, w.id, wlo, whi, false);
                streamLines(sink, hIn.id, 0, hLines, false);
                streamLines(sink, x.id, 0, hLines, false);
                const auto [glo, ghi] = wgSlice(gLines, wg, kWgs);
                streamLines(sink, gates.id, glo, ghi, true);
            };
            rt.launchKernel(std::move(gemm));

            // Gate nonlinearities (affine elementwise).
            KernelDesc act;
            act.name = "gate_activation";
            act.numWgs = kWgs;
            act.mlp = 16;
            act.computeCyclesPerWg = 128;
            rt.setAccessMode(act, gates, AccessMode::ReadWrite);
            act.trace = [gates, gLines](int wg, TraceSink &sink) {
                const auto [lo, hi] = wgSlice(gLines, wg, kWgs);
                for (std::uint64_t l = lo; l < hi; ++l) {
                    sink.touch(gates.id, l, false);
                    sink.touch(gates.id, l, true);
                }
            };
            rt.launchKernel(std::move(act));

            // State update: hOut = f(gates, hIn) (affine elementwise).
            KernelDesc upd;
            upd.name = "state_update";
            upd.numWgs = kWgs;
            upd.mlp = 16;
            upd.computeCyclesPerWg = 96;
            rt.setAccessMode(upd, gates, AccessMode::ReadOnly);
            rt.setAccessMode(upd, hIn, AccessMode::ReadOnly);
            rt.setAccessMode(upd, hOut, AccessMode::ReadWrite);
            upd.trace = [gates, hIn, hOut, gLines,
                         hLines](int wg, TraceSink &sink) {
                const auto [glo, ghi] = wgSlice(gLines, wg, kWgs);
                streamLines(sink, gates.id, glo, ghi, false);
                const auto [hlo, hhi] = wgSlice(hLines, wg, kWgs);
                for (std::uint64_t l = hlo; l < hhi; ++l) {
                    sink.touch(hIn.id, l, false);
                    sink.touch(hOut.id, l, true);
                }
            };
            rt.launchKernel(std::move(upd));
        }
    }

  private:
    RnnShape _s;
};

} // namespace

std::unique_ptr<Workload>
makeRnnGruSmall()
{
    return std::make_unique<Rnn>(RnnShape{
        "RNN-GRU-s", 3, 256, 4, 8, "BS:4, TS:2, Hidden: 256"});
}

std::unique_ptr<Workload>
makeRnnGruLarge()
{
    return std::make_unique<Rnn>(RnnShape{
        "RNN-GRU-l", 3, 512, 16, 12, "BS:16, TS:4, Hidden: 512"});
}

std::unique_ptr<Workload>
makeRnnLstmSmall()
{
    return std::make_unique<Rnn>(RnnShape{
        "RNN-LSTM-s", 4, 256, 4, 8, "BS:4, TS:2, Hidden: 256"});
}

std::unique_ptr<Workload>
makeRnnLstmLarge()
{
    return std::make_unique<Rnn>(RnnShape{
        "RNN-LSTM-l", 4, 512, 16, 12, "BS:16, TS:4, Hidden: 512"});
}

} // namespace cpelide
