/**
 * @file
 * B+Tree (Rodinia) — batched key lookups (k1) and range queries (k2).
 *
 * Modeling notes:
 *  - a 16 MB node pool chased pointer-by-pointer (mlp=2: dependent
 *    loads), two kernels, no inter-kernel reuse: the paper's
 *    "Baseline ~= CPElide" low-reuse case;
 *  - the random node visits touch regions all over memory, thrashing
 *    HMG's 4-lines-per-entry directory — directory evictions and
 *    their back-invalidations put HMG ~15% behind Baseline here.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kPoolBytes = 16ull * 1024 * 1024;
constexpr int kWgs = 240;
constexpr int kQueriesPerWg = 96;
constexpr int kDepth = 6;

/** Deterministic node line for (query, level, salt). */
inline std::uint64_t
nodeLine(std::uint64_t query, int level, std::uint64_t salt,
         std::uint64_t pool_lines)
{
    std::uint64_t h = (query << 6) ^ (std::uint64_t(level) << 2) ^ salt;
    h = (h ^ (h >> 33)) * 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    return h % pool_lines;
}

class Btree : public Workload
{
  public:
    Info
    info() const override
    {
        return {"BTree", "Rodinia", false, "mil.txt (~1M keys)"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        (void)scale; // two kernels regardless
        const DevArray pool = rt.malloc("node_pool", kPoolBytes);
        const DevArray keys = rt.malloc("query_keys",
                                        kWgs * kQueriesPerWg * 8);
        const DevArray out = rt.malloc("results",
                                       kWgs * kQueriesPerWg * 8);
        const std::uint64_t poolLines = pool.numLines();
        const std::uint64_t keyLines = keys.numLines();

        for (int kernel = 0; kernel < 2; ++kernel) {
            KernelDesc k;
            k.name = kernel == 0 ? "findK" : "findRangeK";
            k.numWgs = kWgs;
            k.mlp = 2; // dependent pointer chasing
            k.computeCyclesPerWg = 128;
            rt.setAccessMode(k, pool, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(k, keys, AccessMode::ReadOnly);
            rt.setAccessMode(k, out, AccessMode::ReadWrite);
            const std::uint64_t salt = kernel == 0 ? 0x1111 : 0x2222;
            const int visits = kernel == 0 ? 1 : 2; // range: 2 leaves
            k.trace = [pool, keys, out, poolLines, keyLines, salt,
                       visits](int wg, TraceSink &sink) {
                const auto [klo, khi] = wgSlice(keyLines, wg, kWgs);
                streamLines(sink, keys.id, klo, khi, false);
                for (int q = 0; q < kQueriesPerWg; ++q) {
                    const std::uint64_t query =
                        std::uint64_t(wg) * kQueriesPerWg + q;
                    for (int lvl = 0; lvl < kDepth; ++lvl) {
                        sink.touch(pool.id,
                                   nodeLine(query, lvl, salt, poolLines),
                                   false);
                    }
                    for (int v = 1; v < visits; ++v) {
                        sink.touch(pool.id,
                                   nodeLine(query, kDepth + v, salt,
                                            poolLines),
                                   false);
                    }
                }
                streamLines(sink, out.id, klo, khi, true);
            };
            rt.launchKernel(std::move(k));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeBtree()
{
    return std::make_unique<Btree>();
}

} // namespace cpelide
