/**
 * @file
 * DWT2D (Rodinia) — multi-level 2D discrete wavelet transform.
 *
 * Modeling notes:
 *  - 1024x1024 image, four levels x two passes (rows, then columns);
 *    each level consumes the previous level's quarter-size output
 *    exactly once: minimal inter-kernel reuse (low-reuse group);
 *  - the column pass reads the row-pass output column-strided across
 *    the whole row partition (annotated Full), so half the traffic is
 *    remote — at 2 chiplets fewer remote targets help HMG, matching
 *    the paper's 2-chiplet observation.
 */

#include "workloads/suite.hh"

#include "workloads/patterns.hh"

namespace cpelide
{

namespace
{

constexpr std::uint64_t kDim = 1024;
constexpr int kWgs = 128;

class Dwt2d : public Workload
{
  public:
    Info
    info() const override
    {
        return {"DWT2D", "Rodinia", false, "1024x1024 image, 4 levels"};
    }

    void
    build(Runtime &rt, double scale) const override
    {
        const int levels = scaled(4, scale);
        const DevArray src = rt.malloc("image", kDim * kDim * 4);
        const DevArray tmp = rt.malloc("row_pass", kDim * kDim * 4);
        const DevArray dst = rt.malloc("coefficients", kDim * kDim * 4);

        for (int lvl = 0; lvl < levels; ++lvl) {
            const std::uint64_t dim = kDim >> lvl;
            const std::uint64_t rowLines = dim * 4 / kLineBytes;
            const DevArray &in = lvl == 0 ? src : dst;

            // Row pass: horizontal filter within own rows.
            KernelDesc rows;
            rows.name = "dwt_rows_l" + std::to_string(lvl);
            rows.numWgs = kWgs;
            rows.mlp = 16;
            rows.computeCyclesPerWg = 256;
            rt.setAccessMode(rows, in, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(rows, tmp, AccessMode::ReadWrite);
            rows.trace = [in, tmp, dim, rowLines](int wg,
                                                  TraceSink &sink) {
                const std::uint64_t rLo = dim * std::uint64_t(wg) / kWgs;
                const std::uint64_t rHi =
                    dim * std::uint64_t(wg + 1) / kWgs;
                for (std::uint64_t r = rLo; r < rHi; ++r) {
                    streamLines(sink, in.id, r * rowLines,
                                (r + 1) * rowLines, false);
                    streamLines(sink, tmp.id, r * rowLines,
                                (r + 1) * rowLines, true);
                }
            };
            rt.launchKernel(std::move(rows));

            // Column pass: vertical filter, strided over all rows.
            KernelDesc colsk;
            colsk.name = "dwt_cols_l" + std::to_string(lvl);
            colsk.numWgs = kWgs;
            colsk.mlp = 12;
            colsk.computeCyclesPerWg = 256;
            rt.setAccessMode(colsk, tmp, AccessMode::ReadOnly,
                             RangeKind::Full);
            rt.setAccessMode(colsk, dst, AccessMode::ReadWrite,
                             RangeKind::Full);
            colsk.trace = [tmp, dst, dim, rowLines](int wg,
                                                    TraceSink &sink) {
                // Each WG owns a band of columns -> touches one line
                // per row within its column band.
                const std::uint64_t cLo =
                    rowLines * std::uint64_t(wg) / kWgs;
                const std::uint64_t cHi =
                    rowLines * std::uint64_t(wg + 1) / kWgs;
                for (std::uint64_t r = 0; r < dim; ++r) {
                    for (std::uint64_t c = cLo; c < cHi; ++c) {
                        sink.touch(tmp.id, r * rowLines + c, false);
                        sink.touch(dst.id, r * rowLines + c, true);
                    }
                }
            };
            rt.launchKernel(std::move(colsk));
        }
    }
};

} // namespace

std::unique_ptr<Workload>
makeDwt2d()
{
    return std::make_unique<Dwt2d>();
}

} // namespace cpelide
