#include "trace/chrome_trace.hh"

#include <algorithm>
#include <cstdio>

#include "stats/json_util.hh"

namespace cpelide
{

namespace
{

/** The uniform track remap: kCpTrack -> 0, chiplet c -> c + 1. */
int
exportTid(int raw)
{
    return raw + 1;
}

void
appendMetadata(std::string &out, const char *what, int pid, int tid,
               const std::string &name, bool thread)
{
    json::appendSep(out);
    out += "{";
    json::appendStr(out, "name", what);
    json::appendStr(out, "ph", "M");
    json::appendI64(out, "pid", pid);
    if (thread)
        json::appendI64(out, "tid", tid);
    out += ",\"args\":{";
    json::appendStr(out, "name", name);
    out += "}}";
}

void
appendEvent(std::string &out, int pid, const TraceEvent &e)
{
    json::appendSep(out);
    out += "{";
    json::appendStr(out, "name", e.name);
    json::appendStr(out, "cat", e.cat.empty() ? "sim" : e.cat);
    if (e.kind == TraceEvent::Kind::Span) {
        json::appendStr(out, "ph", "X");
        json::appendU64(out, "ts", e.ts);
        json::appendU64(out, "dur", e.dur);
    } else if (e.kind == TraceEvent::Kind::Counter) {
        json::appendStr(out, "ph", "C");
        json::appendU64(out, "ts", e.ts);
    } else {
        json::appendStr(out, "ph", "i");
        json::appendU64(out, "ts", e.ts);
        json::appendStr(out, "s", "t"); // instant scope: thread
    }
    json::appendI64(out, "pid", pid);
    json::appendI64(out, "tid", exportTid(e.tid));
    if (!e.args.empty()) {
        out += ",\"args\":{";
        for (const auto &kv : e.args)
            json::appendU64(out, kv.first.c_str(), kv.second);
        out += "}";
    }
    out += "}";
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceProcess> &processes)
{
    std::string out = "{\"traceEvents\":[";

    // Metadata first: process names, then thread names per track.
    for (const TraceProcess &p : processes) {
        appendMetadata(out, "process_name", p.pid, 0, p.name, false);
        if (!p.threadNames.empty()) {
            for (const auto &tn : p.threadNames) {
                appendMetadata(out, "thread_name", p.pid,
                               exportTid(tn.first), tn.second, true);
            }
        } else {
            appendMetadata(out, "thread_name", p.pid,
                           exportTid(kCpTrack), "CP", true);
            for (int c = 0; c < p.numChiplets; ++c) {
                appendMetadata(out, "thread_name", p.pid, exportTid(c),
                               "chiplet " + std::to_string(c), true);
            }
        }
    }

    // Data events, stably sorted by timestamp across all processes so
    // `ts` is monotonically non-decreasing.
    std::vector<std::pair<int, const TraceEvent *>> flat;
    for (const TraceProcess &p : processes) {
        for (const TraceEvent &e : p.events)
            flat.emplace_back(p.pid, &e);
    }
    std::stable_sort(flat.begin(), flat.end(),
                     [](const auto &a, const auto &b) {
                         return a.second->ts < b.second->ts;
                     });
    for (const auto &pe : flat)
        appendEvent(out, pe.first, *pe.second);

    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

TraceArchive &
TraceArchive::global()
{
    static TraceArchive archive;
    return archive;
}

int
TraceArchive::append(const std::string &name, int num_chiplets,
                     std::vector<TraceEvent> events)
{
    MutexGuard lock(_mutex);
    TraceProcess p;
    p.pid = _nextPid++;
    p.name = name;
    p.numChiplets = num_chiplets;
    p.events = std::move(events);
    _processes.push_back(std::move(p));
    return _processes.back().pid;
}

int
TraceArchive::append(const std::string &name,
                     std::vector<std::pair<int, std::string>> threadNames,
                     std::vector<TraceEvent> events)
{
    MutexGuard lock(_mutex);
    TraceProcess p;
    p.pid = _nextPid++;
    p.name = name;
    p.threadNames = std::move(threadNames);
    p.events = std::move(events);
    _processes.push_back(std::move(p));
    return _processes.back().pid;
}

void
TraceArchive::addWorkerSpan(int worker, const std::string &label,
                            double start_seconds, double dur_seconds)
{
    MutexGuard lock(_mutex);
    TraceEvent e;
    e.kind = TraceEvent::Kind::Span;
    e.name = label;
    e.cat = "exec";
    e.tid = worker; // -1 (caller) remaps to tid 0, like the CP track
    e.ts = static_cast<Tick>(start_seconds * 1e6);
    e.dur = static_cast<Tick>(dur_seconds * 1e6);
    _workerSpans.push_back(std::move(e));
}

std::vector<TraceProcess>
TraceArchive::snapshot() const
{
    MutexGuard lock(_mutex);
    std::vector<TraceProcess> procs;
    if (!_workerSpans.empty()) {
        TraceProcess w;
        w.pid = 0;
        w.name = "exec workers";
        int maxWorker = -1;
        for (const TraceEvent &e : _workerSpans)
            maxWorker = std::max(maxWorker, e.tid);
        w.threadNames.emplace_back(-1, "caller");
        for (int i = 0; i <= maxWorker; ++i)
            w.threadNames.emplace_back(i, "worker " + std::to_string(i));
        w.events = _workerSpans;
        procs.push_back(std::move(w));
    }
    procs.insert(procs.end(), _processes.begin(), _processes.end());
    return procs;
}

std::string
TraceArchive::renderJson() const
{
    return chromeTraceJson(snapshot());
}

bool
TraceArchive::writeTo(const std::string &path) const
{
    const std::string doc = renderJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return n == doc.size();
}

std::size_t
TraceArchive::processCount() const
{
    MutexGuard lock(_mutex);
    return _processes.size();
}

void
TraceArchive::clear()
{
    MutexGuard lock(_mutex);
    _processes.clear();
    _workerSpans.clear();
    _nextPid = 1;
}

} // namespace cpelide
