/**
 * @file
 * TraceSession: low-overhead phase-level event recording.
 *
 * A session collects spans (a named interval on one track) and instant
 * events (a point on one track), all timestamped in *simulated ticks*,
 * never wall-clock — so a trace is bit-identical however many exec
 * workers ran the simulation. Tracks are chiplets (tid == ChipletId)
 * plus the command-processor track (kCpTrack); the Chrome exporter
 * (trace/chrome_trace.hh) maps them to named threads.
 *
 * Tracing is opt-in and zero-cost when off: producers hold a
 * `TraceSession *` that is nullptr when disabled, and every
 * instrumentation site is guarded by that single branch. Events embed
 * small integer args (sync-op counts, dirty lines) for the Perfetto
 * detail pane.
 *
 * Recording sites that don't know the current simulated time (the
 * memory system processing an acquire/release) read the session's
 * `now` cursor, which GpuSystem::run advances at each phase boundary.
 */

#ifndef CPELIDE_TRACE_TRACE_HH
#define CPELIDE_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace cpelide
{

/** Track id of the global command processor (not a chiplet). */
constexpr int kCpTrack = -1;

/** One recorded span or instant event. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Span,    //!< interval [ts, ts + dur] on a track
        Instant, //!< point at ts on a track
        Counter, //!< sampled value series at ts (Chrome "C" event)
    };

    Kind kind = Kind::Instant;
    std::string name;
    std::string cat; //!< Chrome category ("kernel", "sync", "mem", ...)
    int tid = kCpTrack;
    Tick ts = 0;
    Tick dur = 0; //!< spans only

    /** Small integer arguments shown in the trace viewer detail pane. */
    std::vector<std::pair<std::string, std::uint64_t>> args;

    TraceEvent &
    arg(std::string key, std::uint64_t value)
    {
        args.emplace_back(std::move(key), value);
        return *this;
    }
};

/** Per-run collector of trace events (see file comment). */
class TraceSession
{
  public:
    /** Advance the sim-time cursor instant events record against. */
    void setNow(Tick t) { _now = t; }
    Tick now() const { return _now; }

    /** Record the span [start, end] on track @p tid. */
    TraceEvent &
    span(std::string name, std::string cat, int tid, Tick start,
         Tick end)
    {
        TraceEvent e;
        e.kind = TraceEvent::Kind::Span;
        e.name = std::move(name);
        e.cat = std::move(cat);
        e.tid = tid;
        e.ts = start;
        e.dur = end >= start ? end - start : 0;
        _events.push_back(std::move(e));
        return _events.back();
    }

    /** Record an instant at @p ts on track @p tid. */
    TraceEvent &
    instant(std::string name, std::string cat, int tid, Tick ts)
    {
        TraceEvent e;
        e.name = std::move(name);
        e.cat = std::move(cat);
        e.tid = tid;
        e.ts = ts;
        _events.push_back(std::move(e));
        return _events.back();
    }

    /** An instant at the current sim-time cursor. */
    TraceEvent &
    instantNow(std::string name, std::string cat, int tid)
    {
        return instant(std::move(name), std::move(cat), tid, _now);
    }

    /**
     * Record a counter sample at @p ts on track @p tid. Series values
     * go in args (one key per series line); the exporter renders them
     * as Chrome "C" events, which Perfetto draws as stacked counter
     * tracks (live L2 occupancy, NoC load, elision rate).
     */
    TraceEvent &
    counter(std::string name, std::string cat, int tid, Tick ts)
    {
        TraceEvent e;
        e.kind = TraceEvent::Kind::Counter;
        e.name = std::move(name);
        e.cat = std::move(cat);
        e.tid = tid;
        e.ts = ts;
        _events.push_back(std::move(e));
        return _events.back();
    }

    const std::vector<TraceEvent> &events() const { return _events; }
    std::size_t size() const { return _events.size(); }
    bool empty() const { return _events.empty(); }

    /** Move the recorded events out (the session becomes empty). */
    std::vector<TraceEvent>
    take()
    {
        std::vector<TraceEvent> out = std::move(_events);
        _events.clear();
        return out;
    }

  private:
    Tick _now = 0;
    std::vector<TraceEvent> _events;
};

} // namespace cpelide

#endif // CPELIDE_TRACE_TRACE_HH
