/**
 * @file
 * Chrome trace_event JSON export (chrome://tracing, Perfetto).
 *
 * A TraceProcess is one simulated run: its events (sim-tick
 * timestamps, exported as microseconds — 1 tick = 1 us) render as one
 * process with one named thread per track. Track ids remap uniformly
 * as `exported tid = raw tid + 1`, so the CP track (kCpTrack == -1)
 * becomes tid 0 named "CP" and chiplet c becomes tid c+1 named
 * "chiplet c". Processes with explicit threadNames (the exec-worker
 * pseudo-process) use the same remap with their own names.
 *
 * TraceArchive is the process-wide accumulator behind CPELIDE_TRACE:
 * each finished run appends (in deterministic merge order — the
 * harness appends sweep outcomes in spec order, never in completion
 * order), and the file is rewritten after each append so it is always
 * valid JSON.
 */

#ifndef CPELIDE_TRACE_CHROME_TRACE_HH
#define CPELIDE_TRACE_CHROME_TRACE_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/thread_annotations.hh"
#include "trace/trace.hh"

namespace cpelide
{

/** One rendered process of a Chrome trace. */
struct TraceProcess
{
    int pid = 1;
    std::string name; //!< process_name metadata (e.g. the job label)
    /** Chiplet count: names tids 1..n "chiplet 0..n-1" and 0 "CP". */
    int numChiplets = 0;
    /** Explicit (raw tid, name) pairs; overrides the chiplet naming. */
    std::vector<std::pair<int, std::string>> threadNames;
    std::vector<TraceEvent> events;
};

/**
 * Render @p processes as a complete `{"traceEvents": [...]}` document.
 * Metadata records come first; data events are stably sorted by
 * timestamp, so `ts` is monotonically non-decreasing over the data
 * records (asserted by the golden-file test).
 */
std::string chromeTraceJson(const std::vector<TraceProcess> &processes);

/** Process-wide trace accumulator (see file comment). */
class TraceArchive
{
  public:
    /** The singleton the harness exports through. */
    static TraceArchive &global();

    /**
     * Append one run's events as the next process (pids count up from
     * 1 in append order). @return the assigned pid.
     */
    int append(const std::string &name, int num_chiplets,
               std::vector<TraceEvent> events) CPELIDE_EXCLUDES(_mutex);

    /**
     * Append a process with explicit (raw tid, name) track names
     * instead of the chiplet scheme — the serve-side span-chain
     * process (accept/queue/cache/lanes/writers tracks) uses this.
     * @return the assigned pid.
     */
    int append(const std::string &name,
               std::vector<std::pair<int, std::string>> threadNames,
               std::vector<TraceEvent> events) CPELIDE_EXCLUDES(_mutex);

    /**
     * Record one job's wall-clock execution on the exec-worker
     * pseudo-process (pid 0). Worker -1 (the serial caller thread)
     * renders as "caller". Wall-clock: this is the one deliberately
     * nondeterministic track; sim tracks never depend on it.
     */
    void addWorkerSpan(int worker, const std::string &label,
                       double start_seconds, double dur_seconds)
        CPELIDE_EXCLUDES(_mutex);

    /** Render everything appended so far. */
    std::string renderJson() const CPELIDE_EXCLUDES(_mutex);

    /** Rewrite @p path with renderJson(). @return false on I/O error. */
    bool writeTo(const std::string &path) const CPELIDE_EXCLUDES(_mutex);

    std::size_t processCount() const CPELIDE_EXCLUDES(_mutex);

    /** Drop all recorded processes (tests). */
    void clear() CPELIDE_EXCLUDES(_mutex);

  private:
    std::vector<TraceProcess> snapshot() const CPELIDE_EXCLUDES(_mutex);

    mutable Mutex _mutex;
    std::vector<TraceProcess> _processes CPELIDE_GUARDED_BY(_mutex);
    std::vector<TraceEvent> _workerSpans CPELIDE_GUARDED_BY(_mutex);
    int _nextPid CPELIDE_GUARDED_BY(_mutex) = 1;
};

} // namespace cpelide

#endif // CPELIDE_TRACE_CHROME_TRACE_HH
