/**
 * @file
 * The CPElide decision engine (Sections III-B/III-C).
 *
 * Runs in the global CP at every kernel launch, before any WG is
 * dispatched. Consumes the kernel's software-provided access
 * annotations (mode + per-chiplet address ranges) and the Chiplet
 * Coherence Table, and produces the minimal set of per-chiplet L2
 * acquire (invalidate) and release (flush) operations needed for
 * SC-for-HRF correctness — eliding everything else.
 *
 * Correctness contract (checked end-to-end by the version-tag
 * staleness checker):
 *  - a chiplet never reads a line whose latest value is dirty in
 *    another chiplet's L2 (releases cover this);
 *  - a chiplet never hits on a line another chiplet has overwritten
 *    since it was cached (acquires cover this).
 *
 * Releases are lazy: they are issued only when a consumer appears, and
 * the GPU layer orders them after the consumer's acquires so producers
 * retain clean copies (Section III-B, "Lazy Acquire/Release").
 */

#ifndef CPELIDE_CORE_ELIDE_ENGINE_HH
#define CPELIDE_CORE_ELIDE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "core/coherence_table.hh"
#include "core/ds_state.hh"
#include "prof/counter.hh"
#include "prof/registry.hh"

namespace cpelide
{

/** One kernel argument's access annotation, as seen by the global CP. */
struct KernelArgAccess
{
    /** Full byte span of the data structure. */
    AddrRange span;
    AccessMode mode = AccessMode::ReadOnly;
    /**
     * Byte range each *scheduled* chiplet may touch, indexed like the
     * launch's chiplet list. From hipSetAccessModeRange, or derived by
     * the CP from the WG partition for affine kernels, or the full
     * span when nothing finer is known.
     */
    std::vector<AddrRange> perChiplet;
};

/** A kernel launch, as seen by the global CP. */
struct LaunchDecl
{
    /** Chiplets the kernel's WGs are partitioned across. */
    std::vector<ChipletId> chiplets;
    std::vector<KernelArgAccess> args;
};

/** Synchronization operations the global CP must issue for a launch. */
struct SyncPlan
{
    /** Chiplets whose L2 must be invalidated (dirty data flushed first). */
    std::vector<ChipletId> acquires;
    /** Chiplets whose L2 must be flushed (clean copies retained). */
    std::vector<ChipletId> releases;
    /** Table overflowed: the plan degraded to a full barrier. */
    bool conservative = false;

    bool empty() const { return acquires.empty() && releases.empty(); }
};

/** The CPElide engine; owns the Chiplet Coherence Table. */
class ElideEngine
{
  public:
    /**
     * @param num_chiplets   chiplets in the package;
     * @param ds_per_kernel  coarsening threshold (paper: 8);
     * @param table_capacity total rows (paper: 64).
     */
    ElideEngine(int num_chiplets, int ds_per_kernel, int table_capacity);

    /**
     * Plan synchronization for a launch and update the table to the
     * post-launch states. Call exactly once per kernel, in launch
     * order.
     */
    SyncPlan onKernelLaunch(const LaunchDecl &decl);

    /**
     * End-of-program barrier: flush every chiplet's dirty data so the
     * host observes results, and clear the table.
     */
    SyncPlan finalBarrier();

    const CoherenceTable &table() const { return _table; }

    /** Mutable table access: fault injection (table corruption) only. */
    CoherenceTable &mutableTable() { return _table; }

    /** Statistics. @{ */
    std::uint64_t acquiresIssued() const { return _acquiresIssued; }
    std::uint64_t releasesIssued() const { return _releasesIssued; }
    std::uint64_t acquiresElided() const { return _acquiresElided; }
    std::uint64_t releasesElided() const { return _releasesElided; }
    std::uint64_t conservativeFallbacks() const { return _fallbacks; }
    std::uint64_t coarsenEvents() const { return _coarsenEvents; }
    /** @} */

    /**
     * Why the engine scheduled each op. Every acquire/release decision
     * increments exactly one reason counter, so profiling reports can
     * break "why did CPElide synchronize" down per cause.
     */
    enum class Reason
    {
        AcqMergeConflict,    //!< Dirty+Stale row merge forced an acquire
        AcqConservative,     //!< table overflow: full-barrier fallback
        AcqCrossWrite,       //!< scattered read-write data
        AcqStaleHit,         //!< scheduled chiplet could hit stale lines
        AcqRemoteWrite,      //!< remote writer rewrites cached data
        RelLazyConsumer,     //!< consumer appeared for dirty data
        RelCrossWriteFlush,  //!< bystander flush under a cross write
        RelFinalBarrier,     //!< end-of-program host-visibility flush
        NumReasons
    };

    static const char *reasonName(Reason r);

    std::uint64_t reasonCount(Reason r) const
    {
        return _reasons[static_cast<std::size_t>(r)];
    }

    /** Register decision/table counters under "elide/...". */
    void registerProf(prof::ProfRegistry &reg) const;

  private:
    /**
     * Reduce @p args to at most the coarsening threshold by merging
     * the two spans closest together in memory (Section III-B,
     * "Coarsening Data Structure Labels").
     */
    std::vector<KernelArgAccess>
    coarsen(std::vector<KernelArgAccess> args, std::size_t limit);

    /**
     * Merge all table rows overlapping @p span into a single row.
     * Same-chiplet Dirty/Stale conflicts schedule an eager acquire via
     * @p acquire.
     */
    void mergeRows(const AddrRange &span, std::vector<bool> &acquire);

    /**
     * Per-chiplet home ranges for a structure. First touch is
     * permanent, so these are derived once (from the first kernel's
     * partition, if affine) and remembered across row removals.
     */
    std::vector<AddrRange> homesFor(const AddrRange &span,
                                    const LaunchDecl &decl,
                                    const KernelArgAccess &arg);

    /** Bound on remembered home records (beyond: assume anything). */
    static constexpr std::size_t kMaxHomeEntries = 512;

    int _numChiplets;
    int _dsPerKernel;
    CoherenceTable _table;
    std::vector<std::pair<AddrRange, std::vector<AddrRange>>> _homes;

    void countReason(Reason r)
    {
        ++_reasons[static_cast<std::size_t>(r)];
    }

    prof::Counter _acquiresIssued;
    prof::Counter _releasesIssued;
    prof::Counter _acquiresElided;
    prof::Counter _releasesElided;
    prof::Counter _fallbacks;
    prof::Counter _coarsenEvents;
    prof::Counter _reasons[static_cast<std::size_t>(Reason::NumReasons)];
};

} // namespace cpelide

#endif // CPELIDE_CORE_ELIDE_ENGINE_HH
