#include "core/coherence_table.hh"

#include <algorithm>

#include "sim/log.hh"

namespace cpelide
{

int
CoherenceTable::findOverlapping(const AddrRange &span,
                                std::size_t from) const
{
    for (std::size_t i = from; i < _rows.size(); ++i) {
        if (_rows[i].span.overlaps(span))
            return static_cast<int>(i);
    }
    return -1;
}

TableRow &
CoherenceTable::insert(const AddrRange &span)
{
    panicIf(full(), "CoherenceTable::insert on a full table");
    _rows.emplace_back(_numChiplets);
    _rows.back().span = span;
    _maxEntries = std::max<std::uint64_t>(_maxEntries, _rows.size());
    return _rows.back();
}

void
CoherenceTable::erase(std::size_t idx)
{
    _rows.erase(_rows.begin() + static_cast<std::ptrdiff_t>(idx));
}

void
CoherenceTable::removeEmptyRows()
{
    std::erase_if(_rows,
                  [](const TableRow &r) { return r.allNotPresent(); });
}

void
CoherenceTable::applyRelease(ChipletId c)
{
    for (TableRow &r : _rows)
        r.state[c] = dsTransition(r.state[c], DsEvent::Release);
}

void
CoherenceTable::applyAcquire(ChipletId c)
{
    for (TableRow &r : _rows) {
        r.state[c] = DsState::NotPresent;
        r.range[c] = AddrRange{};
    }
}

std::uint64_t
CoherenceTable::hardwareBytes() const
{
    // Paper Section III-A per-entry budget: 1 B chiplet vector + 1 bit
    // mode + 28 B ranges + 4 B base address. We charge the full
    // capacity (it is SRAM, allocated up front).
    const std::uint64_t perEntry =
        ((2ull * _numChiplets + 7) / 8) + 1 + 28 + 4;
    return perEntry * static_cast<std::uint64_t>(_capacity);
}

} // namespace cpelide
