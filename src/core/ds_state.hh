/**
 * @file
 * Chiplet Coherence Table primitive types: access modes, address ranges,
 * and the per-chiplet data-structure state machine of Fig 6.
 *
 * Each table row tracks one data structure; for each chiplet the row
 * stores a 2-bit state describing a conservative estimate of what that
 * chiplet's L2 may hold for the structure:
 *
 *   NotPresent (00) - guaranteed absent from the chiplet's L2;
 *   Valid      (01) - may hold clean, up-to-date copies;
 *   Dirty      (10) - may hold dirty copies (chiplet wrote it);
 *   Stale      (11) - may hold copies that are no longer up to date
 *                     (another chiplet wrote the range since).
 *
 * Transitions happen at kernel launches, driven by the elide engine;
 * there are no transient states because the table never waits on
 * operations (Section III-B).
 */

#ifndef CPELIDE_CORE_DS_STATE_HH
#define CPELIDE_CORE_DS_STATE_HH

#include <algorithm>
#include <cstdint>

#include "sim/types.hh"

namespace cpelide
{

/** Software-declared access mode of a data structure in a kernel. */
enum class AccessMode : std::uint8_t
{
    ReadOnly,  //!< 'R'
    ReadWrite, //!< 'R/W'
};

/** Per-chiplet state of a tracked data structure (2 bits in hardware). */
enum class DsState : std::uint8_t
{
    NotPresent = 0,
    Valid = 1,
    Dirty = 2,
    Stale = 3,
};

/** Half-open byte range [lo, hi) in the device address space. */
struct AddrRange
{
    Addr lo = 0;
    Addr hi = 0;

    bool empty() const { return hi <= lo; }

    bool
    overlaps(const AddrRange &o) const
    {
        return !empty() && !o.empty() && lo < o.hi && o.lo < hi;
    }

    bool
    contains(const AddrRange &o) const
    {
        return !o.empty() && lo <= o.lo && o.hi <= hi;
    }

    /** Smallest range covering both (ranges need not touch). */
    static AddrRange
    unionOf(const AddrRange &a, const AddrRange &b)
    {
        if (a.empty())
            return b;
        if (b.empty())
            return a;
        return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
    }

    /** Overlap of the two ranges (empty if disjoint). */
    static AddrRange
    intersectOf(const AddrRange &a, const AddrRange &b)
    {
        const AddrRange r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
        return r.empty() ? AddrRange{} : r;
    }

    bool operator==(const AddrRange &o) const = default;
};

/** Events the elide engine applies to a (row, chiplet) state. */
enum class DsEvent : std::uint8_t
{
    LocalRead,   //!< this chiplet reads the range (mode R)
    LocalWrite,  //!< this chiplet reads/writes the range (mode R/W)
    RemoteWrite, //!< another chiplet writes an overlapping range
    Release,     //!< this chiplet's L2 was flushed (any cause)
    Acquire,     //!< this chiplet's L2 was invalidated (flush first)
};

/**
 * Fig 6 transition function. Pure; heavily property-tested.
 *
 * Remote *reads* never change a state (the Valid self-loop "ARR"), so
 * they have no event. Release and Acquire model whole-L2 operations:
 * Release turns Dirty into Valid (the baseline protocol retains clean
 * copies after a writeback); Acquire always yields NotPresent.
 */
constexpr DsState
dsTransition(DsState s, DsEvent e)
{
    switch (e) {
      case DsEvent::LocalRead:
        // Reading on a chiplet that still holds dirty data keeps it
        // Dirty (nothing got flushed). A Stale chiplet must have been
        // acquired before a local access; the engine guarantees that,
        // so Stale+LocalRead is not reachable in a correct schedule —
        // map it to Stale (conservative) rather than asserting so the
        // table stays usable for what-if queries.
        return s == DsState::Dirty ? DsState::Dirty
               : s == DsState::Stale ? DsState::Stale
                                     : DsState::Valid;
      case DsEvent::LocalWrite:
        return s == DsState::Stale ? DsState::Stale : DsState::Dirty;
      case DsEvent::RemoteWrite:
        // A copy may linger and is no longer up to date. NotPresent
        // stays NotPresent (nothing cached to go stale).
        return s == DsState::NotPresent ? DsState::NotPresent
                                        : DsState::Stale;
      case DsEvent::Release:
        return s == DsState::Dirty ? DsState::Valid : s;
      case DsEvent::Acquire:
        return DsState::NotPresent;
    }
    return s;
}

/** Human-readable state name (tables, debugging). */
constexpr const char *
dsStateName(DsState s)
{
    switch (s) {
      case DsState::NotPresent: return "NP";
      case DsState::Valid: return "V";
      case DsState::Dirty: return "D";
      case DsState::Stale: return "S";
    }
    return "?";
}

} // namespace cpelide

#endif // CPELIDE_CORE_DS_STATE_HH
