/**
 * @file
 * The Chiplet Coherence Table (Section III-A).
 *
 * Lives in the global CP's private memory. Sized for 8 data structures
 * per kernel across 8 in-flight kernels (64 rows, ~2 KB for 4 chiplets).
 * Rows are keyed by the data structure's address span so that coarsened
 * (merged) entries and dis-contiguous allocations compose naturally.
 */

#ifndef CPELIDE_CORE_COHERENCE_TABLE_HH
#define CPELIDE_CORE_COHERENCE_TABLE_HH

#include <cstdint>
#include <vector>

#include "core/ds_state.hh"
#include "prof/counter.hh"
#include "sim/types.hh"

namespace cpelide
{

/** One tracked data structure (or coarsened group of structures). */
struct TableRow
{
    /** Full byte span this row covers (base address + extent). */
    AddrRange span;
    /** Access mode of the most recent kernel touching the row. */
    AccessMode lastMode = AccessMode::ReadOnly;
    /** Per-chiplet 2-bit states (the "chiplet vector"). */
    std::vector<DsState> state;
    /** Per-chiplet address range cached while state != NotPresent. */
    std::vector<AddrRange> range;
    /**
     * Per-chiplet home range: the bytes whose pages are homed at each
     * chiplet under first-touch placement. A chiplet's L2 can only
     * cache lines homed at it, so every conflict test intersects the
     * accessed range with this. Derived from the first kernel that
     * touches the structure (whose partition performs the first touch);
     * the whole span everywhere when placement is unknown/scattered.
     */
    std::vector<AddrRange> home;

    explicit TableRow(int num_chiplets)
        : state(num_chiplets, DsState::NotPresent), range(num_chiplets),
          home(num_chiplets)
    {}

    /** What chiplet @p c may actually hold: cached range ∩ homed range. */
    AddrRange
    effective(int c) const
    {
        return AddrRange::intersectOf(range[c], home[c]);
    }

    bool
    allNotPresent() const
    {
        for (DsState s : state) {
            if (s != DsState::NotPresent)
                return false;
        }
        return true;
    }
};

/** Fixed-capacity table of TableRows. */
class CoherenceTable
{
  public:
    CoherenceTable(int num_chiplets, int capacity)
        : _numChiplets(num_chiplets), _capacity(capacity)
    {}

    int numChiplets() const { return _numChiplets; }
    int capacity() const { return _capacity; }
    std::size_t size() const { return _rows.size(); }
    bool full() const { return _rows.size() >= std::size_t(_capacity); }

    const std::vector<TableRow> &rows() const { return _rows; }
    std::vector<TableRow> &rows() { return _rows; }

    /** Index of the row whose span overlaps @p span, or -1. */
    int findOverlapping(const AddrRange &span, std::size_t from = 0) const;

    /**
     * Insert a fresh row covering @p span.
     * @pre !full()
     * @return reference valid until the next mutation.
     */
    TableRow &insert(const AddrRange &span);

    /** Erase row @p idx. */
    void erase(std::size_t idx);

    /** Drop every row whose chiplet vector is all-NotPresent. */
    void removeEmptyRows();

    /** Whole-L2 release on @p c: Dirty -> Valid in every row. */
    void applyRelease(ChipletId c);

    /** Whole-L2 acquire on @p c: every row's state[c] -> NotPresent. */
    void applyAcquire(ChipletId c);

    /** Drop all rows (conservative fallback / program end). */
    void clear() { _rows.clear(); }

    /** High-water mark of row count (stats). */
    std::uint64_t maxEntries() const { return _maxEntries; }

    /**
     * Approximate hardware footprint in bytes: per row, 2n-bit chiplet
     * vector, 1-bit mode, per-chiplet ranges (28 B budget in the
     * paper), and a 4 B base address.
     */
    std::uint64_t hardwareBytes() const;

  private:
    int _numChiplets;
    int _capacity;
    std::vector<TableRow> _rows;
    prof::Counter _maxEntries; //!< high-water mark, not monotonic-add
};

} // namespace cpelide

#endif // CPELIDE_CORE_COHERENCE_TABLE_HH
