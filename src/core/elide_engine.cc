#include "core/elide_engine.hh"

#include <algorithm>

#include "sim/log.hh"

namespace cpelide
{

namespace
{

/** Severity-merge two states for the same chiplet (row merging). */
DsState
mergeState(DsState a, DsState b, bool *conflict)
{
    if (a == b)
        return a;
    if (a == DsState::NotPresent)
        return b;
    if (b == DsState::NotPresent)
        return a;
    // {Valid, Dirty} -> Dirty; {Valid, Stale} -> Stale.
    if ((a == DsState::Dirty && b == DsState::Stale) ||
        (a == DsState::Stale && b == DsState::Dirty)) {
        // Both dirty and possibly-stale lines: only a full
        // flush+invalidate is safe; the caller schedules one.
        *conflict = true;
        return DsState::Stale;
    }
    if (a == DsState::Dirty || b == DsState::Dirty)
        return DsState::Dirty;
    return DsState::Stale;
}

std::vector<ChipletId>
maskToList(const std::vector<bool> &mask)
{
    std::vector<ChipletId> out;
    for (std::size_t c = 0; c < mask.size(); ++c) {
        if (mask[c])
            out.push_back(static_cast<ChipletId>(c));
    }
    return out;
}

/** Do the ranges tile @p span without overlap (affine partition)? */
bool
tilesSpan(std::vector<AddrRange> ranges, const AddrRange &span)
{
    std::erase_if(ranges, [](const AddrRange &r) { return r.empty(); });
    if (ranges.empty())
        return false;
    std::sort(ranges.begin(), ranges.end(),
              [](const AddrRange &a, const AddrRange &b) {
                  return a.lo < b.lo;
              });
    if (ranges.front().lo > span.lo)
        return false;
    Addr cursor = ranges.front().lo;
    for (const AddrRange &r : ranges) {
        if (r.lo > cursor)
            return false; // gap: some pages get first-touched later
        cursor = std::max(cursor, r.hi);
    }
    return cursor >= span.hi;
}

} // namespace

ElideEngine::ElideEngine(int num_chiplets, int ds_per_kernel,
                         int table_capacity)
    : _numChiplets(num_chiplets), _dsPerKernel(ds_per_kernel),
      _table(num_chiplets, table_capacity)
{}

const char *
ElideEngine::reasonName(Reason r)
{
    switch (r) {
      case Reason::AcqMergeConflict:
        return "acq-merge-conflict";
      case Reason::AcqConservative:
        return "acq-conservative";
      case Reason::AcqCrossWrite:
        return "acq-cross-write";
      case Reason::AcqStaleHit:
        return "acq-stale-hit";
      case Reason::AcqRemoteWrite:
        return "acq-remote-write";
      case Reason::RelLazyConsumer:
        return "rel-lazy-consumer";
      case Reason::RelCrossWriteFlush:
        return "rel-cross-write-flush";
      case Reason::RelFinalBarrier:
        return "rel-final-barrier";
      case Reason::NumReasons:
        break;
    }
    fatal("bad elide reason " + std::to_string(static_cast<int>(r)));
}

void
ElideEngine::registerProf(prof::ProfRegistry &reg) const
{
    reg.addCounter("elide/acquires-issued", &_acquiresIssued);
    reg.addCounter("elide/releases-issued", &_releasesIssued);
    reg.addCounter("elide/acquires-elided", &_acquiresElided);
    reg.addCounter("elide/releases-elided", &_releasesElided);
    reg.addCounter("elide/conservative-fallbacks", &_fallbacks);
    reg.addCounter("elide/coarsen-events", &_coarsenEvents);
    for (std::size_t r = 0;
         r < static_cast<std::size_t>(Reason::NumReasons); ++r) {
        reg.addCounter(std::string("elide/reason/") +
                           reasonName(static_cast<Reason>(r)),
                       &_reasons[r]);
    }
    reg.addGauge("elide/table/rows", [this] { return _table.size(); });
    reg.addGauge("elide/table/max-entries",
                 [this] { return _table.maxEntries(); });
    reg.addGauge("elide/table/hardware-bytes",
                 [this] { return _table.hardwareBytes(); });
}

std::vector<KernelArgAccess>
ElideEngine::coarsen(std::vector<KernelArgAccess> args, std::size_t limit)
{
    std::sort(args.begin(), args.end(),
              [](const KernelArgAccess &a, const KernelArgAccess &b) {
                  return a.span.lo < b.span.lo;
              });
    while (args.size() > limit) {
        ++_coarsenEvents;
        // Find the adjacent pair closest together in memory (contiguous
        // structures have gap ~0 and merge first).
        std::size_t best = 0;
        Addr bestGap = ~Addr(0);
        for (std::size_t i = 0; i + 1 < args.size(); ++i) {
            const Addr gap = args[i + 1].span.lo >= args[i].span.hi
                                 ? args[i + 1].span.lo - args[i].span.hi
                                 : 0;
            if (gap < bestGap) {
                bestGap = gap;
                best = i;
            }
        }
        KernelArgAccess &a = args[best];
        const KernelArgAccess &b = args[best + 1];
        a.span = AddrRange::unionOf(a.span, b.span);
        // Conservative mode and full-span per-chiplet ranges: the
        // merged entry may cover bytes neither structure owns, which
        // only ever adds synchronization, never removes it.
        if (b.mode == AccessMode::ReadWrite)
            a.mode = AccessMode::ReadWrite;
        const std::size_t lanes =
            std::max(a.perChiplet.size(), b.perChiplet.size());
        a.perChiplet.assign(lanes, a.span);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    }
    return args;
}

void
ElideEngine::mergeRows(const AddrRange &span, std::vector<bool> &acquire)
{
    int first = _table.findOverlapping(span);
    if (first < 0)
        return;
    for (;;) {
        int victimIdx =
            _table.findOverlapping(_table.rows()[first].span,
                                   static_cast<std::size_t>(first) + 1);
        if (victimIdx < 0) {
            victimIdx = _table.findOverlapping(
                span, static_cast<std::size_t>(first) + 1);
        }
        if (victimIdx < 0)
            break;
        TableRow &keep = _table.rows()[static_cast<std::size_t>(first)];
        const TableRow &victim =
            _table.rows()[static_cast<std::size_t>(victimIdx)];
        keep.span = AddrRange::unionOf(keep.span, victim.span);
        if (victim.lastMode == AccessMode::ReadWrite)
            keep.lastMode = AccessMode::ReadWrite;
        for (int c = 0; c < _numChiplets; ++c) {
            bool conflict = false;
            keep.state[c] =
                mergeState(keep.state[c], victim.state[c], &conflict);
            keep.range[c] =
                AddrRange::unionOf(keep.range[c], victim.range[c]);
            keep.home[c] =
                AddrRange::unionOf(keep.home[c], victim.home[c]);
            if (conflict) {
                acquire[c] = true;
                countReason(Reason::AcqMergeConflict);
            }
        }
        _table.erase(static_cast<std::size_t>(victimIdx));
        if (victimIdx < first)
            --first;
    }
}

std::vector<AddrRange>
ElideEngine::homesFor(const AddrRange &span, const LaunchDecl &decl,
                      const KernelArgAccess &arg)
{
    // Already recorded? First touch is permanent, so reuse it even if
    // the tracking row has been dropped since.
    for (const auto &[hspan, homes] : _homes) {
        if (hspan.overlaps(span)) {
            if (hspan == span)
                return homes;
            // Coarsened or partially overlapping spans: unknown
            // placement — assume any chiplet may home any byte.
            return std::vector<AddrRange>(_numChiplets, span);
        }
    }

    // First kernel touching this structure: its WG partition performs
    // the first touch. If its per-chiplet ranges tile the span
    // disjointly (affine), the homes are exactly those slices;
    // otherwise placement is input-dependent: assume anything.
    std::vector<AddrRange> homes(_numChiplets);
    bool disjoint = true;
    for (std::size_t x = 0; x < arg.perChiplet.size() && disjoint; ++x) {
        for (std::size_t y = x + 1; y < arg.perChiplet.size(); ++y) {
            if (arg.perChiplet[x].overlaps(arg.perChiplet[y])) {
                disjoint = false;
                break;
            }
        }
    }
    if (disjoint && tilesSpan(arg.perChiplet, span)) {
        for (std::size_t s = 0; s < decl.chiplets.size(); ++s) {
            // First touch places whole PAGES. A page straddling two
            // chiplets' slices is homed by whoever touches it first —
            // the owner of the page's FIRST byte, since WGs sweep
            // their slices in ascending order (the derivation assumes
            // the first kernel touches its slices densely; all
            // device-side initialization does). Rounding both ends UP
            // assigns each straddling page to exactly one chiplet,
            // keeping the home ranges disjoint and page-exact.
            AddrRange h = arg.perChiplet[s];
            if (!h.empty()) {
                h.lo = (h.lo + kPageBytes - 1) / kPageBytes * kPageBytes;
                h.hi = (h.hi + kPageBytes - 1) / kPageBytes * kPageBytes;
                if (h.lo == h.hi)
                    h = AddrRange{}; // sub-page slice: homes nothing
            }
            homes[decl.chiplets[s]] = h;
        }
        // The span's first page belongs to the first scheduled chiplet
        // even if its slice starts mid-page (allocations are page
        // aligned, so in practice lo == span.lo already).
        if (!decl.chiplets.empty()) {
            AddrRange &h0 = homes[decl.chiplets.front()];
            const Addr spanPage = span.lo / kPageBytes * kPageBytes;
            if (h0.empty())
                h0 = {spanPage, spanPage + kPageBytes};
            else
                h0.lo = std::min(h0.lo, spanPage);
        }
    } else {
        homes.assign(_numChiplets, span);
    }
    if (_homes.size() < kMaxHomeEntries)
        _homes.emplace_back(span, homes);
    return homes;
}

SyncPlan
ElideEngine::onKernelLaunch(const LaunchDecl &decl)
{
    SyncPlan plan;
    std::vector<bool> acquire(_numChiplets, false);
    std::vector<bool> release(_numChiplets, false);

    std::vector<KernelArgAccess> args = decl.args;
    if (args.size() > static_cast<std::size_t>(_dsPerKernel))
        args = coarsen(std::move(args), _dsPerKernel);

    // Fold each argument's overlapping rows together so every argument
    // maps to at most one row.
    for (const KernelArgAccess &a : args)
        mergeRows(a.span, acquire);

    // Capacity check: how many fresh rows would this launch need?
    std::size_t newRows = 0;
    for (const KernelArgAccess &a : args) {
        if (_table.findOverlapping(a.span) < 0)
            ++newRows;
    }
    if (_table.size() + newRows >
        static_cast<std::size_t>(_table.capacity())) {
        // Overflow: degrade to the baseline's conservative behaviour
        // for this launch — full flush+invalidate everywhere — and
        // restart tracking. (The paper's workloads never hit this.)
        ++_fallbacks;
        plan.conservative = true;
        std::fill(acquire.begin(), acquire.end(), true);
        _reasons[static_cast<std::size_t>(Reason::AcqConservative)] +=
            acquire.size();
        _table.clear();
    }

    // ---- Phase 1: plan ops from pre-launch states ------------------------
    if (!plan.conservative) {
        for (const KernelArgAccess &a : args) {
            const int idx = _table.findOverlapping(a.span);
            if (idx < 0)
                continue; // never tracked: nothing can be stale or dirty
            const TableRow &row =
                _table.rows()[static_cast<std::size_t>(idx)];

            // Do the scheduled chiplets' ranges overlap each other
            // while writing? Then per-chiplet tracking cannot tell who
            // wrote what (scattered read-write data).
            bool crossWrite = false;
            if (a.mode == AccessMode::ReadWrite) {
                for (std::size_t x = 0;
                     x < a.perChiplet.size() && !crossWrite; ++x) {
                    for (std::size_t y = x + 1; y < a.perChiplet.size();
                         ++y) {
                        if (a.perChiplet[x].overlaps(a.perChiplet[y])) {
                            crossWrite = true;
                            break;
                        }
                    }
                }
            }

            for (int i = 0; i < _numChiplets; ++i) {
                const DsState st = row.state[i];
                if (st == DsState::NotPresent)
                    continue;
                // What chiplet i's L2 can actually hold of this row.
                const AddrRange cached = row.effective(i);
                if (cached.empty())
                    continue;

                int schedIdx = -1;
                bool remoteTouch = false;
                for (std::size_t s = 0; s < decl.chiplets.size(); ++s) {
                    if (decl.chiplets[s] == i) {
                        schedIdx = static_cast<int>(s);
                    } else if (a.perChiplet[s].overlaps(cached)) {
                        remoteTouch = true;
                    }
                }
                const bool scheduled = schedIdx >= 0;
                const bool remoteWrite =
                    remoteTouch && a.mode == AccessMode::ReadWrite;

                if (crossWrite) {
                    // Anyone may write anywhere in the span this
                    // kernel. A participant could later hit its own
                    // copies without knowing which were overwritten:
                    // start it clean. Non-participants just need dirty
                    // data flushed (they go Stale lazily).
                    if (scheduled) {
                        acquire[i] = true;
                        countReason(Reason::AcqCrossWrite);
                    } else if (st == DsState::Dirty) {
                        release[i] = true;
                        countReason(Reason::RelCrossWriteFlush);
                    }
                    continue;
                }

                switch (st) {
                  case DsState::Stale:
                    // Must not hit on possibly-stale copies. A writer
                    // must also leave Stale before dirtying new lines:
                    // the 2-bit state cannot express Dirty-and-Stale,
                    // and a lingering Stale would hide the dirty data
                    // from future consumers' release checks.
                    if (scheduled &&
                        (a.mode == AccessMode::ReadWrite ||
                         a.perChiplet[static_cast<std::size_t>(
                                          schedIdx)]
                             .overlaps(cached))) {
                        acquire[i] = true;
                        countReason(Reason::AcqStaleHit);
                    }
                    break;
                  case DsState::Dirty:
                    if (scheduled && remoteWrite) {
                        // Another chiplet rewrites part of what this
                        // one cached while it keeps participating:
                        // flush + start clean.
                        acquire[i] = true;
                        countReason(Reason::AcqRemoteWrite);
                    } else if (remoteTouch) {
                        // A consumer elsewhere: flush so the LLC holds
                        // the latest data (the lazy release).
                        release[i] = true;
                        countReason(Reason::RelLazyConsumer);
                    }
                    break;
                  case DsState::Valid:
                    if (scheduled && remoteWrite) {
                        acquire[i] = true;
                        countReason(Reason::AcqRemoteWrite);
                    }
                    break;
                  case DsState::NotPresent:
                    break;
                }
            }
        }
    }

    // ---- Phase 2: apply whole-L2 side effects ----------------------------
    for (int c = 0; c < _numChiplets; ++c) {
        if (acquire[c]) {
            _table.applyAcquire(c);
            release[c] = false; // an acquire flushes first
        } else if (release[c]) {
            _table.applyRelease(c);
        }
    }

    // ---- Phase 3: record the launching kernel's accesses -----------------
    for (const KernelArgAccess &a : args) {
        const int idx = _table.findOverlapping(a.span);
        TableRow *row;
        if (idx >= 0) {
            row = &_table.rows()[static_cast<std::size_t>(idx)];
        } else {
            row = &_table.insert(a.span);
            row->home = homesFor(a.span, decl, a);
        }
        row->span = AddrRange::unionOf(row->span, a.span);
        row->lastMode = a.mode;

        for (std::size_t s = 0; s < decl.chiplets.size(); ++s) {
            const ChipletId j = decl.chiplets[s];
            const DsEvent ev = a.mode == AccessMode::ReadWrite
                                   ? DsEvent::LocalWrite
                                   : DsEvent::LocalRead;
            row->state[j] = dsTransition(row->state[j], ev);
            row->range[j] =
                AddrRange::unionOf(row->range[j], a.perChiplet[s]);
        }

        if (a.mode == AccessMode::ReadWrite) {
            for (int i = 0; i < _numChiplets; ++i) {
                if (row->state[i] == DsState::NotPresent)
                    continue;
                bool scheduled = false;
                bool written = false;
                for (std::size_t s = 0; s < decl.chiplets.size(); ++s) {
                    if (decl.chiplets[s] == i) {
                        scheduled = true;
                    } else if (a.perChiplet[s].overlaps(
                                   row->effective(i))) {
                        written = true;
                    }
                }
                if (!scheduled && written) {
                    row->state[i] =
                        dsTransition(row->state[i], DsEvent::RemoteWrite);
                }
            }
        }
    }

    _table.removeEmptyRows();

    plan.acquires = maskToList(acquire);
    plan.releases = maskToList(release);
    _acquiresIssued += plan.acquires.size();
    _releasesIssued += plan.releases.size();
    // Versus the baseline's full release+acquire on every chiplet.
    _acquiresElided += _numChiplets - plan.acquires.size();
    _releasesElided +=
        _numChiplets - plan.acquires.size() - plan.releases.size();
    return plan;
}

SyncPlan
ElideEngine::finalBarrier()
{
    SyncPlan plan;
    for (int c = 0; c < _numChiplets; ++c)
        plan.releases.push_back(c);
    _releasesIssued += plan.releases.size();
    _reasons[static_cast<std::size_t>(Reason::RelFinalBarrier)] +=
        plan.releases.size();
    _table.clear();
    return plan;
}

} // namespace cpelide
