/**
 * @file
 * Simulated system parameters (paper Table I) and configuration presets.
 *
 * The baseline models an AMD Radeon VII-class GPU split into 2/4/6/7
 * chiplets. All latencies are in GPU core cycles at 1801 MHz; CP-side
 * microsecond latencies are converted with cyclesFromUs().
 */

#ifndef CPELIDE_CONFIG_GPU_CONFIG_HH
#define CPELIDE_CONFIG_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cpelide
{

/** Which coherence/synchronization configuration to simulate. */
enum class ProtocolKind
{
    /**
     * VIPER extended for chiplets (Section IV-C): remote requests
     * forwarded to the home node, local stores write-back, remote stores
     * write-through; full per-chiplet L2 flush+invalidate at every
     * kernel boundary.
     */
    Baseline,
    /** Baseline protocol + the global CP eliding per-chiplet L2 syncs. */
    CpElide,
    /**
     * HMG (write-through variant, the paper's default): hierarchical L2
     * directory, remote lines cached locally, sharer invalidations,
     * no kernel-boundary L2 operations.
     */
    Hmg,
    /** HMG write-back L2 ablation (13% worse geomean in the paper). */
    HmgWriteBack,
    /**
     * Infeasible-to-build equivalent monolithic GPU (Fig 2 reference):
     * one shared L2 of aggregate capacity, no inter-chiplet penalty,
     * no kernel-boundary L2 operations.
     */
    Monolithic,
};

/** Human-readable protocol name. */
const char *protocolName(ProtocolKind kind);

/**
 * Inverse of protocolName(), accepting the exact display names
 * ("Baseline", "CPElide", "HMG", "HMG-WB", "Monolithic") plus their
 * lower-case spellings (the serve wire protocol is case-insensitive
 * here so `simc --protocol=cpelide` works as typed).
 * @return false (leaving @p out untouched) for anything else.
 */
bool protocolFromName(const std::string &name, ProtocolKind *out);

/** All tunables of the simulated machine. */
struct GpuConfig
{
    // --- Topology -------------------------------------------------------
    int numChiplets = 4;
    int cusPerChiplet = 60;

    // --- Clocks ---------------------------------------------------------
    double gpuClockGhz = 1.801; //!< Table I: 1801 MHz
    double cpClockGhz = 1.5;    //!< Section IV-B

    // --- Cache geometry / latency (Table I) ------------------------------
    std::uint64_t l1SizeBytes = 16 * 1024;
    std::uint32_t l1Assoc = 16;
    Cycles l1Latency = 140;

    std::uint64_t l2SizeBytesPerChiplet = 8ull * 1024 * 1024;
    std::uint32_t l2Assoc = 32;
    Cycles l2LocalLatency = 269;
    Cycles l2RemoteLatency = 390;

    std::uint64_t l3SizeBytesTotal = 16ull * 1024 * 1024;
    std::uint32_t l3Assoc = 16;
    Cycles l3Latency = 330;

    Cycles ldsLatency = 65;
    Cycles dramLatency = 520; //!< HBM row access, GPU cycles (validated
                              //!< gem5 GCN3 models use ~280-300 ns total
                              //!< load-to-use; 520 core cycles here)

    // --- Bandwidth, bytes per GPU cycle ----------------------------------
    /**
     * HBM bandwidth per chiplet. Radeon VII has 1 TB/s across 4 stacks;
     * stacks are divided across chiplets, so each chiplet owns
     * 1 TB/s / numChiplets.
     */
    double dramBytesPerCycle = 0;   //!< derived; see finalize()
    /**
     * Inter-chiplet link bandwidth per chiplet. Table I gives 768 GB/s
     * aggregate; we model per-chiplet links of 768/numChiplets GB/s.
     */
    double xlinkBytesPerCycle = 0;  //!< derived; see finalize()
    /** L2 array bandwidth per chiplet (Radeon VII-class ~1.2 TB/s
     *  aggregate across four chiplets). */
    double l2BytesPerCycle = 160;
    /** On-chip L2<->L3 path per chiplet. */
    double l2l3BytesPerCycle = 128;
    /** Drain bandwidth of a bulk L2 flush (writeback path). */
    double flushBytesPerCycle = 192;

    // --- Bulk-operation costs --------------------------------------------
    /** Lines validated per cycle during a flush walk. */
    double flushWalkLinesPerCycle = 256;
    /** Fixed cost of a flash invalidate. */
    Cycles invalidateCycles = 32;

    // --- Command processor (Section IV-B) ---------------------------------
    double cpPacketUs = 2.0;    //!< local/global CP packet latency
    double cpElideProcUs = 6.0; //!< CPElide table ops + acq/rel generation
    Cycles xbarUnicast = 65;    //!< global<->local CP crossbar, unicast
    Cycles xbarBroadcast = 100; //!< global<->local CP crossbar, broadcast
    Cycles cpMemLatency = 31;   //!< CP private-memory access (CP cycles)

    // --- CPElide table sizing (Section III-A) -----------------------------
    int tableDsPerKernel = 8;
    int tableKernelDepth = 8;

    /**
     * Ablation: idealized fine-grained hardware range flush (Section
     * VI discussion) — synchronization operations still happen for
     * correctness but cost zero critical-path cycles.
     */
    bool freeSyncOps = false;

    /** Convert microseconds to GPU cycles. */
    Cycles
    cyclesFromUs(double us) const
    {
        return static_cast<Cycles>(us * gpuClockGhz * 1000.0);
    }

    int totalCus() const { return numChiplets * cusPerChiplet; }

    std::uint64_t
    l2AggregateBytes() const
    {
        return l2SizeBytesPerChiplet *
               static_cast<std::uint64_t>(numChiplets);
    }

    int tableEntries() const { return tableDsPerKernel * tableKernelDepth; }

    /** Fill derived fields; call after editing topology. */
    void finalize();

    /** The paper's simulated baseline with @p chiplets chiplets. */
    static GpuConfig radeonVii(int chiplets);

    /**
     * The "equivalent (but infeasible to build) monolithic GPU" of
     * Fig 2: same aggregate CUs, L2 capacity, and memory bandwidth as
     * an @p chiplets-chiplet GPU, but on one die — no inter-chiplet
     * penalty and no kernel-boundary L2 synchronization.
     */
    static GpuConfig monolithicEquivalent(int chiplets);

    /** Table I rendered as text (printed by every bench binary). */
    std::string describe() const;
};

} // namespace cpelide

#endif // CPELIDE_CONFIG_GPU_CONFIG_HH
