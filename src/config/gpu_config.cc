#include "config/gpu_config.hh"

#include <cctype>
#include <sstream>
#include <utility>

#include "sim/log.hh"

namespace cpelide
{

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Baseline: return "Baseline";
      case ProtocolKind::CpElide: return "CPElide";
      case ProtocolKind::Hmg: return "HMG";
      case ProtocolKind::HmgWriteBack: return "HMG-WB";
      case ProtocolKind::Monolithic: return "Monolithic";
    }
    return "?";
}

bool
protocolFromName(const std::string &name, ProtocolKind *out)
{
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name)
        lower += static_cast<char>(std::tolower(c));
    static const std::pair<const char *, ProtocolKind> kNames[] = {
        {"baseline", ProtocolKind::Baseline},
        {"cpelide", ProtocolKind::CpElide},
        {"hmg", ProtocolKind::Hmg},
        {"hmg-wb", ProtocolKind::HmgWriteBack},
        {"monolithic", ProtocolKind::Monolithic},
    };
    for (const auto &[n, kind] : kNames) {
        if (lower == n) {
            *out = kind;
            return true;
        }
    }
    return false;
}

void
GpuConfig::finalize()
{
    if (numChiplets < 1)
        fatal("numChiplets must be >= 1");
    if (cusPerChiplet < 1)
        fatal("cusPerChiplet must be >= 1");
    const double ghz = gpuClockGhz;
    // 1 TB/s of HBM divided across chiplets.
    dramBytesPerCycle = (1000.0 / numChiplets) / ghz;
    // 768 GB/s aggregate inter-chiplet bandwidth divided across chiplets.
    xlinkBytesPerCycle = (768.0 / numChiplets) / ghz;
}

GpuConfig
GpuConfig::radeonVii(int chiplets)
{
    GpuConfig cfg;
    cfg.numChiplets = chiplets;
    cfg.finalize();
    return cfg;
}

GpuConfig
GpuConfig::monolithicEquivalent(int chiplets)
{
    GpuConfig cfg;
    cfg.numChiplets = 1;
    cfg.cusPerChiplet = 60 * chiplets;
    cfg.l2SizeBytesPerChiplet = 8ull * 1024 * 1024 * chiplets;
    // One die aggregates all the chiplets' array and on-chip-path
    // bandwidth (HBM/link bandwidth aggregate via finalize()).
    cfg.l2BytesPerCycle *= chiplets;
    cfg.l2l3BytesPerCycle *= chiplets;
    cfg.flushBytesPerCycle *= chiplets;
    cfg.finalize();
    return cfg;
}

std::string
GpuConfig::describe() const
{
    std::ostringstream os;
    os << "Simulated GPU (paper Table I)\n"
       << "  GPU clock               : " << gpuClockGhz * 1000 << " MHz\n"
       << "  Chiplets                : " << numChiplets << "\n"
       << "  CUs/chiplet (total)     : " << cusPerChiplet << " ("
       << totalCus() << ")\n"
       << "  L1D / CU                : " << l1SizeBytes / 1024
       << " KB, 64B line, " << l1Assoc << "-way, " << l1Latency
       << " cyc\n"
       << "  LDS latency             : " << ldsLatency << " cyc\n"
       << "  L2 / chiplet            : "
       << l2SizeBytesPerChiplet / (1024 * 1024) << " MB, 64B line, "
       << l2Assoc << "-way, local/remote " << l2LocalLatency << "/"
       << l2RemoteLatency << " cyc, write-back\n"
       << "  L3 (shared LLC)         : " << l3SizeBytesTotal / (1024 * 1024)
       << " MB, 64B line, " << l3Assoc << "-way, " << l3Latency
       << " cyc\n"
       << "  HBM                     : " << dramLatency
       << " cyc, " << dramBytesPerCycle << " B/cyc per chiplet\n"
       << "  Inter-chiplet link      : " << xlinkBytesPerCycle
       << " B/cyc per chiplet (768 GB/s aggregate)\n"
       << "  CP packet / CPElide proc: " << cpPacketUs << " us / "
       << cpElideProcUs << " us\n"
       << "  CP crossbar uni/bcast   : " << xbarUnicast << "/"
       << xbarBroadcast << " cyc\n"
       << "  Coherence table         : " << tableDsPerKernel << " DS x "
       << tableKernelDepth << " kernels = " << tableEntries()
       << " entries\n"
       << "  Scheduling              : static kernel-wide WG partitioning\n"
       << "  Page placement          : first touch\n";
    return os.str();
}

} // namespace cpelide
