#include "prof/registry.hh"

#include <utility>

namespace cpelide::prof
{

void
ProfRegistry::addCounter(std::string name, const Counter *counter)
{
    MutexGuard lock(_mutex);
    ScalarEntry e;
    e.name = std::move(name);
    e.kind = ScalarKind::Counter;
    e.counter = counter;
    _scalars.push_back(std::move(e));
}

void
ProfRegistry::addGauge(std::string name, Gauge gauge)
{
    MutexGuard lock(_mutex);
    ScalarEntry e;
    e.name = std::move(name);
    e.kind = ScalarKind::Gauge;
    e.gauge = std::move(gauge);
    _scalars.push_back(std::move(e));
}

void
ProfRegistry::addHistogram(std::string name, const Histogram *histogram)
{
    MutexGuard lock(_mutex);
    _histograms.push_back({std::move(name), histogram});
}

void
ProfRegistry::addSeries(std::string name, Gauge gauge)
{
    MutexGuard lock(_mutex);
    SeriesEntry e;
    e.name = std::move(name);
    e.gauge = std::move(gauge);
    _series.push_back(std::move(e));
}

void
ProfRegistry::publish(std::string name, std::uint64_t value)
{
    MutexGuard lock(_mutex);
    ScalarEntry e;
    e.name = std::move(name);
    e.kind = ScalarKind::Published;
    e.published = value;
    _scalars.push_back(std::move(e));
}

void
ProfRegistry::sample(Tick now)
{
    MutexGuard lock(_mutex);
    for (SeriesEntry &e : _series)
        e.series.sample(now, e.gauge ? e.gauge() : 0);
}

ProfSnapshot
ProfRegistry::snapshot() const
{
    MutexGuard lock(_mutex);
    ProfSnapshot snap;
    snap.counters.reserve(_scalars.size());
    for (const ScalarEntry &e : _scalars) {
        std::uint64_t v = e.published;
        if (e.kind == ScalarKind::Counter && e.counter)
            v = e.counter->value();
        else if (e.kind == ScalarKind::Gauge && e.gauge)
            v = e.gauge();
        snap.counters.push_back({e.name, v});
    }
    for (const HistogramEntry &e : _histograms) {
        HistogramSnap h;
        h.name = e.name;
        if (e.histogram) {
            h.count = e.histogram->count();
            h.sum = e.histogram->sum();
            int top = -1;
            for (int b = 0; b < Histogram::kBuckets; ++b) {
                if (e.histogram->bucket(b) != 0)
                    top = b;
            }
            for (int b = 0; b <= top; ++b)
                h.buckets.push_back(e.histogram->bucket(b));
        }
        snap.histograms.push_back(std::move(h));
    }
    for (const SeriesEntry &e : _series)
        snap.series.push_back({e.name, e.series.points()});
    return snap;
}

namespace
{

// Written once during argument parsing, before any worker thread
// exists; read-only afterwards.
std::string gProfilePath;   // NOLINT(runtime/string)
bool gProfileRequested = false;

} // namespace

void
setProfileRequest(const std::string &path)
{
    gProfilePath = path;
    gProfileRequested = !path.empty();
}

bool
profileRequested()
{
    return gProfileRequested;
}

const std::string &
profilePath()
{
    return gProfilePath;
}

} // namespace cpelide::prof
