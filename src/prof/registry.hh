/**
 * @file
 * ProfRegistry: the hierarchical, thread-safe performance-counter
 * registry. One registry exists per run (wired through
 * RunOptions::prof exactly like RunOptions::trace); components
 * register their counters/histograms under slash-separated
 * hierarchical names ("chiplet0/l2/hits", "noc/link2/bytes",
 * "cp/elide/acquires-elided") at construction, and the harness
 * freezes a ProfSnapshot into the RunResult when the run completes.
 *
 * Entry kinds:
 *  - counter: a live pointer to a component's prof::Counter;
 *  - gauge:   a sampling closure for state the component already
 *             tracks in its own representation (dirty-line counts,
 *             NoC flit totals) — no layout change needed;
 *  - series:  a gauge sampled at every kernel boundary
 *             (ProfRegistry::sample), yielding a time series;
 *  - published value: a constant recorded once at end of run
 *             (the stall-attribution bins).
 *
 * Thread safety: all mutation is mutex-guarded. A single run is
 * single-threaded, but sweeps run many registries concurrently and
 * the --profile collector reads snapshots from the merge thread.
 */

#ifndef CPELIDE_PROF_REGISTRY_HH
#define CPELIDE_PROF_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "prof/counter.hh"
#include "prof/snapshot.hh"
#include "sim/thread_annotations.hh"

namespace cpelide::prof
{

class ProfRegistry
{
  public:
    using Gauge = std::function<std::uint64_t()>;

    ProfRegistry() = default;
    ProfRegistry(const ProfRegistry &) = delete;
    ProfRegistry &operator=(const ProfRegistry &) = delete;

    /** Register a live counter; read at snapshot time. */
    void addCounter(std::string name, const Counter *counter)
        CPELIDE_EXCLUDES(_mutex);

    /** Register a sampling closure; read at snapshot time. */
    void addGauge(std::string name, Gauge gauge) CPELIDE_EXCLUDES(_mutex);

    /** Register a live histogram; read at snapshot time. */
    void addHistogram(std::string name, const Histogram *histogram)
        CPELIDE_EXCLUDES(_mutex);

    /** Register a gauge sampled at every sample() call. */
    void addSeries(std::string name, Gauge gauge) CPELIDE_EXCLUDES(_mutex);

    /** Record a constant (e.g. an attribution bin) once, at end of run. */
    void publish(std::string name, std::uint64_t value)
        CPELIDE_EXCLUDES(_mutex);

    /** Append one point (at simulated @p now) to every series. */
    void sample(Tick now) CPELIDE_EXCLUDES(_mutex);

    /** Freeze everything registered so far, in registration order. */
    ProfSnapshot snapshot() const CPELIDE_EXCLUDES(_mutex);

  private:
    enum class ScalarKind { Counter, Gauge, Published };

    struct ScalarEntry
    {
        std::string name;
        ScalarKind kind = ScalarKind::Published;
        const Counter *counter = nullptr;
        Gauge gauge;
        std::uint64_t published = 0;
    };

    struct HistogramEntry
    {
        std::string name;
        const Histogram *histogram = nullptr;
    };

    struct SeriesEntry
    {
        std::string name;
        Gauge gauge;
        TimeSeries series;
    };

    mutable Mutex _mutex;
    std::vector<ScalarEntry> _scalars CPELIDE_GUARDED_BY(_mutex);
    std::vector<HistogramEntry> _histograms CPELIDE_GUARDED_BY(_mutex);
    std::vector<SeriesEntry> _series CPELIDE_GUARDED_BY(_mutex);
};

/**
 * Process-wide --profile request (set by BenchIo argument parsing
 * before any sweep thread starts, mirroring how CPELIDE_TRACE routes
 * through the TraceArchive singleton). When set, the harness attaches
 * a registry to every run even though the caller didn't pass one.
 */
void setProfileRequest(const std::string &path);

/** Whether a --profile/CPELIDE_PROFILE report was requested. */
bool profileRequested();

/** The requested report path ("" when not requested). */
const std::string &profilePath();

} // namespace cpelide::prof

#endif // CPELIDE_PROF_REGISTRY_HH
