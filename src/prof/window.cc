#include "prof/window.hh"

#include <cmath>
#include <cstring>

namespace cpelide::prof
{

WindowedHistogram::WindowedHistogram(std::uint64_t slotWidthNs, int slots)
    : _slotWidthNs(slotWidthNs < 1 ? 1 : slotWidthNs),
      _ring(static_cast<std::size_t>(slots < 1 ? 1 : slots))
{
}

void
WindowedHistogram::record(std::uint64_t nowNs, std::uint64_t value)
{
    const std::uint64_t epoch = nowNs / _slotWidthNs;
    Slot &slot = _ring[epoch % _ring.size()];
    if (slot.epoch != epoch) {
        // The ring wrapped past this slot since it was last written:
        // it now represents a fresh slot-width of time.
        slot.epoch = epoch;
        slot.count = 0;
        slot.sum = 0;
        std::memset(slot.buckets, 0, sizeof(slot.buckets));
    }
    ++slot.buckets[Histogram::bucketFor(value)];
    ++slot.count;
    slot.sum += value;
}

WindowStats
WindowedHistogram::window(std::uint64_t nowNs,
                          std::uint64_t windowNs) const
{
    WindowStats out;
    if (windowNs < 1)
        windowNs = 1;
    const std::uint64_t lo = nowNs >= windowNs ? nowNs - windowNs : 0;

    std::uint64_t buckets[Histogram::kBuckets] = {};
    for (const Slot &slot : _ring) {
        if (slot.epoch == kNoEpoch)
            continue;
        const std::uint64_t slotStart = slot.epoch * _slotWidthNs;
        // Include a slot overlapping (lo, nowNs]: its end must land
        // after the window opens and it must not start in the future.
        if (slotStart + _slotWidthNs <= lo || slotStart > nowNs)
            continue;
        out.count += slot.count;
        out.sum += slot.sum;
        for (int b = 0; b < Histogram::kBuckets; ++b)
            buckets[b] += slot.buckets[b];
    }
    out.ratePerSec =
        static_cast<double>(out.count) /
        (static_cast<double>(windowNs) / 1e9);
    out.p50 = quantileFromBuckets(buckets, out.count, 0.50);
    out.p95 = quantileFromBuckets(buckets, out.count, 0.95);
    out.p99 = quantileFromBuckets(buckets, out.count, 0.99);
    return out;
}

double
WindowedHistogram::quantileFromBuckets(
    const std::uint64_t (&buckets)[Histogram::kBuckets],
    std::uint64_t count, double q)
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-th sample, 1-based; q=0 still asks for rank 1.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;

    std::uint64_t cum = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        if (cum + buckets[b] < rank) {
            cum += buckets[b];
            continue;
        }
        if (b == 0)
            return 0.0; // the zero bucket holds exact zeros
        const double lo = static_cast<double>(Histogram::bucketLo(b));
        // Bucket b covers [lo, 2*lo); walk toward the upper bound in
        // proportion to the rank's position inside the bucket.
        const double frac = static_cast<double>(rank - cum) /
                            static_cast<double>(buckets[b]);
        return lo + lo * frac;
    }
    return 0.0; // unreachable when the bucket sums match count
}

} // namespace cpelide::prof
