/**
 * @file
 * Value types of a profiling capture: the frozen contents of a
 * ProfRegistry (counters, histograms, time series) plus the
 * stall-cycle attribution bins. Header-only and dependency-free so
 * RunResult can carry a ProfSnapshot without linking the registry.
 */

#ifndef CPELIDE_PROF_SNAPSHOT_HH
#define CPELIDE_PROF_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prof/counter.hh"

namespace cpelide::prof
{

/**
 * Where a chiplet's cycles went. Every simulated chiplet cycle is
 * charged to exactly one bin, so per chiplet the bins sum to the
 * run's total cycles (GpuSystem asserts this at end of run).
 */
enum class StallBin
{
    Compute,     //!< critical CU busy on ALU/LDS work
    Memory,      //!< critical path limited by cache/DRAM/NoC service
    BarrierWait, //!< idle at a kernel boundary (CP, peers, messaging)
    Flush,       //!< L2 writeback walk + drain on the critical path
    Invalidate,  //!< L1/L2 flash-invalidate cost
    Directory,   //!< HMG directory sharer-invalidation penalties
};

constexpr int kNumStallBins = 6;

/** Short stable bin name used in reports and counter names. */
constexpr const char *
stallBinName(StallBin b)
{
    switch (b) {
      case StallBin::Compute: return "compute";
      case StallBin::Memory: return "memory";
      case StallBin::BarrierWait: return "barrier-wait";
      case StallBin::Flush: return "flush";
      case StallBin::Invalidate: return "invalidate";
      case StallBin::Directory: return "directory";
    }
    return "?";
}

/** One scalar value (counter, gauge, or published constant). */
struct CounterSnap
{
    std::string name;
    std::uint64_t value = 0;
};

/** One histogram, buckets trimmed after the last non-zero entry. */
struct HistogramSnap
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;
};

/** One sampled time series. */
struct SeriesSnap
{
    std::string name;
    std::vector<SeriesPoint> points;
};

/**
 * The full capture of a run's profiling state, in registration order
 * (which is construction order, hence deterministic).
 */
struct ProfSnapshot
{
    std::vector<CounterSnap> counters;
    std::vector<HistogramSnap> histograms;
    std::vector<SeriesSnap> series;

    bool
    empty() const
    {
        return counters.empty() && histograms.empty() && series.empty();
    }
};

} // namespace cpelide::prof

#endif // CPELIDE_PROF_SNAPSHOT_HH
