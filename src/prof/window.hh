/**
 * @file
 * WindowedHistogram: a rolling time-window view over the log2-bucket
 * Histogram, for service-side latency quantiles and rates.
 *
 * The structure is a ring of epoch-tagged slots, each one a plain
 * log2-bucket histogram covering one slot width (1 s by default).
 * record(nowNs, v) lands v in the slot nowNs falls into, lazily
 * resetting a slot the ring has wrapped past; window(nowNs, windowNs)
 * aggregates every slot overlapping [nowNs - windowNs, nowNs] into
 * counts, a rate, and p50/p95/p99 estimates. Quantiles interpolate
 * linearly inside a log2 bucket up to its upper bound, the same
 * convention Prometheus' histogram_quantile uses, so a quantile is an
 * upper-bound estimate never more than one bucket width off.
 *
 * Unlike the rest of src/prof this type exists *for* wall-clock data —
 * but it never reads a clock itself: every timestamp is supplied by
 * the caller (src/serve, where the audited wall-clock reads live), so
 * the type stays pure, deterministic, and unit-testable with synthetic
 * time. Not thread-safe; the owner serializes access (the serve
 * telemetry layer wraps it in its one snapshot lock).
 */

#ifndef CPELIDE_PROF_WINDOW_HH
#define CPELIDE_PROF_WINDOW_HH

#include <cstdint>
#include <vector>

#include "prof/counter.hh"

namespace cpelide::prof
{

/** Aggregate of one window: counts, rate, quantile estimates. */
struct WindowStats
{
    std::uint64_t count = 0; //!< samples recorded inside the window
    std::uint64_t sum = 0;   //!< sum of those samples
    double ratePerSec = 0.0; //!< count / window length
    double p50 = 0.0;        //!< 0 when the window is empty
    double p95 = 0.0;
    double p99 = 0.0;
};

class WindowedHistogram
{
  public:
    /**
     * @p slotWidthNs is the ring granularity (and the finest window
     * worth asking for); @p slots bounds the furthest look-back to
     * slots * slotWidthNs. The defaults (1 s x 64) cover the 1s/10s/60s
     * windows the serve metrics expose.
     */
    explicit WindowedHistogram(std::uint64_t slotWidthNs = 1000000000ull,
                               int slots = 64);

    /** Record @p value at time @p nowNs. Timestamps must not move
     *  backwards by more than the ring covers (callers use a
     *  monotonic clock, so they never move backwards at all). */
    void record(std::uint64_t nowNs, std::uint64_t value);

    /** Aggregate every slot overlapping [nowNs - windowNs, nowNs]. */
    WindowStats window(std::uint64_t nowNs,
                       std::uint64_t windowNs) const;

    /**
     * Quantile estimate over raw log2 buckets: the value at rank
     * ceil(q * count), interpolated linearly inside its bucket toward
     * the bucket's upper bound. Exposed for the unit tests; 0 when
     * @p count is 0.
     */
    static double quantileFromBuckets(
        const std::uint64_t (&buckets)[Histogram::kBuckets],
        std::uint64_t count, double q);

    std::uint64_t slotWidthNs() const { return _slotWidthNs; }
    int slots() const { return static_cast<int>(_ring.size()); }

  private:
    struct Slot
    {
        /** nowNs / slotWidthNs when last written; kNoEpoch = never. */
        std::uint64_t epoch = kNoEpoch;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t buckets[Histogram::kBuckets] = {};
    };

    static constexpr std::uint64_t kNoEpoch = ~0ull;

    std::uint64_t _slotWidthNs;
    std::vector<Slot> _ring;
};

} // namespace cpelide::prof

#endif // CPELIDE_PROF_WINDOW_HH
