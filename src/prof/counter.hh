/**
 * @file
 * Typed performance-counter primitives: scalar counters, log2-bucket
 * latency histograms, and interval-sampled time series.
 *
 * Counter replaces the ad-hoc `std::uint64_t` stat members that used
 * to live in component classes (scripts/lint.py now rejects those); it
 * is always live because it costs exactly what the raw integer did.
 * Histogram and TimeSeries are the *extra* instrumentation layered on
 * top — their record paths compile to empty inline bodies when
 * CPELIDE_PROF_ENABLED is 0 (cmake -DCPELIDE_PROF=OFF), so a stripped
 * build pays nothing for them.
 *
 * Everything here is deterministic: no wall clock, no allocation order
 * dependence, values derived only from simulated events. That keeps
 * JSONL/profile output byte-identical across CPELIDE_JOBS settings.
 */

#ifndef CPELIDE_PROF_COUNTER_HH
#define CPELIDE_PROF_COUNTER_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

// Histogram/TimeSeries recording is compiled in by default; cmake
// -DCPELIDE_PROF=OFF defines this to 0 and the record paths become
// inlined no-ops (scalar Counters stay, they replace pre-existing
// stats and cost the same as the raw integer they replaced).
#ifndef CPELIDE_PROF_ENABLED
#define CPELIDE_PROF_ENABLED 1
#endif

namespace cpelide::prof
{

/**
 * A scalar event counter. Drop-in for a `std::uint64_t` member: it
 * increments, adds, assigns and implicitly converts back to the raw
 * value (varargs contexts like printf need an explicit .value()).
 */
class Counter
{
  public:
    constexpr Counter() = default;
    constexpr explicit Counter(std::uint64_t v) : _v(v) {}

    Counter &operator++() { ++_v; return *this; }
    std::uint64_t operator++(int) { return _v++; }
    Counter &operator+=(std::uint64_t n) { _v += n; return *this; }
    Counter &operator=(std::uint64_t v) { _v = v; return *this; }

    constexpr std::uint64_t value() const { return _v; }
    constexpr operator std::uint64_t() const { return _v; }

  private:
    std::uint64_t _v = 0;
};

/**
 * Log2-bucket histogram for latency-like values.
 *
 * Bucket 0 holds exact zeros; bucket k (k >= 1) holds values in
 * [2^(k-1), 2^k). The top bucket (index 64) therefore holds every
 * value >= 2^63 — recording saturates there instead of overflowing.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65;

    /** Bucket index for @p v (0 for 0, bit_width otherwise). */
    static constexpr int
    bucketFor(std::uint64_t v)
    {
        return v == 0 ? 0 : std::bit_width(v);
    }

    /** Lower bound of bucket @p b (0, then 2^(b-1)). */
    static constexpr std::uint64_t
    bucketLo(int b)
    {
        return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
    }

#if CPELIDE_PROF_ENABLED
    void
    record(std::uint64_t v)
    {
        ++_buckets[bucketFor(v)];
        ++_count;
        _sum += v;
    }
#else
    void record(std::uint64_t) {}
#endif

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t bucket(int b) const { return _buckets[b]; }

  private:
    std::uint64_t _buckets[kBuckets] = {};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0; //!< may wrap for astronomically large inputs
};

/** One sampled point of a time series (simulated tick, value). */
struct SeriesPoint
{
    Tick tick = 0;
    std::uint64_t value = 0;
};

/**
 * An interval-sampled time series. The owner (ProfRegistry) appends a
 * point per sampling interval — kernel boundaries in practice, so the
 * volume is a few hundred points per run, never per-access.
 */
class TimeSeries
{
  public:
#if CPELIDE_PROF_ENABLED
    void
    sample(Tick tick, std::uint64_t value)
    {
        _points.push_back({tick, value});
    }
#else
    void sample(Tick, std::uint64_t) {}
#endif

    const std::vector<SeriesPoint> &points() const { return _points; }

  private:
    std::vector<SeriesPoint> _points;
};

} // namespace cpelide::prof

#endif // CPELIDE_PROF_COUNTER_HH
