/**
 * @file
 * Functional + timing model of the chiplet memory hierarchy.
 *
 * MemSystem owns the per-CU L1s, per-chiplet L2s, the banked shared L3,
 * the page table, the traffic meters, and the energy model. Concrete
 * protocols (VIPER baseline, HMG) subclass it and implement the
 * below-L1 request flow.
 *
 * Timing convention: access() returns the latency the issuing CU
 * observes. Loads see the full latency chain; stores are modeled as
 * fire-and-forget through write buffers (issue cost only) — their real
 * cost is traffic/bandwidth, which is always accounted. Orderliness at
 * kernel boundaries is enforced by the explicit release (flush) and
 * acquire (invalidate) operations, exactly like the paper's protocols.
 */

#ifndef CPELIDE_COHERENCE_MEM_SYSTEM_HH
#define CPELIDE_COHERENCE_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config/gpu_config.hh"
#include "energy/energy_model.hh"
#include "mem/cache.hh"
#include "mem/data_space.hh"
#include "mem/page_table.hh"
#include "noc/noc.hh"
#include "prof/counter.hh"
#include "prof/registry.hh"
#include "sim/fault_injector.hh"
#include "stats/run_result.hh"

namespace cpelide
{

class HbChecker;
class TraceSession;

/** Which CU is issuing an access. */
struct AccessContext
{
    ChipletId chiplet = 0;
    CuId cu = 0;
};

/** Shared plumbing for all protocol implementations. */
class MemSystem
{
  public:
    MemSystem(const GpuConfig &cfg, DataSpace &space);
    virtual ~MemSystem() = default;

    MemSystem(const MemSystem &) = delete;
    MemSystem &operator=(const MemSystem &) = delete;

    /**
     * Simulate one line-granular access.
     * @param line line index within data structure @p ds.
     * @return CU-observed latency in cycles.
     */
    Cycles access(const AccessContext &ctx, DsId ds, std::uint64_t line,
                  bool isWrite);

    /**
     * System-scope atomic / cache-bypassing access: performed at the
     * home node's LLC bank, identical under every protocol. Never
     * allocates in an L1/L2, so it creates no incoherence and needs no
     * implicit synchronization.
     */
    Cycles accessBypass(const AccessContext &ctx, DsId ds,
                        std::uint64_t line, bool isWrite);

    /**
     * Implicit kernel-boundary L1 operation: invalidate every CU's L1
     * (all protocols; the paper never relaxes L1 behaviour). L1s are
     * write-through so there is nothing to flush.
     * @return cost in cycles (flash invalidate).
     */
    Cycles kernelBoundaryL1();

    /**
     * Release on chiplet @p c: write all dirty L2 data through to the
     * shared LLC. Clean copies are retained (VIPER keeps a clean copy
     * after a full-line writeback, which CPElide's lazy release relies
     * on).
     * @return cycles on the critical path.
     */
    virtual Cycles l2Release(ChipletId c);

    /**
     * Acquire on chiplet @p c: invalidate the entire L2. Dirty lines
     * (possibly belonging to *other* data structures) are flushed first
     * so no data is lost; cost includes that flush.
     * @return cycles on the critical path.
     */
    virtual Cycles l2Acquire(ChipletId c);

    /**
     * Attach a fault injector (nullptr detaches). The memory system
     * consults it on every l2Release/l2Acquire; see
     * sim/fault_injector.hh for the fault classes. Not owned.
     */
    void setFaultInjector(FaultInjector *fi) { _faults = fi; }
    FaultInjector *faultInjector() const { return _faults; }

    /**
     * Attach a trace session (nullptr detaches — the default, making
     * every instrumentation site one never-taken branch). The memory
     * system records instant events for acquire/release processing
     * (and, in HMG, directory evictions) against the session's sim-
     * time cursor. Not owned.
     */
    void setTrace(TraceSession *t) { _trace = t; }
    TraceSession *trace() const { return _trace; }

    /**
     * Attach the happens-before checker (nullptr detaches — the
     * default). The memory system reports every read, write, L2 fill,
     * and the fate of every release/invalidate (attempted vs actually
     * completed, so injected faults are distinguishable from elisions).
     * Not owned.
     */
    void setChecker(HbChecker *hb) { _check = hb; }
    HbChecker *checker() const { return _check; }

    /**
     * Post-final-barrier audit: count non-racy lines whose host-visible
     * version (the freshest of the line's L3 copy and DRAM) is not the
     * program-order latest. Always 0 for a correct protocol; a dropped
     * release leaves violations even when no later read ever touched
     * the line (which is what the staleness checker alone would miss).
     */
    std::uint64_t auditHostVisibility() const;

    /** Total dirty lines across every L2 (diagnostics, audit). */
    std::uint64_t dirtyL2Lines() const;

    /** Whether this protocol performs implicit L2 syncs per boundary. */
    virtual bool boundarySyncsL2() const = 0;

    /** Per-protocol hook run at every kernel boundary (e.g. HMG: none). */
    virtual Cycles kernelBoundaryL2() = 0;

    // --- Accessors used by the GPU layer and tests ------------------------
    const GpuConfig &config() const { return _cfg; }
    DataSpace &space() { return _space; }
    PageTable &pageTable() { return _pages; }
    Noc &noc() { return _noc; }
    EnergyModel &energy() { return _energy; }

    const LevelStats &l1Stats() const { return _l1Stats; }
    const LevelStats &l2Stats() const { return _l2Stats; }
    const LevelStats &l3Stats() const { return _l3Stats; }
    std::uint64_t dramAccesses() const { return _dramAccesses; }
    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t l2FlushesIssued() const { return _l2Flushes; }
    std::uint64_t l2InvalidatesIssued() const { return _l2Invalidates; }
    std::uint64_t linesWrittenBack() const { return _linesWrittenBack; }
    virtual std::uint64_t directoryEvictions() const { return 0; }
    virtual std::uint64_t sharerInvalidations() const { return 0; }

    /**
     * Cumulative cycles of directory sharer-invalidation penalty this
     * protocol put on access critical paths (HMG only; 0 elsewhere).
     * GpuSystem's stall attribution charges these to the Directory bin.
     */
    virtual std::uint64_t directoryStallCycles() const { return 0; }

    /**
     * Register every cache/NoC/DRAM counter of this memory system in a
     * run's profiling registry, under "chiplet<i>/..." and "mem/..."
     * prefixes. Subclasses extend (HMG adds its directory counters).
     */
    virtual void registerProf(prof::ProfRegistry &reg) const;

    /** L2 array of chiplet @p c (tests; monolithic maps all to one). */
    SetAssocCache &l2(ChipletId c) { return *_l2s[l2Index(c)]; }
    /** L1 of a specific CU (tests). */
    SetAssocCache &l1(const AccessContext &ctx)
    {
        return *_l1s[l1Index(ctx)];
    }
    /** L3 slice holding @p home's bank (tests). */
    SetAssocCache &l3(ChipletId home) { return *_l3s[l3Index(home)]; }

  protected:
    /** Below-L1 read. @return latency; fills @p versionOut. */
    virtual Cycles readBelowL1(const AccessContext &ctx, DsId ds,
                               std::uint64_t line, Addr addr,
                               std::uint32_t *versionOut) = 0;

    /** Below-L1 write of @p version. @return issue latency. */
    virtual Cycles writeBelowL1(const AccessContext &ctx, DsId ds,
                                std::uint64_t line, Addr addr,
                                std::uint32_t version) = 0;

    // --- Shared L3/DRAM path ----------------------------------------------
    /**
     * Read @p addr at the L3 bank of chiplet @p home, falling through to
     * DRAM on a miss (fill, clean). Counts l2l3 traffic + energy.
     *
     * Latencies follow Table I's load-to-use totals: @p base_latency is
     * the requester's total latency for an L3 hit (l3Latency locally,
     * l2RemoteLatency across the crossbar); a DRAM fill adds
     * dramLatency.
     * @return total latency for this fill.
     */
    Cycles l3Read(ChipletId home, DsId ds, std::uint64_t line, Addr addr,
                  std::uint32_t *versionOut, Cycles base_latency);

    /**
     * Write @p version into the L3 bank (dirty; L3 is write-back to
     * DRAM). Used for write-throughs and L2 writebacks.
     */
    void l3Write(ChipletId home, DsId ds, std::uint64_t line, Addr addr,
                 std::uint32_t version);

    /** Handle a dirty L2 victim: write it to the L3 (l2l3 traffic). */
    void writebackVictim(ChipletId home, const Evicted &victim);

    /** Account a remote crossing of 64B data between @p a and @p b. */
    void remoteDataHop(ChipletId a, ChipletId b);
    /** Account a remote control message between @p a and @p b. */
    void remoteCtrlHop(ChipletId a, ChipletId b);

    /** Cost of flushing @p dirtyLines lines + walking the array. */
    Cycles flushCost(std::uint64_t dirty_lines) const;

    std::size_t l1Index(const AccessContext &ctx) const
    {
        return static_cast<std::size_t>(ctx.chiplet) * _cfg.cusPerChiplet +
               ctx.cu;
    }
    virtual std::size_t l2Index(ChipletId c) const
    {
        return static_cast<std::size_t>(c);
    }
    virtual std::size_t l3Index(ChipletId home) const
    {
        return static_cast<std::size_t>(home);
    }

    const GpuConfig _cfg;
    DataSpace &_space;
    PageTable _pages;
    Noc _noc;
    EnergyModel _energy;

    std::vector<std::unique_ptr<SetAssocCache>> _l1s;
    std::vector<std::unique_ptr<SetAssocCache>> _l2s;
    std::vector<std::unique_ptr<SetAssocCache>> _l3s;

    LevelStats _l1Stats;
    LevelStats _l2Stats;
    LevelStats _l3Stats;
    prof::Counter _dramAccesses;
    prof::Counter _accesses;
    prof::Counter _l2Flushes;
    prof::Counter _l2Invalidates;
    prof::Counter _linesWrittenBack;

    /** CU-observed latency of every cached access (log2 buckets). */
    prof::Histogram _accessLatency;
    /** Dirty lines written back per l2Release. */
    prof::Histogram _flushDirtyLines;

    /** Fault-injection campaign driving this run, or nullptr. */
    FaultInjector *_faults = nullptr;

    /** Trace session recording this run, or nullptr (tracing off). */
    TraceSession *_trace = nullptr;

    /** Happens-before checker observing this run, or nullptr (off). */
    HbChecker *_check = nullptr;

    /** CPELIDE_MISS_DEBUG, cached once at construction (hot path). */
    bool _missDebug = false;
};

/**
 * VIPER extended for chiplets (the paper's Baseline, Section IV-C),
 * also used by CPElide (same protocol, different sync schedule) and by
 * the monolithic reference (numChiplets == 1 + no boundary syncs).
 *
 * Requests are forwarded to the home node's L2. Local stores write back
 * (dirty in home L2); remote stores write through to the LLC.
 */
class ViperMemSystem : public MemSystem
{
  public:
    /**
     * @param boundary_syncs_l2 true for Baseline (flush+invalidate all
     *        L2s every kernel boundary); false for CPElide (the elide
     *        engine schedules per-chiplet ops) and Monolithic.
     */
    ViperMemSystem(const GpuConfig &cfg, DataSpace &space,
                   bool boundary_syncs_l2);

    bool boundarySyncsL2() const override { return _boundarySyncsL2; }
    Cycles kernelBoundaryL2() override;

  protected:
    Cycles readBelowL1(const AccessContext &ctx, DsId ds,
                       std::uint64_t line, Addr addr,
                       std::uint32_t *versionOut) override;
    Cycles writeBelowL1(const AccessContext &ctx, DsId ds,
                        std::uint64_t line, Addr addr,
                        std::uint32_t version) override;

  private:
    bool _boundarySyncsL2;
};

/** Factory covering all ProtocolKind values. */
std::unique_ptr<MemSystem> makeMemSystem(const GpuConfig &cfg,
                                         ProtocolKind kind,
                                         DataSpace &space);

} // namespace cpelide

#endif // CPELIDE_COHERENCE_MEM_SYSTEM_HH
