#include "coherence/mem_system.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "check/hb_checker.hh"
#include "coherence/hmg.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "sim/sim_budget.hh"
#include "trace/trace.hh"

namespace cpelide
{

MemSystem::MemSystem(const GpuConfig &cfg, DataSpace &space)
    : _cfg(cfg), _space(space), _pages(cfg.numChiplets),
      _noc(cfg.numChiplets)
{
    _missDebug = ExecOptions::fromEnv().missDebug;
    const int num_cus = cfg.totalCus();
    _l1s.reserve(num_cus);
    for (int i = 0; i < num_cus; ++i) {
        _l1s.push_back(std::make_unique<SetAssocCache>(
            "l1." + std::to_string(i),
            CacheGeometry{cfg.l1SizeBytes, cfg.l1Assoc}));
    }
    for (int c = 0; c < cfg.numChiplets; ++c) {
        _l2s.push_back(std::make_unique<SetAssocCache>(
            "l2." + std::to_string(c),
            CacheGeometry{cfg.l2SizeBytesPerChiplet, cfg.l2Assoc}));
    }
    // L3 slices: the LLC divides across chiplets. Round each slice
    // down to a power-of-two set count (6- and 7-chiplet packages get
    // slightly less than total/chiplets of LLC, as real designs do).
    const std::uint64_t ideal = cfg.l3SizeBytesTotal / cfg.numChiplets;
    std::uint64_t slice = cfg.l3Assoc * kLineBytes;
    while (slice * 2 <= ideal)
        slice *= 2;
    for (int c = 0; c < cfg.numChiplets; ++c) {
        _l3s.push_back(std::make_unique<SetAssocCache>(
            "l3." + std::to_string(c), CacheGeometry{slice, cfg.l3Assoc}));
    }
}

Cycles
MemSystem::access(const AccessContext &ctx, DsId ds, std::uint64_t line,
                  bool isWrite)
{
    // Cooperative watchdog point: every simulated access charges one
    // work unit, so runaway workloads trip their budget even when the
    // event queue is idle.
    BudgetGuard::charge();
    ++_accesses;
    const Addr addr = _space.alloc(ds).lineAddr(line);
    SetAssocCache &l1c = *_l1s[l1Index(ctx)];
    _energy.countL1d();

    if (isWrite) {
        // Write-through, no-allocate L1: update an existing copy so
        // later reads by this CU stay coherent, then push below.
        const std::uint32_t version = _space.recordStore(ds, line);
        l1c.updateIfPresent(addr, version, /*markDirty=*/false);
        _noc.countL1L2Data();
        const Cycles lat = writeBelowL1(ctx, ds, line, addr, version);
        _accessLatency.record(lat);
        return lat;
    }

    std::uint32_t version = 0;
    if (l1c.probe(addr, &version)) {
        ++_l1Stats.hits;
        _space.checkObserved(ds, line, version);
        _accessLatency.record(_cfg.l1Latency);
        return _cfg.l1Latency;
    }
    ++_l1Stats.misses;
    _noc.countL1L2Ctrl();

    const Cycles below = readBelowL1(ctx, ds, line, addr, &version);
    _noc.countL1L2Data();

    Evicted victim;
    l1c.insert(addr, version, ds, static_cast<std::uint32_t>(line),
               /*dirty=*/false, &victim);
    // L1 is write-through: victims are clean, nothing to do.
    _space.checkObserved(ds, line, version);
    // After readBelowL1 so a fresh L2 fill refreshes the checker's
    // copy record before the read itself is judged.
    if (_check)
        _check->onRead(ctx.chiplet, ds, line, addr);
    // Table I latencies are load-to-use totals per hit level.
    _accessLatency.record(below);
    return below;
}

Cycles
MemSystem::accessBypass(const AccessContext &ctx, DsId ds,
                        std::uint64_t line, bool isWrite)
{
    BudgetGuard::charge();
    ++_accesses;
    const Addr addr = _space.alloc(ds).lineAddr(line);
    const ChipletId home = _pages.homeOf(addr, ctx.chiplet);
    const bool local = home == ctx.chiplet;

    if (isWrite) {
        const std::uint32_t version = _space.recordStore(ds, line);
        if (!local)
            remoteDataHop(ctx.chiplet, home);
        _noc.countL2L3Data();
        l3Write(home, ds, line, addr, version);
        if (_check)
            _check->onWrite(ctx.chiplet, ds, line, addr,
                            HbWriteKind::Through);
        return _cfg.l1Latency; // fire-and-forget through the queues
    }

    std::uint32_t version = 0;
    Cycles lat;
    if (!local) {
        remoteCtrlHop(ctx.chiplet, home);
        lat = l3Read(home, ds, line, addr, &version,
                     _cfg.l2RemoteLatency);
        remoteDataHop(home, ctx.chiplet);
    } else {
        lat = l3Read(home, ds, line, addr, &version, _cfg.l3Latency);
    }
    _space.checkObserved(ds, line, version);
    if (_check)
        _check->onReadBypass(ctx.chiplet, ds, line, addr);
    return lat;
}

Cycles
MemSystem::kernelBoundaryL1()
{
    for (auto &l1c : _l1s)
        l1c->invalidateAll();
    return _cfg.invalidateCycles;
}

Cycles
MemSystem::l2Release(ChipletId c)
{
    SetAssocCache &l2c = *_l2s[l2Index(c)];
    const std::uint64_t dirty = l2c.dirtyLines();
    ++_l2Flushes;
    _flushDirtyLines.record(dirty);
    if (_check)
        _check->onReleaseAttempt(c);
    if (_trace)
        _trace->instantNow("l2-release", "mem", c).arg("dirty_lines", dirty);
    Cycles faultDelay = 0;
    if (_faults) {
        switch (_faults->onFlush()) {
          case FlushFault::Drop:
            // Acked-but-lost release: the flush machinery runs (lines
            // leave the L2 clean) but the writeback payload vanishes on
            // the way to the LLC, so the newest versions silently never
            // reach L3/DRAM — exactly the incoherence the staleness
            // checker / host-visibility audit must detect.
            _faults->recordDroppedDirtyLines(dirty);
            l2c.flushAll([](const Evicted &) {});
            return flushCost(dirty);
          case FlushFault::Delay:
            faultDelay = _faults->flushDelayCycles();
            break;
          case FlushFault::None:
            break;
        }
    }
    const std::uint64_t flushed = l2c.flushAll([&](const Evicted &e) {
        // Only locally-homed lines are ever dirty (remote stores write
        // through), so the writeback target is this chiplet's L3 bank.
        writebackVictim(c, e);
    });
    _linesWrittenBack += flushed;
    // A dropped flush returns above, so it never completes the
    // checker's release edge (the join into the LLC clock is absent).
    if (_check)
        _check->onReleaseComplete(c);
    return flushCost(dirty) + faultDelay;
}

Cycles
MemSystem::l2Acquire(ChipletId c)
{
    SetAssocCache &l2c = *_l2s[l2Index(c)];
    Cycles cost = 0;
    if (l2c.dirtyLines() > 0)
        cost += l2Release(c);
    ++_l2Invalidates;
    if (_check)
        _check->onInvalidateAttempt(c);
    if (_trace)
        _trace->instantNow("l2-acquire", "mem", c);
    if (_faults && _faults->onInvalidate()) {
        // Lost invalidate: the flush half above still happened, but
        // possibly-stale clean copies survive in the L2. The checker's
        // acquire edge (LLC clock join + copy-record kill) is skipped.
        return cost + _cfg.invalidateCycles;
    }
    l2c.invalidateAll();
    if (_check)
        _check->onInvalidateComplete(c);
    return cost + _cfg.invalidateCycles;
}

std::uint64_t
MemSystem::dirtyL2Lines() const
{
    std::uint64_t dirty = 0;
    for (const auto &l2c : _l2s)
        dirty += l2c->dirtyLines();
    return dirty;
}

std::uint64_t
MemSystem::auditHostVisibility() const
{
    std::uint64_t violations = 0;
    for (std::size_t d = 0; d < _space.numAllocations(); ++d) {
        const DsId ds = static_cast<DsId>(d);
        if (_space.racy(ds))
            continue;
        const Allocation &a = _space.alloc(ds);
        for (std::uint64_t line = 0; line < a.numLines(); ++line) {
            const std::uint32_t latest = _space.latest(ds, line);
            if (latest == 0)
                continue; // never written
            const Addr addr = a.lineAddr(line);
            std::uint32_t visible = _space.memoryVersion(ds, line);
            // peekHome/peek only: the audit must not perturb placement
            // or LRU state.
            const ChipletId home = _pages.peekHome(addr);
            if (home != kNoChiplet) {
                std::uint32_t v = 0;
                if (_l3s[l3Index(home)]->peek(addr, &v) && v > visible)
                    visible = v;
            }
            if (visible != latest)
                ++violations;
        }
    }
    return violations;
}

Cycles
MemSystem::l3Read(ChipletId home, DsId ds, std::uint64_t line, Addr addr,
                  std::uint32_t *versionOut, Cycles base_latency)
{
    _noc.countL2L3Ctrl();
    SetAssocCache &slice = *_l3s[l3Index(home)];
    _energy.countL3();
    if (slice.probe(addr, versionOut)) {
        ++_l3Stats.hits;
        _noc.countL2L3Data();
        _noc.addL2l3Bytes(home, kDataBytes);
        return base_latency;
    }
    ++_l3Stats.misses;
    // Fill from this chiplet's HBM stack.
    ++_dramAccesses;
    _energy.countDram();
    _noc.addDramBytes(home, kDataBytes);
    *versionOut = _space.memoryVersion(ds, line);
    Evicted victim;
    slice.insert(addr, *versionOut, ds, static_cast<std::uint32_t>(line),
                 /*dirty=*/false, &victim);
    if (victim.valid && victim.dirty) {
        ++_dramAccesses;
        _energy.countDram();
        _noc.addDramBytes(home, kDataBytes);
        _space.commitToMemory(victim.ds, victim.dsLine, victim.version);
    }
    _noc.countL2L3Data();
    _noc.addL2l3Bytes(home, kDataBytes);
    return base_latency + _cfg.dramLatency;
}

void
MemSystem::l3Write(ChipletId home, DsId ds, std::uint64_t line, Addr addr,
                   std::uint32_t version)
{
    SetAssocCache &slice = *_l3s[l3Index(home)];
    _energy.countL3();
    _noc.addL2l3Bytes(home, kDataBytes);
    Evicted victim;
    slice.insert(addr, version, ds, static_cast<std::uint32_t>(line),
                 /*dirty=*/true, &victim);
    if (victim.valid && victim.dirty) {
        ++_dramAccesses;
        _energy.countDram();
        _noc.addDramBytes(home, kDataBytes);
        _space.commitToMemory(victim.ds, victim.dsLine, victim.version);
    }
}

void
MemSystem::writebackVictim(ChipletId home, const Evicted &victim)
{
    _noc.countL2L3Data();
    _energy.countL2();
    _noc.addL2Bytes(home, kDataBytes);
    l3Write(home, victim.ds, victim.dsLine, victim.addr, victim.version);
    // Every path that makes a dirty L2 line host-visible funnels here
    // (release flushes and capacity evictions alike), so this is the
    // checker's single publication point.
    if (_check)
        _check->onLinePublished(victim.ds, victim.dsLine, victim.addr);
}

void
MemSystem::remoteDataHop(ChipletId a, ChipletId b)
{
    _noc.countRemoteData();
    _noc.addXlinkBytes(a, kDataBytes);
    _noc.addXlinkBytes(b, kDataBytes);
}

void
MemSystem::remoteCtrlHop(ChipletId a, ChipletId b)
{
    _noc.countRemoteCtrl();
    // A control message occupies a full flit slot on each link.
    _noc.addXlinkBytes(a, 32);
    _noc.addXlinkBytes(b, 32);
}

void
MemSystem::registerProf(prof::ProfRegistry &reg) const
{
    reg.addCounter("mem/accesses", &_accesses);
    reg.addCounter("mem/dram-accesses", &_dramAccesses);
    reg.addCounter("mem/l2-flushes", &_l2Flushes);
    reg.addCounter("mem/l2-invalidates", &_l2Invalidates);
    reg.addCounter("mem/lines-written-back", &_linesWrittenBack);
    reg.addHistogram("mem/access-latency", &_accessLatency);
    reg.addHistogram("mem/flush-dirty-lines", &_flushDirtyLines);
    reg.addGauge("l1/hits", [this] { return _l1Stats.hits; });
    reg.addGauge("l1/misses", [this] { return _l1Stats.misses; });
    reg.addGauge("l2/hits", [this] { return _l2Stats.hits; });
    reg.addGauge("l2/misses", [this] { return _l2Stats.misses; });
    reg.addGauge("l3/hits", [this] { return _l3Stats.hits; });
    reg.addGauge("l3/misses", [this] { return _l3Stats.misses; });
    // Per-CU L1 arrays, per-chiplet L2s, and the L3 bank slices, each
    // under a stable hierarchical prefix.
    for (std::size_t i = 0; i < _l1s.size(); ++i) {
        const std::size_t chiplet = i / _cfg.cusPerChiplet;
        _l1s[i]->registerProf(reg, "chiplet" + std::to_string(chiplet) +
                                       "/cu" +
                                       std::to_string(
                                           i % _cfg.cusPerChiplet) +
                                       "/l1");
    }
    for (std::size_t c = 0; c < _l2s.size(); ++c) {
        _l2s[c]->registerProf(reg,
                              "chiplet" + std::to_string(c) + "/l2");
    }
    for (std::size_t c = 0; c < _l3s.size(); ++c)
        _l3s[c]->registerProf(reg, "l3/bank" + std::to_string(c));
    _noc.registerProf(reg);
}

Cycles
MemSystem::flushCost(std::uint64_t dirty_lines) const
{
    const double walk = static_cast<double>(
                            _cfg.l2SizeBytesPerChiplet / kLineBytes) /
                        _cfg.flushWalkLinesPerCycle;
    const double drain = static_cast<double>(dirty_lines * kLineBytes) /
                         _cfg.flushBytesPerCycle;
    return static_cast<Cycles>(std::max(walk, drain)) + _cfg.l3Latency;
}

// ---------------------------------------------------------------------------
// ViperMemSystem
//
// Chiplet i's L2 caches only lines homed at chiplet i. Remote requests
// are forwarded to the *home node's* L3 bank (the memory-side, shared
// ordering point) and are never allocated in any L2 — the per-chiplet
// L2s are incoherent with the rest of the system (Section II-A), so
// caching remote data would be unsafe, and indeed the paper notes
// "CPElide does not cache remote reads". This is also why implicit
// kernel-boundary synchronization is required: a store by chiplet j to a
// line homed at i goes straight to i's L3 bank, leaving any clean copy
// in i's L2 stale until i invalidates; and a dirty line in i's L2 is
// invisible to j's reads (which go to the L3 bank) until i flushes.
// ---------------------------------------------------------------------------

ViperMemSystem::ViperMemSystem(const GpuConfig &cfg, DataSpace &space,
                               bool boundary_syncs_l2)
    : MemSystem(cfg, space), _boundarySyncsL2(boundary_syncs_l2)
{}

Cycles
ViperMemSystem::kernelBoundaryL2()
{
    if (!_boundarySyncsL2)
        return 0;
    // Conservative implicit release + acquire on every chiplet; the
    // chiplets flush/invalidate in parallel, so the critical path is
    // the slowest one.
    Cycles worst = 0;
    for (ChipletId c = 0; c < _cfg.numChiplets; ++c)
        worst = std::max(worst, l2Acquire(c));
    return worst;
}

Cycles
ViperMemSystem::readBelowL1(const AccessContext &ctx, DsId ds,
                            std::uint64_t line, Addr addr,
                            std::uint32_t *versionOut)
{
    const ChipletId home = _pages.homeOf(addr, ctx.chiplet);
    if (home != ctx.chiplet) {
        // Remote read: forwarded to the home node's L3 bank; never
        // cached in an L2 (CPElide/baseline do not cache remote reads).
        // Table I: 390 cycles load-to-use for a remote bank hit.
        remoteCtrlHop(ctx.chiplet, home);
        const Cycles lat = l3Read(home, ds, line, addr, versionOut,
                                  _cfg.l2RemoteLatency);
        remoteDataHop(home, ctx.chiplet);
        return lat;
    }

    SetAssocCache &l2c = *_l2s[l2Index(home)];
    _energy.countL2();
    _noc.addL2Bytes(home, kDataBytes);
    if (l2c.probe(addr, versionOut)) {
        ++_l2Stats.hits;
        return _cfg.l2LocalLatency;
    }
    ++_l2Stats.misses;
    if (_missDebug) {
        // thread_local: concurrent sweep jobs each sample their own
        // stream rather than racing on one counter.
        static thread_local std::uint64_t n = 0;
        if (++n % 4096 == 1) {
            std::fprintf(stderr, "[rmiss] ds=%d line=%llu chiplet=%d\n",
                         ds, (unsigned long long)line, ctx.chiplet);
        }
    }
    const Cycles lat =
        l3Read(home, ds, line, addr, versionOut, _cfg.l3Latency);
    // The fill write occupies the L2 array pipeline as well (fills
    // use the dedicated fill port: half the occupancy of a demand
    // access).
    _noc.addL2Bytes(home, kDataBytes / 2);
    Evicted victim;
    l2c.insert(addr, *versionOut, ds, static_cast<std::uint32_t>(line),
               /*dirty=*/false, &victim);
    if (victim.valid && victim.dirty)
        writebackVictim(home, victim);
    if (_check)
        _check->onCopyFilled(home, ds, line, addr);
    return lat;
}

Cycles
ViperMemSystem::writeBelowL1(const AccessContext &ctx, DsId ds,
                             std::uint64_t line, Addr addr,
                             std::uint32_t version)
{
    const ChipletId home = _pages.homeOf(addr, ctx.chiplet);

    if (home == ctx.chiplet) {
        // Local store: write back — allocate dirty in the home L2.
        SetAssocCache &l2c = *_l2s[l2Index(home)];
        _energy.countL2();
        _noc.addL2Bytes(home, kDataBytes);
        if (_check)
            _check->onWrite(home, ds, line, addr, HbWriteKind::DirtyLocal);
        if (l2c.writeHit(addr, version)) {
            ++_l2Stats.hits;
        } else {
            ++_l2Stats.misses;
            if (_missDebug) {
                static thread_local std::uint64_t n = 0;
                if (++n % 4096 == 1) {
                    std::fprintf(stderr, "[wmiss] ds=%d line=%llu "
                                 "chiplet=%d\n", ds,
                                 (unsigned long long)line, ctx.chiplet);
                }
            }
            // Write-allocate WITHOUT a fetch: VIPER L2s track dirty
            // bytes per line, so stores need no read-for-ownership.
            Evicted victim;
            l2c.insert(addr, version, ds, static_cast<std::uint32_t>(line),
                       /*dirty=*/true, &victim);
            if (victim.valid && victim.dirty)
                writebackVictim(home, victim);
        }
        // Whether a hit or a write-allocate, the writer's L2 now holds
        // the line's then-current value.
        if (_check)
            _check->onCopyFilled(home, ds, line, addr);
        return _cfg.l1Latency; // store issue cost; completion is async
    }

    // Remote store: write through to the home node's LLC bank; no L2
    // is touched or allocated. Any clean copy in the home chiplet's L2
    // becomes stale — which is exactly what the implicit acquire (or
    // CPElide's tracked Stale state) exists to handle.
    remoteDataHop(ctx.chiplet, home);
    _noc.countL2L3Data();
    l3Write(home, ds, line, addr, version);
    if (_check)
        _check->onWrite(ctx.chiplet, ds, line, addr, HbWriteKind::Through);
    return _cfg.l1Latency;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<MemSystem>
makeMemSystem(const GpuConfig &cfg, ProtocolKind kind, DataSpace &space)
{
    switch (kind) {
      case ProtocolKind::Baseline:
        return std::make_unique<ViperMemSystem>(cfg, space, true);
      case ProtocolKind::CpElide:
        return std::make_unique<ViperMemSystem>(cfg, space, false);
      case ProtocolKind::Monolithic:
        if (cfg.numChiplets != 1) {
            fatal("Monolithic protocol requires a 1-chiplet config "
                  "(use GpuConfig::monolithicEquivalent)");
        }
        return std::make_unique<ViperMemSystem>(cfg, space, false);
      case ProtocolKind::Hmg:
        return std::make_unique<HmgMemSystem>(cfg, space,
                                              /*write_through=*/true);
      case ProtocolKind::HmgWriteBack:
        return std::make_unique<HmgMemSystem>(cfg, space,
                                              /*write_through=*/false);
    }
    panic("unknown ProtocolKind");
}

} // namespace cpelide
