/**
 * @file
 * HMG — Hierarchical Multi-GPU coherence (Ren et al., HPCA 2020) —
 * re-implemented for an MCM-GPU per the paper's Section IV-C.
 *
 * HMG extends coherence across chiplets so no kernel-boundary L2
 * operations are needed:
 *  - each chiplet's L2 may cache remote lines;
 *  - remote read misses are serviced by the *home chiplet's L2*, which
 *    also caches the line ("HMG caches remote accesses at their home
 *    node"), displacing the home's local data;
 *  - a per-chiplet directory tracks sharers at a granularity of one
 *    entry per FOUR cache lines (12K entries per chiplet); a write
 *    invalidates every other sharer's copies of the whole 4-line
 *    region, and a directory eviction back-invalidates the region in
 *    all sharers — the two pathologies the paper measures;
 *  - the default (paper-preferred) variant writes through every store
 *    to memory, retaining valid copies in the sender and home L2s; the
 *    write-back ablation keeps dirty data at the home L2 only.
 */

#ifndef CPELIDE_COHERENCE_HMG_HH
#define CPELIDE_COHERENCE_HMG_HH

#include <cstdint>
#include <vector>

#include "coherence/mem_system.hh"

namespace cpelide
{

/** Lines covered by one directory entry (the paper's pathology knob). */
constexpr std::uint64_t kHmgLinesPerEntry = 4;
/** Directory entries per chiplet (largest size HMG studied, in gem5). */
constexpr std::uint32_t kHmgEntriesPerChiplet = 12 * 1024;

/**
 * Set-associative sharer directory for lines homed at one chiplet.
 * Entries are allocated on any L2 fill of a covered line and evicted
 * LRU; eviction reports the victim region + sharer set so the protocol
 * can back-invalidate.
 */
class HmgDirectory
{
  public:
    /** A region evicted to make room. */
    struct VictimRegion
    {
        bool valid = false;
        Addr regionAddr = 0;       //!< first byte of the 4-line region
        std::uint32_t sharers = 0; //!< chiplet bitmask
    };

    HmgDirectory(std::uint32_t entries, std::uint32_t assoc);

    /**
     * Ensure an entry for @p addr's region exists and set @p sharer's
     * bit. @p victim receives any region evicted to make room.
     */
    void addSharer(Addr addr, ChipletId sharer, VictimRegion *victim);

    /** Sharer bitmask of @p addr's region (0 if untracked). */
    std::uint32_t sharersOf(Addr addr) const;

    /**
     * Replace the region's sharer set (after a write invalidates other
     * sharers). Allocates if absent. @p victim as in addSharer.
     */
    void setSharers(Addr addr, std::uint32_t sharers, VictimRegion *victim);

    /** Drop the entry for @p addr's region, if any. */
    void remove(Addr addr);

    std::uint64_t evictions() const { return _evictions; }
    std::uint64_t lookups() const { return _lookups; }

    static Addr regionAlign(Addr a)
    {
        return a & ~(kHmgLinesPerEntry * kLineBytes - 1);
    }

  private:
    struct Entry
    {
        Addr region = 0;
        std::uint32_t sharers = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(Addr region) const
    {
        return (region / (kHmgLinesPerEntry * kLineBytes)) & (_numSets - 1);
    }

    Entry *find(Addr region);
    const Entry *find(Addr region) const;
    /** Allocate a slot for @p region, reporting the LRU victim. */
    Entry *allocate(Addr region, VictimRegion *victim);

    std::uint32_t _assoc;
    std::uint64_t _numSets;
    std::vector<Entry> _entries;
    std::uint64_t _useClock = 0;
    prof::Counter _evictions;
    mutable prof::Counter _lookups; //!< counted in const probes too
};

/** HMG memory system; see file header. */
class HmgMemSystem : public MemSystem
{
  public:
    HmgMemSystem(const GpuConfig &cfg, DataSpace &space, bool write_through);

    bool boundarySyncsL2() const override { return false; }
    Cycles kernelBoundaryL2() override { return 0; }

    std::uint64_t directoryEvictions() const override;
    std::uint64_t sharerInvalidations() const override
    {
        return _sharerInvalidations;
    }
    std::uint64_t directoryStallCycles() const override
    {
        return _directoryStallCycles;
    }

    void registerProf(prof::ProfRegistry &reg) const override;

    /** Directory of lines homed at @p c (tests). */
    HmgDirectory &directory(ChipletId c) { return _dirs[c]; }

  protected:
    Cycles readBelowL1(const AccessContext &ctx, DsId ds,
                       std::uint64_t line, Addr addr,
                       std::uint32_t *versionOut) override;
    Cycles writeBelowL1(const AccessContext &ctx, DsId ds,
                        std::uint64_t line, Addr addr,
                        std::uint32_t version) override;

  private:
    /**
     * Invalidate the 4-line region @p regionAddr in every chiplet of
     * @p sharerMask except @p except1/@p except2, writing back any
     * dirty copies (write-back variant). Counts invalidation traffic
     * from home @p home.
     * @return crossbar round-trip cycles if any sharer was reached.
     */
    Cycles invalidateRegion(ChipletId home, Addr regionAddr,
                            std::uint32_t sharerMask, ChipletId except1,
                            ChipletId except2);

    /**
     * Register @p sharer for @p addr, handling directory evictions.
     * @return invalidation round-trip cycles charged to the access
     *         that displaced the entry (the requester waits for acks).
     */
    Cycles trackSharer(ChipletId home, Addr addr, ChipletId sharer);

    /** Write a line into chiplet @p c's L2, handling dirty victims. */
    void fillL2(ChipletId c, Addr addr, std::uint32_t version, DsId ds,
                std::uint64_t line, bool dirty);

    bool _writeThrough;
    std::vector<HmgDirectory> _dirs;
    prof::Counter _sharerInvalidations;
    /** Ack round-trip cycles charged to accesses by the directory. */
    prof::Counter _directoryStallCycles;
};

} // namespace cpelide

#endif // CPELIDE_COHERENCE_HMG_HH
