#include "coherence/hmg.hh"

#include <string>

#include "check/hb_checker.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace cpelide
{

// ---------------------------------------------------------------------------
// HmgDirectory
// ---------------------------------------------------------------------------

namespace
{

constexpr std::uint32_t kDirAssoc = 8;

std::uint64_t
floorPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

HmgDirectory::HmgDirectory(std::uint32_t entries, std::uint32_t assoc)
    : _assoc(assoc), _numSets(floorPow2(entries / assoc))
{
    panicIf(_numSets == 0, "directory too small");
    _entries.resize(_numSets * _assoc);
}

HmgDirectory::Entry *
HmgDirectory::find(Addr region)
{
    ++_lookups;
    Entry *set = &_entries[setIndex(region) * _assoc];
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].valid && set[w].region == region)
            return &set[w];
    }
    return nullptr;
}

const HmgDirectory::Entry *
HmgDirectory::find(Addr region) const
{
    return const_cast<HmgDirectory *>(this)->find(region);
}

HmgDirectory::Entry *
HmgDirectory::allocate(Addr region, VictimRegion *victim)
{
    if (victim)
        victim->valid = false;
    Entry *set = &_entries[setIndex(region) * _assoc];
    Entry *slot = nullptr;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (!set[w].valid) {
            slot = &set[w];
            break;
        }
        if (!slot || set[w].lastUse < slot->lastUse)
            slot = &set[w];
    }
    if (slot->valid) {
        ++_evictions;
        if (victim) {
            victim->valid = true;
            victim->regionAddr = slot->region;
            victim->sharers = slot->sharers;
        }
    }
    slot->valid = true;
    slot->region = region;
    slot->sharers = 0;
    slot->lastUse = ++_useClock;
    return slot;
}

void
HmgDirectory::addSharer(Addr addr, ChipletId sharer, VictimRegion *victim)
{
    const Addr region = regionAlign(addr);
    Entry *e = find(region);
    if (!e) {
        e = allocate(region, victim);
    } else if (victim) {
        victim->valid = false;
    }
    e->sharers |= 1u << sharer;
    e->lastUse = ++_useClock;
}

std::uint32_t
HmgDirectory::sharersOf(Addr addr) const
{
    const Entry *e = find(regionAlign(addr));
    return e ? e->sharers : 0;
}

void
HmgDirectory::setSharers(Addr addr, std::uint32_t sharers,
                         VictimRegion *victim)
{
    const Addr region = regionAlign(addr);
    Entry *e = find(region);
    if (!e) {
        e = allocate(region, victim);
    } else if (victim) {
        victim->valid = false;
    }
    e->sharers = sharers;
    e->lastUse = ++_useClock;
}

void
HmgDirectory::remove(Addr addr)
{
    if (Entry *e = find(regionAlign(addr)))
        e->valid = false;
}

// ---------------------------------------------------------------------------
// HmgMemSystem
// ---------------------------------------------------------------------------

HmgMemSystem::HmgMemSystem(const GpuConfig &cfg, DataSpace &space,
                           bool write_through)
    : MemSystem(cfg, space), _writeThrough(write_through)
{
    _dirs.reserve(cfg.numChiplets);
    for (int c = 0; c < cfg.numChiplets; ++c)
        _dirs.emplace_back(kHmgEntriesPerChiplet, kDirAssoc);
}

std::uint64_t
HmgMemSystem::directoryEvictions() const
{
    std::uint64_t total = 0;
    for (const auto &d : _dirs)
        total += d.evictions();
    return total;
}

void
HmgMemSystem::registerProf(prof::ProfRegistry &reg) const
{
    MemSystem::registerProf(reg);
    reg.addCounter("hmg/sharer-invalidations", &_sharerInvalidations);
    reg.addCounter("hmg/directory-stall-cycles", &_directoryStallCycles);
    for (std::size_t c = 0; c < _dirs.size(); ++c) {
        const std::string dir =
            "chiplet" + std::to_string(c) + "/dir/";
        reg.addGauge(dir + "lookups",
                     [this, c] { return _dirs[c].lookups(); });
        reg.addGauge(dir + "evictions",
                     [this, c] { return _dirs[c].evictions(); });
    }
}

void
HmgMemSystem::fillL2(ChipletId c, Addr addr, std::uint32_t version,
                     DsId ds, std::uint64_t line, bool dirty)
{
    // The fill write occupies the L2 array pipeline (fill port).
    _noc.addL2Bytes(c, kDataBytes / 2);
    Evicted victim;
    _l2s[c]->insert(addr, version, ds, static_cast<std::uint32_t>(line),
                    dirty, &victim);
    if (victim.valid && victim.dirty) {
        // Dirty lines live only at their home L2 in the write-back
        // variant, so the victim is homed here.
        writebackVictim(c, victim);
    }
    if (_check)
        _check->onCopyFilled(c, ds, line, addr);
}

Cycles
HmgMemSystem::invalidateRegion(ChipletId home, Addr regionAddr,
                               std::uint32_t sharerMask, ChipletId except1,
                               ChipletId except2)
{
    Cycles penalty = 0;
    std::uint64_t extracted = 0;
    for (ChipletId s = 0; s < _cfg.numChiplets; ++s) {
        if (!(sharerMask & (1u << s)) || s == except1 || s == except2)
            continue;
        // Invalidate message + ack across the crossbar (home-local
        // sharers use the on-chip path; counted only when remote).
        if (s != home) {
            remoteCtrlHop(home, s);
            remoteCtrlHop(s, home);
            // The displacing request waits for the ack round trip.
            penalty = 2 * _cfg.xbarUnicast;
        }
        for (std::uint64_t i = 0; i < kHmgLinesPerEntry; ++i) {
            const Addr a = regionAddr + i * kLineBytes;
            // The sharer is invalidated for the whole region whether or
            // not each line is still resident.
            if (_check)
                _check->onLineInvalidated(s, a);
            Evicted e;
            if (_l2s[s]->extractLine(a, &e)) {
                ++_sharerInvalidations;
                ++extracted;
                if (s != home) {
                    // Per-line invalidation + ack on the crossbar.
                    remoteCtrlHop(home, s);
                    remoteCtrlHop(s, home);
                }
                if (e.dirty)
                    writebackVictim(s, e);
            }
        }
    }
    if (_trace && extracted) {
        _trace->instantNow("sharer-inval", "hmg", home)
            .arg("lines", extracted)
            .arg("sharers", sharerMask);
    }
    // Every caller puts the ack wait on an access's critical path, so
    // the attribution's Directory bin can charge it from here.
    _directoryStallCycles += penalty;
    return penalty;
}

Cycles
HmgMemSystem::trackSharer(ChipletId home, Addr addr, ChipletId sharer)
{
    // The directory lives beside the home L2's tags; every update
    // occupies that pipeline (a big part of why HMG falls behind the
    // Baseline on miss-heavy, low-reuse workloads in the paper).
    _noc.addL2Bytes(home, 32);
    HmgDirectory::VictimRegion victim;
    _dirs[home].addSharer(addr, sharer, &victim);
    if (victim.valid) {
        // Directory eviction: back-invalidate the region everywhere;
        // the displacing request stalls for the acknowledgments.
        if (_trace) {
            _trace->instantNow("dir-evict", "hmg", home)
                .arg("sharers", victim.sharers);
        }
        return invalidateRegion(home, victim.regionAddr, victim.sharers,
                                kNoChiplet, kNoChiplet);
    }
    return 0;
}

Cycles
HmgMemSystem::readBelowL1(const AccessContext &ctx, DsId ds,
                          std::uint64_t line, Addr addr,
                          std::uint32_t *versionOut)
{
    SetAssocCache &own = *_l2s[ctx.chiplet];
    _energy.countL2();
    _noc.addL2Bytes(ctx.chiplet, kDataBytes);
    if (own.probe(addr, versionOut)) {
        ++_l2Stats.hits;
        return _cfg.l2LocalLatency;
    }
    ++_l2Stats.misses;

    const ChipletId home = _pages.homeOf(addr, ctx.chiplet);
    Cycles lat;
    if (home == ctx.chiplet) {
        lat = l3Read(home, ds, line, addr, versionOut, _cfg.l3Latency);
    } else {
        // Forward to the home chiplet's L2 (HMG's hierarchical step).
        remoteCtrlHop(ctx.chiplet, home);
        lat = _cfg.l2RemoteLatency;
        _energy.countL2();
        _noc.addL2Bytes(home, kDataBytes);
        bool homeDirty = false;
        _l2s[home]->peek(addr, nullptr, &homeDirty);
        if (_l2s[home]->probe(addr, versionOut)) {
            ++_l2Stats.hits;
            if (!_writeThrough && homeDirty) {
                // Write-back variant: the home L2 owns the only copy;
                // fetching dirty data needs the owner-forwarding step
                // (part of why the paper found WB 13% slower).
                lat += _cfg.l3Latency;
            }
        } else {
            ++_l2Stats.misses;
            lat = l3Read(home, ds, line, addr, versionOut,
                         _cfg.l2RemoteLatency);
            // The home node caches remote-requested data, displacing
            // its own local data (a pathology the paper measures).
            fillL2(home, addr, *versionOut, ds, line, /*dirty=*/false);
            lat += trackSharer(home, addr, home);
        }
        remoteDataHop(home, ctx.chiplet);
    }

    fillL2(ctx.chiplet, addr, *versionOut, ds, line, /*dirty=*/false);
    lat += trackSharer(home, addr, ctx.chiplet);
    return lat;
}

Cycles
HmgMemSystem::writeBelowL1(const AccessContext &ctx, DsId ds,
                           std::uint64_t line, Addr addr,
                           std::uint32_t version)
{
    const ChipletId home = _pages.homeOf(addr, ctx.chiplet);
    const Addr region = HmgDirectory::regionAlign(addr);

    // Invalidate every other sharer's copies of the whole 4-line region
    // (entry granularity is the directory's, not the line's). The
    // writer waits for the acknowledgments. The lookup + sharer-set
    // update occupy the home directory's pipeline.
    _noc.addL2Bytes(home, 64);
    const std::uint32_t mask = _dirs[home].sharersOf(addr);
    Cycles penalty =
        invalidateRegion(home, region, mask, ctx.chiplet, home);

    _energy.countL2();
    // A write-through store occupies the L2 pipeline twice: once to
    // update the array, once to drain toward the LLC/memory.
    _noc.addL2Bytes(ctx.chiplet,
                    _writeThrough ? 2 * kDataBytes : kDataBytes);
    if (_writeThrough) {
        // Sender and home retain valid (clean) copies; the store is
        // written through to the home's LLC bank / memory.
        if (_check)
            _check->onWrite(ctx.chiplet, ds, line, addr,
                            HbWriteKind::Through);
        fillL2(ctx.chiplet, addr, version, ds, line, /*dirty=*/false);
        if (home != ctx.chiplet) {
            remoteDataHop(ctx.chiplet, home);
            _energy.countL2();
            _noc.addL2Bytes(home, kDataBytes);
            fillL2(home, addr, version, ds, line, /*dirty=*/false);
        }
        _noc.countL2L3Data();
        _noc.countL2L3Ctrl(); // write-through ack
        // The store is written through to memory. The memory
        // controller write-combines back-to-back stores to a line
        // already in flight (dirty in the LLC); a line's first
        // write-through since its last eviction reaches DRAM.
        {
            bool l3Dirty = false;
            const bool present = l3(home).peek(addr, nullptr, &l3Dirty);
            if (!present || !l3Dirty) {
                ++_dramAccesses;
                _energy.countDram();
                _noc.addDramBytes(home, kDataBytes);
            }
        }
        l3Write(home, ds, line, addr, version);
        _space.commitToMemory(ds, line, version);
    } else {
        // Write-back ablation: the home L2 owns the only dirty copy;
        // the sender does not allocate (losing sender-side locality,
        // the "reduced precise tracking benefit" the paper describes).
        if (_check)
            _check->onWrite(ctx.chiplet, ds, line, addr,
                            HbWriteKind::HomeOwned);
        if (home == ctx.chiplet) {
            if (_l2s[home]->writeHit(addr, version)) {
                if (_check)
                    _check->onCopyFilled(home, ds, line, addr);
            } else {
                // No read-for-ownership (dirty-byte masks).
                fillL2(home, addr, version, ds, line, /*dirty=*/true);
            }
        } else {
            remoteDataHop(ctx.chiplet, home);
            _energy.countL2();
            _noc.addL2Bytes(home, kDataBytes);
            if (_l2s[ctx.chiplet]->updateIfPresent(addr, version,
                                                   /*markDirty=*/false)) {
                if (_check)
                    _check->onCopyFilled(ctx.chiplet, ds, line, addr);
            }
            if (_l2s[home]->writeHit(addr, version)) {
                if (_check)
                    _check->onCopyFilled(home, ds, line, addr);
            } else {
                fillL2(home, addr, version, ds, line, /*dirty=*/true);
            }
        }
    }

    HmgDirectory::VictimRegion victim;
    _dirs[home].setSharers(
        addr, (1u << ctx.chiplet) | (1u << home), &victim);
    if (victim.valid) {
        if (_trace) {
            _trace->instantNow("dir-evict", "hmg", home)
                .arg("sharers", victim.sharers);
        }
        penalty += invalidateRegion(home, victim.regionAddr,
                                    victim.sharers, kNoChiplet,
                                    kNoChiplet);
    }
    return _cfg.l1Latency + penalty;
}

} // namespace cpelide
