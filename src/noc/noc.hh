/**
 * @file
 * Interconnect traffic accounting (Fig 10) and per-kernel bandwidth
 * bookkeeping for the roofline timing model.
 *
 * Traffic is counted in flits, matching the paper's Fig 10 categories:
 *   - l1l2: intra-chiplet traffic between the CUs' L1s and the L2;
 *   - l2l3: traffic between per-chiplet L2s and the shared LLC/HBM
 *           (fills, writebacks, write-throughs);
 *   - remote: anything crossing the inter-chiplet crossbar (forwarded
 *           requests/responses, sharer invalidations, CP sync messages).
 *
 * A 64 B data message is kDataFlits flits; a request/ack/invalidate
 * control message is one flit.
 */

#ifndef CPELIDE_NOC_NOC_HH
#define CPELIDE_NOC_NOC_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "prof/registry.hh"
#include "sim/types.hh"

namespace cpelide
{

/** Flits per 64-byte data message (4 x 16B payload + 1 header). */
constexpr std::uint64_t kDataFlits = 5;
/** Flits per control message (request, ack, invalidate). */
constexpr std::uint64_t kCtrlFlits = 1;
/** Bytes conveyed per data message (one cache line). */
constexpr std::uint64_t kDataBytes = kLineBytes;

/** Fig 10 traffic categories. */
struct FlitCounts
{
    std::uint64_t l1l2 = 0;
    std::uint64_t l2l3 = 0;
    std::uint64_t remote = 0;

    std::uint64_t total() const { return l1l2 + l2l3 + remote; }

    FlitCounts &
    operator+=(const FlitCounts &o)
    {
        l1l2 += o.l1l2;
        l2l3 += o.l2l3;
        remote += o.remote;
        return *this;
    }
};

/**
 * Traffic meter for the whole package. Also tracks, per chiplet, the
 * bytes moved over the chiplet's HBM stack and inter-chiplet link since
 * the last beginKernel(), which the timing model turns into bandwidth
 * lower bounds on kernel duration.
 */
class Noc
{
  public:
    explicit Noc(int num_chiplets)
        : _dramBytes(num_chiplets, 0), _xlinkBytes(num_chiplets, 0),
          _l2l3Bytes(num_chiplets, 0), _l2Bytes(num_chiplets, 0),
          _dramBytesTotal(num_chiplets, 0),
          _xlinkBytesTotal(num_chiplets, 0),
          _l2l3BytesTotal(num_chiplets, 0),
          _l2BytesTotal(num_chiplets, 0),
          _xlinkPeakKernelBytes(num_chiplets, 0)
    {}

    // --- Fig 10 counters --------------------------------------------------
    void countL1L2Data() { _flits.l1l2 += kDataFlits; }
    void countL1L2Ctrl() { _flits.l1l2 += kCtrlFlits; }
    void countL2L3Data() { _flits.l2l3 += kDataFlits; }
    void countL2L3Ctrl() { _flits.l2l3 += kCtrlFlits; }
    void countRemoteData() { _flits.remote += kDataFlits; }
    void countRemoteCtrl() { _flits.remote += kCtrlFlits; }

    const FlitCounts &flits() const { return _flits; }

    // --- Per-kernel bandwidth accounting -----------------------------------
    /** Reset the per-chiplet byte meters at a kernel launch. */
    void
    beginKernel()
    {
        // Fold the finished kernel's link load into the peak meter
        // before resetting — the profiler's proxy for peak queue
        // pressure on each inter-chiplet link.
        for (std::size_t c = 0; c < _xlinkBytes.size(); ++c) {
            _xlinkPeakKernelBytes[c] =
                std::max(_xlinkPeakKernelBytes[c], _xlinkBytes[c]);
        }
        std::fill(_dramBytes.begin(), _dramBytes.end(), 0);
        std::fill(_xlinkBytes.begin(), _xlinkBytes.end(), 0);
        std::fill(_l2l3Bytes.begin(), _l2l3Bytes.end(), 0);
        std::fill(_l2Bytes.begin(), _l2Bytes.end(), 0);
    }

    /** @p bytes moved over chiplet @p c's HBM stack. */
    void
    addDramBytes(ChipletId c, std::uint64_t bytes)
    {
        _dramBytes[c] += bytes;
        _dramBytesTotal[c] += bytes;
    }

    /** @p bytes crossed chiplet @p c's inter-chiplet link. */
    void
    addXlinkBytes(ChipletId c, std::uint64_t bytes)
    {
        _xlinkBytes[c] += bytes;
        _xlinkBytesTotal[c] += bytes;
    }

    /** @p bytes moved on chiplet @p c's L2<->L3 path. */
    void
    addL2l3Bytes(ChipletId c, std::uint64_t bytes)
    {
        _l2l3Bytes[c] += bytes;
        _l2l3BytesTotal[c] += bytes;
    }

    /** @p bytes moved through chiplet @p c's L2 arrays. */
    void
    addL2Bytes(ChipletId c, std::uint64_t bytes)
    {
        _l2Bytes[c] += bytes;
        _l2BytesTotal[c] += bytes;
    }

    std::uint64_t dramBytes(ChipletId c) const { return _dramBytes[c]; }
    std::uint64_t l2Bytes(ChipletId c) const { return _l2Bytes[c]; }
    std::uint64_t xlinkBytes(ChipletId c) const { return _xlinkBytes[c]; }
    std::uint64_t l2l3Bytes(ChipletId c) const { return _l2l3Bytes[c]; }

    /**
     * Register the package-wide flit counters and the per-link
     * lifetime byte meters (utilization) plus the per-kernel peak
     * inter-chiplet link load (queue-pressure proxy).
     */
    void
    registerProf(prof::ProfRegistry &reg) const
    {
        reg.addGauge("noc/flits/l1l2", [this] { return _flits.l1l2; });
        reg.addGauge("noc/flits/l2l3", [this] { return _flits.l2l3; });
        reg.addGauge("noc/flits/remote",
                     [this] { return _flits.remote; });
        for (std::size_t c = 0; c < _dramBytesTotal.size(); ++c) {
            const std::string link =
                "noc/chiplet" + std::to_string(c) + "/";
            reg.addGauge(link + "dram-bytes",
                         [this, c] { return _dramBytesTotal[c]; });
            reg.addGauge(link + "xlink-bytes",
                         [this, c] { return _xlinkBytesTotal[c]; });
            reg.addGauge(link + "l2l3-bytes",
                         [this, c] { return _l2l3BytesTotal[c]; });
            reg.addGauge(link + "l2-bytes",
                         [this, c] { return _l2BytesTotal[c]; });
            reg.addGauge(link + "xlink-peak-kernel-bytes", [this, c] {
                return std::max(_xlinkPeakKernelBytes[c],
                                _xlinkBytes[c]);
            });
        }
    }

  private:
    FlitCounts _flits;
    std::vector<std::uint64_t> _dramBytes;
    std::vector<std::uint64_t> _xlinkBytes;
    std::vector<std::uint64_t> _l2l3Bytes;
    std::vector<std::uint64_t> _l2Bytes;
    std::vector<std::uint64_t> _dramBytesTotal;
    std::vector<std::uint64_t> _xlinkBytesTotal;
    std::vector<std::uint64_t> _l2l3BytesTotal;
    std::vector<std::uint64_t> _l2BytesTotal;
    std::vector<std::uint64_t> _xlinkPeakKernelBytes;
};

} // namespace cpelide

#endif // CPELIDE_NOC_NOC_HH
