/**
 * @file
 * Vector clocks for the happens-before checker.
 *
 * One clock component per chiplet, advanced at kernel-chunk granularity:
 * a chiplet's own component is its current execution epoch, and the
 * remaining components record the newest epoch of every other chiplet
 * whose writes are guaranteed visible here through completed
 * release/acquire edges (L2 flushes and invalidates routed through the
 * shared LLC clock — see check/hb_checker.hh).
 */

#ifndef CPELIDE_CHECK_VECTOR_CLOCK_HH
#define CPELIDE_CHECK_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace cpelide
{

/** Fixed-width vector clock over chiplet execution epochs. */
class VectorClock
{
  public:
    explicit VectorClock(std::size_t n) : _t(n, 0) {}

    std::size_t size() const { return _t.size(); }

    /** Epoch recorded for component @p i. */
    std::uint64_t of(std::size_t i) const { return _t[i]; }

    /** Begin a new epoch on component @p i (kernel-chunk start). */
    void advance(std::size_t i) { ++_t[i]; }

    /** Element-wise maximum: absorb everything @p o has seen. */
    void
    join(const VectorClock &o)
    {
        for (std::size_t i = 0; i < _t.size(); ++i)
            _t[i] = std::max(_t[i], o._t[i]);
    }

    /**
     * Whether this clock happens-before-or-equals @p o (every
     * component <=). Two clocks can be incomparable: neither leq the
     * other means the epochs are concurrent.
     */
    bool
    leq(const VectorClock &o) const
    {
        for (std::size_t i = 0; i < _t.size(); ++i) {
            if (_t[i] > o._t[i])
                return false;
        }
        return true;
    }

    bool
    operator==(const VectorClock &o) const
    {
        return _t == o._t;
    }

    /** "[e0,e1,...]" — used in violation edge traces. */
    std::string
    str() const
    {
        std::string s = "[";
        for (std::size_t i = 0; i < _t.size(); ++i) {
            if (i)
                s += ',';
            s += std::to_string(_t[i]);
        }
        s += ']';
        return s;
    }

  private:
    std::vector<std::uint64_t> _t;
};

} // namespace cpelide

#endif // CPELIDE_CHECK_VECTOR_CLOCK_HH
