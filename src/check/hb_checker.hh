/**
 * @file
 * Happens-before race & staleness checker for elision decisions.
 *
 * An opt-in (CPELIDE_CHECK=1, or RunOptions::check) verifier that runs
 * alongside the simulation and independently re-derives whether every
 * device-memory read is ordered after the write it may observe. It
 * deliberately does NOT consult the golden version tags in DataSpace:
 * where the staleness checker compares data versions, this checker
 * reconstructs the synchronization order itself, so it can name the
 * exact release/acquire edge a wrong elision (or an injected fault)
 * removed.
 *
 * Model:
 *  - one VectorClock per chiplet, its own component advanced at the
 *    start of every kernel chunk it executes (kernel-chunk epochs);
 *  - a shared LLC clock M: a *completed* L2 release (flush) of chiplet
 *    c joins VC[c] into M; a *completed* L2 invalidate (acquire) on
 *    chiplet r joins M into VC[r]. Dropped flushes and skipped
 *    invalidates never perform their join, so the happens-before edge
 *    they were supposed to create is simply absent;
 *  - per line: the last writer (chiplet, epoch, kernel) plus whether
 *    the written value has reached the LLC (publication happens at the
 *    actual writeback — an L2 flush or dirty eviction — so a dropped
 *    flush publishes nothing), and, per chiplet, whether that chiplet
 *    still caches an older copy of the line (copy records, killed by
 *    completed invalidates and by HMG's per-line invalidation
 *    messages).
 *
 * A read by chiplet r of a line last written by chiplet w at epoch e
 * is ordered iff e <= VC[r][w] (the fast path), or, in detail, iff the
 * write is published when the protocol serves the read from the LLC
 * and r holds no copy older than the write. Anything else is reported
 * as a violation with a full edge trace: the writer and reader kernels
 * and chiplets, whether the missing release/acquire was never issued
 * (elided — the sync plan of the reader's launch is quoted) or issued
 * but lost (an injected fault), and the vector clocks involved.
 *
 * Relation to the other checkers: the staleness checker flags a wrong
 * value only when it is actually read; the host-visibility audit flags
 * unpublished data only at the end of the run; this checker subsumes
 * both detection channels (reads via onRead, end-state via finalize())
 * while attributing each finding to the missing ordering edge.
 */

#ifndef CPELIDE_CHECK_HB_CHECKER_HH
#define CPELIDE_CHECK_HB_CHECKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/vector_clock.hh"
#include "prof/counter.hh"
#include "sim/types.hh"

namespace cpelide
{

class DataSpace;

/** How a store interacts with the hierarchy (decided per protocol). */
enum class HbWriteKind : std::uint8_t
{
    /**
     * Dirty in the writer's own L2 (VIPER local store): invisible to
     * every other chiplet until a release writes it back to the LLC.
     */
    DirtyLocal,
    /**
     * Written through to the home LLC bank at store time (VIPER remote
     * store, HMG write-through, bypass/system-scope stores): published
     * immediately; only stale cached copies can misorder readers.
     */
    Through,
    /**
     * Dirty at the *home* chiplet's L2 (HMG write-back): cross-chiplet
     * reads are served by home-forwarding, so publication is only
     * needed for end-of-run host visibility.
     */
    HomeOwned,
};

/** One detected ordering violation, with its edge trace. */
struct HbViolation
{
    enum class Kind : std::uint8_t
    {
        MissingRelease, //!< unpublished write observed across chiplets
        MissingAcquire, //!< reader retains a copy older than the write
        HostInvisible,  //!< write never reached LLC by end of run
    };

    Kind kind = Kind::MissingRelease;
    DsId ds = -1;
    std::uint64_t line = 0;
    Addr addr = 0;
    ChipletId writer = kNoChiplet;
    std::uint64_t writerKernel = 0; //!< 1-based launch index
    ChipletId reader = kNoChiplet;  //!< kNoChiplet for HostInvisible
    std::uint64_t readerKernel = 0;
    /** Full human-readable edge trace (kernels, chiplets, elision). */
    std::string message;
};

/** The happens-before verifier; one instance per GpuSystem run. */
class HbChecker
{
  public:
    /**
     * @param num_chiplets clock width.
     * @param space used for allocation names and racy exemptions; must
     *        outlive the checker. Racy-marked structures are skipped
     *        entirely, exactly like the staleness checker.
     */
    HbChecker(int num_chiplets, const DataSpace &space);

    // --- Launch lifecycle (GpuSystem / GlobalCp) --------------------------
    /** A kernel is about to synchronize+launch on @p sched chiplets. */
    void beginKernel(std::uint64_t id, const std::string &name,
                     const std::vector<ChipletId> &sched);
    /**
     * The CP's synchronization decision for the current launch: the
     * per-chiplet acquire/release ops it will issue. Quoted verbatim
     * in violation reports so a wrongful elision is named.
     */
    void onSyncDecision(const std::vector<ChipletId> &acquires,
                        const std::vector<ChipletId> &releases,
                        std::uint64_t elided_acquires,
                        std::uint64_t elided_releases, bool conservative);
    /** Launch sync done; chunks start executing (epochs advance). */
    void onKernelExecuting();

    // --- L2 synchronization operations (MemSystem) ------------------------
    /** An L2 release (flush) of chiplet @p c was issued. */
    void onReleaseAttempt(ChipletId c);
    /** The release completed (writebacks performed, not dropped). */
    void onReleaseComplete(ChipletId c);
    /** An L2 invalidate (acquire) on chiplet @p c was issued. */
    void onInvalidateAttempt(ChipletId c);
    /** The invalidate completed (the L2 really was emptied). */
    void onInvalidateComplete(ChipletId c);
    /** A line's current value was written back to the LLC. */
    void onLinePublished(DsId ds, std::uint64_t line, Addr addr);
    /** HMG: chiplet @p c received an invalidation message for @p addr. */
    void onLineInvalidated(ChipletId c, Addr addr);

    // --- Accesses (protocol request paths) --------------------------------
    /** Chiplet @p c stored to the line; @p kind per the protocol. */
    void onWrite(ChipletId c, DsId ds, std::uint64_t line, Addr addr,
                 HbWriteKind kind);
    /** Chiplet @p c's L2 was filled with the line's current value. */
    void onCopyFilled(ChipletId c, DsId ds, std::uint64_t line, Addr addr);
    /** Chiplet @p c read the line below its L1 (cache or LLC path). */
    void onRead(ChipletId c, DsId ds, std::uint64_t line, Addr addr);
    /** Cache-bypassing read served at the home LLC bank. */
    void onReadBypass(ChipletId c, DsId ds, std::uint64_t line, Addr addr);

    // --- End of run -------------------------------------------------------
    /**
     * Post-final-barrier sweep: report every write that never became
     * host-visible (the HB analogue of MemSystem::auditHostVisibility).
     * Idempotent. @return total violations of all kinds.
     */
    std::uint64_t finalize();

    // --- Results ----------------------------------------------------------
    std::uint64_t violations() const { return _violations; }
    std::uint64_t missingReleases() const { return _missingReleases; }
    std::uint64_t missingAcquires() const { return _missingAcquires; }
    std::uint64_t hostInvisible() const { return _hostInvisible; }
    /** Detailed reports (capped at kMaxReports; counters keep going). */
    const std::vector<HbViolation> &reports() const { return _reports; }
    /** First violation + totals, for checkFailed(). */
    std::string summary() const;

    /** Chiplet @p c's vector clock (tests). */
    const VectorClock &clock(ChipletId c) const
    {
        return _vc[static_cast<std::size_t>(c)];
    }
    /** The LLC clock (tests). */
    const VectorClock &llcClock() const { return _m; }

    /** Stored violation-report cap (beyond it only counters advance). */
    static constexpr std::size_t kMaxReports = 64;

  private:
    /** Per-launch record of the CP's sync plan (for edge traces). */
    struct LaunchRecord
    {
        std::uint64_t id = 0;
        std::string name;
        std::vector<ChipletId> sched;
        std::vector<ChipletId> acquires;
        std::vector<ChipletId> releases;
        std::uint64_t elidedAcquires = 0;
        std::uint64_t elidedReleases = 0;
        bool conservative = false;
    };

    /** Checker state for one cache line. */
    struct LineState
    {
        DsId ds = -1;
        std::uint64_t line = 0;
        ChipletId writer = kNoChiplet;
        std::uint64_t writerEpoch = 0;
        std::uint64_t writeSeq = 0;   //!< 0 = never written
        std::uint64_t writerKernel = 0;
        HbWriteKind kind = HbWriteKind::Through;
        bool published = true;
        std::uint64_t flaggedSeq = 0; //!< writeSeq already reported
        /**
         * Per-chiplet copy records: event seq at which the chiplet's
         * L2 last received this line's then-current value (0 = no
         * copy). A record is live only if newer than the chiplet's
         * last completed whole-L2 invalidate.
         */
        std::vector<std::uint64_t> copyAsOf;
    };

    LineState &state(Addr addr, DsId ds, std::uint64_t line);
    bool copyLive(const LineState &ls, ChipletId c) const;
    const LaunchRecord *launch(std::uint64_t id) const;
    std::string launchPlanStr(std::uint64_t id) const;
    std::string kernelRef(std::uint64_t id) const;
    void report(HbViolation v);
    void flagRead(LineState &ls, ChipletId reader, HbViolation::Kind kind,
                  const std::string &edge);

    const DataSpace &_space;
    const std::size_t _numChiplets;

    std::vector<VectorClock> _vc;
    VectorClock _m;

    /** Global event sequence (ordering oracle for seq comparisons). */
    std::uint64_t _seq = 0;

    std::vector<LaunchRecord> _launches;
    /** Launch executing on each chiplet (index into _launches + 1). */
    std::vector<std::uint64_t> _kernelOf;

    /** Per-chiplet sync-op bookkeeping (fault attribution). @{ */
    std::vector<std::uint64_t> _releaseAttemptSeq;
    std::vector<std::uint64_t> _releaseCompleteSeq;
    std::vector<std::uint64_t> _invalAttemptSeq;
    std::vector<std::uint64_t> _invalKillSeq;
    /** @} */

    std::unordered_map<Addr, LineState> _lines;

    prof::Counter _violations;
    prof::Counter _missingReleases;
    prof::Counter _missingAcquires;
    prof::Counter _hostInvisible;
    std::vector<HbViolation> _reports;
    bool _finalized = false;
};

} // namespace cpelide

#endif // CPELIDE_CHECK_HB_CHECKER_HH
