#include "check/hb_checker.hh"

#include <algorithm>

#include "mem/data_space.hh"
#include "sim/log.hh"

namespace cpelide
{

namespace
{

std::string
chipletListStr(const std::vector<ChipletId> &v)
{
    std::string s = "{";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(v[i]);
    }
    s += '}';
    return s;
}

} // namespace

HbChecker::HbChecker(int num_chiplets, const DataSpace &space)
    : _space(space),
      _numChiplets(static_cast<std::size_t>(num_chiplets)),
      _vc(_numChiplets, VectorClock(_numChiplets)),
      _m(_numChiplets),
      _kernelOf(_numChiplets, 0),
      _releaseAttemptSeq(_numChiplets, 0),
      _releaseCompleteSeq(_numChiplets, 0),
      _invalAttemptSeq(_numChiplets, 0),
      _invalKillSeq(_numChiplets, 0)
{
    panicIf(num_chiplets <= 0, "HbChecker needs at least one chiplet");
}

void
HbChecker::beginKernel(std::uint64_t id, const std::string &name,
                       const std::vector<ChipletId> &sched)
{
    LaunchRecord rec;
    rec.id = id;
    rec.name = name;
    rec.sched = sched;
    _launches.push_back(std::move(rec));
    for (ChipletId c : sched)
        _kernelOf[static_cast<std::size_t>(c)] = id;
}

void
HbChecker::onSyncDecision(const std::vector<ChipletId> &acquires,
                          const std::vector<ChipletId> &releases,
                          std::uint64_t elided_acquires,
                          std::uint64_t elided_releases, bool conservative)
{
    panicIf(_launches.empty(), "onSyncDecision before beginKernel");
    LaunchRecord &rec = _launches.back();
    rec.acquires = acquires;
    rec.releases = releases;
    rec.elidedAcquires = elided_acquires;
    rec.elidedReleases = elided_releases;
    rec.conservative = conservative;
}

void
HbChecker::onKernelExecuting()
{
    panicIf(_launches.empty(), "onKernelExecuting before beginKernel");
    // Epochs advance only after the launch synchronization completed:
    // boundary flushes/invalidates therefore join exactly the epochs
    // whose writes they cover, keeping the VC fast path sound.
    for (ChipletId c : _launches.back().sched)
        _vc[static_cast<std::size_t>(c)].advance(
            static_cast<std::size_t>(c));
}

void
HbChecker::onReleaseAttempt(ChipletId c)
{
    _releaseAttemptSeq[static_cast<std::size_t>(c)] = ++_seq;
}

void
HbChecker::onReleaseComplete(ChipletId c)
{
    _releaseCompleteSeq[static_cast<std::size_t>(c)] = ++_seq;
    _m.join(_vc[static_cast<std::size_t>(c)]);
}

void
HbChecker::onInvalidateAttempt(ChipletId c)
{
    _invalAttemptSeq[static_cast<std::size_t>(c)] = ++_seq;
}

void
HbChecker::onInvalidateComplete(ChipletId c)
{
    // Whole-L2 invalidate: every copy record of c dies (liveness is
    // "asOf newer than the kill seq", so this is O(1)).
    _invalKillSeq[static_cast<std::size_t>(c)] = ++_seq;
    _vc[static_cast<std::size_t>(c)].join(_m);
}

void
HbChecker::onLinePublished(DsId ds, std::uint64_t line, Addr addr)
{
    if (_space.racy(ds))
        return;
    LineState &ls = state(addr, ds, line);
    // An L2 writeback always carries the line's newest value (versions
    // advance in place in the writer's L2), so it publishes the last
    // write. Dropped flushes never reach this hook.
    ls.published = true;
}

void
HbChecker::onLineInvalidated(ChipletId c, Addr addr)
{
    auto it = _lines.find(addr);
    if (it != _lines.end())
        it->second.copyAsOf[static_cast<std::size_t>(c)] = 0;
}

void
HbChecker::onWrite(ChipletId c, DsId ds, std::uint64_t line, Addr addr,
                   HbWriteKind kind)
{
    if (_space.racy(ds))
        return;
    LineState &ls = state(addr, ds, line);
    ls.writer = c;
    ls.writerEpoch = _vc[static_cast<std::size_t>(c)].of(
        static_cast<std::size_t>(c));
    ls.writeSeq = ++_seq;
    ls.writerKernel = _kernelOf[static_cast<std::size_t>(c)];
    ls.kind = kind;
    ls.published = kind == HbWriteKind::Through;
}

void
HbChecker::onCopyFilled(ChipletId c, DsId ds, std::uint64_t line, Addr addr)
{
    if (_space.racy(ds))
        return;
    LineState &ls = state(addr, ds, line);
    ls.copyAsOf[static_cast<std::size_t>(c)] = ++_seq;
}

bool
HbChecker::copyLive(const LineState &ls, ChipletId c) const
{
    const std::uint64_t asOf = ls.copyAsOf[static_cast<std::size_t>(c)];
    return asOf != 0 && asOf > _invalKillSeq[static_cast<std::size_t>(c)];
}

void
HbChecker::onRead(ChipletId c, DsId ds, std::uint64_t line, Addr addr)
{
    if (_space.racy(ds))
        return;
    auto it = _lines.find(addr);
    if (it == _lines.end())
        return;
    LineState &ls = it->second;
    if (ls.writeSeq == 0 || ls.writer == c)
        return;
    (void)line;
    // Fast path: the writer's epoch is covered by the reader's clock,
    // i.e. a completed release(writer) -> LLC -> acquire(reader) chain
    // exists after the write. The release published every line the
    // writer had dirtied and the acquire killed the reader's copies,
    // so both detailed conditions below hold by construction.
    if (ls.writerEpoch <=
        _vc[static_cast<std::size_t>(c)].of(
            static_cast<std::size_t>(ls.writer))) {
        return;
    }

    // Detailed check 1: a DirtyLocal write is served to other chiplets
    // from the LLC, so it must have been written back by now.
    if (ls.kind == HbWriteKind::DirtyLocal && !ls.published) {
        const ChipletId w = ls.writer;
        std::string edge;
        if (_releaseAttemptSeq[static_cast<std::size_t>(w)] > ls.writeSeq) {
            edge = "a release of chiplet " + std::to_string(w) +
                   " was issued after the write but this line's "
                   "writeback was lost (dropped flush)";
        } else {
            edge = "no release of chiplet " + std::to_string(w) +
                   " was performed between the write and the read — "
                   "the release edge was elided; reader's sync plan: " +
                   launchPlanStr(
                       _kernelOf[static_cast<std::size_t>(c)]);
        }
        flagRead(ls, c, HbViolation::Kind::MissingRelease, edge);
        return;
    }

    // Detailed check 2: the reader still caches a copy predating the
    // write, which its L2 probe may hit instead of the fresh value.
    if (copyLive(ls, c) &&
        ls.copyAsOf[static_cast<std::size_t>(c)] < ls.writeSeq) {
        std::string edge;
        if (_invalAttemptSeq[static_cast<std::size_t>(c)] >
            ls.copyAsOf[static_cast<std::size_t>(c)]) {
            edge = "an acquire of chiplet " + std::to_string(c) +
                   " was issued after the stale copy was cached but "
                   "its invalidate was lost (skipped invalidate)";
        } else {
            edge = "no acquire of chiplet " + std::to_string(c) +
                   " was performed since its copy was cached — the "
                   "acquire edge was elided; reader's sync plan: " +
                   launchPlanStr(
                       _kernelOf[static_cast<std::size_t>(c)]);
        }
        flagRead(ls, c, HbViolation::Kind::MissingAcquire, edge);
    }
}

void
HbChecker::onReadBypass(ChipletId c, DsId ds, std::uint64_t line, Addr addr)
{
    if (_space.racy(ds))
        return;
    auto it = _lines.find(addr);
    if (it == _lines.end())
        return;
    LineState &ls = it->second;
    if (ls.writeSeq == 0 || ls.writer == c)
        return;
    (void)line;
    if (ls.writerEpoch <=
        _vc[static_cast<std::size_t>(c)].of(
            static_cast<std::size_t>(ls.writer))) {
        return;
    }
    // Bypass reads never consult the requester's caches, so only the
    // publication half of the read check applies.
    if (ls.kind == HbWriteKind::DirtyLocal && !ls.published) {
        const ChipletId w = ls.writer;
        std::string edge =
            _releaseAttemptSeq[static_cast<std::size_t>(w)] > ls.writeSeq
                ? "a release of chiplet " + std::to_string(w) +
                      " was issued after the write but this line's "
                      "writeback was lost (dropped flush)"
                : "no release of chiplet " + std::to_string(w) +
                      " was performed between the write and the bypass "
                      "read — the release edge was elided; reader's "
                      "sync plan: " +
                      launchPlanStr(
                          _kernelOf[static_cast<std::size_t>(c)]);
        flagRead(ls, c, HbViolation::Kind::MissingRelease, edge);
    }
}

std::uint64_t
HbChecker::finalize()
{
    if (_finalized)
        return _violations;
    _finalized = true;

    // Deterministic report order: sweep lines sorted by (ds, line).
    std::vector<const LineState *> pending;
    for (const auto &[addr, ls] : _lines) {
        (void)addr;
        if (ls.writeSeq == 0 || ls.published ||
            ls.kind == HbWriteKind::Through) {
            continue;
        }
        pending.push_back(&ls);
    }
    std::sort(pending.begin(), pending.end(),
              [](const LineState *a, const LineState *b) {
                  return a->ds != b->ds ? a->ds < b->ds
                                        : a->line < b->line;
              });
    for (const LineState *ls : pending) {
        const ChipletId w = ls->writer;
        std::string edge;
        if (_releaseAttemptSeq[static_cast<std::size_t>(w)] >
            ls->writeSeq) {
            edge = "the final release of chiplet " + std::to_string(w) +
                   " ran but this line's writeback was lost "
                   "(dropped flush)";
        } else {
            edge = "no release of chiplet " + std::to_string(w) +
                   " ever ran after the write (missing final barrier)";
        }
        ++_violations;
        ++_hostInvisible;
        HbViolation v;
        v.kind = HbViolation::Kind::HostInvisible;
        v.ds = ls->ds;
        v.line = ls->line;
        v.addr = 0;
        v.writer = w;
        v.writerKernel = ls->writerKernel;
        v.message = "host-invisible write: " + _space.alloc(ls->ds).name +
                    " line " + std::to_string(ls->line) +
                    " written by " + kernelRef(ls->writerKernel) +
                    " on chiplet " + std::to_string(w) + " epoch " +
                    std::to_string(ls->writerEpoch) +
                    " never reached the LLC: " + edge;
        report(std::move(v));
    }
    return _violations;
}

HbChecker::LineState &
HbChecker::state(Addr addr, DsId ds, std::uint64_t line)
{
    auto [it, inserted] = _lines.try_emplace(addr);
    LineState &ls = it->second;
    if (inserted) {
        ls.ds = ds;
        ls.line = line;
        ls.copyAsOf.assign(_numChiplets, 0);
    }
    return ls;
}

const HbChecker::LaunchRecord *
HbChecker::launch(std::uint64_t id) const
{
    if (id == 0 || id > _launches.size())
        return nullptr;
    return &_launches[id - 1];
}

std::string
HbChecker::kernelRef(std::uint64_t id) const
{
    const LaunchRecord *rec = launch(id);
    if (!rec)
        return "kernel #" + std::to_string(id);
    return "kernel '" + rec->name + "' (#" + std::to_string(id) + ")";
}

std::string
HbChecker::launchPlanStr(std::uint64_t id) const
{
    const LaunchRecord *rec = launch(id);
    if (!rec)
        return "(unknown launch)";
    std::string s = "launch #" + std::to_string(rec->id) + " '" +
                    rec->name + "' issued acquires=" +
                    chipletListStr(rec->acquires) +
                    " releases=" + chipletListStr(rec->releases);
    if (rec->elidedAcquires || rec->elidedReleases) {
        s += " (elided " + std::to_string(rec->elidedAcquires) +
             " acquires, " + std::to_string(rec->elidedReleases) +
             " releases)";
    }
    if (rec->conservative)
        s += " [conservative]";
    return s;
}

void
HbChecker::flagRead(LineState &ls, ChipletId reader,
                    HbViolation::Kind kind, const std::string &edge)
{
    // One report per (line, write): a lost flush read a thousand times
    // is one corruption, not a thousand.
    if (ls.flaggedSeq == ls.writeSeq)
        return;
    ls.flaggedSeq = ls.writeSeq;
    ++_violations;
    if (kind == HbViolation::Kind::MissingRelease)
        ++_missingReleases;
    else
        ++_missingAcquires;

    const std::uint64_t readerKernel =
        _kernelOf[static_cast<std::size_t>(reader)];
    HbViolation v;
    v.kind = kind;
    v.ds = ls.ds;
    v.line = ls.line;
    v.writer = ls.writer;
    v.writerKernel = ls.writerKernel;
    v.reader = reader;
    v.readerKernel = readerKernel;
    v.message =
        std::string(kind == HbViolation::Kind::MissingRelease
                        ? "missing-release"
                        : "missing-acquire") +
        ": " + _space.alloc(ls.ds).name + " line " +
        std::to_string(ls.line) + ": write by " +
        kernelRef(ls.writerKernel) + " on chiplet " +
        std::to_string(ls.writer) + " epoch " +
        std::to_string(ls.writerEpoch) +
        " is not happens-before-ordered with the read by " +
        kernelRef(readerKernel) + " on chiplet " +
        std::to_string(reader) + ": " + edge + "; reader clock " +
        _vc[static_cast<std::size_t>(reader)].str() + ", LLC clock " +
        _m.str();
    report(std::move(v));
}

void
HbChecker::report(HbViolation v)
{
    if (_reports.size() < kMaxReports)
        _reports.push_back(std::move(v));
}

std::string
HbChecker::summary() const
{
    std::string s = "happens-before checker: " +
                    std::to_string(_violations) + " violation(s) (" +
                    std::to_string(_missingReleases) +
                    " missing-release, " +
                    std::to_string(_missingAcquires) +
                    " missing-acquire, " + std::to_string(_hostInvisible) +
                    " host-invisible)";
    if (!_reports.empty())
        s += "; first: " + _reports.front().message;
    return s;
}

} // namespace cpelide
