#include "stats/json_util.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace cpelide
{
namespace json
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendSep(std::string &out)
{
    if (!out.empty() && out.back() != '{' && out.back() != '[')
        out += ',';
}

void
fnvMix(std::uint64_t &h, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
}

void
fnvMixStr(std::uint64_t &h, const std::string &s)
{
    const std::uint64_t len = s.size();
    fnvMix(h, &len, sizeof(len));
    fnvMix(h, s.data(), s.size());
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, s.data(), s.size());
    return h;
}

void
appendStr(std::string &out, const char *key, const std::string &value)
{
    appendSep(out);
    out += '"';
    out += key;
    out += "\":";
    appendEscaped(out, value);
}

void
appendU64(std::string &out, const char *key, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    appendSep(out);
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

void
appendI64(std::string &out, const char *key, std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    appendSep(out);
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

void
appendDouble(std::string &out, const char *key, double value)
{
    // %.17g round-trips every finite IEEE-754 double exactly, which is
    // what makes resumed sweep output byte-identical.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    appendSep(out);
    out += '"';
    out += key;
    out += "\":";
    out += buf;
}

} // namespace json

bool
JsonLineParser::eat(char c)
{
    if (peek() != c)
        return false;
    ++_pos;
    return true;
}

void
JsonLineParser::skipWs()
{
    while (_pos < _n &&
           std::isspace(static_cast<unsigned char>(_s[_pos])))
        ++_pos;
}

bool
JsonLineParser::parse()
{
    skipWs();
    if (!eat('{'))
        return false;
    skipWs();
    if (eat('}'))
        return true;
    for (;;) {
        std::string key, value;
        if (!parseString(&key))
            return false;
        skipWs();
        if (!eat(':'))
            return false;
        skipWs();
        if (peek() == '"') {
            if (!parseString(&value))
                return false;
        } else if (!parseNumber(&value)) {
            return false;
        }
        _fields[key] = value;
        skipWs();
        if (eat(',')) {
            skipWs();
            continue;
        }
        return eat('}');
    }
}

bool
JsonLineParser::str(const char *key, std::string *out) const
{
    auto it = _fields.find(key);
    if (it == _fields.end())
        return false;
    *out = it->second;
    return true;
}

bool
JsonLineParser::u64(const char *key, std::uint64_t *out) const
{
    auto it = _fields.find(key);
    if (it == _fields.end())
        return false;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
JsonLineParser::i64(const char *key, std::int64_t *out) const
{
    auto it = _fields.find(key);
    if (it == _fields.end())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
JsonLineParser::dbl(const char *key, double *out) const
{
    auto it = _fields.find(key);
    if (it == _fields.end())
        return false;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
JsonLineParser::parseString(std::string *out)
{
    if (!eat('"'))
        return false;
    std::string result;
    while (_pos < _n) {
        const char c = _s[_pos++];
        if (c == '"') {
            *out = std::move(result);
            return true;
        }
        if (c != '\\') {
            result += c;
            continue;
        }
        if (_pos >= _n)
            return false;
        const char esc = _s[_pos++];
        switch (esc) {
          case '"': result += '"'; break;
          case '\\': result += '\\'; break;
          case '/': result += '/'; break;
          case 'n': result += '\n'; break;
          case 'r': result += '\r'; break;
          case 't': result += '\t'; break;
          case 'u': {
              if (_pos + 4 > _n)
                  return false;
              char hex[5] = {_s[_pos], _s[_pos + 1], _s[_pos + 2],
                             _s[_pos + 3], '\0'};
              _pos += 4;
              char *end = nullptr;
              const unsigned long code = std::strtoul(hex, &end, 16);
              if (end != hex + 4 || code > 0xFF)
                  return false; // we only ever emit control chars
              result += static_cast<char>(code);
              break;
          }
          default: return false;
        }
    }
    return false;
}

bool
JsonLineParser::parseNumber(std::string *out)
{
    const std::size_t start = _pos;
    while (_pos < _n) {
        const char c = _s[_pos];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+' || c == '.' || c == 'e' || c == 'E') {
            ++_pos;
        } else {
            break;
        }
    }
    if (_pos == start)
        return false;
    out->assign(_s + start, _pos - start);
    return true;
}

} // namespace cpelide
