/**
 * @file
 * Result record of one simulated workload run.
 */

#ifndef CPELIDE_STATS_RUN_RESULT_HH
#define CPELIDE_STATS_RUN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "noc/noc.hh"
#include "prof/snapshot.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace cpelide
{

/** Cache-level hit/miss counters. */
struct LevelStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    hitRate() const
    {
        return accesses() ? static_cast<double>(hits) / accesses() : 0.0;
    }
};

/**
 * Per-launch breakdown of one kernel's phase: where its time and sync
 * work went. One entry per launched kernel plus one for the final
 * host-visibility barrier; the per-phase counters are *deltas* over
 * the phase, so summing any field across all phases reproduces the
 * corresponding aggregate RunResult counter exactly (asserted by
 * tests). Computed unconditionally — it's a handful of counter
 * snapshots per launch — independent of whether tracing is on.
 */
struct KernelPhaseStats
{
    std::string name; //!< kernel name; "<final-barrier>" for the tail
    int stream = 0;
    bool finalBarrier = false;

    Tick start = 0; //!< phase begin (sync phase start), sim ticks
    Tick end = 0;   //!< phase end (slowest chiplet done), sim ticks

    /** Launch-sync behaviour. @{ */
    Tick syncStallCycles = 0;
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    bool conservative = false;
    /** @} */

    /** Counter deltas over this phase. @{ */
    std::uint64_t l2FlushesIssued = 0;
    std::uint64_t l2InvalidatesIssued = 0;
    std::uint64_t l2FlushesElided = 0;
    std::uint64_t l2InvalidatesElided = 0;
    std::uint64_t linesWrittenBack = 0;
    std::uint64_t accesses = 0;
    LevelStats l2; //!< L2 hits/misses during this phase (hit-rate delta)
    /** @} */

    Tick cycles() const { return end >= start ? end - start : 0; }
};

/** Everything measured during one workload run on one configuration. */
struct RunResult
{
    std::string workload;
    std::string protocol;
    /**
     * Version of the engine that produced this result (git describe,
     * stamped by the harness from sim/version.hh). Journal restores
     * keep the version of the run that originally produced the row;
     * the serve cache refuses to mix versions (it is part of the key).
     */
    std::string engineVersion;
    int numChiplets = 0;

    /** End-to-end simulated duration in GPU cycles. */
    Tick cycles = 0;
    /** Number of kernels launched. */
    std::uint64_t kernels = 0;
    /** Total line-granular memory accesses simulated. */
    std::uint64_t accesses = 0;

    LevelStats l1;
    LevelStats l2;
    LevelStats l3;
    std::uint64_t dramAccesses = 0;

    FlitCounts flits;
    EnergyBreakdown energy;

    /** Synchronization behaviour. @{ */
    std::uint64_t l2FlushesIssued = 0;
    std::uint64_t l2InvalidatesIssued = 0;
    std::uint64_t l2FlushesElided = 0;
    std::uint64_t l2InvalidatesElided = 0;
    std::uint64_t linesWrittenBack = 0;
    Tick syncStallCycles = 0;
    /** @} */

    /** HMG-specific. @{ */
    std::uint64_t directoryEvictions = 0;
    std::uint64_t sharerInvalidations = 0;
    /** @} */

    /**
     * Full-run stall attribution: every chiplet-cycle of the run binned
     * into exactly one of the six prof::StallBin causes, summed across
     * chiplets. The six fields always sum to (simulated chiplets) *
     * cycles, asserted per chiplet inside GpuSystem::run. For every
     * protocol but Monolithic that factor is numChiplets; Monolithic
     * simulates one device but reports the *equivalent* chiplet count
     * in numChiplets, so there the bins sum to cycles alone. @{
     */
    std::uint64_t stallComputeCycles = 0;
    std::uint64_t stallMemoryCycles = 0;
    std::uint64_t stallBarrierCycles = 0;
    std::uint64_t stallFlushCycles = 0;
    std::uint64_t stallInvalidateCycles = 0;
    std::uint64_t stallDirectoryCycles = 0;
    /** @} */

    /** Host-side simulator events processed (EventQueue). */
    std::uint64_t simEvents = 0;

    /** CPElide table occupancy high-water mark. */
    std::uint64_t tableMaxEntries = 0;
    /** Stale reads detected by the checker (must be 0). */
    std::uint64_t staleReads = 0;
    /**
     * Non-racy lines whose final host-visible version (L3 or DRAM)
     * differs from the last version written in program order, audited
     * after the final barrier (must be 0; a lost release leaves them).
     */
    std::uint64_t hostVisibilityViolations = 0;

    /**
     * Happens-before violations found by the opt-in checker
     * (check/hb_checker.hh): reads not ordered after the write they
     * observe, plus writes that never became host-visible. Always 0
     * when checking is off or the protocol is correct.
     */
    std::uint64_t hbViolations = 0;

    /**
     * Per-launch phase breakdown (one entry per kernel + the final
     * barrier); field sums reproduce the aggregates above.
     */
    std::vector<KernelPhaseStats> kernelPhases;

    /**
     * Trace events harvested from the run's TraceSession (empty when
     * tracing is off, and after a checkpoint restore — the journal
     * stores phases but not traces). Sim-tick timestamps, so identical
     * whatever worker thread produced them.
     */
    std::vector<TraceEvent> traceEvents;

    /**
     * Per-component counter/histogram/series snapshot, captured when
     * the run was profiled (--profile= / CPELIDE_PROFILE). Empty
     * otherwise. Never serialized to JSONL/CSV/journal — it feeds the
     * profile report only, keeping structured output byte-stable.
     */
    prof::ProfSnapshot prof;
};

} // namespace cpelide

#endif // CPELIDE_STATS_RUN_RESULT_HH
