/**
 * @file
 * Result record of one simulated workload run.
 */

#ifndef CPELIDE_STATS_RUN_RESULT_HH
#define CPELIDE_STATS_RUN_RESULT_HH

#include <cstdint>
#include <string>

#include "energy/energy_model.hh"
#include "noc/noc.hh"
#include "sim/types.hh"

namespace cpelide
{

/** Cache-level hit/miss counters. */
struct LevelStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    hitRate() const
    {
        return accesses() ? static_cast<double>(hits) / accesses() : 0.0;
    }
};

/** Everything measured during one workload run on one configuration. */
struct RunResult
{
    std::string workload;
    std::string protocol;
    int numChiplets = 0;

    /** End-to-end simulated duration in GPU cycles. */
    Tick cycles = 0;
    /** Number of kernels launched. */
    std::uint64_t kernels = 0;
    /** Total line-granular memory accesses simulated. */
    std::uint64_t accesses = 0;

    LevelStats l1;
    LevelStats l2;
    LevelStats l3;
    std::uint64_t dramAccesses = 0;

    FlitCounts flits;
    EnergyBreakdown energy;

    /** Synchronization behaviour. @{ */
    std::uint64_t l2FlushesIssued = 0;
    std::uint64_t l2InvalidatesIssued = 0;
    std::uint64_t l2FlushesElided = 0;
    std::uint64_t l2InvalidatesElided = 0;
    std::uint64_t linesWrittenBack = 0;
    Tick syncStallCycles = 0;
    /** @} */

    /** HMG-specific. @{ */
    std::uint64_t directoryEvictions = 0;
    std::uint64_t sharerInvalidations = 0;
    /** @} */

    /** Host-side simulator events processed (EventQueue). */
    std::uint64_t simEvents = 0;

    /** CPElide table occupancy high-water mark. */
    std::uint64_t tableMaxEntries = 0;
    /** Stale reads detected by the checker (must be 0). */
    std::uint64_t staleReads = 0;
    /**
     * Non-racy lines whose final host-visible version (L3 or DRAM)
     * differs from the last version written in program order, audited
     * after the final barrier (must be 0; a lost release leaves them).
     */
    std::uint64_t hostVisibilityViolations = 0;
};

} // namespace cpelide

#endif // CPELIDE_STATS_RUN_RESULT_HH
