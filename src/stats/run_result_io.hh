/**
 * @file
 * Shared flat-JSON codec for RunResult and KernelPhaseStats.
 *
 * The checkpoint journal (exec/journal.cc) and the structured stat
 * sinks (stats/stat_sink.cc) serialize the same measurement record;
 * this file is the single source of truth for the key names so the
 * two can never drift. Aggregate fields are emitted as one flat block
 * ("workload" .. "hbViolations", in a fixed order);
 * per-launch phases are either explicit flat objects (one JSONL line
 * per phase, stat sinks) or one compact escaped string (a single
 * journal field, keeping journal lines flat one-level objects).
 */

#ifndef CPELIDE_STATS_RUN_RESULT_IO_HH
#define CPELIDE_STATS_RUN_RESULT_IO_HH

#include <string>
#include <vector>

#include "stats/json_util.hh"
#include "stats/run_result.hh"

namespace cpelide
{

/**
 * Append the aggregate RunResult fields to a JSON object under
 * construction (between "{" and "}"), using the journal's key names.
 */
void appendRunResultFields(std::string &out, const RunResult &r);

/**
 * Read the aggregate fields back from a parsed flat object.
 * @return false if any expected key is missing or malformed.
 */
bool parseRunResultFields(const JsonLineParser &p, RunResult *r);

/** Append one phase's fields to a JSON object under construction. */
void appendKernelPhaseFields(std::string &out, const KernelPhaseStats &ph);

/** Read one phase back from a parsed flat object. */
bool parseKernelPhaseFields(const JsonLineParser &p, KernelPhaseStats *ph);

/**
 * Encode all phases as one compact string ("rec;rec;..." with
 * ","-separated fields, names percent-escaped) so the journal can
 * carry them in a single flat string field.
 */
std::string
encodeKernelPhasesCompact(const std::vector<KernelPhaseStats> &phases);

/**
 * Decode a compact phase string. @return false (leaving @p out
 * untouched) on any malformed record.
 */
bool decodeKernelPhasesCompact(const std::string &s,
                               std::vector<KernelPhaseStats> *out);

} // namespace cpelide

#endif // CPELIDE_STATS_RUN_RESULT_IO_HH
