#include "stats/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace cpelide
{

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : _header(std::move(header))
{}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    row.resize(_header.size());
    _rows.push_back(std::move(row));
}

void
AsciiTable::addRule()
{
    _rows.emplace_back();
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> width(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        width[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emitRule = [&](std::ostringstream &os) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    auto emitRow = [&](std::ostringstream &os,
                       const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
        }
        os << "|\n";
    };

    std::ostringstream os;
    emitRule(os);
    emitRow(os, _header);
    emitRule(os);
    for (const auto &row : _rows) {
        if (row.empty())
            emitRule(os);
        else
            emitRow(os, row);
    }
    emitRule(os);
    return os.str();
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPct(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, v * 100.0);
    return buf;
}

std::string
escapeCell(const std::string &s, std::size_t maxLen)
{
    std::string out;
    out.reserve(std::min(s.size(), maxLen));
    for (const char c : s) {
        if (out.size() >= maxLen) {
            // Leave room for the ellipsis marker.
            out.resize(maxLen > 3 ? maxLen - 3 : 0);
            out += "...";
            break;
        }
        out += (static_cast<unsigned char>(c) < 0x20 ||
                static_cast<unsigned char>(c) == 0x7f)
                   ? ' '
                   : c;
    }
    return out;
}

std::string
renderErrorRows(const std::vector<ErrorRow> &rows)
{
    if (rows.empty())
        return "";
    AsciiTable t({"job", "status", "attempts", "error"});
    for (const ErrorRow &row : rows) {
        t.addRow({escapeCell(row.label), escapeCell(row.status),
                  std::to_string(row.attempts), escapeCell(row.error)});
    }
    return t.render();
}

} // namespace cpelide
