/**
 * @file
 * Per-job execution metrics of one simulation run inside a sweep:
 * host-side cost (wall time, peak RSS) and simulator work (events),
 * as opposed to RunResult, which holds the simulated measurements.
 */

#ifndef CPELIDE_STATS_RUN_METRICS_HH
#define CPELIDE_STATS_RUN_METRICS_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/thread_annotations.hh"

namespace cpelide
{

/**
 * Fixed process-wide epoch for relative wall-clock timestamps (the
 * exec-worker tracks of a Chrome trace). First use pins it; every
 * later call returns the same instant.
 */
inline std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/** Host-side cost of running one job. */
struct RunMetrics
{
    /** Wall-clock seconds spent in the job body. */
    double wallSeconds = 0.0;
    /** Job-body start, seconds since processEpoch() (worker tracks). */
    double wallStartSeconds = 0.0;
    /** Process peak RSS (KiB) observed right after the job finished. */
    long peakRssKb = 0;
    /**
     * Growth of the process peak RSS (KiB) across the job body. When
     * jobs run serially this is the job's own footprint; under a
     * parallel sweep concurrent jobs share the process peak, so the
     * delta is only an upper bound on this job's contribution and
     * rssShared is set.
     */
    long rssDeltaKb = 0;
    /**
     * Another job overlapped this one, so peakRssKb (the process-wide
     * peak) and rssDeltaKb cannot be attributed to this job alone.
     */
    bool rssShared = false;
    /** Simulator events processed (see EventQueue::eventsProcessed). */
    std::uint64_t simEvents = 0;
    /** Pool worker that ran the job; -1 = caller thread (serial path). */
    int worker = -1;
};

/**
 * Process-wide, thread-safe collector of per-job metrics. SweepRunner
 * records one row per finished job; `CPELIDE_METRICS=1` makes each
 * sweep dump its rows to stderr (stderr, so table output on stdout
 * stays byte-identical to a serial run).
 */
class MetricsRegistry
{
  public:
    struct Row
    {
        std::string sweep;
        std::string label;
        bool ok = false;
        RunMetrics metrics;
        /** Classified status ("ok", "timeout", "panic", ...). */
        std::string status = "ok";
    };

    /** The singleton used by SweepRunner. */
    static MetricsRegistry &global();

    void record(const std::string &sweep, const std::string &label,
                bool ok, const RunMetrics &m,
                const std::string &status = "") CPELIDE_EXCLUDES(_mutex);

    /** Snapshot of everything recorded so far, in record order. */
    std::vector<Row> rows() const CPELIDE_EXCLUDES(_mutex);

    /** Rows recorded so far. */
    std::size_t size() const CPELIDE_EXCLUDES(_mutex);

    /** Drop all rows (tests). */
    void clear() CPELIDE_EXCLUDES(_mutex);

    /** ASCII table of the rows belonging to @p sweep ("" = all). */
    std::string render(const std::string &sweep = "") const;

  private:
    mutable Mutex _mutex;
    std::vector<Row> _rows CPELIDE_GUARDED_BY(_mutex);
};

} // namespace cpelide

#endif // CPELIDE_STATS_RUN_METRICS_HH
