/**
 * @file
 * Minimal JSON emit/parse helpers shared by the sweep journal, the
 * structured stat sinks, and the Chrome trace exporter.
 *
 * The emit side builds flat or nested objects by appending to a
 * string (a comma is inserted automatically unless the previous
 * character opens an object/array). Doubles use %.17g, which
 * round-trips every finite IEEE-754 double exactly — the property the
 * checkpoint journal's byte-identical resume depends on.
 *
 * The parse side (JsonLineParser) handles exactly the flat one-level
 * objects the emitters write: string and number values only. Any
 * structural surprise makes parse() return false so callers can treat
 * the line as torn and skip it.
 */

#ifndef CPELIDE_STATS_JSON_UTIL_HH
#define CPELIDE_STATS_JSON_UTIL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace cpelide
{
namespace json
{

/** Append @p s as a quoted, escaped JSON string. */
void appendEscaped(std::string &out, const std::string &s);

/** Append a comma unless @p out ends at an object/array opener. */
void appendSep(std::string &out);

void appendStr(std::string &out, const char *key,
               const std::string &value);
void appendU64(std::string &out, const char *key, std::uint64_t value);
void appendI64(std::string &out, const char *key, std::int64_t value);
void appendDouble(std::string &out, const char *key, double value);

/** FNV-1a 64-bit offset basis / prime (shared by every tree hash). */
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** Mix @p len raw bytes into the running FNV-1a hash @p h. */
void fnvMix(std::uint64_t &h, const void *data, std::size_t len);

/**
 * Mix a length-prefixed string into @p h, so ("ab","c") != ("a","bc")
 * across consecutive fields.
 */
void fnvMixStr(std::uint64_t &h, const std::string &s);

/** One-shot FNV-1a 64 over @p s (no length prefix). */
std::uint64_t fnv1a64(const std::string &s);

} // namespace json

/** Cursor parser for flat one-level JSON objects (see file comment). */
class JsonLineParser
{
  public:
    explicit JsonLineParser(const std::string &line)
        : _s(line.c_str()), _n(line.size())
    {}

    /** Parse the whole line; false on any structural problem. */
    bool parse();

    bool has(const char *key) const { return _fields.count(key) != 0; }

    bool str(const char *key, std::string *out) const;
    bool u64(const char *key, std::uint64_t *out) const;
    bool i64(const char *key, std::int64_t *out) const;
    bool dbl(const char *key, double *out) const;

  private:
    char peek() const { return _pos < _n ? _s[_pos] : '\0'; }
    bool eat(char c);
    void skipWs();
    bool parseString(std::string *out);
    bool parseNumber(std::string *out);

    const char *_s;
    std::size_t _n;
    std::size_t _pos = 0;
    std::unordered_map<std::string, std::string> _fields;
};

} // namespace cpelide

#endif // CPELIDE_STATS_JSON_UTIL_HH
