/**
 * @file
 * Table/series emitters shared by the figure-regeneration benches.
 */

#ifndef CPELIDE_STATS_REPORT_HH
#define CPELIDE_STATS_REPORT_HH

#include <string>
#include <vector>

namespace cpelide
{

/** Geometric mean of @p xs; returns 0 for an empty vector. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean of @p xs; returns 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/**
 * Fixed-width ASCII table. Columns sized to fit; numbers are the
 * caller's problem (pass formatted strings).
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    /** Horizontal separator before the next row. */
    void addRule();

    /** Render to a string, ready for stdout. */
    std::string render() const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows; //!< empty row == rule
};

/** Format @p v with @p decimals digits. */
std::string fmt(double v, int decimals = 2);

/** Format @p v as a percentage ("+13.2%"). */
std::string fmtPct(double v, int decimals = 1);

/**
 * Sanitize a string for an AsciiTable cell: control characters
 * (newlines, tabs, ANSI escapes) become spaces so a hostile error
 * message cannot break the table layout, and anything longer than
 * @p maxLen is truncated with an ellipsis.
 */
std::string escapeCell(const std::string &s, std::size_t maxLen = 60);

/**
 * One failed job in an error report. Plain strings so the renderer
 * stays independent of the exec layer (stats sits below it).
 */
struct ErrorRow
{
    std::string label;  //!< job identification
    std::string status; //!< classified cause ("timeout", "panic", ...)
    int attempts = 1;   //!< executions including retries
    std::string error;  //!< exception text
};

/**
 * Render failed-job rows as an AsciiTable ("" for an empty list —
 * clean sweeps print nothing). Error text is escaped and truncated.
 */
std::string renderErrorRows(const std::vector<ErrorRow> &rows);

} // namespace cpelide

#endif // CPELIDE_STATS_REPORT_HH
