/**
 * @file
 * Table/series emitters shared by the figure-regeneration benches.
 */

#ifndef CPELIDE_STATS_REPORT_HH
#define CPELIDE_STATS_REPORT_HH

#include <string>
#include <vector>

namespace cpelide
{

/** Geometric mean of @p xs; returns 0 for an empty vector. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean of @p xs; returns 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/**
 * Fixed-width ASCII table. Columns sized to fit; numbers are the
 * caller's problem (pass formatted strings).
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    /** Horizontal separator before the next row. */
    void addRule();

    /** Render to a string, ready for stdout. */
    std::string render() const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows; //!< empty row == rule
};

/** Format @p v with @p decimals digits. */
std::string fmt(double v, int decimals = 2);

/** Format @p v as a percentage ("+13.2%"). */
std::string fmtPct(double v, int decimals = 1);

} // namespace cpelide

#endif // CPELIDE_STATS_REPORT_HH
