#include "stats/run_metrics.hh"

#include "stats/report.hh"

namespace cpelide
{

namespace
{

/**
 * Pin processEpoch() before main(): the first trace event used to pin
 * it lazily, skewing exec-worker track offsets when metrics were
 * enabled mid-sweep.
 */
[[maybe_unused]] const auto epochPin = processEpoch();

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::record(const std::string &sweep,
                        const std::string &label, bool ok,
                        const RunMetrics &m, const std::string &status)
{
    MutexGuard lock(_mutex);
    _rows.push_back(
        Row{sweep, label, ok, m, status.empty() ? "ok" : status});
}

std::vector<MetricsRegistry::Row>
MetricsRegistry::rows() const
{
    MutexGuard lock(_mutex);
    return _rows;
}

std::size_t
MetricsRegistry::size() const
{
    MutexGuard lock(_mutex);
    return _rows.size();
}

void
MetricsRegistry::clear()
{
    MutexGuard lock(_mutex);
    _rows.clear();
}

std::string
MetricsRegistry::render(const std::string &sweep) const
{
    AsciiTable t({"job", "status", "wall (s)", "peak RSS (MiB)",
                  "RSS delta (MiB)", "sim events", "worker"});
    double wallTotal = 0.0;
    for (const Row &row : rows()) {
        if (!sweep.empty() && row.sweep != sweep)
            continue;
        wallTotal += row.metrics.wallSeconds;
        // '*' marks a shared measurement: the job overlapped others,
        // so the process-wide numbers are not attributable to it.
        const std::string shared = row.metrics.rssShared ? "*" : "";
        t.addRow({row.label, row.ok ? "ok" : "FAILED:" + row.status,
                  fmt(row.metrics.wallSeconds, 3),
                  fmt(row.metrics.peakRssKb / 1024.0, 1) + shared,
                  fmt(row.metrics.rssDeltaKb / 1024.0, 1) + shared,
                  std::to_string(row.metrics.simEvents),
                  row.metrics.worker < 0
                      ? "caller"
                      : std::to_string(row.metrics.worker)});
    }
    t.addRule();
    t.addRow({"total", "", fmt(wallTotal, 3), "", "", "", ""});
    return t.render();
}

} // namespace cpelide
