#include "stats/run_metrics.hh"

#include "stats/report.hh"

namespace cpelide
{

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::record(const std::string &sweep,
                        const std::string &label, bool ok,
                        const RunMetrics &m, const std::string &status)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _rows.push_back(
        Row{sweep, label, ok, m, status.empty() ? "ok" : status});
}

std::vector<MetricsRegistry::Row>
MetricsRegistry::rows() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _rows;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _rows.size();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _rows.clear();
}

std::string
MetricsRegistry::render(const std::string &sweep) const
{
    AsciiTable t({"job", "status", "wall (s)", "peak RSS (MiB)",
                  "sim events", "worker"});
    double wallTotal = 0.0;
    for (const Row &row : rows()) {
        if (!sweep.empty() && row.sweep != sweep)
            continue;
        wallTotal += row.metrics.wallSeconds;
        t.addRow({row.label, row.ok ? "ok" : "FAILED:" + row.status,
                  fmt(row.metrics.wallSeconds, 3),
                  fmt(row.metrics.peakRssKb / 1024.0, 1),
                  std::to_string(row.metrics.simEvents),
                  row.metrics.worker < 0
                      ? "caller"
                      : std::to_string(row.metrics.worker)});
    }
    t.addRule();
    t.addRow({"total", "", fmt(wallTotal, 3), "", "", ""});
    return t.render();
}

} // namespace cpelide
