#include "stats/stat_sink.hh"

#include <cinttypes>

#include "stats/report.hh"
#include "stats/run_result_io.hh"

namespace cpelide
{

bool
parseStatFormat(const std::string &name, StatFormat *out)
{
    if (name == "ascii") {
        *out = StatFormat::Ascii;
        return true;
    }
    if (name == "json" || name == "jsonl") {
        *out = StatFormat::Jsonl;
        return true;
    }
    if (name == "csv") {
        *out = StatFormat::Csv;
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// AsciiStatSink
// ---------------------------------------------------------------------------

void
AsciiStatSink::emit(const StatRecord &rec)
{
    _records.push_back(rec);
}

void
AsciiStatSink::finish()
{
    AsciiTable t({"label", "cycles", "sync stall", "flushes", "elided",
                  "L2 hit%", "status"});
    for (const StatRecord &rec : _records) {
        t.addRow({escapeCell(rec.label),
                  std::to_string(rec.result.cycles),
                  std::to_string(rec.result.syncStallCycles),
                  std::to_string(rec.result.l2FlushesIssued),
                  std::to_string(rec.result.l2FlushesElided),
                  fmt(rec.result.l2.hitRate() * 100.0, 1),
                  rec.ok ? "ok" : escapeCell(rec.error)});
    }
    std::fputs(t.render().c_str(), _out);
    _records.clear();
}

// ---------------------------------------------------------------------------
// JsonlStatSink
// ---------------------------------------------------------------------------

std::string
JsonlStatSink::render(const StatRecord &rec)
{
    std::string out = "{";
    json::appendStr(out, "type", "result");
    json::appendStr(out, "sweep", rec.sweep);
    json::appendStr(out, "label", rec.label);
    json::appendU64(out, "ok", rec.ok ? 1 : 0);
    json::appendStr(out, "error", rec.error);
    appendRunResultFields(out, rec.result);
    out += "}\n";

    for (std::size_t i = 0; i < rec.result.kernelPhases.size(); ++i) {
        out += "{";
        json::appendStr(out, "type", "phase");
        json::appendStr(out, "label", rec.label);
        json::appendU64(out, "index", i);
        appendKernelPhaseFields(out, rec.result.kernelPhases[i]);
        out += "}\n";
    }
    return out;
}

void
JsonlStatSink::emit(const StatRecord &rec)
{
    const std::string lines = render(rec);
    std::fwrite(lines.data(), 1, lines.size(), _out);
    std::fflush(_out);
}

// ---------------------------------------------------------------------------
// CsvStatSink
// ---------------------------------------------------------------------------

namespace
{

/** Quote a CSV cell when it contains a separator, quote, or newline. */
void
appendCsvCell(std::string &out, const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
        out += cell;
        return;
    }
    out += '"';
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
}

void
appendCsvU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",%" PRIu64, v);
    out += buf;
}

void
appendCsvDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), ",%.17g", v);
    out += buf;
}

} // namespace

std::string
CsvStatSink::header()
{
    return "sweep,label,ok,error,workload,protocol,engineVersion,"
           "numChiplets,cycles,"
           "kernels,accesses,l1Hits,l1Misses,l2Hits,l2Misses,l3Hits,"
           "l3Misses,dramAccesses,flitsL1L2,flitsL2L3,flitsRemote,"
           "energyL1i,energyL1d,energyLds,energyL2,energyNoc,energyDram,"
           "l2FlushesIssued,l2InvalidatesIssued,l2FlushesElided,"
           "l2InvalidatesElided,linesWrittenBack,syncStallCycles,"
           "directoryEvictions,sharerInvalidations,simEvents,"
           "tableMaxEntries,staleReads,hostVisibilityViolations,"
           "hbViolations,stallComputeCycles,stallMemoryCycles,"
           "stallBarrierCycles,stallFlushCycles,stallInvalidateCycles,"
           "stallDirectoryCycles\n";
}

std::string
CsvStatSink::row(const StatRecord &rec)
{
    const RunResult &r = rec.result;
    std::string out;
    appendCsvCell(out, rec.sweep);
    out += ',';
    appendCsvCell(out, rec.label);
    out += rec.ok ? ",1," : ",0,";
    appendCsvCell(out, rec.error);
    out += ',';
    appendCsvCell(out, r.workload);
    out += ',';
    appendCsvCell(out, r.protocol);
    out += ',';
    appendCsvCell(out, r.engineVersion);
    appendCsvU64(out, static_cast<std::uint64_t>(r.numChiplets));
    appendCsvU64(out, r.cycles);
    appendCsvU64(out, r.kernels);
    appendCsvU64(out, r.accesses);
    appendCsvU64(out, r.l1.hits);
    appendCsvU64(out, r.l1.misses);
    appendCsvU64(out, r.l2.hits);
    appendCsvU64(out, r.l2.misses);
    appendCsvU64(out, r.l3.hits);
    appendCsvU64(out, r.l3.misses);
    appendCsvU64(out, r.dramAccesses);
    appendCsvU64(out, r.flits.l1l2);
    appendCsvU64(out, r.flits.l2l3);
    appendCsvU64(out, r.flits.remote);
    appendCsvDouble(out, r.energy.l1i);
    appendCsvDouble(out, r.energy.l1d);
    appendCsvDouble(out, r.energy.lds);
    appendCsvDouble(out, r.energy.l2);
    appendCsvDouble(out, r.energy.noc);
    appendCsvDouble(out, r.energy.dram);
    appendCsvU64(out, r.l2FlushesIssued);
    appendCsvU64(out, r.l2InvalidatesIssued);
    appendCsvU64(out, r.l2FlushesElided);
    appendCsvU64(out, r.l2InvalidatesElided);
    appendCsvU64(out, r.linesWrittenBack);
    appendCsvU64(out, r.syncStallCycles);
    appendCsvU64(out, r.directoryEvictions);
    appendCsvU64(out, r.sharerInvalidations);
    appendCsvU64(out, r.simEvents);
    appendCsvU64(out, r.tableMaxEntries);
    appendCsvU64(out, r.staleReads);
    appendCsvU64(out, r.hostVisibilityViolations);
    appendCsvU64(out, r.hbViolations);
    appendCsvU64(out, r.stallComputeCycles);
    appendCsvU64(out, r.stallMemoryCycles);
    appendCsvU64(out, r.stallBarrierCycles);
    appendCsvU64(out, r.stallFlushCycles);
    appendCsvU64(out, r.stallInvalidateCycles);
    appendCsvU64(out, r.stallDirectoryCycles);
    out += '\n';
    return out;
}

void
CsvStatSink::emit(const StatRecord &rec)
{
    if (!_wroteHeader) {
        const std::string h = header();
        std::fwrite(h.data(), 1, h.size(), _out);
        _wroteHeader = true;
    }
    const std::string line = row(rec);
    std::fwrite(line.data(), 1, line.size(), _out);
    std::fflush(_out);
}

// ---------------------------------------------------------------------------
// JSONL reader (round-trip tests, downstream tooling)
// ---------------------------------------------------------------------------

bool
parseJsonlStats(const std::string &text, std::vector<StatRecord> *out)
{
    std::vector<StatRecord> records;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;

        JsonLineParser p(line);
        if (!p.parse())
            return false;
        std::string type;
        if (!p.str("type", &type))
            return false;
        if (type == "result") {
            StatRecord rec;
            std::uint64_t okFlag = 0;
            if (!p.str("sweep", &rec.sweep) ||
                !p.str("label", &rec.label) || !p.u64("ok", &okFlag) ||
                !p.str("error", &rec.error) ||
                !parseRunResultFields(p, &rec.result)) {
                return false;
            }
            rec.ok = okFlag != 0;
            records.push_back(std::move(rec));
        } else if (type == "phase") {
            if (records.empty())
                return false; // phase line before any result line
            KernelPhaseStats ph;
            std::uint64_t index = 0;
            if (!p.u64("index", &index) ||
                !parseKernelPhaseFields(p, &ph)) {
                return false;
            }
            std::vector<KernelPhaseStats> &phases =
                records.back().result.kernelPhases;
            if (index != phases.size())
                return false; // out-of-order phase line
            phases.push_back(std::move(ph));
        } else {
            return false;
        }
    }
    *out = std::move(records);
    return true;
}

std::unique_ptr<StatSink>
makeStatSink(StatFormat format, std::FILE *out)
{
    switch (format) {
      case StatFormat::Ascii:
        return std::make_unique<AsciiStatSink>(out);
      case StatFormat::Jsonl:
        return std::make_unique<JsonlStatSink>(out);
      case StatFormat::Csv:
        return std::make_unique<CsvStatSink>(out);
    }
    return nullptr;
}

} // namespace cpelide
