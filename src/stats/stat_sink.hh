/**
 * @file
 * Structured stat sinks: pluggable backends for run results.
 *
 * Every bench renders human-readable AsciiTables; a StatSink is the
 * machine-readable alternative selected with --format=json|csv. The
 * harness feeds one StatRecord per completed job, in sweep-spec order
 * (never completion order), and the records carry only simulated
 * quantities — no wall-clock or worker fields — so the emitted stream
 * is byte-identical whatever CPELIDE_JOBS is.
 *
 * Backends:
 *  - AsciiStatSink: generic fixed-column summary table (the benches'
 *    own bespoke tables remain the default human output);
 *  - JsonlStatSink: one flat "result" object per record followed by
 *    one "phase" object per kernel launch (see run_result_io.hh for
 *    the key set); JsonlStatReader re-parses the stream exactly;
 *  - CsvStatSink: one header plus one row per record (aggregates
 *    only; phases don't fit a rectangular schema).
 */

#ifndef CPELIDE_STATS_STAT_SINK_HH
#define CPELIDE_STATS_STAT_SINK_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "stats/run_result.hh"

namespace cpelide
{

enum class StatFormat
{
    Ascii,
    Jsonl,
    Csv,
};

/**
 * Parse a --format= value ("ascii", "json", "jsonl", "csv").
 * @return false on anything else, leaving @p out untouched.
 */
bool parseStatFormat(const std::string &name, StatFormat *out);

/** One job's worth of structured output. */
struct StatRecord
{
    std::string sweep; //!< sweep name (bench identity)
    std::string label; //!< job label within the sweep
    bool ok = true;
    std::string error; //!< failure summary when !ok
    RunResult result;
};

/** Abstract backend; emit() is called once per record, in order. */
class StatSink
{
  public:
    virtual ~StatSink() = default;

    virtual void emit(const StatRecord &rec) = 0;

    /** Flush any trailer after the last record. */
    virtual void finish() {}
};

/** Generic fixed-column summary table (stdout-style human output). */
class AsciiStatSink : public StatSink
{
  public:
    /** @param out destination stream; not owned. */
    explicit AsciiStatSink(std::FILE *out) : _out(out) {}

    void emit(const StatRecord &rec) override;
    void finish() override;

  private:
    std::FILE *_out;
    std::vector<StatRecord> _records;
};

/** One JSONL object per record + one per kernel phase. */
class JsonlStatSink : public StatSink
{
  public:
    explicit JsonlStatSink(std::FILE *out) : _out(out) {}

    void emit(const StatRecord &rec) override;

    /** Render one record's lines (without writing them anywhere). */
    static std::string render(const StatRecord &rec);

  private:
    std::FILE *_out;
};

/** CSV with a fixed header; aggregates only. */
class CsvStatSink : public StatSink
{
  public:
    explicit CsvStatSink(std::FILE *out) : _out(out) {}

    void emit(const StatRecord &rec) override;

    static std::string header();
    static std::string row(const StatRecord &rec);

  private:
    std::FILE *_out;
    bool _wroteHeader = false;
};

/**
 * Re-parse a JsonlStatSink stream: "result" lines become records,
 * subsequent "phase" lines re-attach to the preceding record.
 * @return false on any malformed or out-of-order line.
 */
bool parseJsonlStats(const std::string &text,
                     std::vector<StatRecord> *out);

/** Construct the sink for @p format writing to @p out (not owned). */
std::unique_ptr<StatSink> makeStatSink(StatFormat format, std::FILE *out);

} // namespace cpelide

#endif // CPELIDE_STATS_STAT_SINK_HH
