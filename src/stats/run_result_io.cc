#include "stats/run_result_io.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace cpelide
{

void
appendRunResultFields(std::string &out, const RunResult &r)
{
    using namespace json;
    appendStr(out, "workload", r.workload);
    appendStr(out, "protocol", r.protocol);
    appendStr(out, "engineVersion", r.engineVersion);
    appendI64(out, "numChiplets", r.numChiplets);
    appendU64(out, "cycles", r.cycles);
    appendU64(out, "kernels", r.kernels);
    appendU64(out, "accesses", r.accesses);
    appendU64(out, "l1Hits", r.l1.hits);
    appendU64(out, "l1Misses", r.l1.misses);
    appendU64(out, "l2Hits", r.l2.hits);
    appendU64(out, "l2Misses", r.l2.misses);
    appendU64(out, "l3Hits", r.l3.hits);
    appendU64(out, "l3Misses", r.l3.misses);
    appendU64(out, "dramAccesses", r.dramAccesses);
    appendU64(out, "flitsL1L2", r.flits.l1l2);
    appendU64(out, "flitsL2L3", r.flits.l2l3);
    appendU64(out, "flitsRemote", r.flits.remote);
    appendDouble(out, "energyL1i", r.energy.l1i);
    appendDouble(out, "energyL1d", r.energy.l1d);
    appendDouble(out, "energyLds", r.energy.lds);
    appendDouble(out, "energyL2", r.energy.l2);
    appendDouble(out, "energyNoc", r.energy.noc);
    appendDouble(out, "energyDram", r.energy.dram);
    appendU64(out, "l2FlushesIssued", r.l2FlushesIssued);
    appendU64(out, "l2InvalidatesIssued", r.l2InvalidatesIssued);
    appendU64(out, "l2FlushesElided", r.l2FlushesElided);
    appendU64(out, "l2InvalidatesElided", r.l2InvalidatesElided);
    appendU64(out, "linesWrittenBack", r.linesWrittenBack);
    appendU64(out, "syncStallCycles", r.syncStallCycles);
    appendU64(out, "directoryEvictions", r.directoryEvictions);
    appendU64(out, "sharerInvalidations", r.sharerInvalidations);
    appendU64(out, "simEvents", r.simEvents);
    appendU64(out, "tableMaxEntries", r.tableMaxEntries);
    appendU64(out, "staleReads", r.staleReads);
    appendU64(out, "hostVisibilityViolations", r.hostVisibilityViolations);
    appendU64(out, "hbViolations", r.hbViolations);
    appendU64(out, "stallComputeCycles", r.stallComputeCycles);
    appendU64(out, "stallMemoryCycles", r.stallMemoryCycles);
    appendU64(out, "stallBarrierCycles", r.stallBarrierCycles);
    appendU64(out, "stallFlushCycles", r.stallFlushCycles);
    appendU64(out, "stallInvalidateCycles", r.stallInvalidateCycles);
    appendU64(out, "stallDirectoryCycles", r.stallDirectoryCycles);
}

bool
parseRunResultFields(const JsonLineParser &p, RunResult *r)
{
    std::int64_t chiplets = 0;
    const bool good =
        p.str("workload", &r->workload) &&
        p.str("protocol", &r->protocol) &&
        p.i64("numChiplets", &chiplets) && p.u64("cycles", &r->cycles) &&
        p.u64("kernels", &r->kernels) && p.u64("accesses", &r->accesses) &&
        p.u64("l1Hits", &r->l1.hits) && p.u64("l1Misses", &r->l1.misses) &&
        p.u64("l2Hits", &r->l2.hits) && p.u64("l2Misses", &r->l2.misses) &&
        p.u64("l3Hits", &r->l3.hits) && p.u64("l3Misses", &r->l3.misses) &&
        p.u64("dramAccesses", &r->dramAccesses) &&
        p.u64("flitsL1L2", &r->flits.l1l2) &&
        p.u64("flitsL2L3", &r->flits.l2l3) &&
        p.u64("flitsRemote", &r->flits.remote) &&
        p.dbl("energyL1i", &r->energy.l1i) &&
        p.dbl("energyL1d", &r->energy.l1d) &&
        p.dbl("energyLds", &r->energy.lds) &&
        p.dbl("energyL2", &r->energy.l2) &&
        p.dbl("energyNoc", &r->energy.noc) &&
        p.dbl("energyDram", &r->energy.dram) &&
        p.u64("l2FlushesIssued", &r->l2FlushesIssued) &&
        p.u64("l2InvalidatesIssued", &r->l2InvalidatesIssued) &&
        p.u64("l2FlushesElided", &r->l2FlushesElided) &&
        p.u64("l2InvalidatesElided", &r->l2InvalidatesElided) &&
        p.u64("linesWrittenBack", &r->linesWrittenBack) &&
        p.u64("syncStallCycles", &r->syncStallCycles) &&
        p.u64("directoryEvictions", &r->directoryEvictions) &&
        p.u64("sharerInvalidations", &r->sharerInvalidations) &&
        p.u64("simEvents", &r->simEvents) &&
        p.u64("tableMaxEntries", &r->tableMaxEntries) &&
        p.u64("staleReads", &r->staleReads) &&
        p.u64("hostVisibilityViolations", &r->hostVisibilityViolations) &&
        p.u64("hbViolations", &r->hbViolations);
    if (!good)
        return false;
    r->numChiplets = static_cast<int>(chiplets);
    // Tolerated-absent: rows written before the version stamp existed
    // restore with an empty engineVersion.
    if (!p.str("engineVersion", &r->engineVersion))
        r->engineVersion.clear();
    // Stall-attribution bins postdate older journals; tolerate their
    // absence (like the journal's kernelPhases field) and read 0.
    const auto optU64 = [&p](const char *key, std::uint64_t *v) {
        std::uint64_t tmp = 0;
        *v = p.u64(key, &tmp) ? tmp : 0;
    };
    optU64("stallComputeCycles", &r->stallComputeCycles);
    optU64("stallMemoryCycles", &r->stallMemoryCycles);
    optU64("stallBarrierCycles", &r->stallBarrierCycles);
    optU64("stallFlushCycles", &r->stallFlushCycles);
    optU64("stallInvalidateCycles", &r->stallInvalidateCycles);
    optU64("stallDirectoryCycles", &r->stallDirectoryCycles);
    return true;
}

void
appendKernelPhaseFields(std::string &out, const KernelPhaseStats &ph)
{
    using namespace json;
    appendStr(out, "name", ph.name);
    appendI64(out, "stream", ph.stream);
    appendU64(out, "finalBarrier", ph.finalBarrier ? 1 : 0);
    appendU64(out, "start", ph.start);
    appendU64(out, "end", ph.end);
    appendU64(out, "syncStallCycles", ph.syncStallCycles);
    appendU64(out, "acquires", ph.acquires);
    appendU64(out, "releases", ph.releases);
    appendU64(out, "conservative", ph.conservative ? 1 : 0);
    appendU64(out, "l2FlushesIssued", ph.l2FlushesIssued);
    appendU64(out, "l2InvalidatesIssued", ph.l2InvalidatesIssued);
    appendU64(out, "l2FlushesElided", ph.l2FlushesElided);
    appendU64(out, "l2InvalidatesElided", ph.l2InvalidatesElided);
    appendU64(out, "linesWrittenBack", ph.linesWrittenBack);
    appendU64(out, "accesses", ph.accesses);
    appendU64(out, "l2Hits", ph.l2.hits);
    appendU64(out, "l2Misses", ph.l2.misses);
}

bool
parseKernelPhaseFields(const JsonLineParser &p, KernelPhaseStats *ph)
{
    std::int64_t stream = 0;
    std::uint64_t finalBarrier = 0, conservative = 0;
    const bool good =
        p.str("name", &ph->name) && p.i64("stream", &stream) &&
        p.u64("finalBarrier", &finalBarrier) &&
        p.u64("start", &ph->start) && p.u64("end", &ph->end) &&
        p.u64("syncStallCycles", &ph->syncStallCycles) &&
        p.u64("acquires", &ph->acquires) &&
        p.u64("releases", &ph->releases) &&
        p.u64("conservative", &conservative) &&
        p.u64("l2FlushesIssued", &ph->l2FlushesIssued) &&
        p.u64("l2InvalidatesIssued", &ph->l2InvalidatesIssued) &&
        p.u64("l2FlushesElided", &ph->l2FlushesElided) &&
        p.u64("l2InvalidatesElided", &ph->l2InvalidatesElided) &&
        p.u64("linesWrittenBack", &ph->linesWrittenBack) &&
        p.u64("accesses", &ph->accesses) &&
        p.u64("l2Hits", &ph->l2.hits) && p.u64("l2Misses", &ph->l2.misses);
    if (!good)
        return false;
    ph->stream = static_cast<int>(stream);
    ph->finalBarrier = finalBarrier != 0;
    ph->conservative = conservative != 0;
    return true;
}

namespace
{

/** Escape the compact codec's separators (and '%') in kernel names. */
void
appendEscapedName(std::string &out, const std::string &name)
{
    for (const char c : name) {
        switch (c) {
          case '%': out += "%25"; break;
          case ',': out += "%2C"; break;
          case ';': out += "%3B"; break;
          default: out += c;
        }
    }
}

bool
unescapeName(const std::string &s, std::string *out)
{
    std::string result;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            result += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        const char hex[3] = {s[i + 1], s[i + 2], '\0'};
        char *end = nullptr;
        const unsigned long code = std::strtoul(hex, &end, 16);
        if (end != hex + 2)
            return false;
        result += static_cast<char>(code);
        i += 2;
    }
    *out = std::move(result);
    return true;
}

constexpr std::size_t kCompactFields = 17;

} // namespace

std::string
encodeKernelPhasesCompact(const std::vector<KernelPhaseStats> &phases)
{
    std::string out;
    char buf[32];
    for (const KernelPhaseStats &ph : phases) {
        if (!out.empty())
            out += ';';
        appendEscapedName(out, ph.name);
        const std::uint64_t fields[] = {
            static_cast<std::uint64_t>(
                static_cast<std::int64_t>(ph.stream)),
            ph.finalBarrier ? 1u : 0u,
            ph.start,
            ph.end,
            ph.syncStallCycles,
            ph.acquires,
            ph.releases,
            ph.conservative ? 1u : 0u,
            ph.l2FlushesIssued,
            ph.l2InvalidatesIssued,
            ph.l2FlushesElided,
            ph.l2InvalidatesElided,
            ph.linesWrittenBack,
            ph.accesses,
            ph.l2.hits,
            ph.l2.misses,
        };
        for (const std::uint64_t f : fields) {
            std::snprintf(buf, sizeof(buf), ",%" PRIu64, f);
            out += buf;
        }
    }
    return out;
}

bool
decodeKernelPhasesCompact(const std::string &s,
                          std::vector<KernelPhaseStats> *out)
{
    std::vector<KernelPhaseStats> phases;
    if (s.empty()) {
        *out = std::move(phases);
        return true;
    }
    std::size_t recStart = 0;
    while (recStart <= s.size()) {
        std::size_t recEnd = s.find(';', recStart);
        if (recEnd == std::string::npos)
            recEnd = s.size();
        const std::string rec = s.substr(recStart, recEnd - recStart);

        std::vector<std::string> fields;
        std::size_t fieldStart = 0;
        while (fieldStart <= rec.size()) {
            std::size_t fieldEnd = rec.find(',', fieldStart);
            if (fieldEnd == std::string::npos)
                fieldEnd = rec.size();
            fields.push_back(rec.substr(fieldStart, fieldEnd - fieldStart));
            fieldStart = fieldEnd + 1;
            if (fieldEnd == rec.size())
                break;
        }
        if (fields.size() != kCompactFields)
            return false;

        KernelPhaseStats ph;
        if (!unescapeName(fields[0], &ph.name))
            return false;
        std::uint64_t v[kCompactFields - 1] = {};
        for (std::size_t i = 1; i < kCompactFields; ++i) {
            errno = 0;
            char *end = nullptr;
            v[i - 1] = std::strtoull(fields[i].c_str(), &end, 10);
            if (errno != 0 || end == fields[i].c_str() || *end != '\0')
                return false;
        }
        ph.stream = static_cast<int>(static_cast<std::int64_t>(v[0]));
        ph.finalBarrier = v[1] != 0;
        ph.start = v[2];
        ph.end = v[3];
        ph.syncStallCycles = v[4];
        ph.acquires = v[5];
        ph.releases = v[6];
        ph.conservative = v[7] != 0;
        ph.l2FlushesIssued = v[8];
        ph.l2InvalidatesIssued = v[9];
        ph.l2FlushesElided = v[10];
        ph.l2InvalidatesElided = v[11];
        ph.linesWrittenBack = v[12];
        ph.accesses = v[13];
        ph.l2.hits = v[14];
        ph.l2.misses = v[15];
        phases.push_back(std::move(ph));

        if (recEnd == s.size())
            break;
        recStart = recEnd + 1;
    }
    *out = std::move(phases);
    return true;
}

} // namespace cpelide
