/**
 * @file
 * Public, HIP-flavoured runtime API — the library's main entry point.
 *
 * Mirrors the ROCm extensions the paper adds (Listings 1 and 2):
 *
 * @code
 *   using namespace cpelide;
 *   Runtime rt(GpuConfig::radeonVii(4), {.protocol =
 *                                        ProtocolKind::CpElide});
 *   DevArray a = rt.malloc("A", n * sizeof(float));
 *   DevArray c = rt.malloc("C", n * sizeof(float));
 *
 *   KernelDesc square = ...;               // grid + trace
 *   rt.setAccessMode(square, a, AccessMode::ReadOnly);   // Listing 1
 *   rt.setAccessMode(square, c, AccessMode::ReadWrite);
 *   rt.launchKernel(square);
 *
 *   RunResult r = rt.deviceSynchronize("square");
 * @endcode
 *
 * setAccessModeRange() is the Listing-2 fine-grained variant taking
 * explicit per-chiplet byte ranges; setStreamChiplets() is the
 * hipSetDevice analogue binding a stream to a chiplet subset.
 */

#ifndef CPELIDE_RUNTIME_RUNTIME_HH
#define CPELIDE_RUNTIME_RUNTIME_HH

#include <memory>
#include <string>
#include <vector>

#include "config/gpu_config.hh"
#include "cp/kernel.hh"
#include "gpu/gpu_system.hh"
#include "stats/run_result.hh"

namespace cpelide
{

/** Handle to a device allocation. */
struct DevArray
{
    DsId id = -1;
    Addr base = 0;
    std::uint64_t bytes = 0;

    std::uint64_t numLines() const { return bytes / kLineBytes; }
    /** Byte range covering lines [lineLo, lineHi). */
    AddrRange
    lineRange(std::uint64_t lineLo, std::uint64_t lineHi) const
    {
        return {base + lineLo * kLineBytes, base + lineHi * kLineBytes};
    }
    /** The whole allocation. */
    AddrRange span() const { return {base, base + bytes}; }
};

/** The device runtime; owns one simulated GPU. */
class Runtime
{
  public:
    Runtime(const GpuConfig &cfg, const RunOptions &opts);
    ~Runtime();

    /** hipMalloc: page-aligned device allocation. */
    DevArray malloc(const std::string &name, std::uint64_t bytes);

    /**
     * Exempt @p arr from the staleness checker: its kernels perform
     * benign, idempotent cross-chiplet races (frontier flags, atomic
     * maxima). Synchronization remains fully conservative for it.
     */
    void markRacy(const DevArray &arr);

    /**
     * hipSetAccessMode (Listing 1): declare how @p arr is accessed by
     * @p kernel. @p kind selects how the CP derives per-chiplet
     * ranges; use RangeKind::Full for irregular/indirect access.
     */
    void setAccessMode(KernelDesc &kernel, const DevArray &arr,
                       AccessMode mode,
                       RangeKind kind = RangeKind::Affine);

    /**
     * hipSetAccessModeRange (Listing 2): declare mode plus explicit
     * per-scheduled-chiplet byte ranges.
     */
    void setAccessModeRange(KernelDesc &kernel, const DevArray &arr,
                            AccessMode mode,
                            std::vector<AddrRange> ranges);

    /** hipSetDevice analogue: bind @p stream to @p chiplets. */
    void setStreamChiplets(int stream,
                           std::vector<ChipletId> chiplets);

    /**
     * Reassign subsequently launched default-stream (streamId == 0)
     * kernels to @p stream. Lets a single-stream program be replayed
     * as one job of a multi-stream mix (Section VI study).
     */
    void setDefaultStream(int stream) { _defaultStream = stream; }

    /** hipLaunchKernelGGL: enqueue @p kernel on its stream. */
    void launchKernel(KernelDesc kernel);

    /**
     * hipDeviceSynchronize: simulate everything enqueued so far plus
     * the final visibility barrier and return the measurements.
     * Call once per Runtime.
     */
    RunResult deviceSynchronize(const std::string &label);

    /** The underlying simulated GPU (benches, tests). */
    GpuSystem &gpu() { return *_gpu; }

  private:
    RunOptions _opts;
    std::unique_ptr<GpuSystem> _gpu;
    int _defaultStream = 0;
    bool _synchronized = false;
};

} // namespace cpelide

#endif // CPELIDE_RUNTIME_RUNTIME_HH
