#include "runtime/runtime.hh"

#include "sim/log.hh"

namespace cpelide
{

Runtime::Runtime(const GpuConfig &cfg, const RunOptions &opts)
    : _opts(opts), _gpu(std::make_unique<GpuSystem>(cfg, opts))
{}

Runtime::~Runtime() = default;

DevArray
Runtime::malloc(const std::string &name, std::uint64_t bytes)
{
    DataSpace &space = _gpu->space();
    const DsId id = space.allocate(name, bytes);
    const Allocation &a = space.alloc(id);
    return DevArray{id, a.base, a.bytes};
}

void
Runtime::markRacy(const DevArray &arr)
{
    _gpu->space().setRacy(arr.id);
}

void
Runtime::setAccessMode(KernelDesc &kernel, const DevArray &arr,
                       AccessMode mode, RangeKind kind)
{
    if (kind == RangeKind::Explicit)
        fatal("use setAccessModeRange for explicit ranges");
    KernelArgDecl decl;
    decl.ds = arr.id;
    decl.mode = mode;
    decl.rangeKind = kind;
    kernel.args.push_back(std::move(decl));
}

void
Runtime::setAccessModeRange(KernelDesc &kernel, const DevArray &arr,
                            AccessMode mode,
                            std::vector<AddrRange> ranges)
{
    KernelArgDecl decl;
    decl.ds = arr.id;
    decl.mode = mode;
    decl.rangeKind = RangeKind::Explicit;
    decl.explicitRanges = std::move(ranges);
    kernel.args.push_back(std::move(decl));
}

void
Runtime::setStreamChiplets(int stream, std::vector<ChipletId> chiplets)
{
    _gpu->bindStream(stream, std::move(chiplets));
}

void
Runtime::launchKernel(KernelDesc kernel)
{
    panicIf(_synchronized, "launchKernel after deviceSynchronize");
    if (kernel.streamId == 0)
        kernel.streamId = _defaultStream;
    _gpu->enqueue(std::move(kernel));
}

RunResult
Runtime::deviceSynchronize(const std::string &label)
{
    panicIf(_synchronized,
            "deviceSynchronize('" + label + "') called twice on the "
            "same Runtime: each Runtime models one submission whose "
            "events are consumed by the first synchronize. Build a new "
            "Runtime (or a RunRequest per run) for another measurement.");
    _synchronized = true;
    return _gpu->run(label);
}

} // namespace cpelide
