#include "serve/telemetry.hh"

// The slow log stamps each line with a Unix wall-clock time so an
// operator can line entries up with external logs; this file is the
// audited wall-clock exemption in scripts/lint.py (WALLCLOCK_ALLOWED).
// Every other timestamp here is caller-supplied monotonic time.
#include <chrono>

#include "stats/json_util.hh"

namespace cpelide
{

namespace
{

/** Duration helper: 0 when either end is missing or out of order. */
std::uint64_t
spanNs(std::uint64_t from, std::uint64_t to)
{
    return (from == 0 || to == 0 || to < from) ? 0 : to - from;
}

std::uint64_t
toUs(std::uint64_t ns)
{
    return ns / 1000;
}

SeriesWindows
seriesSnap(const prof::WindowedHistogram &h, std::uint64_t nowNs)
{
    SeriesWindows s;
    s.w1s = h.window(nowNs, kServeWindow1sNs);
    s.w10s = h.window(nowNs, kServeWindow10sNs);
    s.w60s = h.window(nowNs, kServeWindow60sNs);
    return s;
}

} // namespace

const char *
ServeTelemetry::outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Ok: return "ok";
      case Outcome::Cached: return "cached";
      case Outcome::Failed: return "failed";
      case Outcome::Shed: return "shed";
      case Outcome::Deadline: return "deadline";
    }
    return "unknown";
}

std::vector<std::pair<int, std::string>>
ServeTelemetry::trackNames()
{
    return {
        {kServeTrackAccept, "accept"},
        {kServeTrackQueue, "queue"},
        {kServeTrackCache, "cache"},
        {kServeTrackLaneInteractive, "lane interactive"},
        {kServeTrackLaneBulk, "lane bulk"},
        {kServeTrackWriters, "writers"},
    };
}

ServeTelemetry::ServeTelemetry(Config cfg) : _cfg(std::move(cfg))
{
    if (!_cfg.slowlogPath.empty()) {
        _slowlog = std::fopen(_cfg.slowlogPath.c_str(), "a");
        // On open failure fall back to stderr rather than silently
        // dropping slow-request evidence.
    }
}

ServeTelemetry::~ServeTelemetry()
{
    if (_slowlog)
        std::fclose(_slowlog);
}

std::uint64_t
ServeTelemetry::begin(std::uint64_t clientId, ServePriority lane,
                      const std::string &label, std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    const std::uint64_t spanId = _nextSpanId++;
    Span span;
    span.clientId = clientId;
    span.lane = lane;
    span.label = label;
    span.tAccept = nowNs;
    _open.emplace(spanId, std::move(span));
    ++_spansStarted;
    return spanId;
}

void
ServeTelemetry::cacheLookup(std::uint64_t spanId, bool hit,
                            std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it == _open.end())
        return;
    it->second.cacheChecked = true;
    it->second.cacheHit = hit;
    it->second.tCache = nowNs;
}

void
ServeTelemetry::enqueued(std::uint64_t spanId, std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it != _open.end())
        it->second.tEnqueued = nowNs;
}

void
ServeTelemetry::dequeued(std::uint64_t spanId, std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it != _open.end())
        it->second.tDequeued = nowNs;
}

void
ServeTelemetry::simStart(std::uint64_t spanId, std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it == _open.end())
        return;
    // A retried job starts again; the span keeps the latest attempt.
    it->second.tSimStart = nowNs;
    it->second.tSimEnd = 0;
}

void
ServeTelemetry::simEnd(std::uint64_t spanId, bool ok,
                       std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it == _open.end())
        return;
    it->second.tSimEnd = nowNs;
    it->second.simOk = ok;
}

void
ServeTelemetry::responded(std::uint64_t spanId, Outcome outcome,
                          std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it == _open.end())
        return;
    it->second.outcome = outcome;
    it->second.tResponded = nowNs;
}

void
ServeTelemetry::flushed(std::uint64_t spanId, std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it == _open.end())
        return;
    const Span span = std::move(it->second);
    _open.erase(it);
    finalize(spanId, span, nowNs, /*flushedToPeer=*/true);
}

void
ServeTelemetry::abandoned(std::uint64_t spanId, std::uint64_t nowNs)
{
    MutexGuard lock(_mutex);
    auto it = _open.find(spanId);
    if (it == _open.end())
        return;
    const Span span = std::move(it->second);
    _open.erase(it);
    finalize(spanId, span, nowNs, /*flushedToPeer=*/false);
}

void
ServeTelemetry::finalize(std::uint64_t spanId, const Span &span,
                         std::uint64_t endNs, bool flushedToPeer)
{
    ++_spansCompleted;
    if (!flushedToPeer) {
        ++_outcomeAbandoned;
    } else {
        switch (span.outcome) {
          case Outcome::Ok: ++_outcomeOk; break;
          case Outcome::Cached: ++_outcomeCached; break;
          case Outcome::Failed: ++_outcomeFailed; break;
          case Outcome::Shed: ++_outcomeShed; break;
          case Outcome::Deadline: ++_outcomeDeadline; break;
        }
    }

    const std::uint64_t e2eNs = spanNs(span.tAccept, endNs);
    _e2e.record(endNs, toUs(e2eNs));
    if (span.tEnqueued && span.tDequeued) {
        _queueWait.record(endNs,
                          toUs(spanNs(span.tEnqueued, span.tDequeued)));
    }
    if (span.tSimStart && span.tSimEnd) {
        _simTime.record(endNs,
                        toUs(spanNs(span.tSimStart, span.tSimEnd)));
    }
    if (span.cacheHit) {
        _cacheServe.record(
            endNs, toUs(spanNs(span.tAccept, span.tResponded)));
    }
    // Lane throughput: only the count/rate of these windows is read.
    if (span.lane == ServePriority::Bulk)
        _laneBulk.record(endNs, 0);
    else
        _laneInteractive.record(endNs, 0);

    if (_cfg.traceSpans)
        emitTrace(spanId, span, endNs);

    const double e2eMs = static_cast<double>(e2eNs) / 1e6;
    if (_cfg.slowlogMs > 0 &&
        e2eMs >= static_cast<double>(_cfg.slowlogMs)) {
        emitSlowLog(spanId, span, e2eMs);
        ++_slowLogged;
    }
}

void
ServeTelemetry::emitTrace(std::uint64_t spanId, const Span &span,
                          std::uint64_t endNs)
{
    // Seven events per request, bounded by maxTraceEvents overall.
    if (_traceEvents.size() + 8 > _cfg.maxTraceEvents) {
        ++_traceDropped;
        return;
    }
    const std::string tag = "req#" + std::to_string(spanId);
    auto stamp = [&](TraceEvent &e) {
        e.cat = "serve";
        e.arg("span", spanId);
        e.arg("id", span.clientId);
        _traceEvents.push_back(std::move(e));
    };

    // Timestamps export as microseconds (1 trace tick = 1 us).
    TraceEvent accept;
    accept.kind = TraceEvent::Kind::Instant;
    accept.name = "accept " + tag;
    accept.tid = kServeTrackAccept;
    accept.ts = toUs(span.tAccept);
    stamp(accept);

    if (span.cacheChecked) {
        TraceEvent cache;
        cache.kind = TraceEvent::Kind::Instant;
        cache.name = (span.cacheHit ? "hit " : "miss ") + tag;
        cache.tid = kServeTrackCache;
        cache.ts = toUs(span.tCache);
        stamp(cache);
    }
    if (span.tEnqueued && span.tDequeued) {
        TraceEvent queue;
        queue.kind = TraceEvent::Kind::Span;
        queue.name = "queue " + tag;
        queue.tid = kServeTrackQueue;
        queue.ts = toUs(span.tEnqueued);
        queue.dur = toUs(spanNs(span.tEnqueued, span.tDequeued));
        stamp(queue);
    }
    if (span.tSimStart && span.tSimEnd) {
        TraceEvent sim;
        sim.kind = TraceEvent::Kind::Span;
        sim.name = "sim " + tag + " " + span.label;
        sim.tid = span.lane == ServePriority::Bulk
                      ? kServeTrackLaneBulk
                      : kServeTrackLaneInteractive;
        sim.ts = toUs(span.tSimStart);
        sim.dur = toUs(spanNs(span.tSimStart, span.tSimEnd));
        sim.arg("ok", span.simOk ? 1 : 0);
        stamp(sim);
    }
    if (span.tResponded) {
        TraceEvent write;
        write.kind = TraceEvent::Kind::Span;
        write.name = "write " + tag;
        write.tid = kServeTrackWriters;
        write.ts = toUs(span.tResponded);
        write.dur = toUs(spanNs(span.tResponded, endNs));
        stamp(write);
    }
}

void
ServeTelemetry::emitSlowLog(std::uint64_t spanId, const Span &span,
                            double e2eMs)
{
    // The one wall-clock read: a Unix epoch stamp so slow-log lines
    // correlate with the rest of an operator's logging.
    const std::uint64_t unixMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    std::string line = "{";
    json::appendStr(line, "event", "slow");
    json::appendU64(line, "unixMs", unixMs);
    json::appendU64(line, "span", spanId);
    json::appendU64(line, "id", span.clientId);
    json::appendStr(line, "lane", servePriorityName(span.lane));
    json::appendStr(line, "outcome",
                    span.tResponded ? outcomeName(span.outcome)
                                    : "abandoned");
    json::appendStr(line, "label", span.label);
    json::appendU64(line, "cached", span.cacheHit ? 1 : 0);
    json::appendDouble(line, "e2eMs", e2eMs);
    json::appendDouble(
        line, "queueMs",
        static_cast<double>(spanNs(span.tEnqueued, span.tDequeued)) /
            1e6);
    json::appendDouble(
        line, "simMs",
        static_cast<double>(spanNs(span.tSimStart, span.tSimEnd)) /
            1e6);
    line += "}\n";

    std::FILE *dst = _slowlog ? _slowlog : stderr;
    std::fputs(line.c_str(), dst);
    std::fflush(dst);
}

TelemetrySnap
ServeTelemetry::snapshot(std::uint64_t nowNs) const
{
    MutexGuard lock(_mutex);
    TelemetrySnap snap;
    snap.spansStarted = _spansStarted.value();
    snap.spansCompleted = _spansCompleted.value();
    snap.outcomeOk = _outcomeOk.value();
    snap.outcomeCached = _outcomeCached.value();
    snap.outcomeFailed = _outcomeFailed.value();
    snap.outcomeShed = _outcomeShed.value();
    snap.outcomeDeadline = _outcomeDeadline.value();
    snap.outcomeAbandoned = _outcomeAbandoned.value();
    snap.slowLogged = _slowLogged.value();
    snap.e2e = seriesSnap(_e2e, nowNs);
    snap.queueWait = seriesSnap(_queueWait, nowNs);
    snap.simTime = seriesSnap(_simTime, nowNs);
    snap.cacheServe = seriesSnap(_cacheServe, nowNs);
    snap.laneInteractive = seriesSnap(_laneInteractive, nowNs);
    snap.laneBulk = seriesSnap(_laneBulk, nowNs);
    return snap;
}

std::vector<TraceEvent>
ServeTelemetry::traceEvents() const
{
    MutexGuard lock(_mutex);
    return _traceEvents;
}

} // namespace cpelide
