/**
 * @file
 * SimServer: the long-lived simulation service behind the simd
 * binary.
 *
 * Listens on a Unix-domain stream socket speaking the NDJSON protocol
 * (serve/protocol.hh). Per connection, a reader thread parses request
 * lines; cache hits (serve/result_cache.hh) are answered inline in
 * microseconds with "cached":1, misses are queued to a scheduler
 * thread that batches them into SweepSpecs — interactive lane before
 * bulk — and runs them through the existing exec machinery
 * (SweepRunner pool, watchdog budgets, classified retries). Each
 * job's response streams back the moment it completes via the
 * SweepSpec::onOutcome submission hook; failures are classified and
 * isolated per request, never per batch.
 *
 * Resilience (docs/SERVING.md "Resilience"):
 *  - Per-request deadlines: a request still queued when its
 *    deadlineMs passes is answered with a classified "deadline" error
 *    without simulating; one that starts in time has the remaining
 *    deadline clamped onto its job's watchdog budget.
 *  - Load shedding: the global queue is bounded
 *    (CPELIDE_SERVE_QUEUE); at the bound the bulk lane sheds first,
 *    and every shed rejection carries a retryAfterMs hint.
 *  - Non-blocking writers: each connection has a writer thread behind
 *    a bounded outbox (CPELIDE_SERVE_WRITEBUF), so a slow or stuck
 *    reader is disconnected instead of stalling the onOutcome hook —
 *    one wedged client can never back up everyone else's results.
 *  - Per-client quotas (CPELIDE_SERVE_QUOTA) bound how many requests
 *    one connection may have in flight; excess asks are rejected
 *    immediately rather than queued.
 *  - A "health" probe reports lane depths, in-flight work, shed /
 *    deadline / quarantine counters, and uptime.
 *
 * start() refuses to clobber a *live* daemon's socket: the path is
 * probe-connected first and only a dead (connection-refused) file is
 * replaced.
 *
 * Shutdown (requestStop()/stop()) is a drain, not an abort: the
 * listener closes, readers stop consuming new requests, every queued
 * job still runs and answers, completed results are already persisted
 * to the on-disk cache store — so a restart resumes with the warm
 * cache and a re-submitted in-flight request is served from it.
 * abortStop() is the opposite — an immediate teardown that answers
 * nothing and leaves the socket file behind, emulating a SIGKILL for
 * the chaos tests.
 */

#ifndef CPELIDE_SERVE_SERVER_HH
#define CPELIDE_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "prof/counter.hh"
#include "serve/metrics.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/telemetry.hh"
#include "sim/thread_annotations.hh"
#include "trace/trace.hh"

namespace cpelide
{

namespace prof
{
class ProfRegistry;
}

class SimServer
{
  public:
    struct Config
    {
        /** Listen socket path ("" = "simd.sock" in the cwd). */
        std::string socketPath;
        /** Cache store directory ("" = memory-only cache). */
        std::string cacheDir;
        /** In-memory cache capacity (entries). */
        std::size_t cacheSize = 4096;
        /** Per-connection in-flight request cap. */
        int quota = 64;
        /** Max requests batched into one SweepSpec. */
        int batch = 32;
        /** SweepRunner workers (0 = CPELIDE_JOBS / hw concurrency). */
        int jobs = 0;
        /** Global queued-request bound; at the bound, bulk sheds first. */
        int maxQueue = 256;
        /** Per-connection outbox bound (bytes) before a stalled
         *  reader is disconnected. */
        std::size_t writeBufBytes = 4u << 20;
        /** Slow-request log threshold, ms end-to-end (0 = off). */
        std::uint64_t slowlogMs = 0;
        /** Slow-log JSONL destination ("" = stderr). */
        std::string slowlogPath;
        /** Chrome trace output path; when set, stop() appends the
         *  serve span-chain process to the TraceArchive and rewrites
         *  the file. */
        std::string tracePath;
        /** Collect span-chain trace events even without a tracePath
         *  (tests read them via telemetryEvents()). fromEnv() sets
         *  this iff CPELIDE_TRACE is set. */
        bool traceSpans = false;

        /** Defaults from the CPELIDE_SERVE_* knobs (ExecOptions). */
        static Config fromEnv();
    };

    explicit SimServer(Config cfg);
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /**
     * Bind the socket, then spawn the accept and scheduler threads.
     * A pre-existing socket file is probe-connected first: a live
     * daemon is never clobbered (start() fails with a warn()), only a
     * stale file from a dead daemon is replaced. @return false with a
     * warn() on probe/bind/listen failure.
     */
    bool start();

    /**
     * Async stop signal: flips the stop flag the accept loop polls.
     * Safe to call from a signal-notified context; pair with stop()
     * to actually drain and join.
     */
    void requestStop() { _stopping.store(true); }

    /** Drain queued work, join every thread, close and unlink. */
    void stop() CPELIDE_EXCLUDES(_connMutex, _queueMutex);

    /**
     * Immediate teardown for crash emulation (chaos tests): close
     * every connection without answering queued work and *leave the
     * socket file behind*, exactly the residue a SIGKILLed daemon
     * leaves. Completed results are already on disk, so a warm
     * restart serves them as "cached":1.
     */
    void abortStop() CPELIDE_EXCLUDES(_connMutex, _queueMutex);

    bool running() const { return _running.load(); }
    const std::string &socketPath() const { return _cfg.socketPath; }

    /** Live counter snapshot (the "stats" protocol answer). */
    ServeStats stats() const CPELIDE_EXCLUDES(_statMutex);

    /** Live pressure/liveness snapshot (the "health" answer). */
    ServeHealth health() const
        CPELIDE_EXCLUDES(_queueMutex, _connMutex, _statMutex);

    /**
     * The "metrics" answer: stats + health + the telemetry cut. The
     * telemetry portion (outcome counters and every windowed series)
     * is one transactionally-consistent snapshot taken under the
     * telemetry lock.
     */
    ServeMetrics metrics() const
        CPELIDE_EXCLUDES(_queueMutex, _connMutex, _statMutex);

    /** Span-chain trace events collected so far (tests; requires
     *  Config::traceSpans or a tracePath). */
    std::vector<TraceEvent> telemetryEvents() const
    {
        return _telemetry.traceEvents();
    }

    /**
     * Register the serve counters as gauges under "serve/..." so a
     * profile report (--profile / CPELIDE_PROFILE) covers the daemon
     * itself. The registry must not outlive this server.
     */
    void registerProf(prof::ProfRegistry &reg) const
        CPELIDE_EXCLUDES(_statMutex);

  private:
    /** One framed response line plus its telemetry correlation. */
    struct OutboxItem
    {
        std::string data;
        /** Span to finalize when the last byte hits the socket
         *  (0 = untracked, e.g. stats/health/metrics answers). */
        std::uint64_t spanId = 0;
    };

    struct Connection
    {
        int fd = -1;
        /** Guards outbox/outboxBytes/writerStop; writeCv signals. */
        Mutex writeMutex;
        std::condition_variable writeCv;
        std::deque<OutboxItem> outbox CPELIDE_GUARDED_BY(writeMutex);
        std::size_t outboxBytes CPELIDE_GUARDED_BY(writeMutex) = 0;
        bool writerStop CPELIDE_GUARDED_BY(writeMutex) = false;
        std::atomic<int> inFlight{0};
        std::atomic<bool> closed{false};  //!< reader finished
        std::atomic<bool> dropped{false}; //!< kicked (stalled/overflow)
        std::thread reader;
        std::thread writer;
    };

    struct PendingTask
    {
        std::shared_ptr<Connection> conn;
        ServeRequest req;
        std::uint64_t hash = 0;
        /** When the reader enqueued it (deadline accounting). */
        std::chrono::steady_clock::time_point enqueued;
        /** Telemetry span id threaded through the lifecycle. */
        std::uint64_t spanId = 0;
    };

    void acceptLoop() CPELIDE_EXCLUDES(_connMutex);
    void readerLoop(const std::shared_ptr<Connection> &conn)
        CPELIDE_EXCLUDES(_statMutex);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line)
        CPELIDE_EXCLUDES(_queueMutex, _statMutex);
    void schedulerLoop() CPELIDE_EXCLUDES(_queueMutex, _statMutex);
    void runBatch(std::vector<PendingTask> tasks)
        CPELIDE_EXCLUDES(_statMutex);
    /** Enqueue @p line on the connection's writer (never blocks on
     *  the peer; overflow disconnects the connection). @p spanId
     *  correlates the line with its telemetry span (0 = none); the
     *  writer finalizes the span at flush. */
    void respond(Connection &conn, const std::string &line,
                 std::uint64_t spanId = 0)
        CPELIDE_EXCLUDES(conn.writeMutex);
    void writerLoop(const std::shared_ptr<Connection> &conn)
        CPELIDE_EXCLUDES(conn->writeMutex);
    /** Kick a connection (stalled reader / dead peer). Lock order:
     *  abortStop() calls this under _connMutex, so _connMutex always
     *  precedes writeMutex; no path takes them the other way round. */
    void dropConnection(Connection &conn, bool countSlow)
        CPELIDE_EXCLUDES(conn.writeMutex, _statMutex);
    void reapConnections(bool all) CPELIDE_EXCLUDES(_connMutex);
    /** Shed hint for a queue @p depth: when to try again. */
    std::uint64_t retryAfterHintMs(std::size_t depth) const;
    /** Monotonic nanoseconds since _startTime (telemetry clock). */
    std::uint64_t nowNs() const;
    /** Telemetry configuration derived from a server Config. */
    static ServeTelemetry::Config telemetryConfig(const Config &cfg);

    Config _cfg;
    ResultCache _cache;
    /** Request-lifecycle spans + windowed metrics (own leaf lock). */
    ServeTelemetry _telemetry;

    int _listenFd = -1;
    std::atomic<bool> _running{false};
    std::atomic<bool> _stopping{false};
    std::thread _acceptThread;
    std::thread _schedulerThread;
    std::chrono::steady_clock::time_point _startTime;

    mutable Mutex _connMutex;
    std::vector<std::shared_ptr<Connection>>
        _connections CPELIDE_GUARDED_BY(_connMutex);

    mutable Mutex _queueMutex;
    std::condition_variable _queueCv;
    std::deque<PendingTask> _interactive CPELIDE_GUARDED_BY(_queueMutex);
    std::deque<PendingTask> _bulk CPELIDE_GUARDED_BY(_queueMutex);
    /** Scheduler-thread-only: names each batch's SweepSpec uniquely. */
    std::uint64_t _batchSeq = 0;

    /** Jobs currently inside the pool (lane occupancy in health). */
    std::atomic<int> _executing{0};

    /** Cumulative counters (ServeStats), guarded by _statMutex. */
    mutable Mutex _statMutex;
    prof::Counter _requests CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _rejected CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _shed CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _deadlineExpired CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _slowDisconnects CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _simulations CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _failures CPELIDE_GUARDED_BY(_statMutex);
    prof::Counter _simEvents CPELIDE_GUARDED_BY(_statMutex);
};

} // namespace cpelide

#endif // CPELIDE_SERVE_SERVER_HH
