/**
 * @file
 * SimServer: the long-lived simulation service behind the simd
 * binary.
 *
 * Listens on a Unix-domain stream socket speaking the NDJSON protocol
 * (serve/protocol.hh). Per connection, a reader thread parses request
 * lines; cache hits (serve/result_cache.hh) are answered inline in
 * microseconds with "cached":1, misses are queued to a scheduler
 * thread that batches them into SweepSpecs — interactive lane before
 * bulk — and runs them through the existing exec machinery
 * (SweepRunner pool, watchdog budgets, classified retries). Each
 * job's response streams back the moment it completes via the
 * SweepSpec::onOutcome submission hook; failures are classified and
 * isolated per request, never per batch.
 *
 * Per-client quotas (CPELIDE_SERVE_QUOTA) bound how many requests one
 * connection may have in flight; excess asks are rejected immediately
 * rather than queued, so one greedy client cannot wedge the daemon.
 *
 * Shutdown (requestStop()/stop()) is a drain, not an abort: the
 * listener closes, readers stop consuming new requests, every queued
 * job still runs and answers, completed results are already persisted
 * to the on-disk cache store — so a restart resumes with the warm
 * cache and a re-submitted in-flight request is served from it.
 */

#ifndef CPELIDE_SERVE_SERVER_HH
#define CPELIDE_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "serve/result_cache.hh"

namespace cpelide
{

class SimServer
{
  public:
    struct Config
    {
        /** Listen socket path ("" = "simd.sock" in the cwd). */
        std::string socketPath;
        /** Cache store directory ("" = memory-only cache). */
        std::string cacheDir;
        /** In-memory cache capacity (entries). */
        std::size_t cacheSize = 4096;
        /** Per-connection in-flight request cap. */
        int quota = 64;
        /** Max requests batched into one SweepSpec. */
        int batch = 32;
        /** SweepRunner workers (0 = CPELIDE_JOBS / hw concurrency). */
        int jobs = 0;

        /** Defaults from the CPELIDE_SERVE_* knobs (ExecOptions). */
        static Config fromEnv();
    };

    explicit SimServer(Config cfg);
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /**
     * Bind the socket (replacing a stale file from a dead daemon),
     * then spawn the accept and scheduler threads. @return false with
     * a warn() on bind/listen failure.
     */
    bool start();

    /**
     * Async stop signal: flips the stop flag the accept loop polls.
     * Safe to call from a signal-notified context; pair with stop()
     * to actually drain and join.
     */
    void requestStop() { _stopping.store(true); }

    /** Drain queued work, join every thread, close and unlink. */
    void stop();

    bool running() const { return _running.load(); }
    const std::string &socketPath() const { return _cfg.socketPath; }

    /** Live counter snapshot (the "stats" protocol answer). */
    ServeStats stats() const;

  private:
    struct Connection
    {
        int fd = -1;
        std::mutex writeMutex;
        std::atomic<int> inFlight{0};
        std::atomic<bool> closed{false};
        std::thread reader;
    };

    struct PendingTask
    {
        std::shared_ptr<Connection> conn;
        ServeRequest req;
        std::uint64_t hash = 0;
    };

    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void schedulerLoop();
    void runBatch(std::vector<PendingTask> tasks);
    void respond(Connection &conn, const std::string &line);
    void reapConnections(bool all);

    Config _cfg;
    ResultCache _cache;

    int _listenFd = -1;
    std::atomic<bool> _running{false};
    std::atomic<bool> _stopping{false};
    std::thread _acceptThread;
    std::thread _schedulerThread;

    std::mutex _connMutex;
    std::vector<std::shared_ptr<Connection>> _connections;

    std::mutex _queueMutex;
    std::condition_variable _queueCv;
    std::deque<PendingTask> _interactive;
    std::deque<PendingTask> _bulk;
    /** Scheduler-thread-only: names each batch's SweepSpec uniquely. */
    std::uint64_t _batchSeq = 0;

    std::atomic<std::uint64_t> _requests{0};
    std::atomic<std::uint64_t> _rejected{0};
    std::atomic<std::uint64_t> _simulations{0};
    std::atomic<std::uint64_t> _failures{0};
    std::atomic<std::uint64_t> _simEvents{0};
};

} // namespace cpelide

#endif // CPELIDE_SERVE_SERVER_HH
