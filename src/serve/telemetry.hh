/**
 * @file
 * ServeTelemetry: per-request lifecycle spans and windowed latency
 * metrics for the simd daemon (docs/OBSERVABILITY.md "Service
 * telemetry").
 *
 * The server threads a server-assigned span id through each request's
 * life — accept, cache lookup, queue admission, dequeue, sim
 * start/finish, respond, writer flush — and reports each transition
 * here with a monotonic timestamp (nanoseconds since server start,
 * read by the server; this class never touches a clock except for the
 * slow-log's wall-clock stamp, the one audited wall-clock exemption in
 * scripts/lint.py). Span ids exist because client request ids are
 * connection-scoped: two clients may both send id 1, and the span id
 * is the server-wide correlation handle that keeps their chains apart.
 *
 * On finalize (writer flushed the response, or the connection died
 * first) a span updates, under ONE mutex, everything the metrics verb
 * exposes: the rolling 1s/10s/60s windows (queue wait, sim time,
 * cache-hit serve time, end-to-end latency, per-lane throughput), the
 * cumulative outcome counters, the Chrome-trace span chain (tracks:
 * accept, queue, cache, lane interactive, lane bulk, writers), and —
 * when the end-to-end latency crosses Config::slowlogMs — one
 * structured JSONL slow-request log line. Because a single lock guards
 * it all, snapshot() is transactionally consistent: outcome counters
 * always sum to the completed-span count.
 */

#ifndef CPELIDE_SERVE_TELEMETRY_HH
#define CPELIDE_SERVE_TELEMETRY_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "prof/counter.hh"
#include "prof/window.hh"
#include "serve/protocol.hh"
#include "sim/thread_annotations.hh"
#include "trace/trace.hh"

namespace cpelide
{

/** Chrome-trace track ids of the serve process (exported tid+1). */
constexpr int kServeTrackAccept = 0;
constexpr int kServeTrackQueue = 1;
constexpr int kServeTrackCache = 2;
constexpr int kServeTrackLaneInteractive = 3;
constexpr int kServeTrackLaneBulk = 4;
constexpr int kServeTrackWriters = 5;

/** The three exposition windows, in nanoseconds. */
constexpr std::uint64_t kServeWindow1sNs = 1000000000ull;
constexpr std::uint64_t kServeWindow10sNs = 10000000000ull;
constexpr std::uint64_t kServeWindow60sNs = 60000000000ull;

/** One latency/throughput series over the three windows. */
struct SeriesWindows
{
    prof::WindowStats w1s;
    prof::WindowStats w10s;
    prof::WindowStats w60s;
};

/**
 * One consistent cut of the telemetry state: cumulative outcome
 * counters plus every windowed series, all read under the same lock.
 */
struct TelemetrySnap
{
    std::uint64_t spansStarted = 0;   //!< begin() calls
    std::uint64_t spansCompleted = 0; //!< finalized (flushed/abandoned)
    std::uint64_t outcomeOk = 0;
    std::uint64_t outcomeCached = 0;
    std::uint64_t outcomeFailed = 0;
    std::uint64_t outcomeShed = 0;
    std::uint64_t outcomeDeadline = 0;
    std::uint64_t outcomeAbandoned = 0;
    std::uint64_t slowLogged = 0; //!< slow-log lines emitted

    SeriesWindows e2e;             //!< accept -> flush, microseconds
    SeriesWindows queueWait;       //!< enqueue -> dequeue, microseconds
    SeriesWindows simTime;         //!< sim start -> end, microseconds
    SeriesWindows cacheServe;      //!< accept -> respond on a hit, us
    SeriesWindows laneInteractive; //!< completions (count/rate only)
    SeriesWindows laneBulk;        //!< completions (count/rate only)
};

class ServeTelemetry
{
  public:
    struct Config
    {
        /** E2e latency (ms) at or above which a request is slow-logged
         *  (0 = slow log off). CPELIDE_SERVE_SLOWLOG_MS. */
        std::uint64_t slowlogMs = 0;
        /** Slow-log JSONL destination ("" = stderr).
         *  CPELIDE_SERVE_SLOWLOG. */
        std::string slowlogPath;
        /** Collect Chrome-trace span-chain events (the server enables
         *  this when CPELIDE_TRACE is set). */
        bool traceSpans = false;
        /** Trace-event memory bound; events past it are dropped (and
         *  counted), so a long-lived daemon cannot grow unboundedly. */
        std::size_t maxTraceEvents = 200000;
    };

    /** How a span's request was ultimately answered. */
    enum class Outcome
    {
        Ok,       //!< simulated successfully
        Cached,   //!< served from the content-addressed cache
        Failed,   //!< simulated and failed (classified error)
        Shed,     //!< load-shed (queue full)
        Deadline, //!< deadline expired (queued or mid-run)
    };

    explicit ServeTelemetry(Config cfg);
    ~ServeTelemetry();

    ServeTelemetry(const ServeTelemetry &) = delete;
    ServeTelemetry &operator=(const ServeTelemetry &) = delete;

    /** Open a span for an accepted request; @return its span id
     *  (never 0 — 0 is the "no span" sentinel). */
    std::uint64_t begin(std::uint64_t clientId, ServePriority lane,
                        const std::string &label, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);

    void cacheLookup(std::uint64_t spanId, bool hit,
                     std::uint64_t nowNs) CPELIDE_EXCLUDES(_mutex);
    void enqueued(std::uint64_t spanId, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);
    void dequeued(std::uint64_t spanId, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);
    void simStart(std::uint64_t spanId, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);
    void simEnd(std::uint64_t spanId, bool ok, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);
    /** The response was built and handed to the writer outbox. */
    void responded(std::uint64_t spanId, Outcome outcome,
                   std::uint64_t nowNs) CPELIDE_EXCLUDES(_mutex);
    /** The writer pushed the last byte into the socket: finalize. */
    void flushed(std::uint64_t spanId, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);
    /** The connection died before the flush: finalize without one. */
    void abandoned(std::uint64_t spanId, std::uint64_t nowNs)
        CPELIDE_EXCLUDES(_mutex);

    /** One consistent cut of counters + windows (one lock). */
    TelemetrySnap snapshot(std::uint64_t nowNs) const
        CPELIDE_EXCLUDES(_mutex);

    /** Copy of the span-chain trace events collected so far (the
     *  server appends them as the "simd serve" trace process). */
    std::vector<TraceEvent> traceEvents() const
        CPELIDE_EXCLUDES(_mutex);

    /** (raw tid, name) pairs naming the serve tracks. */
    static std::vector<std::pair<int, std::string>> trackNames();

    static const char *outcomeName(Outcome o);

  private:
    struct Span
    {
        std::uint64_t clientId = 0;
        ServePriority lane = ServePriority::Interactive;
        bool cacheChecked = false;
        bool cacheHit = false;
        Outcome outcome = Outcome::Ok;
        bool simOk = false;
        std::string label;
        // Lifecycle timestamps, ns since server start. tAccept is
        // always valid (begin() sets it); for the rest, 0 means the
        // stage was never reached — a cache hit has no tEnqueued, a
        // shed request no tSimStart.
        std::uint64_t tAccept = 0;
        std::uint64_t tCache = 0;
        std::uint64_t tEnqueued = 0;
        std::uint64_t tDequeued = 0;
        std::uint64_t tSimStart = 0;
        std::uint64_t tSimEnd = 0;
        std::uint64_t tResponded = 0;
    };

    void finalize(std::uint64_t spanId, const Span &span,
                  std::uint64_t endNs, bool flushedToPeer)
        CPELIDE_REQUIRES(_mutex);
    void emitTrace(std::uint64_t spanId, const Span &span,
                   std::uint64_t endNs) CPELIDE_REQUIRES(_mutex);
    void emitSlowLog(std::uint64_t spanId, const Span &span,
                     double e2eMs) CPELIDE_REQUIRES(_mutex);

    Config _cfg;
    std::FILE *_slowlog = nullptr; //!< owned iff slowlogPath nonempty

    mutable Mutex _mutex;
    std::uint64_t _nextSpanId CPELIDE_GUARDED_BY(_mutex) = 1;
    std::map<std::uint64_t, Span> _open CPELIDE_GUARDED_BY(_mutex);

    prof::Counter _spansStarted CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _spansCompleted CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _outcomeOk CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _outcomeCached CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _outcomeFailed CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _outcomeShed CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _outcomeDeadline CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _outcomeAbandoned CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _slowLogged CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _traceDropped CPELIDE_GUARDED_BY(_mutex);

    prof::WindowedHistogram _e2e CPELIDE_GUARDED_BY(_mutex);
    prof::WindowedHistogram _queueWait CPELIDE_GUARDED_BY(_mutex);
    prof::WindowedHistogram _simTime CPELIDE_GUARDED_BY(_mutex);
    prof::WindowedHistogram _cacheServe CPELIDE_GUARDED_BY(_mutex);
    prof::WindowedHistogram _laneInteractive CPELIDE_GUARDED_BY(_mutex);
    prof::WindowedHistogram _laneBulk CPELIDE_GUARDED_BY(_mutex);

    std::vector<TraceEvent> _traceEvents CPELIDE_GUARDED_BY(_mutex);
};

} // namespace cpelide

#endif // CPELIDE_SERVE_TELEMETRY_HH
