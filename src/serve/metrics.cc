#include "serve/metrics.hh"

#include <cstdio>

#include "stats/json_util.hh"

namespace cpelide
{

namespace
{

struct SeriesRef
{
    const char *name;
    SeriesWindows TelemetrySnap::*member;
};

struct WindowRef
{
    const char *name;
    prof::WindowStats SeriesWindows::*member;
};

const SeriesRef kSeries[] = {
    {"e2e", &TelemetrySnap::e2e},
    {"queueWait", &TelemetrySnap::queueWait},
    {"simTime", &TelemetrySnap::simTime},
    {"cacheServe", &TelemetrySnap::cacheServe},
    {"laneInteractive", &TelemetrySnap::laneInteractive},
    {"laneBulk", &TelemetrySnap::laneBulk},
};

const WindowRef kWindows[] = {
    {"1s", &SeriesWindows::w1s},
    {"10s", &SeriesWindows::w10s},
    {"60s", &SeriesWindows::w60s},
};

std::string
seriesKey(const char *series, const char *field, const char *window)
{
    std::string key = series;
    key += '_';
    key += field;
    key += '_';
    key += window;
    return key;
}

/** Compact fixed-precision double for the Prometheus body. */
std::string
promNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
promLine(std::string &out, const std::string &name,
         const std::string &labels, double value)
{
    out += name;
    if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
    }
    out += ' ';
    out += promNumber(value);
    out += '\n';
}

void
promType(std::string &out, const std::string &name, const char *type)
{
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

} // namespace

const std::vector<std::string> &
serveMetricsSeriesNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const SeriesRef &s : kSeries)
            v.push_back(s.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
serveMetricsWindowNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const WindowRef &w : kWindows)
            v.push_back(w.name);
        return v;
    }();
    return names;
}

std::string
encodeServeMetricsJson(const ServeMetrics &m)
{
    std::string out = "{";
    json::appendStr(out, "type", "metrics");
    json::appendStr(out, "format", "json");
    json::appendStr(out, "engineVersion", m.stats.engineVersion);
    json::appendU64(out, "pid", m.health.pid);
    json::appendU64(out, "uptimeMs", m.health.uptimeMs);

    json::appendU64(out, "requests", m.stats.requests);
    json::appendU64(out, "rejected", m.stats.rejected);
    json::appendU64(out, "cacheHits", m.stats.cacheHits);
    json::appendU64(out, "cacheMisses", m.stats.cacheMisses);
    json::appendU64(out, "simulations", m.stats.simulations);
    json::appendU64(out, "failures", m.stats.failures);
    json::appendU64(out, "simEvents", m.stats.simEvents);
    json::appendU64(out, "cacheEntries", m.stats.cacheEntries);
    json::appendU64(out, "shed", m.stats.shed);
    json::appendU64(out, "deadlineExpired", m.stats.deadlineExpired);
    json::appendU64(out, "quarantined", m.stats.quarantined);
    json::appendU64(out, "slowDisconnects", m.stats.slowDisconnects);

    json::appendU64(out, "queueInteractive", m.health.queueInteractive);
    json::appendU64(out, "queueBulk", m.health.queueBulk);
    json::appendU64(out, "executing", m.health.executing);
    json::appendU64(out, "connections", m.health.connections);

    json::appendU64(out, "spansStarted", m.telemetry.spansStarted);
    json::appendU64(out, "spansCompleted", m.telemetry.spansCompleted);
    json::appendU64(out, "outcomeOk", m.telemetry.outcomeOk);
    json::appendU64(out, "outcomeCached", m.telemetry.outcomeCached);
    json::appendU64(out, "outcomeFailed", m.telemetry.outcomeFailed);
    json::appendU64(out, "outcomeShed", m.telemetry.outcomeShed);
    json::appendU64(out, "outcomeDeadline",
                    m.telemetry.outcomeDeadline);
    json::appendU64(out, "outcomeAbandoned",
                    m.telemetry.outcomeAbandoned);
    json::appendU64(out, "slowLogged", m.telemetry.slowLogged);

    for (const SeriesRef &s : kSeries) {
        const SeriesWindows &sw = m.telemetry.*(s.member);
        for (const WindowRef &w : kWindows) {
            const prof::WindowStats &ws = sw.*(w.member);
            json::appendU64(
                out, seriesKey(s.name, "count", w.name).c_str(),
                ws.count);
            json::appendDouble(
                out, seriesKey(s.name, "rate", w.name).c_str(),
                ws.ratePerSec);
            json::appendDouble(
                out, seriesKey(s.name, "p50us", w.name).c_str(),
                ws.p50);
            json::appendDouble(
                out, seriesKey(s.name, "p95us", w.name).c_str(),
                ws.p95);
            json::appendDouble(
                out, seriesKey(s.name, "p99us", w.name).c_str(),
                ws.p99);
        }
    }
    out += '}';
    return out;
}

bool
decodeServeMetricsJson(const std::string &line, ServeMetrics *out)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type;
    if (!p.str("type", &type) || type != "metrics")
        return false;

    ServeMetrics m;
    const bool good =
        p.str("engineVersion", &m.stats.engineVersion) &&
        p.u64("pid", &m.health.pid) &&
        p.u64("uptimeMs", &m.health.uptimeMs) &&
        p.u64("requests", &m.stats.requests) &&
        p.u64("rejected", &m.stats.rejected) &&
        p.u64("cacheHits", &m.stats.cacheHits) &&
        p.u64("cacheMisses", &m.stats.cacheMisses) &&
        p.u64("simulations", &m.stats.simulations) &&
        p.u64("failures", &m.stats.failures) &&
        p.u64("simEvents", &m.stats.simEvents) &&
        p.u64("cacheEntries", &m.stats.cacheEntries) &&
        p.u64("shed", &m.stats.shed) &&
        p.u64("deadlineExpired", &m.stats.deadlineExpired) &&
        p.u64("quarantined", &m.stats.quarantined) &&
        p.u64("slowDisconnects", &m.stats.slowDisconnects) &&
        p.u64("queueInteractive", &m.health.queueInteractive) &&
        p.u64("queueBulk", &m.health.queueBulk) &&
        p.u64("executing", &m.health.executing) &&
        p.u64("connections", &m.health.connections) &&
        p.u64("spansStarted", &m.telemetry.spansStarted) &&
        p.u64("spansCompleted", &m.telemetry.spansCompleted) &&
        p.u64("outcomeOk", &m.telemetry.outcomeOk) &&
        p.u64("outcomeCached", &m.telemetry.outcomeCached) &&
        p.u64("outcomeFailed", &m.telemetry.outcomeFailed) &&
        p.u64("outcomeShed", &m.telemetry.outcomeShed) &&
        p.u64("outcomeDeadline", &m.telemetry.outcomeDeadline) &&
        p.u64("outcomeAbandoned", &m.telemetry.outcomeAbandoned) &&
        p.u64("slowLogged", &m.telemetry.slowLogged);
    if (!good)
        return false;
    m.health.engineVersion = m.stats.engineVersion;
    m.health.shed = m.stats.shed;
    m.health.deadlineExpired = m.stats.deadlineExpired;
    m.health.quarantined = m.stats.quarantined;
    m.health.slowDisconnects = m.stats.slowDisconnects;

    for (const SeriesRef &s : kSeries) {
        SeriesWindows &sw = m.telemetry.*(s.member);
        for (const WindowRef &w : kWindows) {
            prof::WindowStats &ws = sw.*(w.member);
            const bool ok =
                p.u64(seriesKey(s.name, "count", w.name).c_str(),
                      &ws.count) &&
                p.dbl(seriesKey(s.name, "rate", w.name).c_str(),
                      &ws.ratePerSec) &&
                p.dbl(seriesKey(s.name, "p50us", w.name).c_str(),
                      &ws.p50) &&
                p.dbl(seriesKey(s.name, "p95us", w.name).c_str(),
                      &ws.p95) &&
                p.dbl(seriesKey(s.name, "p99us", w.name).c_str(),
                      &ws.p99);
            if (!ok)
                return false;
        }
    }
    *out = std::move(m);
    return true;
}

std::string
serveMetricsPrometheus(const ServeMetrics &m)
{
    std::string out;

    const struct
    {
        const char *name;
        std::uint64_t value;
    } counters[] = {
        {"cpelide_serve_requests_total", m.stats.requests},
        {"cpelide_serve_rejected_total", m.stats.rejected},
        {"cpelide_serve_cache_hits_total", m.stats.cacheHits},
        {"cpelide_serve_cache_misses_total", m.stats.cacheMisses},
        {"cpelide_serve_simulations_total", m.stats.simulations},
        {"cpelide_serve_failures_total", m.stats.failures},
        {"cpelide_serve_sim_events_total", m.stats.simEvents},
        {"cpelide_serve_shed_total", m.stats.shed},
        {"cpelide_serve_deadline_expired_total",
         m.stats.deadlineExpired},
        {"cpelide_serve_quarantined_total", m.stats.quarantined},
        {"cpelide_serve_slow_disconnects_total",
         m.stats.slowDisconnects},
        {"cpelide_serve_spans_started_total",
         m.telemetry.spansStarted},
        {"cpelide_serve_spans_completed_total",
         m.telemetry.spansCompleted},
        {"cpelide_serve_slow_logged_total", m.telemetry.slowLogged},
    };
    for (const auto &c : counters) {
        promType(out, c.name, "counter");
        promLine(out, c.name, "", static_cast<double>(c.value));
    }

    promType(out, "cpelide_serve_outcomes_total", "counter");
    const struct
    {
        const char *label;
        std::uint64_t value;
    } outcomes[] = {
        {"ok", m.telemetry.outcomeOk},
        {"cached", m.telemetry.outcomeCached},
        {"failed", m.telemetry.outcomeFailed},
        {"shed", m.telemetry.outcomeShed},
        {"deadline", m.telemetry.outcomeDeadline},
        {"abandoned", m.telemetry.outcomeAbandoned},
    };
    for (const auto &o : outcomes) {
        promLine(out, "cpelide_serve_outcomes_total",
                 std::string("outcome=\"") + o.label + "\"",
                 static_cast<double>(o.value));
    }

    promType(out, "cpelide_serve_queue_depth", "gauge");
    promLine(out, "cpelide_serve_queue_depth", "lane=\"interactive\"",
             static_cast<double>(m.health.queueInteractive));
    promLine(out, "cpelide_serve_queue_depth", "lane=\"bulk\"",
             static_cast<double>(m.health.queueBulk));

    const struct
    {
        const char *name;
        double value;
    } gauges[] = {
        {"cpelide_serve_executing",
         static_cast<double>(m.health.executing)},
        {"cpelide_serve_connections",
         static_cast<double>(m.health.connections)},
        {"cpelide_serve_cache_entries",
         static_cast<double>(m.stats.cacheEntries)},
        {"cpelide_serve_uptime_seconds",
         static_cast<double>(m.health.uptimeMs) / 1e3},
        {"cpelide_serve_process_pid",
         static_cast<double>(m.health.pid)},
    };
    for (const auto &g : gauges) {
        promType(out, g.name, "gauge");
        promLine(out, g.name, "", g.value);
    }

    promType(out, "cpelide_serve_latency_microseconds", "gauge");
    promType(out, "cpelide_serve_window_count", "gauge");
    promType(out, "cpelide_serve_window_rate_per_second", "gauge");
    for (const SeriesRef &s : kSeries) {
        const SeriesWindows &sw = m.telemetry.*(s.member);
        for (const WindowRef &w : kWindows) {
            const prof::WindowStats &ws = sw.*(w.member);
            const std::string base = std::string("series=\"") +
                                     s.name + "\",window=\"" + w.name +
                                     "\"";
            promLine(out, "cpelide_serve_window_count", base,
                     static_cast<double>(ws.count));
            promLine(out, "cpelide_serve_window_rate_per_second", base,
                     ws.ratePerSec);
            const struct
            {
                const char *q;
                double value;
            } quantiles[] = {
                {"0.5", ws.p50}, {"0.95", ws.p95}, {"0.99", ws.p99}};
            for (const auto &q : quantiles) {
                promLine(out, "cpelide_serve_latency_microseconds",
                         base + ",quantile=\"" + q.q + "\"", q.value);
            }
        }
    }

    promType(out, "cpelide_serve_build_info", "gauge");
    promLine(out, "cpelide_serve_build_info",
             "version=\"" + m.stats.engineVersion + "\"", 1.0);
    return out;
}

std::string
encodeServeMetricsPrometheusLine(const ServeMetrics &m)
{
    std::string out = "{";
    json::appendStr(out, "type", "metrics");
    json::appendStr(out, "format", "prometheus");
    json::appendStr(out, "body", serveMetricsPrometheus(m));
    out += '}';
    return out;
}

bool
decodeServeMetricsPrometheusLine(const std::string &line,
                                 std::string *body)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type, format;
    if (!p.str("type", &type) || type != "metrics" ||
        !p.str("format", &format) || format != "prometheus") {
        return false;
    }
    return p.str("body", body);
}

} // namespace cpelide
