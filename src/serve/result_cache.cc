#include "serve/result_cache.hh"

#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "sim/log.hh"
#include "stats/json_util.hh"
#include "stats/run_result_io.hh"

namespace cpelide
{

namespace
{

/**
 * The trailing integrity field: ,"sum":"<16 hex>"} over the record
 * bytes before it. The checksum input is the serialized line up to
 * (and excluding) the ",\"sum\"" separator, so verification is a pure
 * byte operation — no reparse, no canonicalization drift.
 */
constexpr const char *kSumSep = ",\"sum\":\"";

std::string
sumHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

/** One disk-store line (no trailing newline), checksummed. */
std::string
encodeCacheLine(std::uint64_t key, const std::string &canonical,
                const RunResult &result)
{
    std::string out = "{";
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, key);
        json::appendStr(out, "key", buf); // string: uint64 > 2^53 is legal
    }
    json::appendStr(out, "request", canonical);
    appendRunResultFields(out, result);
    json::appendStr(out, "kernelPhases",
                    encodeKernelPhasesCompact(result.kernelPhases));
    out += kSumSep + sumHex(json::fnv1a64(out)) + "\"}";
    return out;
}

/**
 * Integrity verdict of one raw store line. Legacy lines (no sum
 * suffix) pass; a line whose suffix does not verify is corrupt.
 */
bool
cacheLineIntact(const std::string &line)
{
    const std::size_t sepLen = std::string(kSumSep).size();
    // ...,"sum":"0123456789abcdef"}
    if (line.size() < sepLen + 18)
        return true; // too short to carry a sum: legacy
    const std::size_t at = line.size() - (sepLen + 18);
    if (line.compare(at, sepLen, kSumSep) != 0 || line.back() != '}' ||
        line[line.size() - 2] != '"') {
        return true; // no sum suffix: legacy line, accepted as-is
    }
    const std::string want = line.substr(at + sepLen, 16);
    return sumHex(json::fnv1a64(line.substr(0, at))) == want;
}

bool
decodeCacheLine(const std::string &line, std::uint64_t *key,
                RunResult *result)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string keyStr;
    if (!p.str("key", &keyStr))
        return false;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t k = std::strtoull(keyStr.c_str(), &end, 10);
    if (errno != 0 || end == keyStr.c_str() || *end != '\0')
        return false;
    RunResult r;
    if (!parseRunResultFields(p, &r))
        return false;
    std::string phases;
    if (p.str("kernelPhases", &phases) &&
        !decodeKernelPhasesCompact(phases, &r.kernelPhases)) {
        return false;
    }
    *key = k;
    *result = std::move(r);
    return true;
}

} // namespace

ResultCache::ResultCache(std::size_t capacity, const std::string &dir)
    : _capacity(capacity == 0 ? 1 : capacity)
{
    if (dir.empty())
        return;

    // No other thread can see a half-built cache, but insertLocked()
    // requires the capability, and holding it for real keeps the
    // constructor honest under -Wthread-safety (and costs nothing).
    MutexGuard lock(_mutex);

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("result cache: cannot create '" + dir + "' (" +
             ec.message() + "); running memory-only");
        return;
    }
    _path = (std::filesystem::path(dir) / "results.jsonl").string();

    // Load the store, with the same crash-mid-append repair discipline
    // as the checkpoint journal: skip unparsable lines, finish a
    // complete-but-unterminated tail, truncate a true fragment.
    std::string text;
    {
        std::ifstream in(_path, std::ios::binary);
        if (in.is_open()) {
            text.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
        }
    }
    const bool tornTail = !text.empty() && text.back() != '\n';
    bool tailParsed = false;
    std::vector<std::string> quarantine;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        const bool isTail = end == std::string::npos;
        if (isTail)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        std::uint64_t key = 0;
        RunResult result;
        if (!cacheLineIntact(line) ||
            !decodeCacheLine(line, &key, &result)) {
            // The unterminated tail is the expected crash-mid-append
            // artifact and is truncated below; anything else is a
            // corrupt *complete* record — quarantined, never loaded,
            // never fatal (the request just re-simulates).
            if (!(isTail && tornTail)) {
                ++_quarantineCounter;
                quarantine.push_back(line);
            }
            continue;
        }
        if (isTail)
            tailParsed = true;
        // Later lines win; the LRU keeps at most _capacity of the most
        // recently appended entries.
        insertLocked(key, result);
    }
    _loadedEntries = _map.size();
    if (!quarantine.empty()) {
        const std::string qPath =
            (std::filesystem::path(dir) / "quarantine.jsonl").string();
        warn("result cache " + _path + ": quarantined " +
             std::to_string(quarantine.size()) +
             " corrupt record(s) to " + qPath);
        // Rewritten (not appended) each load: the file mirrors the
        // corrupt records currently present in the store.
        if (std::FILE *qf = std::fopen(qPath.c_str(), "w")) {
            for (const std::string &line : quarantine) {
                std::fwrite(line.data(), 1, line.size(), qf);
                std::fputc('\n', qf);
            }
            std::fclose(qf);
        }
    }
    if (tornTail && !tailParsed) {
        const std::size_t lastNl = text.find_last_of('\n');
        const std::size_t keep =
            lastNl == std::string::npos ? 0 : lastNl + 1;
        std::filesystem::resize_file(_path, keep, ec);
        if (ec) {
            warn("result cache " + _path + ": cannot truncate torn "
                 "tail (" + ec.message() + "); appends may be lost");
        }
    }

    _file = std::fopen(_path.c_str(), "a");
    if (!_file) {
        warn("result cache: cannot append to '" + _path +
             "'; running memory-only");
        _path.clear();
        return;
    }
    if (tornTail && tailParsed) {
        std::fputc('\n', _file);
        std::fflush(_file);
    }
}

ResultCache::~ResultCache()
{
    MutexGuard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

bool
ResultCache::lookup(std::uint64_t key, RunResult *out)
{
    MutexGuard lock(_mutex);
    auto it = _map.find(key);
    if (it == _map.end()) {
        ++_missCounter;
        return false;
    }
    _lru.splice(_lru.begin(), _lru, it->second.lruPos);
    ++_hitCounter;
    *out = it->second.result;
    return true;
}

void
ResultCache::insertLocked(std::uint64_t key, const RunResult &result)
{
    auto it = _map.find(key);
    if (it != _map.end()) {
        // By construction the stored bytes already equal result's;
        // only the recency changes.
        _lru.splice(_lru.begin(), _lru, it->second.lruPos);
        return;
    }
    _lru.push_front(key);
    _map[key] = Entry{result, _lru.begin()};
    while (_map.size() > _capacity) {
        _map.erase(_lru.back());
        _lru.pop_back();
    }
}

void
ResultCache::insert(std::uint64_t key, const std::string &canonical,
                    const RunResult &result)
{
    MutexGuard lock(_mutex);
    const bool fresh = _map.find(key) == _map.end();
    insertLocked(key, result);
    if (fresh && _file) {
        const std::string line = encodeCacheLine(key, canonical, result);
        std::fwrite(line.data(), 1, line.size(), _file);
        std::fputc('\n', _file);
        std::fflush(_file);
    }
}

std::size_t
ResultCache::entries() const
{
    MutexGuard lock(_mutex);
    return _map.size();
}

std::uint64_t
ResultCache::hitTally() const
{
    MutexGuard lock(_mutex);
    return _hitCounter.value();
}

std::uint64_t
ResultCache::missTally() const
{
    MutexGuard lock(_mutex);
    return _missCounter.value();
}

std::uint64_t
ResultCache::quarantineTally() const
{
    MutexGuard lock(_mutex);
    return _quarantineCounter.value();
}

} // namespace cpelide
