#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "stats/json_util.hh"

namespace cpelide
{

namespace
{

/** Whether a rejection is the server shedding load (transient). */
bool
isShedError(const std::string &error)
{
    return error.rfind("shed: ", 0) == 0;
}

void
sleepMs(double ms)
{
    if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
    }
}

} // namespace

SimClient::Options
SimClient::Options::fromEnv()
{
    const ExecOptions eo = ExecOptions::fromEnv();
    Options opts;
    opts.connectTimeoutMs = eo.serveTimeoutMs;
    opts.recvTimeoutMs = eo.serveTimeoutMs;
    opts.maxRetries = eo.serveRetries;
    opts.backoffMs = eo.retryBackoffMs;
    return opts;
}

SimClient::SimClient(Options opts)
    : _opts(opts),
      _jitterState(opts.jitterSeed ? opts.jitterSeed
                                   : 0x9e3779b97f4a7c15ULL)
{
    if (_opts.maxRetries < 0)
        _opts.maxRetries = 0;
    if (_opts.backoffMs < 0.0)
        _opts.backoffMs = 0.0;
}

SimClient::~SimClient()
{
    close();
}

bool
SimClient::dial()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (_socketPath.size() >= sizeof(addr.sun_path))
        return false;
    std::strncpy(addr.sun_path, _socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    _fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (_fd < 0)
        return false;

    // Bounded connect: non-blocking dial, poll for completion. On a
    // Unix socket the common outcomes are immediate (live daemon or
    // ECONNREFUSED on a stale path); the poll covers a backlogged
    // listener.
    const int flags = ::fcntl(_fd, F_GETFL, 0);
    if (_opts.connectTimeoutMs > 0.0 && flags >= 0)
        ::fcntl(_fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
        pollfd pfd{_fd, POLLOUT, 0};
        const int timeout =
            static_cast<int>(_opts.connectTimeoutMs) > 0
                ? static_cast<int>(_opts.connectTimeoutMs)
                : -1;
        if (::poll(&pfd, 1, timeout) == 1) {
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(_fd, SOL_SOCKET, SO_ERROR, &err, &len);
            rc = err == 0 ? 0 : -1;
        }
    }
    if (_opts.connectTimeoutMs > 0.0 && flags >= 0)
        ::fcntl(_fd, F_SETFL, flags);
    if (rc != 0) {
        ::close(_fd);
        _fd = -1;
        return false;
    }
    _buffer.clear();
    return true;
}

bool
SimClient::connect(const std::string &socketPath)
{
    close();
    _socketPath = socketPath;
    return dial();
}

bool
SimClient::reconnect()
{
    if (_socketPath.empty())
        return false;
    closeFd();
    if (!dial())
        return false;
    ++_reconnects;
    std::uint64_t resent = 0;
    // Resubmit everything unanswered, in id order. Answers the dead
    // daemon already computed come back "cached":1; the rest simulate
    // to byte-identical output — determinism makes this safe.
    for (const auto &entry : _pending) {
        if (!sendLine(entry.second)) {
            closeFd();
            return false;
        }
        ++_resubmitted;
        ++resent;
    }
    logReconnect(resent);
    return true;
}

void
SimClient::closeFd()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _buffer.clear();
}

void
SimClient::close()
{
    closeFd();
    _pending.clear();
}

bool
SimClient::sendLine(const std::string &line)
{
    if (_fd < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(_fd, framed.data() + sent, framed.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
SimClient::send(const ServeRequest &req)
{
    const std::string line = encodeServeRequest(req);
    if (!sendLine(line))
        return false;
    _pending[req.id] = line;
    return true;
}

bool
SimClient::recvLine(std::string *line, bool *timedOut)
{
    if (timedOut)
        *timedOut = false;
    if (_fd < 0)
        return false;
    for (;;) {
        const std::size_t nl = _buffer.find('\n');
        if (nl != std::string::npos) {
            line->assign(_buffer, 0, nl);
            _buffer.erase(0, nl + 1);
            return true;
        }
        if (_opts.recvTimeoutMs > 0.0) {
            pollfd pfd{_fd, POLLIN, 0};
            const int n =
                ::poll(&pfd, 1, static_cast<int>(_opts.recvTimeoutMs));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                if (timedOut)
                    *timedOut = n == 0;
                return false;
            }
        }
        char chunk[4096];
        const ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        _buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
SimClient::recvResponse(ServeResponse *resp)
{
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeResponse(line, resp)) {
            _pending.erase(resp->id);
            return true;
        }
        // Not a result line (e.g. an interleaved stats answer): skip.
    }
    return false;
}

bool
SimClient::recvMatching(std::uint64_t id, ServeResponse *resp)
{
    ServeResponse r;
    while (recvResponse(&r)) {
        if (r.id == id) {
            *resp = std::move(r);
            return true;
        }
        // Someone else's (e.g. a resubmitted earlier request's) answer;
        // recvResponse already settled its pending entry.
    }
    return false;
}

bool
SimClient::request(const ServeRequest &req, ServeResponse *resp)
{
    return send(req) && recvMatching(req.id, resp);
}

void
SimClient::logRetry(const char *failureClass, int attempt,
                    double backoffMs, std::uint64_t id,
                    std::uint64_t retryAfterMs)
{
    if (!_opts.logRetries)
        return;
    std::string body = "{";
    json::appendStr(body, "event", "retry");
    json::appendStr(body, "class", failureClass);
    json::appendI64(body, "attempt", attempt);
    json::appendDouble(body, "backoffMs", backoffMs);
    json::appendU64(body, "id", id);
    if (retryAfterMs > 0)
        json::appendU64(body, "retryAfterMs", retryAfterMs);
    body += "}";
    MutexGuard lock(logMutex());
    std::fprintf(stderr, "simclient: %s\n", body.c_str());
}

void
SimClient::logReconnect(std::uint64_t resubmitted)
{
    if (!_opts.logRetries)
        return;
    std::string body = "{";
    json::appendStr(body, "event", "reconnect");
    json::appendStr(body, "socket", _socketPath);
    json::appendU64(body, "resubmitted", resubmitted);
    body += "}";
    MutexGuard lock(logMutex());
    std::fprintf(stderr, "simclient: %s\n", body.c_str());
}

double
SimClient::jittered(double baseMs)
{
    // xorshift64: cheap, deterministic under the fixed seed, decent
    // spread — all a retry-desynchronization jitter needs.
    _jitterState ^= _jitterState << 13;
    _jitterState ^= _jitterState >> 7;
    _jitterState ^= _jitterState << 17;
    const double frac =
        static_cast<double>(_jitterState % 1024) / 2048.0; // [0, 0.5)
    return baseMs * (1.0 + frac);
}

bool
SimClient::call(const ServeRequest &req, ServeResponse *resp)
{
    double backoffMs = _opts.backoffMs;
    for (int attempt = 0;; ++attempt) {
        bool transportOk = true;
        bool submitted = false;
        if (!connected()) {
            if (reconnect())
                submitted = _pending.count(req.id) > 0;
            else
                transportOk = false;
        }
        if (transportOk && !submitted)
            transportOk = send(req);
        if (transportOk && recvMatching(req.id, resp)) {
            if (!resp->ok && isShedError(resp->error) &&
                attempt < _opts.maxRetries) {
                // Shed is the server asking us to come back later:
                // honor its hint (at least), with our jittered backoff
                // as the floor, and try again.
                ++_retries;
                const double hintMs =
                    static_cast<double>(resp->retryAfterMs);
                const double waitMs = jittered(backoffMs);
                const double sleepForMs =
                    hintMs > waitMs ? hintMs : waitMs;
                logRetry("shed", attempt + 1, sleepForMs, req.id,
                         resp->retryAfterMs);
                sleepMs(sleepForMs);
                backoffMs *= 2.0;
                continue;
            }
            return true; // final answer (possibly a non-transient !ok)
        }
        // Transport failure: connect refused, EOF mid-wait, timeout.
        closeFd();
        if (attempt >= _opts.maxRetries)
            return false;
        ++_retries;
        const double waitMs = jittered(backoffMs);
        logRetry("transport", attempt + 1, waitMs, req.id, 0);
        sleepMs(waitMs);
        backoffMs *= 2.0;
    }
}

bool
SimClient::stats(ServeStats *out)
{
    if (!sendLine("{\"type\":\"stats\"}"))
        return false;
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeStats(line, out))
            return true;
    }
    return false;
}

bool
SimClient::health(ServeHealth *out)
{
    if (!sendLine("{\"type\":\"health\"}"))
        return false;
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeHealth(line, out))
            return true;
    }
    return false;
}

bool
SimClient::metrics(ServeMetrics *out)
{
    if (!sendLine("{\"type\":\"metrics\"}"))
        return false;
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeMetricsJson(line, out))
            return true;
    }
    return false;
}

bool
SimClient::metricsPrometheus(std::string *body)
{
    if (!sendLine("{\"type\":\"metrics\",\"format\":\"prometheus\"}"))
        return false;
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeMetricsPrometheusLine(line, body))
            return true;
    }
    return false;
}

} // namespace cpelide
