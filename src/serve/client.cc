#include "serve/client.hh"

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cpelide
{

SimClient::~SimClient()
{
    close();
}

bool
SimClient::connect(const std::string &socketPath)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        return false;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    _fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (_fd < 0)
        return false;
    if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(_fd);
        _fd = -1;
        return false;
    }
    return true;
}

void
SimClient::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _buffer.clear();
}

bool
SimClient::sendLine(const std::string &line)
{
    if (_fd < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(_fd, framed.data() + sent, framed.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
SimClient::send(const ServeRequest &req)
{
    return sendLine(encodeServeRequest(req));
}

bool
SimClient::recvLine(std::string *line)
{
    if (_fd < 0)
        return false;
    for (;;) {
        const std::size_t nl = _buffer.find('\n');
        if (nl != std::string::npos) {
            line->assign(_buffer, 0, nl);
            _buffer.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        _buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
SimClient::recvResponse(ServeResponse *resp)
{
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeResponse(line, resp))
            return true;
        // Not a result line (e.g. an interleaved stats answer): skip.
    }
    return false;
}

bool
SimClient::request(const ServeRequest &req, ServeResponse *resp)
{
    return send(req) && recvResponse(resp);
}

bool
SimClient::stats(ServeStats *out)
{
    if (!sendLine("{\"type\":\"stats\"}"))
        return false;
    std::string line;
    while (recvLine(&line)) {
        if (decodeServeStats(line, out))
            return true;
    }
    return false;
}

} // namespace cpelide
