/**
 * @file
 * Wire protocol of the simd daemon: newline-delimited JSON, one flat
 * object per line, both directions — the same codec family as the
 * journal and the JSONL stat sinks (stats/run_result_io.hh), so a
 * response line carries a RunResult byte-identically to how the
 * journal would.
 *
 * Client -> server lines:
 *   {"type":"run","id":N,"priority":"interactive"|"bulk",
 *    "deadlineMs":N,"workload":...,"protocol":...,"chiplets":...,
 *    "scale":...,"copies":...,"extraSyncSets":...,"label":...}
 *   {"type":"stats"}
 *   {"type":"health"}
 *   {"type":"metrics"[,"format":"json"|"prometheus"]}
 *
 * Server -> client lines:
 *   {"type":"result","id":N,"cached":0|1,"ok":0|1,"retryAfterMs":N,
 *    "error":..., <RunResult fields>, "kernelPhases":"<compact>"}
 *   {"type":"stats", <counter fields>, "engineVersion":...}
 *   {"type":"health", <live-shape fields>, "engineVersion":...}
 *   {"type":"metrics", ...} (serve/metrics.hh owns both shapes)
 *
 * Responses stream in completion order; the echoed id is the client's
 * correlation handle. Request ids are client-scoped (the server never
 * interprets them beyond echoing), so clients may number however they
 * like.
 */

#ifndef CPELIDE_SERVE_PROTOCOL_HH
#define CPELIDE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/request_codec.hh"
#include "stats/run_result.hh"

namespace cpelide
{

/**
 * Scheduling lane. Interactive requests always batch before bulk
 * ones: a design-space sweep queued as bulk cannot starve a human
 * poking at single points.
 */
enum class ServePriority
{
    Interactive,
    Bulk,
};

const char *servePriorityName(ServePriority p);

/** One queued simulation ask, as it travels client -> server. */
struct ServeRequest
{
    std::uint64_t id = 0;
    ServePriority priority = ServePriority::Interactive;
    /**
     * Soft deadline in milliseconds from the server receiving the
     * request (0 = none). A request still queued when its deadline
     * passes is answered with a classified "deadline" error without
     * simulating; a request that starts in time has the remaining
     * deadline clamped onto its job's watchdog budget, so it can never
     * run longer than the client is still waiting.
     */
    std::uint64_t deadlineMs = 0;
    RunRequest run;
};

/** One answer, server -> client, in completion order. */
struct ServeResponse
{
    std::uint64_t id = 0;
    bool ok = false;
    /** Served from the content-addressed cache, not simulated. */
    bool cached = false;
    /**
     * On a shed rejection: the server's hint of when capacity should
     * exist again. 0 on every other response. Clients treat shed
     * rejections as transient and retry after (at least) this long.
     */
    std::uint64_t retryAfterMs = 0;
    std::string error; //!< reject/failure reason when !ok
    RunResult result;  //!< zeroed when !ok
};

/** Daemon counters, answered to a {"type":"stats"} probe. */
struct ServeStats
{
    std::uint64_t requests = 0;    //!< run requests accepted
    std::uint64_t rejected = 0;    //!< malformed / over-quota
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t simulations = 0; //!< jobs actually executed
    std::uint64_t failures = 0;    //!< executed jobs that failed
    std::uint64_t simEvents = 0;   //!< total simulator events executed
    std::uint64_t cacheEntries = 0;
    std::uint64_t shed = 0;        //!< load-shed (queue-full) rejections
    std::uint64_t deadlineExpired = 0; //!< answered "deadline", unsimulated
    std::uint64_t quarantined = 0; //!< corrupt cache records skipped
    std::uint64_t slowDisconnects = 0; //!< readers kicked for stalling
    std::string engineVersion;
};

/**
 * Live liveness/pressure probe, answered to a {"type":"health"} line.
 * Unlike ServeStats (cumulative counters), this is the daemon's
 * current shape: lane depths, in-flight work, and uptime — what a
 * load balancer or an operator polls.
 */
struct ServeHealth
{
    std::uint64_t queueInteractive = 0; //!< queued, interactive lane
    std::uint64_t queueBulk = 0;        //!< queued, bulk lane
    std::uint64_t executing = 0;        //!< jobs inside the pool now
    std::uint64_t connections = 0;      //!< open client connections
    std::uint64_t shed = 0;             //!< cumulative shed rejections
    std::uint64_t deadlineExpired = 0;  //!< cumulative deadline answers
    std::uint64_t quarantined = 0;      //!< corrupt cache records
    std::uint64_t slowDisconnects = 0;  //!< stalled readers kicked
    std::uint64_t uptimeMs = 0;         //!< since start()
    std::uint64_t pid = 0;              //!< daemon process id
    std::string engineVersion;
};

/** The "type" field of @p line; false if the line is not parsable. */
bool serveLineType(const std::string &line, std::string *type);

std::string encodeServeRequest(const ServeRequest &req);

/**
 * Decode a "run" line. @return false with a reason in @p error on a
 * malformed or out-of-range request (the id still decodes best-effort
 * so the rejection can be correlated).
 */
bool decodeServeRequest(const std::string &line, ServeRequest *out,
                        std::string *error);

std::string encodeServeResponse(const ServeResponse &resp);

bool decodeServeResponse(const std::string &line, ServeResponse *out);

std::string encodeServeStats(const ServeStats &stats);

bool decodeServeStats(const std::string &line, ServeStats *out);

std::string encodeServeHealth(const ServeHealth &health);

bool decodeServeHealth(const std::string &line, ServeHealth *out);

} // namespace cpelide

#endif // CPELIDE_SERVE_PROTOCOL_HH
