#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "exec/sweep_runner.hh"
#include "harness/harness.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "sim/version.hh"

namespace cpelide
{

namespace
{

constexpr const char *kDefaultSocket = "simd.sock";

/** ServeResponse for a rejected/failed request (zeroed result). */
ServeResponse
errorResponse(std::uint64_t id, const std::string &why)
{
    ServeResponse resp;
    resp.id = id;
    resp.ok = false;
    resp.error = why;
    return resp;
}

} // namespace

SimServer::Config
SimServer::Config::fromEnv()
{
    const ExecOptions eo = ExecOptions::fromEnv();
    Config cfg;
    cfg.socketPath = eo.serveSocket;
    cfg.cacheDir = eo.serveCacheDir;
    cfg.cacheSize = eo.serveCacheSize;
    cfg.quota = eo.serveQuota;
    cfg.batch = eo.serveBatch;
    return cfg;
}

SimServer::SimServer(Config cfg)
    : _cfg(std::move(cfg)), _cache(_cfg.cacheSize, _cfg.cacheDir)
{
    if (_cfg.socketPath.empty())
        _cfg.socketPath = kDefaultSocket;
    if (_cfg.quota < 1)
        _cfg.quota = 1;
    if (_cfg.batch < 1)
        _cfg.batch = 1;
}

SimServer::~SimServer()
{
    stop();
}

bool
SimServer::start()
{
    if (_running.load())
        return true;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (_cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        warn("simd: socket path too long: " + _cfg.socketPath);
        return false;
    }
    std::strncpy(addr.sun_path, _cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (_listenFd < 0) {
        warn("simd: cannot create socket: " +
             std::string(std::strerror(errno)));
        return false;
    }
    // A dead daemon leaves its socket file behind; rebinding over it
    // is the expected restart path.
    ::unlink(_cfg.socketPath.c_str());
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(_listenFd, 64) != 0) {
        warn("simd: cannot bind/listen on " + _cfg.socketPath + ": " +
             std::string(std::strerror(errno)));
        ::close(_listenFd);
        _listenFd = -1;
        return false;
    }

    _stopping.store(false);
    _running.store(true);
    _acceptThread = std::thread([this] { acceptLoop(); });
    _schedulerThread = std::thread([this] { schedulerLoop(); });
    return true;
}

void
SimServer::stop()
{
    if (!_running.load())
        return;
    _stopping.store(true);

    // 1. No new connections.
    if (_acceptThread.joinable())
        _acceptThread.join();
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }

    // 2. No new requests: shut every connection's read side (recv
    //    returns 0) and join the readers, so nothing can enqueue after
    //    the drain below observes the lanes empty.
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        for (const auto &conn : _connections) {
            if (!conn->closed.load())
                ::shutdown(conn->fd, SHUT_RD);
        }
        for (const auto &conn : _connections) {
            if (conn->reader.joinable())
                conn->reader.join();
        }
    }

    // 3. Drain: the scheduler keeps batching until both lanes are
    //    empty, answers everything, then exits.
    _queueCv.notify_all();
    if (_schedulerThread.joinable())
        _schedulerThread.join();

    // 4. Every queued job has answered; now the write sides may go.
    reapConnections(/*all=*/true);

    ::unlink(_cfg.socketPath.c_str());
    _running.store(false);
}

void
SimServer::acceptLoop()
{
    while (!_stopping.load()) {
        pollfd pfd{_listenFd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 100 /* ms */);
        if (n < 0 && errno != EINTR)
            break;
        reapConnections(/*all=*/false);
        if (n <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
        std::lock_guard<std::mutex> lock(_connMutex);
        _connections.push_back(std::move(conn));
    }
}

void
SimServer::readerLoop(const std::shared_ptr<Connection> &conn)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', pos);
            if (nl == std::string::npos)
                break;
            const std::string line = buffer.substr(pos, nl - pos);
            pos = nl + 1;
            if (!line.empty())
                handleLine(conn, line);
        }
        buffer.erase(0, pos);
    }
    conn->closed.store(true);
}

void
SimServer::handleLine(const std::shared_ptr<Connection> &conn,
                      const std::string &line)
{
    std::string type;
    if (!serveLineType(line, &type)) {
        _rejected.fetch_add(1);
        respond(*conn, encodeServeResponse(
                           errorResponse(0, "unparsable line")));
        return;
    }

    if (type == "stats") {
        respond(*conn, encodeServeStats(stats()));
        return;
    }

    ServeRequest req;
    std::string error;
    if (!decodeServeRequest(line, &req, &error)) {
        _rejected.fetch_add(1);
        respond(*conn, encodeServeResponse(errorResponse(req.id, error)));
        return;
    }

    // Quota: reject instead of queueing so a greedy client's backlog
    // cannot crowd out everyone else's lane.
    if (conn->inFlight.load() >= _cfg.quota) {
        _rejected.fetch_add(1);
        respond(*conn,
                encodeServeResponse(errorResponse(
                    req.id, "quota exceeded (" +
                                std::to_string(_cfg.quota) +
                                " requests in flight)")));
        return;
    }

    _requests.fetch_add(1);
    const std::uint64_t hash = requestHash(req.run, engineVersion());

    // The microseconds path: a content hit never touches the pool.
    RunResult hit;
    if (_cache.lookup(hash, &hit)) {
        ServeResponse resp;
        resp.id = req.id;
        resp.ok = true;
        resp.cached = true;
        resp.result = std::move(hit);
        respond(*conn, encodeServeResponse(resp));
        return;
    }

    conn->inFlight.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(_queueMutex);
        PendingTask task{conn, std::move(req), hash};
        if (task.req.priority == ServePriority::Bulk)
            _bulk.push_back(std::move(task));
        else
            _interactive.push_back(std::move(task));
    }
    _queueCv.notify_one();
}

void
SimServer::schedulerLoop()
{
    for (;;) {
        std::vector<PendingTask> batch;
        {
            std::unique_lock<std::mutex> lock(_queueMutex);
            _queueCv.wait(lock, [this] {
                return !_interactive.empty() || !_bulk.empty() ||
                       _stopping.load();
            });
            // Interactive lane drains strictly before bulk.
            while (static_cast<int>(batch.size()) < _cfg.batch &&
                   !_interactive.empty()) {
                batch.push_back(std::move(_interactive.front()));
                _interactive.pop_front();
            }
            while (static_cast<int>(batch.size()) < _cfg.batch &&
                   !_bulk.empty()) {
                batch.push_back(std::move(_bulk.front()));
                _bulk.pop_front();
            }
            if (batch.empty()) {
                if (_stopping.load())
                    return; // drained: both lanes empty
                continue;
            }
        }
        // Synchronous: every job in the batch has answered (via
        // onOutcome) by the time run() returns, so when this thread is
        // back at wait() nothing is ever half-done.
        runBatch(std::move(batch));
    }
}

void
SimServer::runBatch(std::vector<PendingTask> tasks)
{
    // One SweepSpec per batch, uniquely named so a CPELIDE_RESUME
    // journal on the daemon process can never alias two batches.
    SweepSpec spec{"serve#" + std::to_string(_batchSeq++), {}};
    spec.jobs.reserve(tasks.size());
    for (const PendingTask &task : tasks)
        spec.jobs.push_back(makeJob(task.req.run));

    // Stream each response the moment its job completes (completion
    // order, worker-thread context) — the exec submission hook.
    spec.onOutcome = [this, &tasks](std::size_t index,
                                    const JobOutcome &outcome) {
        const PendingTask &task = tasks[index];
        _simulations.fetch_add(1);
        ServeResponse resp;
        resp.id = task.req.id;
        resp.cached = false;
        if (outcome.ok) {
            resp.ok = true;
            resp.result = outcome.result;
            _simEvents.fetch_add(outcome.result.simEvents);
            _cache.insert(task.hash, canonicalRequestLine(task.req.run),
                          outcome.result);
        } else {
            resp.ok = false;
            resp.error = std::string(jobErrorName(outcome.kind)) + ": " +
                         outcome.error;
            _failures.fetch_add(1);
        }
        respond(*task.conn, encodeServeResponse(resp));
        task.conn->inFlight.fetch_sub(1);
    };

    SweepRunner runner(_cfg.jobs > 0 ? _cfg.jobs : jobsFromEnv());
    runner.run(spec);
}

void
SimServer::respond(Connection &conn, const std::string &line)
{
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(conn.fd, framed.data() + sent, framed.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer gone; results stay in the cache regardless
        sent += static_cast<std::size_t>(n);
    }
}

void
SimServer::reapConnections(bool all)
{
    std::vector<std::shared_ptr<Connection>> dead;
    {
        std::lock_guard<std::mutex> lock(_connMutex);
        auto it = _connections.begin();
        while (it != _connections.end()) {
            const bool done =
                all ||
                ((*it)->closed.load() && (*it)->inFlight.load() == 0);
            if (done) {
                dead.push_back(std::move(*it));
                it = _connections.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &conn : dead) {
        if (conn->reader.joinable())
            conn->reader.join();
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
}

ServeStats
SimServer::stats() const
{
    ServeStats s;
    s.requests = _requests.load();
    s.rejected = _rejected.load();
    s.cacheHits = _cache.hitTally();
    s.cacheMisses = _cache.missTally();
    s.simulations = _simulations.load();
    s.failures = _failures.load();
    s.simEvents = _simEvents.load();
    s.cacheEntries = _cache.entries();
    s.engineVersion = engineVersion();
    return s;
}

} // namespace cpelide
