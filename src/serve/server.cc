#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "exec/sweep_runner.hh"
#include "harness/harness.hh"
#include "prof/registry.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "sim/version.hh"
#include "stats/json_util.hh"
#include "trace/chrome_trace.hh"

namespace cpelide
{

namespace
{

constexpr const char *kDefaultSocket = "simd.sock";

/**
 * A single request line may not exceed this. The protocol's flat
 * lines are a few hundred bytes; a megabyte of unbroken input is a
 * confused (or hostile) peer, and buffering it unboundedly would let
 * one connection exhaust the daemon.
 */
constexpr std::size_t kMaxLineBytes = 1u << 20;

/**
 * How long a writer blocks in one send() with zero progress before
 * the connection is declared stalled. The bounded outbox is the
 * primary defense; this bounds the final in-kernel-buffer write.
 */
constexpr int kSendTimeoutSec = 1;

/** ServeResponse for a rejected/failed request (zeroed result). */
ServeResponse
errorResponse(std::uint64_t id, const std::string &why)
{
    ServeResponse resp;
    resp.id = id;
    resp.ok = false;
    resp.error = why;
    return resp;
}

double
elapsedMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

std::uint64_t
SimServer::nowNs() const
{
    const auto d = std::chrono::steady_clock::now() - _startTime;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
}

SimServer::Config
SimServer::Config::fromEnv()
{
    const ExecOptions eo = ExecOptions::fromEnv();
    Config cfg;
    cfg.socketPath = eo.serveSocket;
    cfg.cacheDir = eo.serveCacheDir;
    cfg.cacheSize = eo.serveCacheSize;
    cfg.quota = eo.serveQuota;
    cfg.batch = eo.serveBatch;
    cfg.maxQueue = eo.serveQueue;
    cfg.writeBufBytes = eo.serveWriteBuf;
    cfg.slowlogMs = eo.serveSlowlogMs;
    cfg.slowlogPath = eo.serveSlowlogPath;
    cfg.tracePath = eo.tracePath;
    cfg.traceSpans = !eo.tracePath.empty();
    return cfg;
}

ServeTelemetry::Config
SimServer::telemetryConfig(const Config &cfg)
{
    ServeTelemetry::Config tc;
    tc.slowlogMs = cfg.slowlogMs;
    tc.slowlogPath = cfg.slowlogPath;
    tc.traceSpans = cfg.traceSpans || !cfg.tracePath.empty();
    return tc;
}

SimServer::SimServer(Config cfg)
    : _cfg(std::move(cfg)), _cache(_cfg.cacheSize, _cfg.cacheDir),
      _telemetry(telemetryConfig(_cfg)),
      _startTime(std::chrono::steady_clock::now())
{
    if (_cfg.socketPath.empty())
        _cfg.socketPath = kDefaultSocket;
    if (_cfg.quota < 1)
        _cfg.quota = 1;
    if (_cfg.batch < 1)
        _cfg.batch = 1;
    if (_cfg.maxQueue < 1)
        _cfg.maxQueue = 1;
    if (_cfg.writeBufBytes < 4096)
        _cfg.writeBufBytes = 4096;
}

SimServer::~SimServer()
{
    stop();
}

bool
SimServer::start()
{
    if (_running.load())
        return true;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (_cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        warn("simd: socket path too long: " + _cfg.socketPath);
        return false;
    }
    std::strncpy(addr.sun_path, _cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    // A dead daemon leaves its socket file behind and rebinding over
    // it is the expected restart path — but a *live* daemon's socket
    // must never be clobbered. Probe-connect to tell them apart: a
    // live daemon accepts, a stale file refuses.
    if (::access(_cfg.socketPath.c_str(), F_OK) == 0) {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            const bool live =
                ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0;
            ::close(probe);
            if (live) {
                warn("simd: refusing to start: a live daemon already "
                     "serves " + _cfg.socketPath);
                return false;
            }
        }
        ::unlink(_cfg.socketPath.c_str());
    }

    _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (_listenFd < 0) {
        warn("simd: cannot create socket: " +
             std::string(std::strerror(errno)));
        return false;
    }
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(_listenFd, 64) != 0) {
        warn("simd: cannot bind/listen on " + _cfg.socketPath + ": " +
             std::string(std::strerror(errno)));
        ::close(_listenFd);
        _listenFd = -1;
        return false;
    }

    _startTime = std::chrono::steady_clock::now();
    _stopping.store(false);
    _running.store(true);
    _acceptThread = std::thread([this] { acceptLoop(); });
    _schedulerThread = std::thread([this] { schedulerLoop(); });
    return true;
}

void
SimServer::stop()
{
    if (!_running.load())
        return;
    _stopping.store(true);

    // 1. No new connections.
    if (_acceptThread.joinable())
        _acceptThread.join();
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }

    // 2. No new requests: shut every connection's read side (recv
    //    returns 0) and join the readers, so nothing can enqueue after
    //    the drain below observes the lanes empty.
    {
        MutexGuard lock(_connMutex);
        for (const auto &conn : _connections) {
            if (!conn->closed.load())
                ::shutdown(conn->fd, SHUT_RD);
        }
        for (const auto &conn : _connections) {
            if (conn->reader.joinable())
                conn->reader.join();
        }
    }

    // 3. Drain: the scheduler keeps batching until both lanes are
    //    empty, answers everything, then exits.
    _queueCv.notify_all();
    if (_schedulerThread.joinable())
        _schedulerThread.join();

    // 4. Every queued job has answered; the writers flush their
    //    outboxes as they join, then the sockets may go.
    reapConnections(/*all=*/true);

    // 5. Export the serve-side span chains: one trace process with the
    //    accept/queue/cache/lane/writer tracks, alongside the per-run
    //    processes the harness already appended for each simulation.
    if (!_cfg.tracePath.empty()) {
        TraceArchive::global().append(
            "simd serve", ServeTelemetry::trackNames(),
            _telemetry.traceEvents());
        TraceArchive::global().writeTo(_cfg.tracePath);
    }

    ::unlink(_cfg.socketPath.c_str());
    _running.store(false);
}

void
SimServer::abortStop()
{
    if (!_running.load())
        return;
    _stopping.store(true);

    if (_acceptThread.joinable())
        _acceptThread.join();
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }

    // Kick every connection: both socket directions die and pending
    // outboxes are discarded, so nothing queued gets answered.
    {
        MutexGuard lock(_connMutex);
        for (const auto &conn : _connections)
            dropConnection(*conn, /*countSlow=*/false);
    }

    // Discard queued work unanswered — a real SIGKILL answers nothing.
    std::vector<std::uint64_t> orphanSpans;
    {
        MutexGuard lock(_queueMutex);
        for (PendingTask &task : _interactive) {
            task.conn->inFlight.fetch_sub(1);
            orphanSpans.push_back(task.spanId);
        }
        for (PendingTask &task : _bulk) {
            task.conn->inFlight.fetch_sub(1);
            orphanSpans.push_back(task.spanId);
        }
        _interactive.clear();
        _bulk.clear();
    }
    for (const std::uint64_t spanId : orphanSpans)
        _telemetry.abandoned(spanId, nowNs());
    _queueCv.notify_all();
    if (_schedulerThread.joinable())
        _schedulerThread.join();

    reapConnections(/*all=*/true);

    // Deliberately no unlink: a SIGKILLed daemon leaves its socket
    // file behind, and start()'s probe-connect must take the stale
    // path over. The chaos tests exercise exactly this residue.
    _running.store(false);
}

void
SimServer::acceptLoop()
{
    while (!_stopping.load()) {
        pollfd pfd{_listenFd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 100 /* ms */);
        if (n < 0 && errno != EINTR)
            break;
        reapConnections(/*all=*/false);
        if (n <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Bound how long one send() may sit on a full socket buffer;
        // the writer treats a zero-progress expiry as a stalled peer.
        timeval tv{};
        tv.tv_sec = kSendTimeoutSec;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
        conn->writer = std::thread([this, conn] { writerLoop(conn); });
        MutexGuard lock(_connMutex);
        _connections.push_back(std::move(conn));
    }
}

void
SimServer::readerLoop(const std::shared_ptr<Connection> &conn)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', pos);
            if (nl == std::string::npos)
                break;
            const std::string line = buffer.substr(pos, nl - pos);
            pos = nl + 1;
            if (!line.empty())
                handleLine(conn, line);
        }
        buffer.erase(0, pos);
        if (buffer.size() > kMaxLineBytes) {
            // An unbroken megabyte is not a protocol line. Answer a
            // classified rejection, stop reading, and let the writer
            // flush it before the reap closes the socket.
            {
                MutexGuard lock(_statMutex);
                ++_rejected;
            }
            respond(*conn,
                    encodeServeResponse(errorResponse(
                        0, "oversized line (over " +
                               std::to_string(kMaxLineBytes) +
                               " bytes without a newline)")));
            break;
        }
    }
    conn->closed.store(true);
}

void
SimServer::handleLine(const std::shared_ptr<Connection> &conn,
                      const std::string &line)
{
    std::string type;
    if (!serveLineType(line, &type)) {
        {
            MutexGuard lock(_statMutex);
            ++_rejected;
        }
        respond(*conn, encodeServeResponse(
                           errorResponse(0, "unparsable line")));
        return;
    }

    if (type == "stats") {
        respond(*conn, encodeServeStats(stats()));
        return;
    }
    if (type == "health") {
        respond(*conn, encodeServeHealth(health()));
        return;
    }
    if (type == "metrics") {
        // Content negotiation: a "format" field of "prometheus" gets
        // the text exposition (escaped into the one-line framing);
        // anything else (or nothing) gets the flat JSON snapshot.
        std::string format;
        JsonLineParser p(line);
        if (p.parse())
            p.str("format", &format);
        const ServeMetrics m = metrics();
        respond(*conn, format == "prometheus"
                           ? encodeServeMetricsPrometheusLine(m)
                           : encodeServeMetricsJson(m));
        return;
    }

    ServeRequest req;
    std::string error;
    if (!decodeServeRequest(line, &req, &error)) {
        {
            MutexGuard lock(_statMutex);
            ++_rejected;
        }
        respond(*conn, encodeServeResponse(errorResponse(req.id, error)));
        return;
    }

    // Quota: reject instead of queueing so a greedy client's backlog
    // cannot crowd out everyone else's lane.
    if (conn->inFlight.load() >= _cfg.quota) {
        {
            MutexGuard lock(_statMutex);
            ++_rejected;
        }
        respond(*conn,
                encodeServeResponse(errorResponse(
                    req.id, "quota exceeded (" +
                                std::to_string(_cfg.quota) +
                                " requests in flight)")));
        return;
    }

    {
        MutexGuard lock(_statMutex);
        ++_requests;
    }
    // Open the request's telemetry span: the accept timestamp anchors
    // the end-to-end latency the writer-flush finalize measures.
    const std::uint64_t spanId = _telemetry.begin(
        req.id, req.priority,
        req.run.label.empty() ? req.run.workload : req.run.label,
        nowNs());
    const std::uint64_t hash = requestHash(req.run, engineVersion());

    // The microseconds path: a content hit never touches the pool.
    RunResult hit;
    if (_cache.lookup(hash, &hit)) {
        _telemetry.cacheLookup(spanId, /*hit=*/true, nowNs());
        ServeResponse resp;
        resp.id = req.id;
        resp.ok = true;
        resp.cached = true;
        resp.result = std::move(hit);
        _telemetry.responded(spanId, ServeTelemetry::Outcome::Cached,
                             nowNs());
        respond(*conn, encodeServeResponse(resp), spanId);
        return;
    }
    _telemetry.cacheLookup(spanId, /*hit=*/false, nowNs());

    // Shedding: the global queue is bounded. At the bound an incoming
    // bulk request is shed outright; an incoming interactive request
    // evicts the *youngest bulk* entry instead (bulk sheds first), and
    // is only shed itself when no bulk remains to evict. Every shed
    // answer carries a retry hint scaled to the backlog.
    const std::uint64_t requestId = req.id;
    bool shedIncoming = false;
    bool haveVictim = false;
    PendingTask victim;
    std::size_t depth = 0;
    {
        MutexGuard lock(_queueMutex);
        depth = _interactive.size() + _bulk.size();
        if (depth >= static_cast<std::size_t>(_cfg.maxQueue)) {
            if (req.priority == ServePriority::Bulk || _bulk.empty()) {
                shedIncoming = true;
            } else {
                victim = std::move(_bulk.back());
                _bulk.pop_back();
                haveVictim = true;
            }
        }
        if (!shedIncoming) {
            conn->inFlight.fetch_add(1);
            PendingTask task{conn, std::move(req), hash,
                             std::chrono::steady_clock::now(), spanId};
            if (task.req.priority == ServePriority::Bulk)
                _bulk.push_back(std::move(task));
            else
                _interactive.push_back(std::move(task));
        }
    }
    if (!shedIncoming)
        _telemetry.enqueued(spanId, nowNs());
    const std::uint64_t hint = retryAfterHintMs(depth);
    if (shedIncoming || haveVictim) {
        MutexGuard lock(_statMutex);
        ++_shed;
    }
    if (haveVictim) {
        ServeResponse resp = errorResponse(
            victim.req.id, "shed: queue full (" + std::to_string(depth) +
                               " queued, bound " +
                               std::to_string(_cfg.maxQueue) +
                               "), bulk evicted for interactive");
        resp.retryAfterMs = hint;
        _telemetry.responded(victim.spanId,
                             ServeTelemetry::Outcome::Shed, nowNs());
        respond(*victim.conn, encodeServeResponse(resp),
                victim.spanId);
        victim.conn->inFlight.fetch_sub(1);
    }
    if (shedIncoming) {
        ServeResponse resp = errorResponse(
            requestId, "shed: queue full (" + std::to_string(depth) +
                           " queued, bound " +
                           std::to_string(_cfg.maxQueue) + ")");
        resp.retryAfterMs = hint;
        _telemetry.responded(spanId, ServeTelemetry::Outcome::Shed,
                             nowNs());
        respond(*conn, encodeServeResponse(resp), spanId);
        return;
    }
    _queueCv.notify_one();
}

std::uint64_t
SimServer::retryAfterHintMs(std::size_t depth) const
{
    // Deterministic backlog-proportional hint: one nominal batch-time
    // (100 ms) per queued batch ahead of the caller, capped so a
    // pathological backlog never tells a client to sleep for minutes.
    const std::uint64_t batches =
        depth / static_cast<std::size_t>(_cfg.batch) + 1;
    const std::uint64_t hint = batches * 100;
    return hint > 5000 ? 5000 : hint;
}

void
SimServer::schedulerLoop()
{
    for (;;) {
        std::vector<PendingTask> batch;
        {
            MutexGuard lock(_queueMutex);
            // Explicit wait loop (not a predicate lambda): the
            // analysis checks lambda bodies separately, so guarded
            // reads belong in the loop the capability provably covers.
            while (_interactive.empty() && _bulk.empty() &&
                   !_stopping.load()) {
                lock.wait(_queueCv);
            }
            // Interactive lane drains strictly before bulk.
            while (static_cast<int>(batch.size()) < _cfg.batch &&
                   !_interactive.empty()) {
                batch.push_back(std::move(_interactive.front()));
                _interactive.pop_front();
            }
            while (static_cast<int>(batch.size()) < _cfg.batch &&
                   !_bulk.empty()) {
                batch.push_back(std::move(_bulk.front()));
                _bulk.pop_front();
            }
            if (batch.empty()) {
                if (_stopping.load())
                    return; // drained: both lanes empty
                continue;
            }
        }
        // A request whose deadline passed while it sat in the queue is
        // answered right here — classified, correlated, unsimulated.
        std::vector<PendingTask> live;
        live.reserve(batch.size());
        for (PendingTask &task : batch) {
            const double waitedMs = elapsedMsSince(task.enqueued);
            if (task.req.deadlineMs > 0 &&
                waitedMs >= static_cast<double>(task.req.deadlineMs)) {
                {
                    MutexGuard lock(_statMutex);
                    ++_deadlineExpired;
                }
                _telemetry.responded(
                    task.spanId, ServeTelemetry::Outcome::Deadline,
                    nowNs());
                respond(*task.conn,
                        encodeServeResponse(errorResponse(
                            task.req.id,
                            "deadline: expired in queue after " +
                                std::to_string(
                                    static_cast<std::uint64_t>(waitedMs)) +
                                " ms (deadline " +
                                std::to_string(task.req.deadlineMs) +
                                " ms)")),
                        task.spanId);
                task.conn->inFlight.fetch_sub(1);
                continue;
            }
            live.push_back(std::move(task));
        }
        if (live.empty())
            continue;
        // Synchronous: every job in the batch has answered (via
        // onOutcome) by the time run() returns, so when this thread is
        // back at wait() nothing is ever half-done.
        runBatch(std::move(live));
    }
}

void
SimServer::runBatch(std::vector<PendingTask> tasks)
{
    // One SweepSpec per batch, uniquely named so a CPELIDE_RESUME
    // journal on the daemon process can never alias two batches.
    SweepSpec spec{"serve#" + std::to_string(_batchSeq++), {}};
    spec.jobs.reserve(tasks.size());
    for (const PendingTask &task : tasks) {
        _telemetry.dequeued(task.spanId, nowNs());
        Job job = makeJob(task.req.run);
        // Bracket the job body so the span records the actual sim
        // interval on the worker thread (start here, end in
        // onOutcome so a thrown/failed body still closes it).
        const std::uint64_t spanId = task.spanId;
        auto inner = std::move(job.body);
        job.body = [this, spanId, inner = std::move(inner)] {
            _telemetry.simStart(spanId, nowNs());
            return inner();
        };
        if (task.req.deadlineMs > 0) {
            // Clamp the remaining deadline onto the job's watchdog
            // budget: the job can never run longer than the client is
            // still waiting, and an env/spec wall budget tighter than
            // the deadline stays in force.
            double remainingMs =
                static_cast<double>(task.req.deadlineMs) -
                elapsedMsSince(task.enqueued);
            if (remainingMs < 1.0)
                remainingMs = 1.0;
            SimBudget budget = SimBudget::fromEnv();
            if (budget.maxWallMs <= 0.0 || remainingMs < budget.maxWallMs)
                budget.maxWallMs = remainingMs;
            job.budget = budget;
        }
        spec.jobs.push_back(std::move(job));
    }

    _executing.fetch_add(static_cast<int>(tasks.size()));

    // Stream each response the moment its job completes (completion
    // order, worker-thread context) — the exec submission hook.
    spec.onOutcome = [this, &tasks](std::size_t index,
                                    const JobOutcome &outcome) {
        const PendingTask &task = tasks[index];
        _telemetry.simEnd(task.spanId, outcome.ok, nowNs());
        ServeTelemetry::Outcome spanOutcome =
            outcome.ok ? ServeTelemetry::Outcome::Ok
                       : ServeTelemetry::Outcome::Failed;
        ServeResponse resp;
        resp.id = task.req.id;
        resp.cached = false;
        if (outcome.ok) {
            resp.ok = true;
            resp.result = outcome.result;
            {
                MutexGuard lock(_statMutex);
                ++_simulations;
                _simEvents += outcome.result.simEvents;
            }
            _cache.insert(task.hash, canonicalRequestLine(task.req.run),
                          outcome.result);
        } else {
            resp.ok = false;
            // A timeout on a deadline-clamped job whose deadline has
            // since passed is the deadline firing, not a stuck
            // simulation — classify it as such for the client.
            const bool deadlineHit =
                outcome.kind == JobErrorKind::Timeout &&
                task.req.deadlineMs > 0 &&
                elapsedMsSince(task.enqueued) >=
                    static_cast<double>(task.req.deadlineMs);
            const char *kindName =
                deadlineHit ? "deadline" : jobErrorName(outcome.kind);
            resp.error = std::string(kindName) + ": " + outcome.error;
            if (deadlineHit)
                spanOutcome = ServeTelemetry::Outcome::Deadline;
            MutexGuard lock(_statMutex);
            ++_simulations;
            ++_failures;
            if (deadlineHit)
                ++_deadlineExpired;
        }
        _telemetry.responded(task.spanId, spanOutcome, nowNs());
        respond(*task.conn, encodeServeResponse(resp), task.spanId);
        task.conn->inFlight.fetch_sub(1);
        _executing.fetch_sub(1);
    };

    SweepRunner runner(_cfg.jobs > 0 ? _cfg.jobs : jobsFromEnv());
    runner.run(spec);
}

void
SimServer::respond(Connection &conn, const std::string &line,
                   std::uint64_t spanId)
{
    // Enqueue-only: the per-connection writer thread owns the socket
    // write side, so a slow peer can never block the caller (which may
    // be a pool worker inside onOutcome). Overflowing the bounded
    // outbox means the peer stopped reading — it gets disconnected.
    bool overflow = false;
    bool dead = false;
    {
        MutexGuard lock(conn.writeMutex);
        if (conn.dropped.load()) {
            dead = true; // already kicked; results stay in the cache
        } else {
            std::string framed = line;
            framed += '\n';
            if (conn.outboxBytes + framed.size() > _cfg.writeBufBytes) {
                overflow = true;
            } else {
                conn.outboxBytes += framed.size();
                conn.outbox.push_back({std::move(framed), spanId});
            }
        }
    }
    if (dead || overflow) {
        // The answer will never reach this peer; close the span now
        // so it still lands in the windows and outcome counters.
        if (spanId != 0)
            _telemetry.abandoned(spanId, nowNs());
        if (overflow)
            dropConnection(conn, /*countSlow=*/true);
        return;
    }
    conn.writeCv.notify_one();
}

void
SimServer::writerLoop(const std::shared_ptr<Connection> &conn)
{
    for (;;) {
        OutboxItem item;
        {
            MutexGuard lock(conn->writeMutex);
            while (conn->outbox.empty() && !conn->writerStop &&
                   !conn->dropped.load()) {
                lock.wait(conn->writeCv);
            }
            if (conn->dropped.load())
                return;
            if (conn->outbox.empty()) {
                if (conn->writerStop)
                    return; // stopped and flushed
                continue;
            }
            item = std::move(conn->outbox.front());
            conn->outbox.pop_front();
            conn->outboxBytes -= item.data.size();
        }
        std::size_t sent = 0;
        while (sent < item.data.size()) {
            const ssize_t n =
                ::send(conn->fd, item.data.data() + sent,
                       item.data.size() - sent, MSG_NOSIGNAL);
            if (n > 0) {
                sent += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            // A zero-progress SO_SNDTIMEO expiry is a stalled reader;
            // anything else is a gone peer. Either way this connection
            // is done — and only this connection.
            const bool stalled =
                n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
            if (item.spanId != 0)
                _telemetry.abandoned(item.spanId, nowNs());
            dropConnection(*conn, stalled);
            return;
        }
        // The last byte entered the kernel buffer: the request's
        // server-side life is over — finalize its span.
        if (item.spanId != 0)
            _telemetry.flushed(item.spanId, nowNs());
    }
}

void
SimServer::dropConnection(Connection &conn, bool countSlow)
{
    std::vector<std::uint64_t> discardedSpans;
    {
        MutexGuard lock(conn.writeMutex);
        if (conn.dropped.load())
            return;
        conn.dropped.store(true);
        for (const OutboxItem &item : conn.outbox) {
            if (item.spanId != 0)
                discardedSpans.push_back(item.spanId);
        }
        conn.outbox.clear();
        conn.outboxBytes = 0;
    }
    // Finalize outside writeMutex (telemetry's lock is a leaf, but
    // there is no reason to nest it here).
    for (const std::uint64_t spanId : discardedSpans)
        _telemetry.abandoned(spanId, nowNs());
    // Wakes the reader (recv returns 0) and fails any in-flight writer
    // send immediately.
    ::shutdown(conn.fd, SHUT_RDWR);
    conn.writeCv.notify_all();
    if (countSlow) {
        MutexGuard lock(_statMutex);
        ++_slowDisconnects;
    }
}

void
SimServer::reapConnections(bool all)
{
    std::vector<std::shared_ptr<Connection>> dead;
    {
        MutexGuard lock(_connMutex);
        auto it = _connections.begin();
        while (it != _connections.end()) {
            const bool done =
                all ||
                ((*it)->closed.load() && (*it)->inFlight.load() == 0);
            if (done) {
                dead.push_back(std::move(*it));
                it = _connections.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &conn : dead) {
        {
            MutexGuard lock(conn->writeMutex);
            conn->writerStop = true;
        }
        conn->writeCv.notify_all();
        if (conn->writer.joinable())
            conn->writer.join(); // flushes the outbox unless dropped
        if (conn->reader.joinable())
            conn->reader.join();
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
}

ServeStats
SimServer::stats() const
{
    ServeStats s;
    {
        MutexGuard lock(_statMutex);
        s.requests = _requests.value();
        s.rejected = _rejected.value();
        s.simulations = _simulations.value();
        s.failures = _failures.value();
        s.simEvents = _simEvents.value();
        s.shed = _shed.value();
        s.deadlineExpired = _deadlineExpired.value();
        s.slowDisconnects = _slowDisconnects.value();
    }
    s.cacheHits = _cache.hitTally();
    s.cacheMisses = _cache.missTally();
    s.cacheEntries = _cache.entries();
    s.quarantined = _cache.quarantineTally();
    s.engineVersion = engineVersion();
    return s;
}

ServeHealth
SimServer::health() const
{
    ServeHealth h;
    {
        MutexGuard lock(_queueMutex);
        h.queueInteractive = _interactive.size();
        h.queueBulk = _bulk.size();
    }
    {
        MutexGuard lock(_connMutex);
        h.connections = _connections.size();
    }
    {
        MutexGuard lock(_statMutex);
        h.shed = _shed.value();
        h.deadlineExpired = _deadlineExpired.value();
        h.slowDisconnects = _slowDisconnects.value();
    }
    const int executing = _executing.load();
    h.executing = executing < 0 ? 0 : static_cast<std::uint64_t>(executing);
    h.quarantined = _cache.quarantineTally();
    h.uptimeMs = static_cast<std::uint64_t>(elapsedMsSince(_startTime));
    h.pid = static_cast<std::uint64_t>(::getpid());
    h.engineVersion = engineVersion();
    return h;
}

ServeMetrics
SimServer::metrics() const
{
    ServeMetrics m;
    m.stats = stats();
    m.health = health();
    m.telemetry = _telemetry.snapshot(nowNs());
    return m;
}

void
SimServer::registerProf(prof::ProfRegistry &reg) const
{
    // Bind the counter addresses while holding _statMutex (taking a
    // reference to a guarded field is itself a guarded access), but
    // register them after releasing it: addGauge takes the registry's
    // own mutex, and the gauges below take _statMutex while the
    // registry holds its mutex during snapshot() — nesting the two
    // here would create the inverse order. The gauge lambdas then
    // reacquire _statMutex on every sample.
    struct Item
    {
        const char *name;
        const prof::Counter *counter;
    };
    std::vector<Item> items;
    {
        MutexGuard lock(_statMutex);
        items = {
            {"serve/requests", &_requests},
            {"serve/rejected", &_rejected},
            {"serve/shed", &_shed},
            {"serve/deadline-expired", &_deadlineExpired},
            {"serve/slow-disconnects", &_slowDisconnects},
            {"serve/simulations", &_simulations},
            {"serve/failures", &_failures},
            {"serve/sim-events", &_simEvents},
        };
    }
    for (const Item &item : items) {
        reg.addGauge(item.name, [this, c = item.counter] {
            MutexGuard lock(_statMutex);
            return c->value();
        });
    }
    reg.addGauge("serve/cache-hits", [this] { return _cache.hitTally(); });
    reg.addGauge("serve/cache-misses",
                 [this] { return _cache.missTally(); });
    reg.addGauge("serve/cache-entries", [this] {
        return static_cast<std::uint64_t>(_cache.entries());
    });
    reg.addGauge("serve/quarantined",
                 [this] { return _cache.quarantineTally(); });
}

} // namespace cpelide

