/**
 * @file
 * The {"type":"metrics"} exposition of the simd daemon: one consistent
 * snapshot of counters, gauges, and windowed latency series, rendered
 * as a flat JSON line or as Prometheus text format.
 *
 * Wire shapes (content negotiated by the request's "format" field):
 *   {"type":"metrics"}                      -> JSON snapshot line
 *   {"type":"metrics","format":"json"}      -> same
 *   {"type":"metrics","format":"prometheus"}->
 *     {"type":"metrics","format":"prometheus","body":"<text>"}
 * The Prometheus body is real multi-line text format; it travels
 * escaped inside the JSON string to preserve the protocol's
 * one-line-per-message framing (simc --metrics --format prometheus
 * unescapes and prints it raw for a scraper or a file).
 *
 * The JSON snapshot is a flat one-level object (JsonLineParser
 * compatible): scalar counters/gauges under their stats/health names,
 * plus, per series and window, `<series>_{count,rate,p50us,p95us,
 * p99us}_<window>` keys — e.g. "e2e_p95us_10s". Series names and
 * windows are enumerated by serveMetricsSeriesNames() /
 * serveMetricsWindowNames(), which scripts/check_metrics.py mirrors.
 */

#ifndef CPELIDE_SERVE_METRICS_HH
#define CPELIDE_SERVE_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/telemetry.hh"

namespace cpelide
{

/** Everything the metrics verb exposes, taken as one snapshot. */
struct ServeMetrics
{
    ServeStats stats;        //!< cumulative daemon counters
    ServeHealth health;      //!< current shape (queues, conns, uptime)
    TelemetrySnap telemetry; //!< span outcomes + windowed series
};

/** The windowed series names, in exposition order. */
const std::vector<std::string> &serveMetricsSeriesNames();

/** The window names ("1s", "10s", "60s"), in exposition order. */
const std::vector<std::string> &serveMetricsWindowNames();

/** Flat JSON snapshot line (see file comment for the key scheme). */
std::string encodeServeMetricsJson(const ServeMetrics &m);

/** Decode a JSON snapshot line (simtop, tests). */
bool decodeServeMetricsJson(const std::string &line, ServeMetrics *out);

/** The raw multi-line Prometheus text format body. */
std::string serveMetricsPrometheus(const ServeMetrics &m);

/** The framed one-line answer carrying the Prometheus body. */
std::string encodeServeMetricsPrometheusLine(const ServeMetrics &m);

/**
 * Unwrap a framed Prometheus answer into its multi-line body.
 * @retval false if @p line is not a {"type":"metrics","format":
 * "prometheus"} message.
 */
bool decodeServeMetricsPrometheusLine(const std::string &line,
                                      std::string *body);

} // namespace cpelide

#endif // CPELIDE_SERVE_METRICS_HH
