/**
 * @file
 * SimClient: the client side of the simd protocol, shared by the simc
 * CLI, the serve tests, and the chaos harness.
 *
 * Synchronous, with a resilience layer:
 *  - connect() and recvLine() are bounded by Options timeouts
 *    (CPELIDE_SERVE_TIMEOUT_MS), so a dead or wedged daemon turns into
 *    a classified failure instead of a hung client;
 *  - every "run" request sent is remembered (id -> encoded line) until
 *    its answer arrives, so reconnect() can re-dial the daemon and
 *    resubmit everything still unanswered — the daemon's
 *    content-addressed cache makes resubmission idempotent (a request
 *    the dead daemon already completed answers instantly as
 *    "cached":1, one it never ran simulates to byte-identical output);
 *  - call() is the retrying one-shot: transport failures (connect
 *    refused, EOF, receive timeout) and "shed:" rejections — the
 *    transient classes — are retried up to Options::maxRetries with
 *    exponential backoff plus deterministic jitter, honoring the
 *    server's retryAfterMs hint; every other error (malformed, quota,
 *    deadline, simulation failure) is final and returned as-is.
 *
 * Responses arrive in completion order, not submission order — callers
 * that pipeline multiple requests correlate by the echoed id.
 */

#ifndef CPELIDE_SERVE_CLIENT_HH
#define CPELIDE_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>

#include "prof/counter.hh"
#include "serve/metrics.hh"
#include "serve/protocol.hh"

namespace cpelide
{

class SimClient
{
  public:
    struct Options
    {
        /** Bound on one connect() attempt (0 = OS default, blocking). */
        double connectTimeoutMs = 5000.0;
        /** Bound on waiting for one answer line (0 = block forever). */
        double recvTimeoutMs = 0.0;
        /** call(): max retries of a *transient* failure (so up to
         *  1 + maxRetries attempts). */
        int maxRetries = 3;
        /** call(): base backoff before retry k, doubled each retry. */
        double backoffMs = 50.0;
        /** Jitter stream seed — fixed seed, deterministic schedule. */
        std::uint64_t jitterSeed = 0x9e3779b97f4a7c15ULL;
        /** Emit one structured stderr line per retry/reconnect
         *  (attempt, class, backoff, request id) so client-side
         *  failures are diagnosable; false silences them. */
        bool logRetries = true;

        /** Defaults from CPELIDE_SERVE_TIMEOUT_MS /
         *  CPELIDE_SERVE_RETRIES / CPELIDE_RETRY_BACKOFF_MS. */
        static Options fromEnv();
    };

    SimClient() : SimClient(Options{}) {}
    explicit SimClient(Options opts);
    ~SimClient();

    SimClient(const SimClient &) = delete;
    SimClient &operator=(const SimClient &) = delete;

    /** Connect to the daemon at @p socketPath (bounded by
     *  Options::connectTimeoutMs). Forgets any pending requests. */
    bool connect(const std::string &socketPath);

    /**
     * Re-dial the last connect()ed path and resubmit every request
     * sent but not yet answered, in id order. The content-addressed
     * cache makes this idempotent across a daemon crash/restart.
     */
    bool reconnect();

    void close();
    bool connected() const { return _fd >= 0; }

    /** Send one raw protocol line (newline appended here). */
    bool sendLine(const std::string &line);
    /** Send a run request, remembering it until its answer arrives. */
    bool send(const ServeRequest &req);

    /**
     * Read the next line from the daemon, bounded by
     * Options::recvTimeoutMs. @retval false on EOF / error / timeout;
     * @p timedOut (when non-null) tells the last two apart.
     */
    bool recvLine(std::string *line, bool *timedOut = nullptr);

    /** Read the next "result" line (skips interleaved other types). */
    bool recvResponse(ServeResponse *resp);

    /** One-shot without retries: send @p req, wait for its answer. */
    bool request(const ServeRequest &req, ServeResponse *resp);

    /**
     * One-shot *with* the resilience layer: reconnects, resubmits,
     * and retries transient failures (transport errors and "shed:"
     * rejections) with jittered exponential backoff. @retval true
     * with the final answer in @p resp — which may still be !ok for a
     * non-transient error; false only when transport never recovered
     * within the retry budget.
     */
    bool call(const ServeRequest &req, ServeResponse *resp);

    /** One-shot: probe the daemon's counters. */
    bool stats(ServeStats *out);

    /** One-shot: probe the daemon's live shape. */
    bool health(ServeHealth *out);

    /** One-shot: the consistent metrics snapshot (JSON form). */
    bool metrics(ServeMetrics *out);

    /** One-shot: the Prometheus exposition body, unescaped. */
    bool metricsPrometheus(std::string *body);

    /** Requests sent but not yet answered. */
    std::size_t pending() const { return _pending.size(); }

    /**
     * Mark request @p id answered. recvResponse()/recvMatching() do
     * this automatically; callers reading raw lines with recvLine()
     * and decoding themselves must settle ids they saw answered, or
     * reconnect() will (harmlessly but wastefully) resubmit them.
     */
    void settle(std::uint64_t id) { _pending.erase(id); }
    std::uint64_t reconnects() const { return _reconnects.value(); }
    std::uint64_t retries() const { return _retries.value(); }
    std::uint64_t resubmitted() const { return _resubmitted.value(); }

  private:
    /** Close the fd but keep _pending (crash path; reconnect() will
     *  resubmit). The public close() also forgets pending. */
    void closeFd();
    bool dial();
    /** Wait for the answer to @p id, skipping (and settling) other
     *  ids' answers. */
    bool recvMatching(std::uint64_t id, ServeResponse *resp);
    /** Deterministic jitter in [base, 1.5*base). */
    double jittered(double baseMs);
    /** One structured stderr line: {"event":"retry",...}. */
    void logRetry(const char *failureClass, int attempt,
                  double backoffMs, std::uint64_t id,
                  std::uint64_t retryAfterMs);
    /** One structured stderr line: {"event":"reconnect",...}. */
    void logReconnect(std::uint64_t resubmitted);

    Options _opts;
    std::string _socketPath;
    int _fd = -1;
    std::string _buffer; //!< bytes read past the last returned line
    /** Unanswered "run" requests: id -> encoded line (resubmit set). */
    std::map<std::uint64_t, std::string> _pending;
    std::uint64_t _jitterState;

    prof::Counter _reconnects;  //!< successful re-dials
    prof::Counter _retries;     //!< transient-failure retries in call()
    prof::Counter _resubmitted; //!< pending lines re-sent on reconnect
};

} // namespace cpelide

#endif // CPELIDE_SERVE_CLIENT_HH
