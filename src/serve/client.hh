/**
 * @file
 * SimClient: the client side of the simd protocol, shared by the simc
 * CLI and the serve tests.
 *
 * Thin and synchronous: connect() to the daemon's Unix socket, send()
 * request lines, recvResponse()/recvStats() blocking reads of answer
 * lines. request() and stats() wrap the common one-shot patterns.
 * Responses arrive in completion order, not submission order — callers
 * that pipeline multiple requests correlate by the echoed id.
 */

#ifndef CPELIDE_SERVE_CLIENT_HH
#define CPELIDE_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/protocol.hh"

namespace cpelide
{

class SimClient
{
  public:
    SimClient() = default;
    ~SimClient();

    SimClient(const SimClient &) = delete;
    SimClient &operator=(const SimClient &) = delete;

    /** Connect to the daemon at @p socketPath. */
    bool connect(const std::string &socketPath);
    void close();
    bool connected() const { return _fd >= 0; }

    /** Send one raw protocol line (newline appended here). */
    bool sendLine(const std::string &line);
    bool send(const ServeRequest &req);

    /**
     * Blocking read of the next line from the daemon.
     * @retval false on EOF / error.
     */
    bool recvLine(std::string *line);

    /** Blocking read of the next "result" line. */
    bool recvResponse(ServeResponse *resp);

    /** One-shot: send @p req, wait for its answer. */
    bool request(const ServeRequest &req, ServeResponse *resp);

    /** One-shot: probe the daemon's counters. */
    bool stats(ServeStats *out);

  private:
    int _fd = -1;
    std::string _buffer; //!< bytes read past the last returned line
};

} // namespace cpelide

#endif // CPELIDE_SERVE_CLIENT_HH
