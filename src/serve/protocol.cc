#include "serve/protocol.hh"

#include <cinttypes>
#include <cstdio>

#include "stats/run_result_io.hh"

namespace cpelide
{

const char *
servePriorityName(ServePriority p)
{
    return p == ServePriority::Bulk ? "bulk" : "interactive";
}

bool
serveLineType(const std::string &line, std::string *type)
{
    JsonLineParser p(line);
    return p.parse() && p.str("type", type);
}

std::string
encodeServeRequest(const ServeRequest &req)
{
    std::string out = "{";
    json::appendStr(out, "type", "run");
    json::appendU64(out, "id", req.id);
    json::appendStr(out, "priority", servePriorityName(req.priority));
    json::appendU64(out, "deadlineMs", req.deadlineMs);
    // Splice the canonical request fields in canonical order; the
    // canonical line is "{fields}", so strip its braces.
    const std::string canonical = canonicalRequestLine(req.run);
    json::appendSep(out);
    out.append(canonical, 1, canonical.size() - 2);
    out += '}';
    return out;
}

bool
decodeServeRequest(const std::string &line, ServeRequest *out,
                   std::string *error)
{
    JsonLineParser p(line);
    if (!p.parse()) {
        if (error)
            *error = "unparsable request line";
        return false;
    }
    ServeRequest req;
    p.u64("id", &req.id); // best-effort: echoed even on rejection
    if (out)
        out->id = req.id;

    std::string type;
    if (!p.str("type", &type) || type != "run") {
        if (error)
            *error = "expected a \"type\":\"run\" line";
        return false;
    }
    std::string priority;
    if (p.has("priority")) {
        if (!p.str("priority", &priority) ||
            (priority != "interactive" && priority != "bulk")) {
            if (error)
                *error = "priority must be \"interactive\" or \"bulk\"";
            return false;
        }
        if (priority == "bulk")
            req.priority = ServePriority::Bulk;
    }
    if (p.has("deadlineMs") && !p.u64("deadlineMs", &req.deadlineMs)) {
        if (error)
            *error = "deadlineMs must be a non-negative integer";
        return false;
    }
    if (!parseRequestFields(p, &req.run, error))
        return false;
    *out = std::move(req);
    return true;
}

std::string
encodeServeResponse(const ServeResponse &resp)
{
    std::string out = "{";
    json::appendStr(out, "type", "result");
    json::appendU64(out, "id", resp.id);
    json::appendU64(out, "cached", resp.cached ? 1 : 0);
    json::appendU64(out, "ok", resp.ok ? 1 : 0);
    json::appendU64(out, "retryAfterMs", resp.retryAfterMs);
    json::appendStr(out, "error", resp.error);
    appendRunResultFields(out, resp.result);
    json::appendStr(out, "kernelPhases",
                    encodeKernelPhasesCompact(resp.result.kernelPhases));
    out += '}';
    return out;
}

bool
decodeServeResponse(const std::string &line, ServeResponse *out)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type;
    if (!p.str("type", &type) || type != "result")
        return false;

    ServeResponse resp;
    std::uint64_t ok = 0, cached = 0;
    if (!p.u64("id", &resp.id) || !p.u64("cached", &cached) ||
        !p.u64("ok", &ok) || !p.str("error", &resp.error)) {
        return false;
    }
    // Optional for wire compatibility with pre-resilience responses.
    if (p.has("retryAfterMs") &&
        !p.u64("retryAfterMs", &resp.retryAfterMs)) {
        return false;
    }
    if (!parseRunResultFields(p, &resp.result))
        return false;
    std::string phases;
    if (p.str("kernelPhases", &phases) &&
        !decodeKernelPhasesCompact(phases, &resp.result.kernelPhases)) {
        return false;
    }
    resp.ok = ok != 0;
    resp.cached = cached != 0;
    *out = std::move(resp);
    return true;
}

std::string
encodeServeStats(const ServeStats &stats)
{
    std::string out = "{";
    json::appendStr(out, "type", "stats");
    json::appendU64(out, "requests", stats.requests);
    json::appendU64(out, "rejected", stats.rejected);
    json::appendU64(out, "cacheHits", stats.cacheHits);
    json::appendU64(out, "cacheMisses", stats.cacheMisses);
    json::appendU64(out, "simulations", stats.simulations);
    json::appendU64(out, "failures", stats.failures);
    json::appendU64(out, "simEvents", stats.simEvents);
    json::appendU64(out, "cacheEntries", stats.cacheEntries);
    json::appendU64(out, "shed", stats.shed);
    json::appendU64(out, "deadlineExpired", stats.deadlineExpired);
    json::appendU64(out, "quarantined", stats.quarantined);
    json::appendU64(out, "slowDisconnects", stats.slowDisconnects);
    json::appendStr(out, "engineVersion", stats.engineVersion);
    out += '}';
    return out;
}

bool
decodeServeStats(const std::string &line, ServeStats *out)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type;
    if (!p.str("type", &type) || type != "stats")
        return false;
    ServeStats s;
    const bool good =
        p.u64("requests", &s.requests) && p.u64("rejected", &s.rejected) &&
        p.u64("cacheHits", &s.cacheHits) &&
        p.u64("cacheMisses", &s.cacheMisses) &&
        p.u64("simulations", &s.simulations) &&
        p.u64("failures", &s.failures) &&
        p.u64("simEvents", &s.simEvents) &&
        p.u64("cacheEntries", &s.cacheEntries) &&
        p.str("engineVersion", &s.engineVersion);
    if (!good)
        return false;
    // Optional for wire compatibility with pre-resilience daemons.
    if (p.has("shed") && !p.u64("shed", &s.shed))
        return false;
    if (p.has("deadlineExpired") &&
        !p.u64("deadlineExpired", &s.deadlineExpired)) {
        return false;
    }
    if (p.has("quarantined") && !p.u64("quarantined", &s.quarantined))
        return false;
    if (p.has("slowDisconnects") &&
        !p.u64("slowDisconnects", &s.slowDisconnects)) {
        return false;
    }
    *out = std::move(s);
    return true;
}

std::string
encodeServeHealth(const ServeHealth &health)
{
    std::string out = "{";
    json::appendStr(out, "type", "health");
    json::appendU64(out, "queueInteractive", health.queueInteractive);
    json::appendU64(out, "queueBulk", health.queueBulk);
    json::appendU64(out, "executing", health.executing);
    json::appendU64(out, "connections", health.connections);
    json::appendU64(out, "shed", health.shed);
    json::appendU64(out, "deadlineExpired", health.deadlineExpired);
    json::appendU64(out, "quarantined", health.quarantined);
    json::appendU64(out, "slowDisconnects", health.slowDisconnects);
    json::appendU64(out, "uptimeMs", health.uptimeMs);
    json::appendU64(out, "pid", health.pid);
    json::appendStr(out, "engineVersion", health.engineVersion);
    out += '}';
    return out;
}

bool
decodeServeHealth(const std::string &line, ServeHealth *out)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type;
    if (!p.str("type", &type) || type != "health")
        return false;
    ServeHealth h;
    const bool good =
        p.u64("queueInteractive", &h.queueInteractive) &&
        p.u64("queueBulk", &h.queueBulk) &&
        p.u64("executing", &h.executing) &&
        p.u64("connections", &h.connections) &&
        p.u64("shed", &h.shed) &&
        p.u64("deadlineExpired", &h.deadlineExpired) &&
        p.u64("quarantined", &h.quarantined) &&
        p.u64("slowDisconnects", &h.slowDisconnects) &&
        p.u64("uptimeMs", &h.uptimeMs) &&
        p.str("engineVersion", &h.engineVersion);
    if (!good)
        return false;
    // Optional for wire compatibility with pre-telemetry daemons.
    if (p.has("pid") && !p.u64("pid", &h.pid))
        return false;
    *out = std::move(h);
    return true;
}

} // namespace cpelide
