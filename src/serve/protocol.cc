#include "serve/protocol.hh"

#include <cinttypes>
#include <cstdio>

#include "stats/run_result_io.hh"

namespace cpelide
{

const char *
servePriorityName(ServePriority p)
{
    return p == ServePriority::Bulk ? "bulk" : "interactive";
}

bool
serveLineType(const std::string &line, std::string *type)
{
    JsonLineParser p(line);
    return p.parse() && p.str("type", type);
}

std::string
encodeServeRequest(const ServeRequest &req)
{
    std::string out = "{";
    json::appendStr(out, "type", "run");
    json::appendU64(out, "id", req.id);
    json::appendStr(out, "priority", servePriorityName(req.priority));
    // Splice the canonical request fields in canonical order; the
    // canonical line is "{fields}", so strip its braces.
    const std::string canonical = canonicalRequestLine(req.run);
    json::appendSep(out);
    out.append(canonical, 1, canonical.size() - 2);
    out += '}';
    return out;
}

bool
decodeServeRequest(const std::string &line, ServeRequest *out,
                   std::string *error)
{
    JsonLineParser p(line);
    if (!p.parse()) {
        if (error)
            *error = "unparsable request line";
        return false;
    }
    ServeRequest req;
    p.u64("id", &req.id); // best-effort: echoed even on rejection
    if (out)
        out->id = req.id;

    std::string type;
    if (!p.str("type", &type) || type != "run") {
        if (error)
            *error = "expected a \"type\":\"run\" line";
        return false;
    }
    std::string priority;
    if (p.has("priority")) {
        if (!p.str("priority", &priority) ||
            (priority != "interactive" && priority != "bulk")) {
            if (error)
                *error = "priority must be \"interactive\" or \"bulk\"";
            return false;
        }
        if (priority == "bulk")
            req.priority = ServePriority::Bulk;
    }
    if (!parseRequestFields(p, &req.run, error))
        return false;
    *out = std::move(req);
    return true;
}

std::string
encodeServeResponse(const ServeResponse &resp)
{
    std::string out = "{";
    json::appendStr(out, "type", "result");
    json::appendU64(out, "id", resp.id);
    json::appendU64(out, "cached", resp.cached ? 1 : 0);
    json::appendU64(out, "ok", resp.ok ? 1 : 0);
    json::appendStr(out, "error", resp.error);
    appendRunResultFields(out, resp.result);
    json::appendStr(out, "kernelPhases",
                    encodeKernelPhasesCompact(resp.result.kernelPhases));
    out += '}';
    return out;
}

bool
decodeServeResponse(const std::string &line, ServeResponse *out)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type;
    if (!p.str("type", &type) || type != "result")
        return false;

    ServeResponse resp;
    std::uint64_t ok = 0, cached = 0;
    if (!p.u64("id", &resp.id) || !p.u64("cached", &cached) ||
        !p.u64("ok", &ok) || !p.str("error", &resp.error)) {
        return false;
    }
    if (!parseRunResultFields(p, &resp.result))
        return false;
    std::string phases;
    if (p.str("kernelPhases", &phases) &&
        !decodeKernelPhasesCompact(phases, &resp.result.kernelPhases)) {
        return false;
    }
    resp.ok = ok != 0;
    resp.cached = cached != 0;
    *out = std::move(resp);
    return true;
}

std::string
encodeServeStats(const ServeStats &stats)
{
    std::string out = "{";
    json::appendStr(out, "type", "stats");
    json::appendU64(out, "requests", stats.requests);
    json::appendU64(out, "rejected", stats.rejected);
    json::appendU64(out, "cacheHits", stats.cacheHits);
    json::appendU64(out, "cacheMisses", stats.cacheMisses);
    json::appendU64(out, "simulations", stats.simulations);
    json::appendU64(out, "failures", stats.failures);
    json::appendU64(out, "simEvents", stats.simEvents);
    json::appendU64(out, "cacheEntries", stats.cacheEntries);
    json::appendStr(out, "engineVersion", stats.engineVersion);
    out += '}';
    return out;
}

bool
decodeServeStats(const std::string &line, ServeStats *out)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    std::string type;
    if (!p.str("type", &type) || type != "stats")
        return false;
    ServeStats s;
    const bool good =
        p.u64("requests", &s.requests) && p.u64("rejected", &s.rejected) &&
        p.u64("cacheHits", &s.cacheHits) &&
        p.u64("cacheMisses", &s.cacheMisses) &&
        p.u64("simulations", &s.simulations) &&
        p.u64("failures", &s.failures) &&
        p.u64("simEvents", &s.simEvents) &&
        p.u64("cacheEntries", &s.cacheEntries) &&
        p.str("engineVersion", &s.engineVersion);
    if (!good)
        return false;
    *out = std::move(s);
    return true;
}

} // namespace cpelide
