/**
 * @file
 * Content-addressed RunResult cache: the memoization core of the simd
 * daemon.
 *
 * Keys are requestHash() values — FNV-1a over the canonical
 * RunRequest line and the engine version string — so a hit can only
 * occur for a request that is byte-for-byte the same simulation on
 * the same engine build. The simulator is deterministic and CI proves
 * its output byte-identical across CPELIDE_JOBS, which is exactly the
 * property that makes returning a stored RunResult sound: re-running
 * could not have produced different bytes (docs/SERVING.md spells the
 * argument out).
 *
 * Two tiers:
 *  - an in-memory LRU bounded by CPELIDE_SERVE_CACHE_SIZE entries;
 *  - an optional on-disk JSONL store (one line per result, the
 *    journal's flat codec plus the canonical request for
 *    auditability), append-only and loaded on open with the same
 *    torn-tail repair as the checkpoint journal, so a daemon crash
 *    mid-append never poisons later appends and restarts resume with
 *    the cache warm.
 *
 * Integrity: every store line carries a trailing "sum" field — FNV-1a
 * over the record bytes before it — written at append time and
 * verified on load. A record whose checksum does not match (bit rot,
 * hand editing, a torn overwrite) is *quarantined*: never loaded,
 * never fatal, copied to <dir>/quarantine.jsonl for inspection, and
 * counted (quarantineTally(), surfaced through ServeStats/health).
 * The affected request simply misses and re-simulates — determinism
 * guarantees the byte-identical answer. Legacy lines without a sum
 * are accepted as-is.
 *
 * Thread-safe: the server's reader threads look up while pool workers
 * insert.
 */

#ifndef CPELIDE_SERVE_RESULT_CACHE_HH
#define CPELIDE_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <cstdio>
#include <list>
#include <string>
#include <unordered_map>

#include "prof/counter.hh"
#include "sim/thread_annotations.hh"
#include "stats/run_result.hh"

namespace cpelide
{

class ResultCache
{
  public:
    /**
     * @param capacity in-memory LRU bound (entries), >= 1.
     * @param dir on-disk store directory ("" = memory only). Created
     *        if missing; the store file is @p dir /results.jsonl.
     *        The most recent @p capacity disk entries are loaded.
     */
    explicit ResultCache(std::size_t capacity,
                         const std::string &dir = "");
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Fetch the result stored under @p key, bumping its recency.
     * @retval true and fills @p out on a hit.
     */
    bool lookup(std::uint64_t key, RunResult *out)
        CPELIDE_EXCLUDES(_mutex);

    /**
     * Store @p result under @p key. @p canonical (the canonical
     * request line) is persisted alongside for auditability — a human
     * can grep the store for what question a row answers. Re-inserting
     * an existing key only bumps recency (by construction the value
     * bytes are identical).
     */
    void insert(std::uint64_t key, const std::string &canonical,
                const RunResult &result) CPELIDE_EXCLUDES(_mutex);

    std::size_t entries() const CPELIDE_EXCLUDES(_mutex);
    std::uint64_t hitTally() const CPELIDE_EXCLUDES(_mutex);
    std::uint64_t missTally() const CPELIDE_EXCLUDES(_mutex);
    /** Corrupt store records skipped (not loaded) at construction. */
    std::uint64_t quarantineTally() const CPELIDE_EXCLUDES(_mutex);
    /** Entries restored from the disk store at construction. */
    std::size_t loadedEntries() const { return _loadedEntries; }
    /** "" when memory-only. */
    const std::string &storePath() const { return _path; }

  private:
    void insertLocked(std::uint64_t key, const RunResult &result)
        CPELIDE_REQUIRES(_mutex);

    mutable Mutex _mutex;
    /** Immutable after the constructor; read concurrently unguarded. */
    std::size_t _capacity;

    /** Most-recent-first key list; map entries point into it. */
    std::list<std::uint64_t> _lru CPELIDE_GUARDED_BY(_mutex);
    struct Entry
    {
        RunResult result;
        std::list<std::uint64_t>::iterator lruPos;
    };
    /** Keyed lookups only — never iterated (determinism lint). */
    std::unordered_map<std::uint64_t, Entry> _map CPELIDE_GUARDED_BY(_mutex);

    /** Set in the constructor, immutable afterwards (storePath()). */
    std::string _path;
    std::FILE *_file CPELIDE_GUARDED_BY(_mutex) = nullptr;
    /** Set in the constructor, immutable afterwards. */
    std::size_t _loadedEntries = 0;

    prof::Counter _hitCounter CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _missCounter CPELIDE_GUARDED_BY(_mutex);
    prof::Counter _quarantineCounter CPELIDE_GUARDED_BY(_mutex);
};

} // namespace cpelide

#endif // CPELIDE_SERVE_RESULT_CACHE_HH
