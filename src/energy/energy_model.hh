/**
 * @file
 * Memory-subsystem energy model (Fig 9).
 *
 * Per-access energies follow the prior-work models the paper cites
 * (Dally'18 keynote scaling, EIE, fine-grained DRAM), normalized to a
 * 7 nm-class process. The paper reports *relative* energy only, so the
 * constants matter through their ratios: DRAM >> NoC-hop > L3 > L2 >
 * L1/LDS. Components tracked: L1I, L1D, LDS, L2, NoC, DRAM (the L3 is
 * folded into the NoC+DRAM path in the paper's figure; we report it as
 * part of NoC energy, matching the six-way split of Fig 9).
 */

#ifndef CPELIDE_ENERGY_ENERGY_MODEL_HH
#define CPELIDE_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

namespace cpelide
{

/** Per-event energy constants in picojoules. */
struct EnergyParams
{
    double l1iAccessPj = 12.0;   //!< 16 KB instruction cache read
    double l1dAccessPj = 18.0;   //!< 16 KB data cache access
    double ldsAccessPj = 14.0;   //!< 64 KB scratchpad access
    double l2AccessPj = 65.0;    //!< 8 MB bank access
    double l3AccessPj = 140.0;   //!< 16 MB LLC slice access
    double nocFlitPj = 26.0;     //!< one 16 B flit-hop
    double dramLinePj = 2000.0;  //!< one 64 B HBM access (~3.9 pJ/bit)
};

/** Fig 9 energy breakdown, in picojoules. */
struct EnergyBreakdown
{
    double l1i = 0;
    double l1d = 0;
    double lds = 0;
    double l2 = 0;
    double noc = 0;  //!< includes L3 slice access energy
    double dram = 0;

    double
    total() const
    {
        return l1i + l1d + lds + l2 + noc + dram;
    }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        l1i += o.l1i;
        l1d += o.l1d;
        lds += o.lds;
        l2 += o.l2;
        noc += o.noc;
        dram += o.dram;
        return *this;
    }
};

/** Accumulates energy per component from event counts. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams p = {}) : _p(p) {}

    void countL1i(std::uint64_t n = 1) { _e.l1i += n * _p.l1iAccessPj; }
    void countL1d(std::uint64_t n = 1) { _e.l1d += n * _p.l1dAccessPj; }
    void countLds(std::uint64_t n = 1) { _e.lds += n * _p.ldsAccessPj; }
    void countL2(std::uint64_t n = 1) { _e.l2 += n * _p.l2AccessPj; }
    void countL3(std::uint64_t n = 1) { _e.noc += n * _p.l3AccessPj; }
    void countFlits(std::uint64_t n) { _e.noc += n * _p.nocFlitPj; }
    void countDram(std::uint64_t n = 1) { _e.dram += n * _p.dramLinePj; }

    const EnergyBreakdown &breakdown() const { return _e; }
    const EnergyParams &params() const { return _p; }

  private:
    EnergyParams _p;
    EnergyBreakdown _e;
};

} // namespace cpelide

#endif // CPELIDE_ENERGY_ENERGY_MODEL_HH
