/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            throws SimPanicError so the exec engine can classify and
 *            isolate the failed job instead of losing the whole sweep.
 *            Set CPELIDE_PANIC=abort to restore the debugger-friendly
 *            abort() (core dump at the failure point).
 * checkFailed() - a correctness checker (staleness, annotations)
 *            caught the *model* misbehaving; throws InvariantError (a
 *            SimPanicError subclass) so such failures classify
 *            separately from plain simulator bugs.
 * fatal()  - the user asked for something unsupportable (bad config);
 *            throws so library consumers can recover.
 * warn()   - something is modeled approximately; simulation continues.
 */

#ifndef CPELIDE_SIM_LOG_HH
#define CPELIDE_SIM_LOG_HH

#include <cstdio>
#include <stdexcept>
#include <string>

#include "sim/exec_options.hh"
#include "sim/thread_annotations.hh"

namespace cpelide
{

/**
 * Serializes diagnostic output: concurrent Runtime instances (the
 * exec sweep engine) must not interleave their warn/panic lines.
 */
inline Mutex &
logMutex()
{
    static Mutex m;
    return m;
}

/** Thrown by fatal() on unusable user configuration or input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Thrown by panic(): an internal simulator invariant was violated. */
class SimPanicError : public std::runtime_error
{
  public:
    explicit SimPanicError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Thrown by checkFailed(): a correctness checker (staleness checker,
 * annotation validator) detected a protocol/model violation.
 */
class InvariantError : public SimPanicError
{
  public:
    explicit InvariantError(const std::string &what)
        : SimPanicError(what)
    {}
};

/**
 * True when CPELIDE_PANIC=abort. Read live (panic is a cold path) so
 * tests can toggle the behaviour with setenv.
 */
inline bool
panicAborts()
{
    return ExecOptions::fromEnv().panicAbort;
}

/**
 * Report an internal invariant violation: throws SimPanicError so a
 * sweep survives one bad job, or aborts under CPELIDE_PANIC=abort.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    if (panicAborts()) {
        {
            MutexGuard lock(logMutex());
            std::fprintf(stderr, "panic: %s\n", msg.c_str());
        }
        std::abort();
    }
    throw SimPanicError(msg);
}

/**
 * Report a correctness-checker violation (stale read, annotation
 * breach): throws InvariantError, or aborts under CPELIDE_PANIC=abort.
 */
[[noreturn]] inline void
checkFailed(const std::string &msg)
{
    if (panicAborts()) {
        {
            MutexGuard lock(logMutex());
            std::fprintf(stderr, "invariant violation: %s\n",
                         msg.c_str());
        }
        std::abort();
    }
    throw InvariantError(msg);
}

/** Throw FatalError; use for user-caused misconfiguration. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Print a non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    MutexGuard lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** panic() unless @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace cpelide

#endif // CPELIDE_SIM_LOG_HH
