/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so the failure is loud in tests.
 * fatal()  - the user asked for something unsupportable (bad config);
 *            throws so library consumers can recover.
 * warn()   - something is modeled approximately; simulation continues.
 */

#ifndef CPELIDE_SIM_LOG_HH
#define CPELIDE_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

namespace cpelide
{

/**
 * Serializes diagnostic output: concurrent Runtime instances (the
 * exec sweep engine) must not interleave their warn/panic lines.
 */
inline std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/** Thrown by fatal() on unusable user configuration or input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Abort with a message; use for internal invariant violations. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    }
    std::abort();
}

/** Throw FatalError; use for user-caused misconfiguration. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Print a non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** panic() unless @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace cpelide

#endif // CPELIDE_SIM_LOG_HH
