/**
 * @file
 * Engine version string, CMake-stamped from `git describe` at
 * configure time (see the top-level CMakeLists.txt).
 *
 * The version travels in every RunResult and in all structured output,
 * and it is mixed into the serve subsystem's content-addressed cache
 * key: results are only interchangeable between byte-identical
 * engines, so a rebuild from different sources must never satisfy a
 * cached query. Builds without git metadata report "unversioned" —
 * such builds still cache within themselves, but two distinct
 * unversioned builds sharing one cache directory is on the operator.
 */

#ifndef CPELIDE_SIM_VERSION_HH
#define CPELIDE_SIM_VERSION_HH

#ifndef CPELIDE_ENGINE_VERSION
#define CPELIDE_ENGINE_VERSION "unversioned"
#endif

namespace cpelide
{

/** The stamped engine version ("v1.2-4-gabc123", or "unversioned"). */
inline const char *
engineVersion()
{
    return CPELIDE_ENGINE_VERSION;
}

} // namespace cpelide

#endif // CPELIDE_SIM_VERSION_HH
