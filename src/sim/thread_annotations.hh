/**
 * @file
 * Clang thread-safety capability annotations and the annotated mutex
 * primitives the concurrent tree is built on (docs/STATIC_ANALYSIS.md).
 *
 * Under clang with -Wthread-safety (CI: cmake -DCPELIDE_THREAD_SAFETY=ON,
 * promoted to an error), every access to a CPELIDE_GUARDED_BY member
 * and every call to a CPELIDE_REQUIRES method is proven to hold the
 * right lock *at compile time* — a static complement to the TSan job,
 * which can only catch the interleavings a run happens to exercise.
 * Under gcc (or any non-clang compiler) every macro expands to
 * nothing and Mutex/MutexGuard behave exactly like std::mutex with
 * std::lock_guard.
 *
 * House rules (enforced by scripts/lint.py, rule mutex-discipline):
 *  - concurrent code in src/ declares cpelide::Mutex members, not raw
 *    std::mutex, and locks them with MutexGuard, not std::lock_guard /
 *    std::unique_lock — the raw types carry no capability attributes,
 *    so clang cannot check them;
 *  - every Mutex member must be named in at least one
 *    CPELIDE_GUARDED_BY / CPELIDE_REQUIRES annotation (a mutex that
 *    guards nothing statically is a coverage hole);
 *  - CPELIDE_NO_THREAD_SAFETY_ANALYSIS requires a justifying comment.
 */

#ifndef CPELIDE_SIM_THREAD_ANNOTATIONS_HH
#define CPELIDE_SIM_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CPELIDE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CPELIDE_THREAD_ANNOTATION
#define CPELIDE_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Type attribute: this class is a lockable capability. */
#define CPELIDE_CAPABILITY(name) \
    CPELIDE_THREAD_ANNOTATION(capability(name))

/** Type attribute: RAII object that holds a capability for its scope. */
#define CPELIDE_SCOPED_CAPABILITY \
    CPELIDE_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be read/written while holding the named mutex. */
#define CPELIDE_GUARDED_BY(x) CPELIDE_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be dereferenced while holding the named mutex. */
#define CPELIDE_PT_GUARDED_BY(x) \
    CPELIDE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capability to be held on entry (and exit). */
#define CPELIDE_REQUIRES(...) \
    CPELIDE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capability; caller must release it. */
#define CPELIDE_ACQUIRE(...) \
    CPELIDE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases a held capability. */
#define CPELIDE_RELEASE(...) \
    CPELIDE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attempts the capability; holds it iff it returns @p b. */
#define CPELIDE_TRY_ACQUIRE(...) \
    CPELIDE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the function takes it). */
#define CPELIDE_EXCLUDES(...) \
    CPELIDE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Dynamic assertion point: analysis treats the capability as held
 *  after the call (the runtime check is the enforcement). */
#define CPELIDE_ASSERT_CAPABILITY(x) \
    CPELIDE_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define CPELIDE_RETURN_CAPABILITY(x) \
    CPELIDE_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opt one function out of the analysis. Every use must carry a
 * comment justifying why the discipline cannot be expressed
 * statically (scripts/lint.py audits this).
 */
#define CPELIDE_NO_THREAD_SAFETY_ANALYSIS \
    CPELIDE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cpelide
{

/**
 * std::mutex wearing the capability attribute, so clang can track
 * which lock protects which data. Same cost, same semantics.
 */
class CPELIDE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() CPELIDE_ACQUIRE() { _m.lock(); }
    void unlock() CPELIDE_RELEASE() { _m.unlock(); }
    bool try_lock() CPELIDE_TRY_ACQUIRE(true) { return _m.try_lock(); }

    /** The wrapped mutex, for std::condition_variable plumbing only
     *  (MutexGuard::wait*); never lock it directly — that would step
     *  outside the analysis. */
    std::mutex &native() { return _m; }

  private:
    std::mutex _m;
};

/**
 * Scoped lock (RAII) over a Mutex — the tree's only way to take one.
 * Clang knows the capability is held for exactly this object's
 * lifetime. Condition-variable waits go through wait()/waitFor():
 * the capability is released and reacquired inside the call, which
 * the analysis models as "held throughout" — the standard treatment
 * (the wait cannot return without the lock).
 */
class CPELIDE_SCOPED_CAPABILITY MutexGuard
{
  public:
    explicit MutexGuard(Mutex &m) CPELIDE_ACQUIRE(m) : _lock(m.native())
    {}

    ~MutexGuard() CPELIDE_RELEASE() {} // _lock's destructor unlocks

    MutexGuard(const MutexGuard &) = delete;
    MutexGuard &operator=(const MutexGuard &) = delete;

    /** Block on @p cv; the guarded mutex is atomically released for
     *  the wait and reacquired before returning. */
    void wait(std::condition_variable &cv) { cv.wait(_lock); }

    /** Timed wait (watchdog scan cadence). */
    template <class Rep, class Period>
    void
    waitFor(std::condition_variable &cv,
            const std::chrono::duration<Rep, Period> &d)
    {
        cv.wait_for(_lock, d);
    }

  private:
    std::unique_lock<std::mutex> _lock;
};

} // namespace cpelide

#endif // CPELIDE_SIM_THREAD_ANNOTATIONS_HH
