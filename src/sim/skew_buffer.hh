/**
 * @file
 * SkewBuffer: the bounded handoff queue between a bound-phase worker
 * and the weave thread (see gpu/weave.hh and DESIGN.md).
 *
 * In the bound phase, one worker per chiplet runs that chiplet's
 * trace generators ahead of simulated time, parking every would-be
 * memory interaction as a ReplayOp in its chiplet's skew buffer. The
 * weave thread drains the buffers in canonical chunk order and
 * replays the ops through the shared memory system, reproducing the
 * serial execution sequence exactly.
 *
 * The buffer is single-producer / single-consumer at batch
 * granularity, and *bounded*: its capacity (in ops) is the skew
 * horizon — how far a worker may run ahead of the weave before it
 * blocks. A full buffer applies back-pressure instead of growing, so
 * memory stays O(horizon x chiplets) however large the kernel is. A
 * batch larger than the horizon is still accepted when the buffer is
 * empty (no deadlock on oversized batches).
 *
 * Shutdown protocol: the producer always terminates its stream with a
 * ChunkEnd or Error marker, so a consumer that keeps popping always
 * terminates. A consumer that bails early (an exception mid-replay)
 * calls abort() instead, which unblocks and fails the producer's next
 * push with SkewAborted — the worker unwinds without delivering the
 * rest of its stream.
 */

#ifndef CPELIDE_SIM_SKEW_BUFFER_HH
#define CPELIDE_SIM_SKEW_BUFFER_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <utility>
#include <vector>

#include "sim/thread_annotations.hh"
#include "sim/types.hh"

namespace cpelide
{

/** Thrown from SkewBuffer::push after the consumer called abort(). */
struct SkewAborted
{
};

/** One parked interaction, replayed by the weave thread in order. */
struct ReplayOp
{
    enum class Kind : std::uint8_t
    {
        Touch,    //!< cached access: ds/line/write
        Bypass,   //!< system-scope (LLC-direct) access: ds/line/write
        WgBegin,  //!< workgroup `line` starts (closes the previous WG)
        ChunkEnd, //!< the chunk's stream is complete
        Error,    //!< trace generation threw; see SkewBuffer::error()
    };

    Kind kind = Kind::Touch;
    bool write = false;
    DsId ds = -1;
    /** Line index for Touch/Bypass; the workgroup id for WgBegin. */
    std::uint64_t line = 0;
};

/** Bounded SPSC queue of ReplayOp batches (see file comment). */
class SkewBuffer
{
  public:
    /** @param horizon_ops op capacity before push() blocks. */
    explicit SkewBuffer(std::size_t horizon_ops)
        : _horizon(std::max<std::size_t>(1, horizon_ops))
    {}

    SkewBuffer(const SkewBuffer &) = delete;
    SkewBuffer &operator=(const SkewBuffer &) = delete;

    /**
     * Append one batch (producer side). Blocks while the buffer is
     * over the horizon; throws SkewAborted once the consumer aborted.
     */
    void
    push(std::vector<ReplayOp> &&batch) CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        if (!_aborted && _ops > 0 && _ops + batch.size() > _horizon)
            ++_horizonStalls;
        while (!_aborted && _ops > 0 && _ops + batch.size() > _horizon)
            lock.wait(_spaceCv);
        if (_aborted)
            throw SkewAborted{};
        _ops += batch.size();
        _peakOps = std::max(_peakOps, _ops);
        _batches.push_back(std::move(batch));
        _dataCv.notify_one();
    }

    /**
     * Take the oldest batch (consumer side), blocking until one is
     * available. The producer's terminal ChunkEnd/Error marker
     * guarantees termination for a consumer that drains the stream.
     */
    std::vector<ReplayOp>
    pop() CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        while (_batches.empty())
            lock.wait(_dataCv);
        std::vector<ReplayOp> batch = std::move(_batches.front());
        _batches.pop_front();
        _ops -= batch.size();
        _spaceCv.notify_one();
        return batch;
    }

    /**
     * Consumer bail-out: drop buffered data and make every subsequent
     * push() throw SkewAborted so the producer unwinds promptly.
     */
    void
    abort() CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        _aborted = true;
        _batches.clear();
        _ops = 0;
        _spaceCv.notify_all();
    }

    /** Producer side: record why the stream ends in an Error marker. */
    void
    setError(std::exception_ptr e) CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        _error = std::move(e);
    }

    /** The producer's stored exception (consumer, after Error). */
    std::exception_ptr
    error() const CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        return _error;
    }

    /**
     * Times a push() blocked on a full buffer. Scheduling-dependent
     * (like the exec-worker trace track): reported for tuning, never
     * part of any byte-identity surface.
     */
    std::uint64_t
    horizonStalls() const CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        return _horizonStalls;
    }

    /** High-water mark of buffered ops (scheduling-dependent). */
    std::size_t
    peakOps() const CPELIDE_EXCLUDES(_mutex)
    {
        MutexGuard lock(_mutex);
        return _peakOps;
    }

  private:
    const std::size_t _horizon;

    mutable Mutex _mutex;
    std::condition_variable _dataCv;  //!< consumer waits: batch ready
    std::condition_variable _spaceCv; //!< producer waits: under horizon
    std::deque<std::vector<ReplayOp>> _batches CPELIDE_GUARDED_BY(_mutex);
    std::size_t _ops CPELIDE_GUARDED_BY(_mutex) = 0;
    std::size_t _peakOps CPELIDE_GUARDED_BY(_mutex) = 0;
    std::uint64_t _horizonStalls CPELIDE_GUARDED_BY(_mutex) = 0;
    bool _aborted CPELIDE_GUARDED_BY(_mutex) = false;
    std::exception_ptr _error CPELIDE_GUARDED_BY(_mutex);
};

} // namespace cpelide

#endif // CPELIDE_SIM_SKEW_BUFFER_HH
