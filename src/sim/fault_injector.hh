/**
 * @file
 * Deterministic, seeded fault-injection harness.
 *
 * Adversarially exercises the coherence-protocol correctness checkers
 * (the version-tag staleness checker, the host-visibility audit, the
 * annotation validator) by making the memory system misbehave on a
 * reproducible schedule:
 *
 *   - DROP an L2 flush: the release op is acknowledged and the lines
 *     leave the L2, but the writeback payload is lost on the way to
 *     the LLC — consumers read stale data from the LLC (and a drop at
 *     the final barrier leaves host-invisible data, caught by the
 *     audit);
 *   - DELAY an L2 flush: the flush happens but costs extra cycles — a
 *     pure timing fault that must NOT trip any correctness checker;
 *   - SKIP an L2 invalidate: the acquire's flush half still runs, but
 *     the invalidate is lost, so the L2 retains possibly-stale clean
 *     lines;
 *   - CORRUPT a coherence-table entry: downgrade one row's chiplet
 *     state so the elide engine elides a sync op it actually needed.
 *
 * Faults fire either probabilistically (seeded Rng; deterministic for
 * a fixed seed because the simulator is single-threaded per job) or on
 * an explicit schedule of 0-based op indices ("drop the 3rd flush").
 * One injector instance belongs to one Runtime/run; it is not
 * thread-safe and must not be shared across concurrent sweep jobs.
 */

#ifndef CPELIDE_SIM_FAULT_INJECTOR_HH
#define CPELIDE_SIM_FAULT_INJECTOR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "prof/counter.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cpelide
{

/** What to do with one L2 flush (release) operation. */
enum class FlushFault
{
    None,
    Drop,
    Delay,
};

/** The schedule/probabilities of one injection campaign. */
struct FaultPlan
{
    std::uint64_t seed = 1;

    /** Probabilistic rates in [0,1]; 0 disables the class. @{ */
    double dropFlushProb = 0.0;
    double delayFlushProb = 0.0;
    double skipInvalidateProb = 0.0;
    double corruptTableProb = 0.0;
    /** @} */

    /** Explicit 0-based op indices (checked before probabilities). @{ */
    std::vector<std::uint64_t> dropFlushAt;
    std::vector<std::uint64_t> delayFlushAt;
    std::vector<std::uint64_t> skipInvalidateAt;
    std::vector<std::uint64_t> corruptTableAt;
    /** @} */

    /** Extra critical-path cycles added by a delayed flush. */
    Cycles flushDelayCycles = 5000;

    bool
    enabled() const
    {
        return dropFlushProb > 0 || delayFlushProb > 0 ||
               skipInvalidateProb > 0 || corruptTableProb > 0 ||
               !dropFlushAt.empty() || !delayFlushAt.empty() ||
               !skipInvalidateAt.empty() || !corruptTableAt.empty();
    }
};

/** Decides, per operation, whether a fault fires; counts everything. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan)
        : _plan(std::move(plan)), _rng(_plan.seed)
    {}

    /** Called once per l2Release; decides this flush's fate. */
    FlushFault
    onFlush()
    {
        const std::uint64_t idx = _flushesSeen++;
        if (scheduled(_plan.dropFlushAt, idx) ||
            roll(_plan.dropFlushProb)) {
            ++_flushesDropped;
            return FlushFault::Drop;
        }
        if (scheduled(_plan.delayFlushAt, idx) ||
            roll(_plan.delayFlushProb)) {
            ++_flushesDelayed;
            return FlushFault::Delay;
        }
        return FlushFault::None;
    }

    /** Called once per l2Acquire; true = the invalidate is lost. */
    bool
    onInvalidate()
    {
        const std::uint64_t idx = _invalidatesSeen++;
        if (scheduled(_plan.skipInvalidateAt, idx) ||
            roll(_plan.skipInvalidateProb)) {
            ++_invalidatesSkipped;
            return true;
        }
        return false;
    }

    /** Called once per kernel launch; true = corrupt the table now. */
    bool
    onKernelLaunch()
    {
        const std::uint64_t idx = _launchesSeen++;
        if (scheduled(_plan.corruptTableAt, idx) ||
            roll(_plan.corruptTableProb)) {
            return true;
        }
        return false;
    }

    /** The corruption hook applied a table mutation. */
    void recordTableCorruption() { ++_tableCorruptions; }

    /**
     * A dropped flush discarded @p n dirty lines (memory-system
     * callback). Drops of clean L2s lose nothing and are inherently
     * unobservable; this counter lets tests separate the two.
     */
    void recordDroppedDirtyLines(std::uint64_t n)
    {
        _droppedDirtyLines += n;
    }

    Cycles flushDelayCycles() const { return _plan.flushDelayCycles; }

    /** RNG shared with the corruption hook (row/chiplet choice). */
    Rng &rng() { return _rng; }

    /** Campaign statistics. @{ */
    std::uint64_t flushesSeen() const { return _flushesSeen; }
    std::uint64_t flushesDropped() const { return _flushesDropped; }
    std::uint64_t flushesDelayed() const { return _flushesDelayed; }
    std::uint64_t invalidatesSeen() const { return _invalidatesSeen; }
    std::uint64_t invalidatesSkipped() const
    {
        return _invalidatesSkipped;
    }
    std::uint64_t tableCorruptions() const { return _tableCorruptions; }
    std::uint64_t droppedDirtyLines() const { return _droppedDirtyLines; }
    std::uint64_t
    faultsInjected() const
    {
        return _flushesDropped + _flushesDelayed + _invalidatesSkipped +
               _tableCorruptions;
    }
    /** @} */

  private:
    bool
    roll(double p)
    {
        if (p <= 0.0)
            return false;
        return _rng.real() < p;
    }

    static bool
    scheduled(const std::vector<std::uint64_t> &at, std::uint64_t idx)
    {
        return std::find(at.begin(), at.end(), idx) != at.end();
    }

    FaultPlan _plan;
    Rng _rng;
    prof::Counter _flushesSeen;
    prof::Counter _flushesDropped;
    prof::Counter _flushesDelayed;
    prof::Counter _invalidatesSeen;
    prof::Counter _invalidatesSkipped;
    prof::Counter _launchesSeen;
    prof::Counter _tableCorruptions;
    prof::Counter _droppedDirtyLines;
};

} // namespace cpelide

#endif // CPELIDE_SIM_FAULT_INJECTOR_HH
