/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * The GPU system model schedules kernel launches, command-processor
 * message round trips, synchronization (acquire/release) completions, and
 * kernel completions as events. Memory accesses themselves are simulated
 * functionally (see coherence/mem_system.hh) for speed; only
 * coarse-grained control events go through this queue.
 */

#ifndef CPELIDE_SIM_EVENT_QUEUE_HH
#define CPELIDE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "prof/counter.hh"
#include "sim/log.hh"
#include "sim/sim_budget.hh"
#include "sim/thread_annotations.hh"
#include "sim/types.hh"

namespace cpelide
{

/**
 * Phantom capability standing for "the thread that pinned the queue".
 * EventQueue is single-threaded by design; the pin (pinOwner) is a
 * runtime tripwire, and this capability lets -Wthread-safety express
 * the same contract statically: assertOwner() asserts it, so every
 * mutating entry point is marked as requiring the owner thread
 * without any lock existing at runtime.
 */
class CPELIDE_CAPABILITY("EventQueue owner") EventQueueOwnerCap
{
};

/**
 * A time-ordered queue of callbacks. Events scheduled for the same tick
 * fire in insertion order (stable), which keeps runs deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now() — scheduling in the past would silently
     *      time-travel (the event fires, then now() jumps backwards);
     *      enforced by panic.
     */
    void
    schedule(Tick when, Callback cb)
    {
        assertOwner("schedule");
        panicIf(when < _now,
                "EventQueue::schedule: when (" + std::to_string(when) +
                    ") < now (" + std::to_string(_now) + ")");
        _heap.push(Event{when, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    scheduleAfter(Cycles delay, Callback cb)
    {
        schedule(_now + delay, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return _heap.empty(); }

    /**
     * Simulation work performed so far: callbacks executed plus
     * functional time advances (advanceTo with when > now). Reported
     * per job by the exec engine's metrics.
     */
    std::uint64_t eventsProcessed() const { return _eventsProcessed; }

    /** Number of pending events. */
    std::size_t size() const { return _heap.size(); }

    /**
     * Pop and run the earliest event, advancing time to it.
     * Cooperative watchdog point: charges one unit against the
     * calling thread's SimBudget (throws Timeout/BudgetError when the
     * job's budget is exhausted — see sim/sim_budget.hh).
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        assertOwner("step");
        if (_heap.empty())
            return false;
        BudgetGuard::charge();
        // Copy out before pop so the callback may schedule new events.
        Event ev = _heap.top();
        _heap.pop();
        _now = ev.when;
        ++_eventsProcessed;
        ev.cb();
        return true;
    }

    /** Run until the queue drains. Returns the final time. */
    Tick
    run()
    {
        while (step()) {}
        return _now;
    }

    /**
     * Bounded-horizon drain: run every event with when <= @p horizon,
     * then advance time to the horizon itself (a work unit, exactly
     * like advanceTo). This is the weave-phase primitive — the merge
     * loop drains each skew window up to its horizon, then advances
     * it — and is also useful for tests stepping a model in slices.
     * Returns the final time (== max(now, horizon)).
     */
    Tick
    runUntil(Tick horizon)
    {
        while (!_heap.empty() && _heap.top().when <= horizon)
            step();
        advanceTo(horizon);
        return _now;
    }

    /**
     * Advance time with no event attached (used when functional
     * simulation determines a duration outside the queue).
     * @pre when >= now()
     */
    void
    advanceTo(Tick when)
    {
        if (when > _now) {
            assertOwner("advanceTo");
            BudgetGuard::charge();
            _now = when;
            ++_eventsProcessed;
        }
    }

    /**
     * Pin the queue to the calling thread: any schedule/step/advance
     * from another thread then panics. The bound/weave executor runs
     * with the queue pinned to the weave thread, turning a bound
     * worker driving simulated time — a determinism bug by
     * construction — into an immediate failure instead of a silently
     * skewed result.
     */
    void
    pinOwner() CPELIDE_EXCLUDES(_ownerCap)
    {
        _owner = std::this_thread::get_id();
        _pinned = true;
    }

    /** Release the owner pin (tests that legitimately migrate). */
    void unpin() { _pinned = false; }

  private:
    void
    assertOwner(const char *op) const CPELIDE_ASSERT_CAPABILITY(_ownerCap)
    {
        panicIf(_pinned && std::this_thread::get_id() != _owner,
                std::string("EventQueue::") + op +
                    " from a thread other than the pinned owner");
    }

    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    prof::Counter _eventsProcessed;
    std::thread::id _owner;
    bool _pinned = false;
    /** Zero-state phantom capability (see EventQueueOwnerCap). */
    EventQueueOwnerCap _ownerCap;
};

} // namespace cpelide

#endif // CPELIDE_SIM_EVENT_QUEUE_HH
