/**
 * @file
 * Deterministic, seedable pseudo-random number generator.
 *
 * Workload generators must be bit-reproducible across runs and
 * configurations (the same trace must be fed to Baseline, HMG, and
 * CPElide), so everything random flows through this xoshiro256** engine
 * rather than std::rand or hardware entropy.
 */

#ifndef CPELIDE_SIM_RNG_HH
#define CPELIDE_SIM_RNG_HH

#include <cstdint>

namespace cpelide
{

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to spread a small seed over the state.
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Bias is negligible for the bounds used here (< 2^32).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace cpelide

#endif // CPELIDE_SIM_RNG_HH
