/**
 * @file
 * Fundamental scalar types shared across the simulator.
 *
 * The simulator is cycle-approximate: all timing is expressed in GPU core
 * cycles (Table I: 1801 MHz). Microsecond-scale command-processor latencies
 * from the paper are converted to cycles via GpuConfig.
 */

#ifndef CPELIDE_SIM_TYPES_HH
#define CPELIDE_SIM_TYPES_HH

#include <cstdint>

namespace cpelide
{

/** Simulated time, in GPU core cycles. */
using Tick = std::uint64_t;

/** A duration, in GPU core cycles. */
using Cycles = std::uint64_t;

/** A (virtual) byte address in the device's unified address space. */
using Addr = std::uint64_t;

/** Index of a chiplet within the MCM-GPU package. */
using ChipletId = std::int32_t;

/** Index of a compute unit within one chiplet. */
using CuId = std::int32_t;

/** Identifier of a tracked data structure (kernel argument array). */
using DsId = std::int32_t;

/** Monotonically increasing id of a dynamically launched kernel. */
using KernelSeq = std::uint64_t;

/** Cache line size in bytes (Table I: 64 B lines everywhere). */
constexpr std::uint64_t kLineBytes = 64;

/** Virtual memory page size used by the first-touch placement policy. */
constexpr std::uint64_t kPageBytes = 4096;

/** Sentinel for "no chiplet". */
constexpr ChipletId kNoChiplet = -1;

/** Byte address of the cache line containing @p a. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~(kLineBytes - 1);
}

/** Index of the page containing @p a. */
constexpr std::uint64_t
pageIndex(Addr a)
{
    return a / kPageBytes;
}

} // namespace cpelide

#endif // CPELIDE_SIM_TYPES_HH
