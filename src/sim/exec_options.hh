/**
 * @file
 * ExecOptions: the typed, single-point-of-truth parser for every
 * CPELIDE_* environment knob.
 *
 * This header is the ONLY place in the tree allowed to call getenv()
 * or walk the environment (CI greps for violations): every component
 * that used to read its own knob now consumes a field of
 * ExecOptions::fromEnv(). The knob table below drives both the parser
 * and warnUnknown(), so adding a knob here automatically teaches the
 * unknown-variable check about it — a knob can never be forgotten.
 *
 * fromEnv() re-parses the environment on every call. All callers are
 * cold paths (sweep setup, panic handling, per-Runtime construction),
 * and the re-parse preserves the long-standing test idiom of toggling
 * knobs with setenv() mid-process. Hot paths (the per-access miss
 * debug check, the per-launch debug check) cache the parsed flag once
 * per object instead.
 */

#ifndef CPELIDE_SIM_EXEC_OPTIONS_HH
#define CPELIDE_SIM_EXEC_OPTIONS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

extern char **environ;

namespace cpelide
{

/** One row of the knob table: the variable and what it controls. */
struct EnvKnob
{
    const char *name;
    const char *summary;
};

/** Typed snapshot of every CPELIDE_* environment knob. */
struct ExecOptions
{
    /** CPELIDE_JOBS: sweep worker threads (default: hw concurrency). */
    int jobs = 1;
    /** CPELIDE_SIM_THREADS: intra-run bound/weave workers (1 = the
     * serial path; see gpu/weave.hh). Results are byte-identical at
     * any value; keep jobs x simThreads <= cores. */
    int simThreads = 1;
    /** CPELIDE_METRICS: dump per-job metrics to stderr after sweeps. */
    bool metrics = false;
    /** CPELIDE_SCALE: uniform workload iteration scale in (0, 1]. */
    double scale = 1.0;
    /** CPELIDE_DEBUG: per-launch sync-decision log on stderr. */
    bool debug = false;
    /** CPELIDE_MISS_DEBUG: sampled L2-miss log on stderr. */
    bool missDebug = false;
    /** CPELIDE_TIMEOUT_MS: per-job wall-clock budget (0 = off). */
    double timeoutMs = 0.0;
    /** CPELIDE_MAX_EVENTS: per-job simulation-work budget (0 = off). */
    std::uint64_t maxEvents = 0;
    /** CPELIDE_RETRIES: max retries of a retry-safe job failure. */
    int retries = 0;
    /** CPELIDE_RETRY_BACKOFF_MS: base backoff, doubled per attempt. */
    double retryBackoffMs = 50.0;
    /** CPELIDE_RESUME: sweep checkpoint-journal path ("" = off). */
    std::string resumePath;
    /** CPELIDE_PANIC=abort: abort() at panic sites instead of throwing. */
    bool panicAbort = false;
    /** CPELIDE_TRACE: Chrome trace_event JSON output path ("" = off). */
    std::string tracePath;
    /** CPELIDE_CHECK: run the happens-before checker on every run. */
    bool check = false;
    /** CPELIDE_PROFILE: perf-counter profile report path ("" = off). */
    std::string profilePath;
    /** CPELIDE_SERVE_SOCKET: simd listen socket ("" = ./simd.sock). */
    std::string serveSocket;
    /** CPELIDE_SERVE_CACHE: result-cache directory ("" = memory only). */
    std::string serveCacheDir;
    /** CPELIDE_SERVE_CACHE_SIZE: in-memory LRU capacity (entries). */
    std::size_t serveCacheSize = 4096;
    /** CPELIDE_SERVE_QUOTA: per-client in-flight request cap. */
    int serveQuota = 64;
    /** CPELIDE_SERVE_BATCH: max requests batched into one SweepSpec. */
    int serveBatch = 32;
    /** CPELIDE_SERVE_QUEUE: global queued-request cap (load shedding). */
    int serveQueue = 256;
    /** CPELIDE_SERVE_WRITEBUF: per-connection output buffer (bytes). */
    std::size_t serveWriteBuf = 4u << 20;
    /** CPELIDE_SERVE_TIMEOUT_MS: client connect/receive timeout. */
    double serveTimeoutMs = 5000.0;
    /** CPELIDE_SERVE_RETRIES: client retries of transient failures. */
    int serveRetries = 3;
    /** CPELIDE_SERVE_SLOWLOG_MS: slow-request log threshold, ms
     *  end-to-end (0 = slow log off). */
    std::uint64_t serveSlowlogMs = 0;
    /** CPELIDE_SERVE_SLOWLOG: slow-log JSONL path ("" = stderr). */
    std::string serveSlowlogPath;

    /**
     * The knob table: one row per variable any component reads. Keep
     * the summaries in sync with the "Resilience knobs" table in
     * EXPERIMENTS.md.
     */
    static const std::vector<EnvKnob> &
    knobs()
    {
        static const std::vector<EnvKnob> table = {
            {"CPELIDE_JOBS", "sweep worker threads"},
            {"CPELIDE_SIM_THREADS", "intra-run bound/weave workers"},
            {"CPELIDE_METRICS", "per-job metrics dump"},
            {"CPELIDE_SCALE", "workload iteration scale"},
            {"CPELIDE_DEBUG", "per-launch sync log"},
            {"CPELIDE_MISS_DEBUG", "sampled L2 miss log"},
            {"CPELIDE_TIMEOUT_MS", "per-job wall budget"},
            {"CPELIDE_MAX_EVENTS", "per-job work budget"},
            {"CPELIDE_RETRIES", "retry-safe failure retries"},
            {"CPELIDE_RETRY_BACKOFF_MS", "retry backoff base"},
            {"CPELIDE_RESUME", "checkpoint journal path"},
            {"CPELIDE_PANIC", "abort instead of throw"},
            {"CPELIDE_TRACE", "Chrome trace JSON path"},
            {"CPELIDE_CHECK", "happens-before checker"},
            {"CPELIDE_PROFILE", "perf-counter profile path"},
            {"CPELIDE_SERVE_SOCKET", "simd listen socket path"},
            {"CPELIDE_SERVE_CACHE", "simd result-cache directory"},
            {"CPELIDE_SERVE_CACHE_SIZE", "simd cache LRU entries"},
            {"CPELIDE_SERVE_QUOTA", "simd per-client in-flight cap"},
            {"CPELIDE_SERVE_BATCH", "simd max batch per sweep"},
            {"CPELIDE_SERVE_QUEUE", "simd queued-request cap"},
            {"CPELIDE_SERVE_WRITEBUF", "simd per-conn outbox bytes"},
            {"CPELIDE_SERVE_TIMEOUT_MS", "client connect/recv timeout"},
            {"CPELIDE_SERVE_RETRIES", "client transient retry cap"},
            {"CPELIDE_SERVE_SLOWLOG_MS", "simd slow-log threshold ms"},
            {"CPELIDE_SERVE_SLOWLOG", "simd slow-log JSONL path"},
        };
        return table;
    }

    /** Fresh parse of the environment (see file comment). */
    static ExecOptions
    fromEnv()
    {
        ExecOptions o;
        o.jobs = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
        if (const char *s = raw("CPELIDE_JOBS")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.jobs = static_cast<int>(std::min<long>(v, 256));
        }
        if (const char *s = raw("CPELIDE_SIM_THREADS")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.simThreads = static_cast<int>(std::min<long>(v, 256));
        }
        o.metrics = raw("CPELIDE_METRICS") != nullptr;
        if (const char *s = raw("CPELIDE_SCALE")) {
            const double v = std::atof(s);
            if (v > 0.0 && v <= 1.0)
                o.scale = v;
        }
        o.debug = raw("CPELIDE_DEBUG") != nullptr;
        o.missDebug = raw("CPELIDE_MISS_DEBUG") != nullptr;
        if (const char *s = raw("CPELIDE_TIMEOUT_MS")) {
            const double v = std::atof(s);
            if (v > 0.0)
                o.timeoutMs = v;
        }
        if (const char *s = raw("CPELIDE_MAX_EVENTS")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.maxEvents = v;
        }
        if (const char *s = raw("CPELIDE_RETRIES")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v >= 0)
                o.retries = static_cast<int>(std::min<long>(v, 16));
        }
        if (const char *s = raw("CPELIDE_RETRY_BACKOFF_MS")) {
            char *end = nullptr;
            const double v = std::strtod(s, &end);
            if (end != s && *end == '\0' && v >= 0)
                o.retryBackoffMs = v;
        }
        if (const char *s = raw("CPELIDE_RESUME"))
            o.resumePath = s;
        if (const char *s = raw("CPELIDE_PANIC"))
            o.panicAbort = std::string(s) == "abort";
        if (const char *s = raw("CPELIDE_TRACE"))
            o.tracePath = s;
        o.check = raw("CPELIDE_CHECK") != nullptr;
        if (const char *s = raw("CPELIDE_PROFILE"))
            o.profilePath = s;
        if (const char *s = raw("CPELIDE_SERVE_SOCKET"))
            o.serveSocket = s;
        if (const char *s = raw("CPELIDE_SERVE_CACHE"))
            o.serveCacheDir = s;
        if (const char *s = raw("CPELIDE_SERVE_CACHE_SIZE")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.serveCacheSize = static_cast<std::size_t>(v);
        }
        if (const char *s = raw("CPELIDE_SERVE_QUOTA")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.serveQuota = static_cast<int>(std::min<long>(v, 4096));
        }
        if (const char *s = raw("CPELIDE_SERVE_BATCH")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.serveBatch = static_cast<int>(std::min<long>(v, 1024));
        }
        if (const char *s = raw("CPELIDE_SERVE_QUEUE")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.serveQueue = static_cast<int>(std::min<long>(v, 65536));
        }
        if (const char *s = raw("CPELIDE_SERVE_WRITEBUF")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(s, &end, 10);
            if (end != s && *end == '\0' && v > 0)
                o.serveWriteBuf = static_cast<std::size_t>(v);
        }
        if (const char *s = raw("CPELIDE_SERVE_TIMEOUT_MS")) {
            char *end = nullptr;
            const double v = std::strtod(s, &end);
            if (end != s && *end == '\0' && v >= 0)
                o.serveTimeoutMs = v;
        }
        if (const char *s = raw("CPELIDE_SERVE_RETRIES")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0' && v >= 0)
                o.serveRetries = static_cast<int>(std::min<long>(v, 16));
        }
        if (const char *s = raw("CPELIDE_SERVE_SLOWLOG_MS")) {
            char *end = nullptr;
            const unsigned long long v = std::strtoull(s, &end, 10);
            if (end != s && *end == '\0')
                o.serveSlowlogMs = v;
        }
        if (const char *s = raw("CPELIDE_SERVE_SLOWLOG"))
            o.serveSlowlogPath = s;
        return o;
    }

    /**
     * Scan the environment for CPELIDE_* variables missing from the
     * knob table — a misspelled knob (CPELIDE_TIMEOUT instead of
     * CPELIDE_TIMEOUT_MS) otherwise fails silently as a no-op.
     * @return the unrecognized names found (the caller warns).
     */
    static std::vector<std::string>
    unknownEnvVars()
    {
        std::vector<std::string> unknown;
        for (char **e = environ; e && *e; ++e) {
            const std::string entry(*e);
            if (entry.rfind("CPELIDE_", 0) != 0)
                continue;
            const std::string name = entry.substr(0, entry.find('='));
            bool found = false;
            for (const EnvKnob &k : knobs()) {
                if (name == k.name) {
                    found = true;
                    break;
                }
            }
            if (!found)
                unknown.push_back(name);
        }
        return unknown;
    }

  private:
    /** The tree's single raw environment accessor (CI-enforced). */
    static const char *raw(const char *name) { return std::getenv(name); }
};

} // namespace cpelide

#endif // CPELIDE_SIM_EXEC_OPTIONS_HH
