/**
 * @file
 * Per-job simulation budgets (watchdog support for the exec engine).
 *
 * A SimBudget caps one job's wall-clock time and simulation work. The
 * cap is enforced cooperatively: BudgetGuard installs a thread-local
 * state for the duration of a job body, and the simulation kernel
 * charges work units against it (EventQueue::step/advanceTo and every
 * MemSystem access). When a limit trips — or when SweepRunner's
 * watchdog thread flags the job as overdue — the next charge() throws
 * TimeoutError / BudgetError, which unwinds the job cleanly through
 * the Runtime destructors and is classified by the sweep engine as a
 * structured Timeout / Budget outcome instead of a hung sweep.
 *
 * Enforcement is cooperative by design: a job that never touches the
 * simulation kernel (e.g. an infinite loop in pure host code) cannot
 * be interrupted safely in-process; the watchdog still flags it so the
 * sweep can report it once it does charge, or the operator can kill
 * and resume (see CPELIDE_RESUME).
 */

#ifndef CPELIDE_SIM_SIM_BUDGET_HH
#define CPELIDE_SIM_SIM_BUDGET_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/exec_options.hh"

namespace cpelide
{

/** Limits for one job; 0 means unlimited. */
struct SimBudget
{
    /** Max wall-clock milliseconds for the job body. */
    double maxWallMs = 0.0;
    /** Max simulation work units (events + memory accesses). */
    std::uint64_t maxEvents = 0;

    bool enabled() const { return maxWallMs > 0.0 || maxEvents > 0; }

    /** Budget from CPELIDE_TIMEOUT_MS / CPELIDE_MAX_EVENTS (0 = off). */
    static SimBudget
    fromEnv()
    {
        const ExecOptions eo = ExecOptions::fromEnv();
        SimBudget b;
        b.maxWallMs = eo.timeoutMs;
        b.maxEvents = eo.maxEvents;
        return b;
    }
};

/** The job exceeded its wall-clock budget (or was cancelled). */
class TimeoutError : public std::runtime_error
{
  public:
    explicit TimeoutError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** The job exceeded its simulation-work budget. */
class BudgetError : public std::runtime_error
{
  public:
    explicit BudgetError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * RAII scope that makes @p budget the calling thread's active budget.
 * Scopes nest; the innermost one is charged. The shared State outlives
 * the scope, so a watchdog thread may safely hold it and request
 * cancellation even while (or after) the job finishes.
 */
class BudgetGuard
{
  public:
    struct State
    {
        std::chrono::steady_clock::time_point start;
        double maxWallMs = 0.0;
        std::uint64_t maxEvents = 0;
        /** Work charged so far; touched only by the owning thread. */
        std::uint64_t events = 0;
        /** Set by a watchdog thread to cancel cooperatively. */
        std::atomic<bool> cancel{false};

        double
        elapsedMs() const
        {
            return std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                .count();
        }
    };

    explicit BudgetGuard(const SimBudget &budget)
        : _state(std::make_shared<State>()), _prev(tls())
    {
        _state->start = std::chrono::steady_clock::now();
        _state->maxWallMs = budget.maxWallMs;
        _state->maxEvents = budget.maxEvents;
        tls() = _state.get();
    }

    ~BudgetGuard() { tls() = _prev; }

    BudgetGuard(const BudgetGuard &) = delete;
    BudgetGuard &operator=(const BudgetGuard &) = delete;

    /** Shared state handle for watchdog registration. */
    std::shared_ptr<State> state() const { return _state; }

    /**
     * Charge @p n work units against the calling thread's active
     * budget (no-op when none is installed). Throws TimeoutError /
     * BudgetError when a limit is exceeded. The wall clock is sampled
     * only every 256 units to keep the hot path cheap.
     */
    static void
    charge(std::uint64_t n = 1)
    {
        State *s = tls();
        if (!s)
            return;
        s->events += n;
        if (s->cancel.load(std::memory_order_relaxed)) {
            throw TimeoutError(
                "watchdog cancelled job after " +
                std::to_string(s->elapsedMs()) + " ms (budget " +
                std::to_string(s->maxWallMs) + " ms)");
        }
        if (s->maxEvents && s->events > s->maxEvents) {
            throw BudgetError(
                "simulation work budget exceeded: " +
                std::to_string(s->events) + " > " +
                std::to_string(s->maxEvents) + " units");
        }
        if (s->maxWallMs > 0.0 && (s->events & 0xFF) == 0) {
            const double ms = s->elapsedMs();
            if (ms > s->maxWallMs) {
                throw TimeoutError(
                    "wall-time budget exceeded: " + std::to_string(ms) +
                    " ms > " + std::to_string(s->maxWallMs) + " ms");
            }
        }
    }

    /** True when the calling thread has an active budget scope. */
    static bool active() { return tls() != nullptr; }

  private:
    static State *&
    tls()
    {
        static thread_local State *current = nullptr;
        return current;
    }

    std::shared_ptr<State> _state;
    State *_prev;
};

} // namespace cpelide

#endif // CPELIDE_SIM_SIM_BUDGET_HH
