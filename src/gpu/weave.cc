#include "gpu/weave.hh"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "exec/thread_pool.hh"
#include "gpu/chunk_exec.hh"
#include "prof/registry.hh"
#include "sim/skew_buffer.hh"

namespace cpelide
{

namespace
{

/** Ops per handoff batch: amortizes the buffer mutex without letting
 * the weave thread idle long behind a generator. */
constexpr std::size_t kBatchOps = 2048;

/** Skew horizon: ops a bound worker may run ahead of the weave per
 * chiplet before back-pressure blocks it (bounds memory, not
 * correctness — replay order is canonical at any horizon). */
constexpr std::size_t kHorizonOps = std::size_t{1} << 16;

/** TraceSink parking a chunk's stream into its skew buffer. */
class BoundSink : public TraceSink
{
  public:
    explicit BoundSink(SkewBuffer &buf) : _buf(buf)
    {
        _batch.reserve(kBatchOps);
    }

    void
    touch(DsId ds, std::uint64_t line, bool write) override
    {
        append({ReplayOp::Kind::Touch, write, ds, line});
    }

    void
    touchBypass(DsId ds, std::uint64_t line, bool write) override
    {
        append({ReplayOp::Kind::Bypass, write, ds, line});
    }

    /** Mark the start of workgroup @p wg. */
    void
    wgBegin(int wg)
    {
        append({ReplayOp::Kind::WgBegin, false, -1,
                static_cast<std::uint64_t>(wg)});
    }

    /** Terminate the stream (Kind::ChunkEnd or Kind::Error). */
    void
    finish(ReplayOp::Kind kind)
    {
        _batch.push_back({kind, false, -1, 0});
        flush();
    }

  private:
    void
    append(ReplayOp op)
    {
        _batch.push_back(op);
        if (_batch.size() >= kBatchOps)
            flush();
    }

    void
    flush()
    {
        if (_batch.empty())
            return;
        _buf.push(std::move(_batch));
        _batch = {};
        _batch.reserve(kBatchOps);
    }

    SkewBuffer &_buf;
    std::vector<ReplayOp> _batch;
};

} // namespace

WeaveExecutor::WeaveExecutor(const GpuConfig &cfg, MemSystem &mem,
                             DataSpace &space, int sim_threads)
    : _cfg(cfg), _mem(mem), _space(space)
{
    const int workers =
        std::min(std::max(sim_threads - 1, 1), cfg.numChiplets);
    _pool = std::make_unique<ThreadPool>(workers);
}

WeaveExecutor::~WeaveExecutor() = default;

int
WeaveExecutor::boundWorkers() const
{
    return _pool->threadCount();
}

void
WeaveExecutor::registerProf(prof::ProfRegistry &reg)
{
    reg.addCounter("weave/parallel-kernels", &_parallelKernels);
    reg.addCounter("weave/replayed-ops", &_replayedOps);
    reg.addCounter("weave/horizon-stalls", &_horizonStalls);
    reg.addHistogram("weave/chunk-ops", &_chunkOps);
}

std::vector<ChunkOutcome>
WeaveExecutor::runChunks(const KernelDesc &desc,
                         const std::vector<WgChunk> &chunks,
                         const LaunchDecl *decl, bool debug)
{
    ++_parallelKernels;
    const std::size_t n = chunks.size();
    std::vector<std::unique_ptr<SkewBuffer>> bufs(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (chunks[i].count() > 0)
            bufs[i] = std::make_unique<SkewBuffer>(kHorizonOps);
    }

    // Bound phase: one task per non-empty chunk generates that
    // chiplet's stream into its buffer. Generation is pure — the
    // sinks below never read or write simulator state — so the only
    // shared objects are the buffers themselves. A generator that
    // throws (annotation violation) delivers the ops it generated
    // *before* the throw plus an Error marker, reproducing the serial
    // path's partial side effects exactly.
    for (std::size_t i = 0; i < n; ++i) {
        if (!bufs[i])
            continue;
        SkewBuffer *buf = bufs[i].get();
        const WgChunk ch = chunks[i];
        const std::size_t schedIdx = i;
        _pool->submit([this, buf, ch, schedIdx, &desc, decl] {
            BoundSink sink(*buf);
            try {
                for (int wg = ch.wgBegin; wg < ch.wgEnd; ++wg) {
                    sink.wgBegin(wg);
                    if (decl) {
                        ValidatingSink vsink(sink, _space, desc, *decl,
                                             schedIdx, ch.chiplet);
                        desc.trace(wg, vsink);
                    } else {
                        desc.trace(wg, sink);
                    }
                }
                sink.finish(ReplayOp::Kind::ChunkEnd);
            } catch (const SkewAborted &) {
                // The weave thread bailed; nothing left to deliver.
            } catch (...) {
                buf->setError(std::current_exception());
                try {
                    sink.finish(ReplayOp::Kind::Error);
                } catch (const SkewAborted &) {
                }
            }
        });
    }

    // Weave phase: replay in canonical chunk order on this thread.
    // On any exception, abort the buffers first so blocked producers
    // unwind, then drain the pool before rethrowing — no task may
    // outlive this call.
    std::vector<ChunkOutcome> outcomes(n);
    try {
        for (std::size_t i = 0; i < n; ++i) {
            if (bufs[i])
                replayChunk(desc, chunks[i], *bufs[i], debug,
                            &outcomes[i]);
        }
    } catch (...) {
        for (std::unique_ptr<SkewBuffer> &b : bufs) {
            if (b)
                b->abort();
        }
        _pool->wait();
        throw;
    }
    _pool->wait();
    for (const std::unique_ptr<SkewBuffer> &b : bufs) {
        if (b)
            _horizonStalls += b->horizonStalls();
    }
    return outcomes;
}

void
WeaveExecutor::replayChunk(const KernelDesc &desc, const WgChunk &chunk,
                           SkewBuffer &buf, bool debug,
                           ChunkOutcome *out)
{
    if (debug) {
        _space.setContext("chunk@chiplet" +
                          std::to_string(chunk.chiplet));
    }
    const std::uint64_t dirBefore = _mem.directoryStallCycles();
    ChunkTimer timer(_cfg, _mem, desc, chunk);
    std::uint64_t ops = 0;
    bool done = false;
    while (!done) {
        const std::vector<ReplayOp> batch = buf.pop();
        for (const ReplayOp &op : batch) {
            switch (op.kind) {
            case ReplayOp::Kind::Touch:
                timer.sink().touch(op.ds, op.line, op.write);
                ++ops;
                break;
            case ReplayOp::Kind::Bypass:
                timer.sink().touchBypass(op.ds, op.line, op.write);
                ++ops;
                break;
            case ReplayOp::Kind::WgBegin:
                timer.beginWg(static_cast<int>(op.line));
                break;
            case ReplayOp::Kind::ChunkEnd:
                done = true;
                break;
            case ReplayOp::Kind::Error:
                // Everything before the generator's throw has been
                // replayed; surface the error with identical partial
                // state to the serial path.
                std::rethrow_exception(buf.error());
            }
        }
    }
    _replayedOps += ops;
    _chunkOps.record(ops);
    out->time = timer.finish(&out->compute);
    out->dirStall = _mem.directoryStallCycles() - dirBefore;
}

} // namespace cpelide
