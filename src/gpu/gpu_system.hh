/**
 * @file
 * GpuSystem: the whole simulated package.
 *
 * Wires the memory system, global/local CPs, elide engine, NoC, and
 * energy model together and executes enqueued kernels. Timing is a
 * hybrid: coarse control events (CP pipeline, sync phases, kernel
 * start/end per stream and chiplet) advance explicit timelines, while
 * memory accesses are simulated functionally with latency accumulation
 * per CU and a per-chiplet bandwidth roofline
 * (time >= bytes moved / link bandwidth for HBM, inter-chiplet link,
 * and the L2<->L3 path).
 */

#ifndef CPELIDE_GPU_GPU_SYSTEM_HH
#define CPELIDE_GPU_GPU_SYSTEM_HH

#include <map>
#include <memory>
#include <vector>

#include "coherence/mem_system.hh"
#include "config/gpu_config.hh"
#include "cp/global_cp.hh"
#include "cp/kernel.hh"
#include "mem/data_space.hh"
#include "sim/event_queue.hh"
#include "stats/run_result.hh"

namespace cpelide
{

class WeaveExecutor;

/** Per-run options beyond GpuConfig. */
struct RunOptions
{
    ProtocolKind protocol = ProtocolKind::Baseline;
    /** Section VI scaling study knob (see GlobalCp). */
    int extraSyncSets = 0;
    /** Abort immediately on a detected stale read (tests). */
    bool panicOnStale = false;
    /**
     * Annotation validator: panic if any kernel's trace touches a
     * structure outside its declared access annotation (the paper's
     * correctness contract on the programmer: "the compiler/programmer
     * must correctly mark the ranges or the outputs may be
     * incorrect"). touchBypass accesses are exempt (not annotated).
     */
    bool validateAnnotations = false;
    /**
     * hipSetDevice-style stream-to-chiplet binding. A stream absent
     * from the map runs on all chiplets.
     */
    std::map<int, std::vector<ChipletId>> streamChiplets;
    /**
     * Deterministic fault-injection campaign (tests; see
     * sim/fault_injector.hh). Not owned; must outlive the GpuSystem.
     * The memory system consults it on every L2 sync op, and the GPU
     * layer consults it at each kernel launch for coherence-table
     * corruption.
     */
    FaultInjector *faultInjector = nullptr;
    /**
     * Trace session recording this run's phase spans and sync instants
     * (see trace/trace.hh), or nullptr (the default): tracing then
     * costs exactly one never-taken branch per site. Not owned; must
     * outlive the GpuSystem. Timestamps are sim ticks, so traces are
     * identical whatever thread runs the simulation.
     */
    TraceSession *trace = nullptr;
    /**
     * Run the happens-before checker (see check/hb_checker.hh; also
     * enabled by CPELIDE_CHECK=1): every device read is verified to be
     * ordered after the write it observes by the release/acquire edges
     * actually performed; violations name the edge an elision (or an
     * injected fault) removed. The GpuSystem owns the checker; inspect
     * it via checker().
     */
    bool check = false;
    /**
     * When the checker found violations, throw InvariantError from
     * run() (so harness jobs fail as 'invariant'). Disable to collect
     * the full report set from a run that is expected to race (tests).
     */
    bool failOnHbViolation = true;
    /**
     * Profiling registry for this run (see prof/registry.hh), or
     * nullptr (the default). When set, the GpuSystem registers every
     * component's counters at construction, samples the registered
     * time series at each kernel boundary, and publishes the run's
     * stall-attribution bins; the harness snapshots the registry into
     * RunResult::prof. Not owned; must outlive the GpuSystem.
     */
    prof::ProfRegistry *prof = nullptr;
    /**
     * Intra-run bound/weave workers (see gpu/weave.hh): 1 = the
     * serial path, >1 = parallel trace generation with serial-order
     * replay, 0 (the default) = resolve from CPELIDE_SIM_THREADS.
     * Results are byte-identical at any value.
     */
    int simThreads = 0;
};

class GpuSystem
{
  public:
    GpuSystem(const GpuConfig &cfg, const RunOptions &opts);
    ~GpuSystem();

    GpuSystem(const GpuSystem &) = delete;
    GpuSystem &operator=(const GpuSystem &) = delete;

    /** Device allocator (workloads allocate their arrays here). */
    DataSpace &space() { return _space; }

    /** Submit a kernel; executed by run() in submission order. */
    void enqueue(KernelDesc desc);

    /** Bind @p stream to a chiplet subset (hipSetDevice analogue). */
    void
    bindStream(int stream, std::vector<ChipletId> chiplets)
    {
        _opts.streamChiplets[stream] = std::move(chiplets);
    }

    /**
     * Simulate every enqueued kernel plus the final host-visibility
     * barrier, and return the measurements.
     * @param label workload name recorded in the result.
     */
    RunResult run(const std::string &label);

    const GpuConfig &config() const { return _cfg; }
    MemSystem &mem() { return *_mem; }
    GlobalCp &cp() { return *_cp; }

    /**
     * The happens-before checker, or nullptr when checking is off.
     * Remains valid after run() threw on a violation, so tests can
     * inspect the reports behind the failure.
     */
    const HbChecker *checker() const { return _check.get(); }

  private:
    /**
     * Execute one chiplet's WG chunk: round-robin WGs over CUs, feed
     * each WG's trace through the memory system, and return the
     * chiplet's execution time (CU critical path vs bandwidth
     * rooflines). @p decl (non-null in validation mode) carries the
     * CP's view of the launch for annotation checking; @p sched_idx
     * is this chunk's position in the scheduled-chiplet list.
     */
    Cycles runChunk(const KernelDesc &desc, const WgChunk &chunk,
                    const LaunchDecl *decl, std::size_t sched_idx,
                    Cycles *compute_out);

    /** Fault injection: downgrade one coherence-table entry. */
    void corruptCoherenceTable();

    /** Wire every component into the run's profiling registry. */
    void registerProf(prof::ProfRegistry &reg);

    const GpuConfig _cfg;
    RunOptions _opts;
    DataSpace _space;
    std::unique_ptr<MemSystem> _mem;
    std::unique_ptr<GlobalCp> _cp;
    std::unique_ptr<HbChecker> _check;
    /** Bound/weave executor, or null on the serial path (see
     * gpu/weave.hh). Declared after _mem: it references *_mem and
     * must be destroyed (workers joined) first. */
    std::unique_ptr<WeaveExecutor> _weave;
    EventQueue _events;
    std::vector<KernelDesc> _pending;

    Tick _syncStall = 0;
    prof::Counter _kernels;
    prof::Counter _conservativeLaunches;

    /** CPELIDE_DEBUG, cached once at construction (hot path). */
    bool _debug = false;
};

} // namespace cpelide

#endif // CPELIDE_GPU_GPU_SYSTEM_HH
