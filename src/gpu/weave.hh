/**
 * @file
 * WeaveExecutor: intra-run bound/weave parallelism (DESIGN.md,
 * "Bound/weave parallelism").
 *
 * A kernel's chunks are simulated in two overlapped phases. In the
 * *bound* phase, one pool worker per chiplet runs that chiplet's
 * trace generators ahead of simulated time, parking every would-be
 * memory interaction in the chiplet's bounded skew buffer
 * (sim/skew_buffer.hh) — trace generation is pure (a WG's accesses
 * depend only on its id), so this is safe to run concurrently and
 * observes no shared simulator state. In the *weave* phase, the
 * calling thread drains the buffers in canonical chunk order and
 * replays the parked ops through the shared memory system — the
 * identical access sequence the serial path would perform, through
 * the identical ChunkTimer arithmetic (gpu/chunk_exec.hh). Results
 * are therefore byte-identical to serial at any thread count, by
 * construction; the speedup comes from overlapping chunk i's replay
 * with chunks i+1..N's generation.
 *
 * CPELIDE_SIM_THREADS = N gives N-1 bound workers (capped at the
 * chiplet count) plus the weave on the calling thread; N = 1 keeps
 * the fully serial path (no WeaveExecutor is constructed at all).
 */

#ifndef CPELIDE_GPU_WEAVE_HH
#define CPELIDE_GPU_WEAVE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config/gpu_config.hh"
#include "cp/kernel.hh"
#include "cp/local_cp.hh"
#include "prof/counter.hh"
#include "sim/types.hh"

namespace cpelide
{

class DataSpace;
class MemSystem;
class SkewBuffer;
class ThreadPool;
struct LaunchDecl;

namespace prof
{
class ProfRegistry;
}

/**
 * One chunk's measurements, identical between the serial loop and
 * the weave replay; GpuSystem::run feeds them to the shared stall
 * attribution and trace-span pass.
 */
struct ChunkOutcome
{
    Cycles time = 0;    //!< execution time (CU critical path/roofline)
    Cycles compute = 0; //!< busiest CU's pure ALU+LDS cycles
    /** Directory stall cycles this chunk's accesses added (HMG). */
    std::uint64_t dirStall = 0;
};

class WeaveExecutor
{
  public:
    /**
     * @param sim_threads the CPELIDE_SIM_THREADS value (>= 2); the
     * bound pool gets sim_threads - 1 workers, capped at the chiplet
     * count since there is at most one chunk per chiplet.
     */
    WeaveExecutor(const GpuConfig &cfg, MemSystem &mem,
                  DataSpace &space, int sim_threads);
    ~WeaveExecutor();

    WeaveExecutor(const WeaveExecutor &) = delete;
    WeaveExecutor &operator=(const WeaveExecutor &) = delete;

    /**
     * Bound + weave all of one kernel's chunks; outcomes in chunk
     * order. Exceptions (annotation violations, budget exhaustion,
     * panics) propagate exactly as from the serial loop: ops
     * generated before a bound-side throw are replayed first, a
     * weave-side throw aborts the buffers and drains the workers
     * before rethrowing.
     */
    std::vector<ChunkOutcome> runChunks(const KernelDesc &desc,
                                        const std::vector<WgChunk> &chunks,
                                        const LaunchDecl *decl,
                                        bool debug);

    /** Wire the bound/weave counters into the run's registry. */
    void registerProf(prof::ProfRegistry &reg);

    /** Bound workers in the pool. */
    int boundWorkers() const;

  private:
    /** Weave one chunk's stream out of @p buf (canonical order). */
    void replayChunk(const KernelDesc &desc, const WgChunk &chunk,
                     SkewBuffer &buf, bool debug, ChunkOutcome *out);

    const GpuConfig &_cfg;
    MemSystem &_mem;
    DataSpace &_space;
    std::unique_ptr<ThreadPool> _pool;

    /** Kernels that took the parallel path (deterministic). */
    prof::Counter _parallelKernels;
    /** Ops replayed by the weave thread (deterministic). */
    prof::Counter _replayedOps;
    /** Bound pushes that blocked on the horizon (scheduling-dependent,
     * like the exec-worker trace track — never byte-identity gated). */
    prof::Counter _horizonStalls;
    /** Per-chunk replayed-op counts (deterministic). */
    prof::Histogram _chunkOps;
};

} // namespace cpelide

#endif // CPELIDE_GPU_WEAVE_HH
