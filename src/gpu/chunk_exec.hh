/**
 * @file
 * Chunk-execution primitives shared by the serial path
 * (GpuSystem::runChunk) and the weave replay (gpu/weave.cc): the
 * memory-system trace sinks and the per-chunk timing accumulator.
 *
 * Keeping both paths on the same sink and the same accumulation code
 * is what makes the bound/weave byte-identity guarantee structural:
 * the parallel path replays the identical access sequence through the
 * identical arithmetic, so the two cannot drift apart as the timing
 * model evolves.
 */

#ifndef CPELIDE_GPU_CHUNK_EXEC_HH
#define CPELIDE_GPU_CHUNK_EXEC_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "coherence/mem_system.hh"
#include "config/gpu_config.hh"
#include "core/elide_engine.hh"
#include "cp/kernel.hh"
#include "cp/local_cp.hh"
#include "mem/data_space.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cpelide
{

/** TraceSink accumulating CU time through the memory system. */
class ExecSink : public TraceSink
{
  public:
    ExecSink(MemSystem &mem, AccessContext ctx, double mlp)
        : _mem(mem), _ctx(ctx), _invMlp(1.0 / mlp)
    {}

    void
    touch(DsId ds, std::uint64_t line, bool write) override
    {
        const Cycles lat = _mem.access(_ctx, ds, line, write);
        _time += static_cast<double>(lat) * _invMlp;
        ++_touches;
    }

    void
    touchBypass(DsId ds, std::uint64_t line, bool write) override
    {
        const Cycles lat = _mem.accessBypass(_ctx, ds, line, write);
        _time += static_cast<double>(lat) * _invMlp;
        ++_touches;
    }

    double time() const { return _time; }
    std::uint64_t touches() const { return _touches; }

    void
    reset(AccessContext ctx)
    {
        _ctx = ctx;
        _time = 0;
        _touches = 0;
    }

  private:
    MemSystem &_mem;
    AccessContext _ctx;
    double _invMlp;
    double _time = 0;
    std::uint64_t _touches = 0;
};

/**
 * Sink decorator enforcing the annotation contract: every touch()
 * must land inside the declared range of a declared argument for the
 * executing chiplet. Bypass accesses are exempt.
 */
class ValidatingSink : public TraceSink
{
  public:
    ValidatingSink(TraceSink &inner, DataSpace &space,
                   const KernelDesc &desc, const LaunchDecl &decl,
                   std::size_t sched_idx, ChipletId chiplet)
        : _inner(inner), _space(space), _desc(desc), _decl(decl),
          _schedIdx(sched_idx), _chiplet(chiplet)
    {}

    void
    touch(DsId ds, std::uint64_t line, bool write) override
    {
        const Addr addr = _space.alloc(ds).lineAddr(line);
        bool declared = false;
        bool inRange = false;
        for (std::size_t i = 0; i < _desc.args.size(); ++i) {
            if (_desc.args[i].ds != ds)
                continue;
            declared = true;
            const KernelArgAccess &acc = _decl.args[i];
            if (write && acc.mode != AccessMode::ReadWrite)
                continue; // writing a ReadOnly annotation: keep looking
            const AddrRange &r = acc.perChiplet[_schedIdx];
            if (r.lo <= addr && addr + kLineBytes <= r.hi) {
                inRange = true;
                break;
            }
        }
        if (!declared || !inRange) {
            checkFailed("annotation violation: kernel '" + _desc.name +
                  "' chiplet " + std::to_string(_chiplet) +
                  (write ? " writes " : " reads ") +
                  _space.alloc(ds).name + " line " +
                  std::to_string(line) +
                  (declared ? " outside its declared range"
                            : " which is not annotated"));
        }
        _inner.touch(ds, line, write);
    }

    void
    touchBypass(DsId ds, std::uint64_t line, bool write) override
    {
        _inner.touchBypass(ds, line, write);
    }

  private:
    TraceSink &_inner;
    DataSpace &_space;
    const KernelDesc &_desc;
    const LaunchDecl &_decl;
    std::size_t _schedIdx;
    ChipletId _chiplet;
};

/**
 * Per-chunk timing accumulator: round-robin WG-to-CU dispatch, CU
 * latency accumulation through an ExecSink, per-WG LDS/I-fetch energy,
 * and the chunk-level roofline (CU critical path vs per-chiplet
 * bandwidth limits). Drives the identical arithmetic whether the
 * touches come live from a trace generator (serial path) or from a
 * skew-buffer replay (weave path); the per-WG accounting folds in at
 * the next beginWg()/finish(), preserving the serial operation order.
 */
class ChunkTimer
{
  public:
    ChunkTimer(const GpuConfig &cfg, MemSystem &mem,
               const KernelDesc &desc, const WgChunk &chunk)
        : _cfg(cfg), _mem(mem), _desc(desc), _chunk(chunk),
          _cuTime(static_cast<std::size_t>(cfg.cusPerChiplet), 0.0),
          _cuCompute(static_cast<std::size_t>(cfg.cusPerChiplet), 0.0),
          _sink(mem, {chunk.chiplet, 0}, desc.mlp)
    {}

    /** The sink the chunk's touches must flow through. */
    ExecSink &sink() { return _sink; }

    /** Start workgroup @p wg (folds in the previous one, if open). */
    void
    beginWg(int wg)
    {
        endWg();
        _cu = dispatchCu(_chunk, wg, _cfg.cusPerChiplet);
        _sink.reset({_chunk.chiplet, _cu});
        _inWg = true;
    }

    /**
     * Chunk execution time (CU critical path vs bandwidth rooflines),
     * closing the open workgroup first. @p compute_out (optional)
     * receives the busiest CU's pure ALU+LDS cycles.
     */
    Cycles
    finish(Cycles *compute_out)
    {
        endWg();
        const double cuCritical =
            *std::max_element(_cuTime.begin(), _cuTime.end());
        if (compute_out) {
            // ALU + LDS cycles of the busiest CU: the part of this
            // chunk's time that is pure compute even with a perfect
            // memory system.
            *compute_out = static_cast<Cycles>(
                *std::max_element(_cuCompute.begin(), _cuCompute.end()));
        }
        const Noc &noc = _mem.noc();
        const ChipletId c = _chunk.chiplet;
        const double dram = static_cast<double>(noc.dramBytes(c)) /
                            _cfg.dramBytesPerCycle;
        const double xlink = static_cast<double>(noc.xlinkBytes(c)) /
                             _cfg.xlinkBytesPerCycle;
        const double l2l3 = static_cast<double>(noc.l2l3Bytes(c)) /
                            _cfg.l2l3BytesPerCycle;
        const double l2 = static_cast<double>(noc.l2Bytes(c)) /
                          _cfg.l2BytesPerCycle;
        return static_cast<Cycles>(
            std::max({cuCritical, dram, xlink, l2l3, l2}));
    }

  private:
    /** Fold the open workgroup's time and energy into its CU. */
    void
    endWg()
    {
        if (!_inWg)
            return;
        _inWg = false;
        const std::size_t cu = static_cast<std::size_t>(_cu);
        _cuTime[cu] +=
            _sink.time() +
            static_cast<double>(_desc.computeCyclesPerWg) +
            static_cast<double>(_desc.ldsAccessesPerWg);
        _cuCompute[cu] +=
            static_cast<double>(_desc.computeCyclesPerWg) +
            static_cast<double>(_desc.ldsAccessesPerWg);
        EnergyModel &energy = _mem.energy();
        energy.countLds(_desc.ldsAccessesPerWg);
        // Instruction fetch: roughly one 64 B I-line per 4 ALU cycles
        // plus one per memory instruction.
        energy.countL1i(_desc.computeCyclesPerWg / 4 + _sink.touches());
    }

    const GpuConfig &_cfg;
    MemSystem &_mem;
    const KernelDesc &_desc;
    const WgChunk _chunk;
    std::vector<double> _cuTime;
    std::vector<double> _cuCompute;
    ExecSink _sink;
    CuId _cu = 0;
    bool _inWg = false;
};

} // namespace cpelide

#endif // CPELIDE_GPU_CHUNK_EXEC_HH
