#include "gpu/gpu_system.hh"

#include <algorithm>
#include <array>
#include <unordered_map>

#include <cstdio>

#include "check/hb_checker.hh"
#include "cp/local_cp.hh"
#include "gpu/chunk_exec.hh"
#include "gpu/weave.hh"
#include "prof/snapshot.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace cpelide
{

GpuSystem::GpuSystem(const GpuConfig &cfg, const RunOptions &opts)
    : _cfg(cfg), _opts(opts)
{
    _space.panicOnStale(opts.panicOnStale);
    _debug = ExecOptions::fromEnv().debug;
    _mem = makeMemSystem(cfg, opts.protocol, _space);
    _mem->setFaultInjector(opts.faultInjector);
    _mem->setTrace(opts.trace);
    _cp = std::make_unique<GlobalCp>(_cfg, opts.protocol, *_mem,
                                     opts.extraSyncSets);
    _cp->setTrace(opts.trace);
    if (opts.check || ExecOptions::fromEnv().check) {
        _check = std::make_unique<HbChecker>(cfg.numChiplets, _space);
        _mem->setChecker(_check.get());
        _cp->setChecker(_check.get());
    }
    // Bound/weave parallelism (gpu/weave.hh): explicit simThreads
    // wins, otherwise CPELIDE_SIM_THREADS; 1 (the default) keeps the
    // serial path with no executor at all. A single-chiplet package
    // has nothing to overlap.
    int simThreads = opts.simThreads > 0
                         ? opts.simThreads
                         : ExecOptions::fromEnv().simThreads;
    if (simThreads > 1 && cfg.numChiplets > 1) {
        _weave = std::make_unique<WeaveExecutor>(_cfg, *_mem, _space,
                                                 simThreads);
    }
    if (opts.prof)
        registerProf(*opts.prof);
}

void
GpuSystem::registerProf(prof::ProfRegistry &reg)
{
    reg.addCounter("gpu/kernels", &_kernels);
    reg.addCounter("gpu/conservative-launches", &_conservativeLaunches);
    reg.addGauge("gpu/sync-stall-cycles",
                 [this] { return static_cast<std::uint64_t>(_syncStall); });
    reg.addGauge("gpu/sim-events",
                 [this] { return _events.eventsProcessed(); });
    _mem->registerProf(reg);
    _cp->registerProf(reg);
    if (_weave)
        _weave->registerProf(reg);
    // Interval-sampled series: the registry reads these closures at
    // every sample(tick) call (each kernel boundary), giving Perfetto
    // live occupancy/load curves next to the phase spans.
    reg.addSeries("series/l2-dirty-lines",
                  [this] { return _mem->dirtyL2Lines(); });
    reg.addSeries("series/noc-flits",
                  [this] { return _mem->noc().flits().total(); });
    reg.addSeries("series/accesses", [this] { return _mem->accesses(); });
    if (const ElideEngine *eng = _cp->engine()) {
        reg.addSeries("series/elision-rate-x1000", [eng] {
            const std::uint64_t issued =
                eng->acquiresIssued() + eng->releasesIssued();
            const std::uint64_t elided =
                eng->acquiresElided() + eng->releasesElided();
            return issued + elided
                       ? elided * 1000 / (issued + elided)
                       : 0;
        });
    }
}

GpuSystem::~GpuSystem() = default;

void
GpuSystem::enqueue(KernelDesc desc)
{
    if (desc.numWgs < 1)
        fatal("kernel '" + desc.name + "' has no workgroups");
    if (!desc.trace)
        fatal("kernel '" + desc.name + "' has no trace function");
    _pending.push_back(std::move(desc));
}

Cycles
GpuSystem::runChunk(const KernelDesc &desc, const WgChunk &chunk,
                    const LaunchDecl *decl, std::size_t sched_idx,
                    Cycles *compute_out)
{
    if (compute_out)
        *compute_out = 0;
    if (chunk.count() <= 0)
        return 0;
    if (_debug) {
        _space.setContext("chunk@chiplet" +
                          std::to_string(chunk.chiplet));
    }
    ChunkTimer timer(_cfg, *_mem, desc, chunk);
    for (int wg = chunk.wgBegin; wg < chunk.wgEnd; ++wg) {
        timer.beginWg(wg);
        if (decl) {
            ValidatingSink vsink(timer.sink(), _space, desc, *decl,
                                 sched_idx, chunk.chiplet);
            desc.trace(wg, vsink);
        } else {
            desc.trace(wg, timer.sink());
        }
    }
    return timer.finish(compute_out);
}

RunResult
GpuSystem::run(const std::string &label)
{
    // Parallel-mode hardening: simulated time may only advance from
    // this (weave) thread; a bound worker reaching the queue panics.
    if (_weave)
        _events.pinOwner();

    std::vector<ChipletId> allChiplets;
    for (ChipletId c = 0; c < _cfg.numChiplets; ++c)
        allChiplets.push_back(c);

    std::unordered_map<int, Tick> streamReady;
    std::vector<Tick> chipletBusy(
        static_cast<std::size_t>(_cfg.numChiplets), 0);
    Tick end = 0;

    // Stall attribution: every cycle of every chiplet's 0..end timeline
    // lands in exactly one bin. attrCursor[c] is the next unattributed
    // tick of chiplet c; every charge advances it, so the per-chiplet
    // bins sum to `end` by construction (asserted below anyway).
    const std::size_t nc = static_cast<std::size_t>(_cfg.numChiplets);
    std::vector<std::array<std::uint64_t, prof::kNumStallBins>> bins(
        nc, std::array<std::uint64_t, prof::kNumStallBins>{});
    std::vector<Tick> attrCursor(nc, 0);
    const auto bin = [&bins](std::size_t c, prof::StallBin b,
                             std::uint64_t cycles) {
        bins[c][static_cast<std::size_t>(b)] += cycles;
    };

    TraceSession *tr = _opts.trace;
    std::vector<KernelPhaseStats> phases;
    phases.reserve(_pending.size() + 1);

    // Counter snapshot bracketing one phase; the differences become
    // that phase's KernelPhaseStats deltas.
    struct CounterSnap
    {
        std::uint64_t flushes = 0, invals = 0, written = 0, accesses = 0;
        std::uint64_t relElided = 0, acqElided = 0;
        LevelStats l2;
    };
    const auto snap = [this]() {
        CounterSnap s;
        s.flushes = _mem->l2FlushesIssued();
        s.invals = _mem->l2InvalidatesIssued();
        s.written = _mem->linesWrittenBack();
        s.accesses = _mem->accesses();
        s.l2 = _mem->l2Stats();
        if (const ElideEngine *eng = _cp->engine()) {
            s.relElided = eng->releasesElided();
            s.acqElided = eng->acquiresElided();
        }
        return s;
    };

    for (const KernelDesc &desc : _pending) {
        ++_kernels;
        const auto bindIt = _opts.streamChiplets.find(desc.streamId);
        const std::vector<ChipletId> &sched =
            bindIt != _opts.streamChiplets.end() ? bindIt->second
                                                 : allChiplets;
        const std::vector<WgChunk> chunks =
            partitionWgs(desc.numWgs, sched);

        // Packet processing pipelines behind execution.
        const Tick cpDone = _cp->processPacket(0);

        Tick startBase = std::max(cpDone, streamReady[desc.streamId]);
        for (const WgChunk &ch : chunks) {
            startBase = std::max(
                startBase, chipletBusy[static_cast<std::size_t>(
                               ch.chiplet)]);
        }
        if (_opts.protocol == ProtocolKind::Baseline) {
            // The baseline's implicit synchronization is GPU-wide: it
            // stalls every chiplet, not just the scheduled ones.
            for (Tick t : chipletBusy)
                startBase = std::max(startBase, t);
        }

        _space.setContext(desc.name);
        if (_opts.faultInjector && _cp->mutableEngine() &&
            _opts.faultInjector->onKernelLaunch()) {
            corruptCoherenceTable();
        }
        const CounterSnap before = snap();
        if (tr)
            tr->setNow(startBase);
        if (_check)
            _check->beginKernel(_kernels, desc.name, sched);
        const SyncOutcome sync =
            _cp->launchSync(desc, chunks, _space);
        if (_check)
            _check->onKernelExecuting();
        if (_debug) {
            std::fprintf(stderr, "[launch] %-18s stream=%d wgs=%d "
                         "chiplets=%zu acq=%zu rel=%zu%s\n",
                         desc.name.c_str(), desc.streamId, desc.numWgs,
                         sched.size(), sync.acquires, sync.releases,
                         sync.conservative ? " CONSERVATIVE" : "");
            for (const auto &arg : desc.args) {
                std::fprintf(stderr, "         ds=%d mode=%s kind=%d\n",
                             arg.ds,
                             arg.mode == AccessMode::ReadWrite ? "RW"
                                                               : "R",
                             static_cast<int>(arg.rangeKind));
            }
        }
        _syncStall += sync.cost;
        if (sync.conservative)
            ++_conservativeLaunches;
        const Tick syncDone = startBase + sync.cost;
        if (tr) {
            tr->span("sync:" + desc.name, "sync", kCpTrack, startBase,
                     syncDone)
                .arg("acquires", sync.acquires)
                .arg("releases", sync.releases)
                .arg("conservative", sync.conservative ? 1 : 0);
            // Instants emitted while chunks execute (e.g. HMG directory
            // evictions) stamp at the kernel-phase start.
            tr->setNow(syncDone);
        }

        // Attribute the wait + sync window for every chiplet this
        // launch stalls: the scheduled set, or the whole package under
        // the baseline's GPU-wide implicit synchronization. The sync
        // span splits into its invalidate / flush critical-path parts;
        // the remainder (crossbar messaging) is barrier wait, as is the
        // idle gap from the chiplet's last attributed tick. Multi-
        // stream timelines can leave a chiplet's cursor past this
        // kernel's window, so every charge clamps at the cursor.
        {
            std::vector<bool> stalled(nc,
                                      _opts.protocol ==
                                          ProtocolKind::Baseline);
            for (const WgChunk &ch : chunks)
                stalled[static_cast<std::size_t>(ch.chiplet)] = true;
            for (std::size_t c = 0; c < nc; ++c) {
                if (!stalled[c])
                    continue;
                Tick cur = attrCursor[c];
                if (startBase > cur) {
                    bin(c, prof::StallBin::BarrierWait, startBase - cur);
                    cur = startBase;
                }
                if (syncDone > cur) {
                    const Tick len = syncDone - cur;
                    const Tick inv =
                        std::min<Tick>(len, sync.invalidateCost);
                    const Tick fl =
                        std::min<Tick>(len - inv, sync.flushCost);
                    bin(c, prof::StallBin::Invalidate, inv);
                    bin(c, prof::StallBin::Flush, fl);
                    bin(c, prof::StallBin::BarrierWait, len - inv - fl);
                    cur = syncDone;
                }
                attrCursor[c] = cur;
            }
        }

        _mem->noc().beginKernel();
        LaunchDecl validationDecl;
        if (_opts.validateAnnotations)
            validationDecl = _cp->buildDecl(desc, chunks, _space);
        const LaunchDecl *decl =
            _opts.validateAnnotations ? &validationDecl : nullptr;

        // Per-chunk measurements, from the serial loop or the
        // bound/weave executor — the weave replays the identical
        // access sequence in the identical chunk order, so the
        // outcomes (and every shared counter they read) are
        // byte-identical. The attribution/trace pass below is common
        // to both. A kernel with at most one non-empty chunk has
        // nothing to overlap and stays serial.
        std::vector<ChunkOutcome> outcomes(chunks.size());
        std::size_t nonEmpty = 0;
        for (const WgChunk &ch : chunks)
            nonEmpty += ch.count() > 0 ? 1 : 0;
        if (_weave && nonEmpty > 1) {
            outcomes = _weave->runChunks(desc, chunks, decl, _debug);
        } else {
            for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
                const std::uint64_t dirBefore =
                    _mem->directoryStallCycles();
                outcomes[ci].time = runChunk(desc, chunks[ci], decl, ci,
                                             &outcomes[ci].compute);
                outcomes[ci].dirStall =
                    _mem->directoryStallCycles() - dirBefore;
            }
        }

        Tick kernelEnd = syncDone;
        for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
            const WgChunk &ch = chunks[ci];
            const Tick busy = syncDone + outcomes[ci].time;
            const std::size_t cs = static_cast<std::size_t>(ch.chiplet);
            chipletBusy[cs] = busy;
            kernelEnd = std::max(kernelEnd, busy);
            // The chunk's execution window: pure-compute critical path
            // first, then directory ack stalls this chunk put on access
            // paths (HMG), and whatever remains is memory/bandwidth.
            if (busy > attrCursor[cs]) {
                const Tick len = busy - attrCursor[cs];
                const Tick comp =
                    std::min<Tick>(len, outcomes[ci].compute);
                const Tick dir =
                    std::min<Tick>(len - comp, outcomes[ci].dirStall);
                bin(cs, prof::StallBin::Compute, comp);
                bin(cs, prof::StallBin::Directory, dir);
                bin(cs, prof::StallBin::Memory, len - comp - dir);
                attrCursor[cs] = busy;
            }
            if (tr) {
                tr->span(desc.name, "kernel", ch.chiplet, syncDone, busy)
                    .arg("wgs", static_cast<std::uint64_t>(ch.count()));
            }
        }
        streamReady[desc.streamId] = kernelEnd;
        end = std::max(end, kernelEnd);
        _events.advanceTo(kernelEnd);

        if (_opts.prof)
            _opts.prof->sample(kernelEnd);
        if (tr) {
            // Sampled counter ("C") events at the kernel boundary:
            // Perfetto renders these as live curves over the spans.
            for (ChipletId c = 0; c < _cfg.numChiplets; ++c) {
                tr->counter("l2-dirty-lines", "prof", c, kernelEnd)
                    .arg("dirty", _mem->l2(c).dirtyLines());
            }
            const FlitCounts &fl = _mem->noc().flits();
            tr->counter("noc-flits", "prof", kCpTrack, kernelEnd)
                .arg("l1l2", fl.l1l2)
                .arg("l2l3", fl.l2l3)
                .arg("remote", fl.remote);
            if (const ElideEngine *eng = _cp->engine()) {
                const std::uint64_t issued =
                    eng->acquiresIssued() + eng->releasesIssued();
                const std::uint64_t elided =
                    eng->acquiresElided() + eng->releasesElided();
                tr->counter("elision-rate-x1000", "prof", kCpTrack,
                            kernelEnd)
                    .arg("rate",
                         issued + elided
                             ? elided * 1000 / (issued + elided)
                             : 0);
            }
        }

        const CounterSnap after = snap();
        KernelPhaseStats ph;
        ph.name = desc.name;
        ph.stream = desc.streamId;
        ph.start = startBase;
        ph.end = kernelEnd;
        ph.syncStallCycles = sync.cost;
        ph.acquires = sync.acquires;
        ph.releases = sync.releases;
        ph.conservative = sync.conservative;
        ph.l2FlushesIssued = after.flushes - before.flushes;
        ph.l2InvalidatesIssued = after.invals - before.invals;
        ph.l2FlushesElided = after.relElided - before.relElided;
        ph.l2InvalidatesElided = after.acqElided - before.acqElided;
        ph.linesWrittenBack = after.written - before.written;
        ph.accesses = after.accesses - before.accesses;
        ph.l2.hits = after.l2.hits - before.l2.hits;
        ph.l2.misses = after.l2.misses - before.l2.misses;
        phases.push_back(std::move(ph));
    }

    // Final host-visibility barrier (all protocols flush dirty data).
    const CounterSnap beforeFb = snap();
    const Tick barrierStart = end;
    if (tr)
        tr->setNow(end);
    Cycles finalFlush = 0;
    const Cycles finalCost = _cp->finalBarrier(&finalFlush);
    _syncStall += finalCost;
    end += finalCost;
    _events.advanceTo(end);
    if (tr)
        tr->span("final-barrier", "sync", kCpTrack, barrierStart, end);

    // Close out every chiplet's timeline: idle until the barrier is
    // barrier wait, then the barrier itself splits into its flush drain
    // and the crossbar messaging tail (barrier wait).
    for (std::size_t c = 0; c < nc; ++c) {
        Tick cur = attrCursor[c];
        if (barrierStart > cur) {
            bin(c, prof::StallBin::BarrierWait, barrierStart - cur);
            cur = barrierStart;
        }
        if (end > cur) {
            const Tick len = end - cur;
            const Tick fl = std::min<Tick>(len, finalFlush);
            bin(c, prof::StallBin::Flush, fl);
            bin(c, prof::StallBin::BarrierWait, len - fl);
        }
        attrCursor[c] = end;
    }
    for (std::size_t c = 0; c < nc; ++c) {
        std::uint64_t sum = 0;
        for (const std::uint64_t v : bins[c])
            sum += v;
        panicIf(sum != end,
                "stall attribution lost cycles on chiplet " +
                    std::to_string(c) + ": bins sum to " +
                    std::to_string(sum) + " of " + std::to_string(end));
    }
    {
        const CounterSnap after = snap();
        KernelPhaseStats fb;
        fb.name = "<final-barrier>";
        fb.finalBarrier = true;
        fb.start = barrierStart;
        fb.end = end;
        fb.syncStallCycles = finalCost;
        fb.l2FlushesIssued = after.flushes - beforeFb.flushes;
        fb.l2InvalidatesIssued = after.invals - beforeFb.invals;
        fb.l2FlushesElided = after.relElided - beforeFb.relElided;
        fb.l2InvalidatesElided = after.acqElided - beforeFb.acqElided;
        fb.linesWrittenBack = after.written - beforeFb.written;
        fb.accesses = after.accesses - beforeFb.accesses;
        fb.l2.hits = after.l2.hits - beforeFb.l2.hits;
        fb.l2.misses = after.l2.misses - beforeFb.l2.misses;
        phases.push_back(std::move(fb));
    }

    RunResult r;
    r.workload = label;
    r.protocol = protocolName(_opts.protocol);
    r.numChiplets = _cfg.numChiplets;
    r.cycles = end;
    r.kernels = _kernels;
    r.accesses = _mem->accesses();
    r.l1 = _mem->l1Stats();
    r.l2 = _mem->l2Stats();
    r.l3 = _mem->l3Stats();
    r.dramAccesses = _mem->dramAccesses();
    r.flits = _mem->noc().flits();
    // NoC energy is flit-proportional; charge it once at the end.
    _mem->energy().countFlits(r.flits.total());
    r.energy = _mem->energy().breakdown();
    r.l2FlushesIssued = _mem->l2FlushesIssued();
    r.l2InvalidatesIssued = _mem->l2InvalidatesIssued();
    r.linesWrittenBack = _mem->linesWrittenBack();
    r.syncStallCycles = _syncStall;
    r.directoryEvictions = _mem->directoryEvictions();
    r.sharerInvalidations = _mem->sharerInvalidations();
    for (std::size_t c = 0; c < nc; ++c) {
        const auto binOf = [&bins, c](prof::StallBin b) {
            return bins[c][static_cast<std::size_t>(b)];
        };
        r.stallComputeCycles += binOf(prof::StallBin::Compute);
        r.stallMemoryCycles += binOf(prof::StallBin::Memory);
        r.stallBarrierCycles += binOf(prof::StallBin::BarrierWait);
        r.stallFlushCycles += binOf(prof::StallBin::Flush);
        r.stallInvalidateCycles += binOf(prof::StallBin::Invalidate);
        r.stallDirectoryCycles += binOf(prof::StallBin::Directory);
    }
    if (const ElideEngine *eng = _cp->engine()) {
        r.l2FlushesElided = eng->releasesElided();
        r.l2InvalidatesElided = eng->acquiresElided();
        r.tableMaxEntries = eng->table().maxEntries();
    }
    r.staleReads = _space.staleReads();
    r.hostVisibilityViolations = _mem->auditHostVisibility();
    if (_check) {
        r.hbViolations = _check->finalize();
        if (r.hbViolations > 0 && _opts.failOnHbViolation)
            checkFailed(_check->summary());
    }
    r.simEvents = _events.eventsProcessed();
    r.kernelPhases = std::move(phases);
    if (_opts.prof) {
        for (std::size_t b = 0; b < prof::kNumStallBins; ++b) {
            std::uint64_t total = 0;
            for (std::size_t c = 0; c < nc; ++c)
                total += bins[c][b];
            _opts.prof->publish(
                std::string("stall/") +
                    prof::stallBinName(static_cast<prof::StallBin>(b)),
                total);
        }
        _opts.prof->publish("stall/total-chiplet-cycles",
                            static_cast<std::uint64_t>(nc) * end);
        _opts.prof->sample(end);
    }
    return r;
}

void
GpuSystem::corruptCoherenceTable()
{
    // Downgrade one random row's chiplet state from Dirty/Stale to
    // Valid: the engine then believes that chiplet needs no release /
    // acquire and elides a sync op the protocol actually required.
    CoherenceTable &table = _cp->mutableEngine()->mutableTable();
    auto &rows = table.rows();
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].state.size(); ++c) {
            if (rows[r].state[c] == DsState::Dirty ||
                rows[r].state[c] == DsState::Stale) {
                candidates.emplace_back(r, c);
            }
        }
    }
    if (candidates.empty())
        return; // nothing downgradeable right now; fault is a no-op
    Rng &rng = _opts.faultInjector->rng();
    const auto [r, c] = candidates[static_cast<std::size_t>(rng.below(
        static_cast<std::uint64_t>(candidates.size())))];
    rows[r].state[c] = DsState::Valid;
    _opts.faultInjector->recordTableCorruption();
}

} // namespace cpelide
