/**
 * @file
 * Mechanical set-associative cache model.
 *
 * The cache knows nothing about coherence; protocols in src/coherence
 * drive it. Each line carries a version tag used by the staleness checker
 * (see mem/data_space.hh): a protocol bug that lets a consumer observe an
 * out-of-date line is detected functionally rather than silently skewing
 * timing results.
 *
 * Bulk operations are first-class because the paper is about them:
 *  - invalidateAll() is O(1) via an epoch counter (flash invalidate);
 *  - flushAll() walks only the lines dirtied since the last flush
 *    (a dirty list), which is exactly the work a real flush performs.
 */

#ifndef CPELIDE_MEM_CACHE_HH
#define CPELIDE_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "prof/counter.hh"
#include "prof/registry.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cpelide
{

/** Geometry of one cache array. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;

    std::uint64_t numLines() const { return sizeBytes / kLineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }
};

/** A line written back or displaced from the cache. */
struct Evicted
{
    Addr addr = 0;
    std::uint32_t version = 0;
    DsId ds = -1;
    std::uint32_t dsLine = 0;
    bool dirty = false;
    bool valid = false;
};

/**
 * Set-associative, LRU, write-back-capable cache array.
 *
 * Thread-compatibility: none required; the simulator is single threaded.
 */
class SetAssocCache
{
  public:
    /** Callback receiving each dirty line written back by flushAll(). */
    using WritebackFn = std::function<void(const Evicted &)>;

    /**
     * @param name  Debug name ("chiplet2.l2").
     * @param geom  Size/associativity; size must be a multiple of
     *              assoc * 64 B and the set count a power of two.
     */
    SetAssocCache(std::string name, CacheGeometry geom);

    const std::string &name() const { return _name; }
    const CacheGeometry &geometry() const { return _geom; }

    /**
     * Look up @p addr; on a hit, update LRU and return the line's
     * version. @retval true on hit.
     */
    bool probe(Addr addr, std::uint32_t *versionOut = nullptr);

    /** Look up without disturbing LRU or counters (for tests/stats). */
    bool peek(Addr addr, std::uint32_t *versionOut = nullptr,
              bool *dirtyOut = nullptr) const;

    /**
     * If @p addr is present, overwrite its version (and optionally mark
     * dirty) without changing LRU order. Used for write-through updates
     * of lines that happen to be cached.
     * @retval true if the line was present.
     */
    bool updateIfPresent(Addr addr, std::uint32_t version, bool markDirty);

    /**
     * Insert (allocate) a line, evicting the LRU way if the set is full.
     * @param victim receives the displaced line (valid=false if none).
     */
    void insert(Addr addr, std::uint32_t version, DsId ds,
                std::uint32_t dsLine, bool dirty, Evicted *victim);

    /** Mark an existing line dirty with a new version. @retval hit */
    bool writeHit(Addr addr, std::uint32_t version);

    /**
     * Drop a single line if present, discarding any dirty data (the
     * caller is responsible for writing back first when that matters;
     * see extractLine for a variant that reports the contents).
     */
    void invalidateLine(Addr addr);

    /**
     * Remove a single line, returning its full contents so the caller
     * can write back a dirty copy (HMG back-invalidations).
     * @retval true if the line was present (@p out filled).
     */
    bool extractLine(Addr addr, Evicted *out);

    /**
     * Write back every dirty line through @p wb and mark them clean.
     * Clean valid copies are retained (the paper's baseline protocol
     * retains a clean copy after a writeback).
     * @return number of lines written back.
     */
    std::uint64_t flushAll(const WritebackFn &wb);

    /**
     * Flash-invalidate the whole array.
     * @pre no dirty lines remain (call flushAll() first); enforced by
     *      panic, since silently dropping dirty data is a protocol bug.
     */
    void invalidateAll();

    /** Current number of dirty lines. */
    std::uint64_t dirtyLines() const { return _dirtyCount; }

    /** Current number of valid lines (walks the array; test use). */
    std::uint64_t countValid() const;

    /** Lifetime counters. @{ */
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    /** @} */

    /**
     * Register this array's counters under @p prefix ("chiplet0/l2")
     * in a run's profiling registry.
     */
    void registerProf(prof::ProfRegistry &reg,
                      const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t epoch = 0;     //!< valid iff epoch == cache epoch
        std::uint64_t lastUse = 0;
        std::uint32_t version = 0;
        DsId ds = -1;
        std::uint32_t dsLine = 0;
        bool dirty = false;
    };

    bool lineValid(const Line &l) const { return l.epoch == _epoch; }

    std::uint64_t setIndex(Addr addr) const
    {
        return (addr / kLineBytes) & (_geom.numSets() - 1);
    }

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    std::string _name;
    CacheGeometry _geom;
    std::vector<Line> _lines;            //!< sets*assoc, set-major
    std::vector<std::uint32_t> _dirtyList; //!< line indices dirtied
    std::uint64_t _epoch = 1;
    std::uint64_t _useClock = 0;
    std::uint64_t _dirtyCount = 0;
    prof::Counter _hits;
    prof::Counter _misses;
};

} // namespace cpelide

#endif // CPELIDE_MEM_CACHE_HH
