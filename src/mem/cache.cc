#include "mem/cache.hh"

#include <algorithm>

namespace cpelide
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(std::string name, CacheGeometry geom)
    : _name(std::move(name)), _geom(geom)
{
    if (geom.sizeBytes == 0 || geom.assoc == 0 ||
        geom.sizeBytes % (geom.assoc * kLineBytes) != 0) {
        fatal(_name + ": cache size must be a multiple of assoc * 64B");
    }
    if (!isPowerOfTwo(geom.numSets()))
        fatal(_name + ": set count must be a power of two");
    _lines.resize(geom.numLines());
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    const Addr tag = lineAlign(addr);
    Line *set = &_lines[setIndex(addr) * _geom.assoc];
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        if (lineValid(set[w]) && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

bool
SetAssocCache::probe(Addr addr, std::uint32_t *versionOut)
{
    Line *l = findLine(addr);
    if (!l) {
        ++_misses;
        return false;
    }
    ++_hits;
    l->lastUse = ++_useClock;
    if (versionOut)
        *versionOut = l->version;
    return true;
}

bool
SetAssocCache::peek(Addr addr, std::uint32_t *versionOut,
                    bool *dirtyOut) const
{
    const Line *l = findLine(addr);
    if (!l)
        return false;
    if (versionOut)
        *versionOut = l->version;
    if (dirtyOut)
        *dirtyOut = l->dirty;
    return true;
}

bool
SetAssocCache::updateIfPresent(Addr addr, std::uint32_t version,
                               bool markDirty)
{
    Line *l = findLine(addr);
    if (!l)
        return false;
    l->version = version;
    if (markDirty && !l->dirty) {
        l->dirty = true;
        ++_dirtyCount;
        _dirtyList.push_back(static_cast<std::uint32_t>(l - _lines.data()));
    } else if (!markDirty) {
        // Write-through update leaves the dirty bit as-is: a dirty line
        // stays dirty (it still owes a writeback of the newer data).
    }
    return true;
}

void
SetAssocCache::insert(Addr addr, std::uint32_t version, DsId ds,
                      std::uint32_t dsLine, bool dirty, Evicted *victim)
{
    if (victim)
        victim->valid = false;
    if (Line *l = findLine(addr)) {
        // Re-insert over an existing copy: refresh contents in place.
        l->version = version;
        l->lastUse = ++_useClock;
        if (dirty && !l->dirty) {
            l->dirty = true;
            ++_dirtyCount;
            _dirtyList.push_back(
                static_cast<std::uint32_t>(l - _lines.data()));
        }
        return;
    }

    Line *set = &_lines[setIndex(addr) * _geom.assoc];
    Line *slot = nullptr;
    for (std::uint32_t w = 0; w < _geom.assoc; ++w) {
        if (!lineValid(set[w])) {
            slot = &set[w];
            break;
        }
        if (!slot || set[w].lastUse < slot->lastUse)
            slot = &set[w];
    }

    if (lineValid(*slot)) {
        if (victim) {
            victim->valid = true;
            victim->addr = slot->tag;
            victim->version = slot->version;
            victim->ds = slot->ds;
            victim->dsLine = slot->dsLine;
            victim->dirty = slot->dirty;
        }
        if (slot->dirty)
            --_dirtyCount;
    }

    slot->tag = lineAlign(addr);
    slot->epoch = _epoch;
    slot->lastUse = ++_useClock;
    slot->version = version;
    slot->ds = ds;
    slot->dsLine = dsLine;
    slot->dirty = dirty;
    if (dirty) {
        ++_dirtyCount;
        _dirtyList.push_back(static_cast<std::uint32_t>(slot - _lines.data()));
    }
}

bool
SetAssocCache::writeHit(Addr addr, std::uint32_t version)
{
    Line *l = findLine(addr);
    if (!l)
        return false;
    l->version = version;
    l->lastUse = ++_useClock;
    if (!l->dirty) {
        l->dirty = true;
        ++_dirtyCount;
        _dirtyList.push_back(static_cast<std::uint32_t>(l - _lines.data()));
    }
    return true;
}

void
SetAssocCache::invalidateLine(Addr addr)
{
    Line *l = findLine(addr);
    if (!l)
        return;
    if (l->dirty)
        --_dirtyCount;
    l->dirty = false;
    l->epoch = 0; // any value != _epoch invalidates
}

bool
SetAssocCache::extractLine(Addr addr, Evicted *out)
{
    Line *l = findLine(addr);
    if (!l)
        return false;
    if (out) {
        out->valid = true;
        out->addr = l->tag;
        out->version = l->version;
        out->ds = l->ds;
        out->dsLine = l->dsLine;
        out->dirty = l->dirty;
    }
    if (l->dirty)
        --_dirtyCount;
    l->dirty = false;
    l->epoch = 0;
    return true;
}

std::uint64_t
SetAssocCache::flushAll(const WritebackFn &wb)
{
    std::uint64_t flushed = 0;
    for (std::uint32_t idx : _dirtyList) {
        Line &l = _lines[idx];
        if (!lineValid(l) || !l.dirty)
            continue; // stale dirty-list entry (evicted or re-cleaned)
        Evicted e;
        e.valid = true;
        e.addr = l.tag;
        e.version = l.version;
        e.ds = l.ds;
        e.dsLine = l.dsLine;
        e.dirty = true;
        wb(e);
        l.dirty = false;
        ++flushed;
    }
    _dirtyList.clear();
    _dirtyCount = 0;
    return flushed;
}

void
SetAssocCache::invalidateAll()
{
    panicIf(_dirtyCount != 0,
            _name + ": invalidateAll with dirty lines (missing flush)");
    ++_epoch;
    _dirtyList.clear();
}

void
SetAssocCache::registerProf(prof::ProfRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(prefix + "/hits", &_hits);
    reg.addCounter(prefix + "/misses", &_misses);
    reg.addGauge(prefix + "/dirty-lines",
                 [this] { return dirtyLines(); });
}

std::uint64_t
SetAssocCache::countValid() const
{
    return static_cast<std::uint64_t>(
        std::count_if(_lines.begin(), _lines.end(),
                      [this](const Line &l) { return lineValid(l); }));
}

} // namespace cpelide
