/**
 * @file
 * First-touch page placement (Section IV-C1).
 *
 * The home chiplet of a physical page — and therefore of its L2/L3 bank
 * and HBM stack — is the chiplet whose CU first touches it. All three
 * evaluated configurations use this policy so results isolate the
 * synchronization mechanisms.
 */

#ifndef CPELIDE_MEM_PAGE_TABLE_HH
#define CPELIDE_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "prof/counter.hh"
#include "sim/types.hh"

namespace cpelide
{

/** Maps pages to home chiplets with first-touch assignment. */
class PageTable
{
  public:
    explicit PageTable(int num_chiplets) : _numChiplets(num_chiplets) {}

    /**
     * Home chiplet of @p addr; assigns @p toucher on first access.
     * A monolithic GPU passes toucher 0 everywhere and ignores homes.
     */
    ChipletId
    homeOf(Addr addr, ChipletId toucher)
    {
        auto [it, inserted] = _pages.try_emplace(pageIndex(addr), toucher);
        if (inserted)
            ++_firstTouches;
        return it->second;
    }

    /** Home of an already-placed page, or kNoChiplet. */
    ChipletId
    peekHome(Addr addr) const
    {
        auto it = _pages.find(pageIndex(addr));
        return it == _pages.end() ? kNoChiplet : it->second;
    }

    /** Pin a page to a chiplet regardless of first touch (tests). */
    void place(Addr addr, ChipletId home) { _pages[pageIndex(addr)] = home; }

    std::uint64_t pagesPlaced() const { return _firstTouches; }
    int numChiplets() const { return _numChiplets; }

  private:
    int _numChiplets;
    std::unordered_map<std::uint64_t, ChipletId> _pages;
    prof::Counter _firstTouches;
};

} // namespace cpelide

#endif // CPELIDE_MEM_PAGE_TABLE_HH
