/**
 * @file
 * Device allocations, the golden version store, and the staleness checker.
 *
 * Every tracked data structure (kernel argument array) is a contiguous,
 * page-aligned allocation. For every cache line of every allocation we
 * keep two version numbers:
 *
 *   latest  - bumped on every store, in program order. For the
 *             data-race-free programs the paper targets (SC-for-HRF),
 *             a correctly synchronized read must observe exactly this.
 *   memory  - the version currently held by DRAM (advanced by
 *             write-throughs and writebacks).
 *
 * Cache lines carry the version they hold, so a read returning a version
 * older than `latest` is a detected stale read: either a real data race
 * in the workload or — far more interesting here — a synchronization
 * operation that CPElide elided but should not have.
 */

#ifndef CPELIDE_MEM_DATA_SPACE_HH
#define CPELIDE_MEM_DATA_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prof/counter.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cpelide
{

/** One device allocation (a kernel-visible array). */
struct Allocation
{
    DsId id = -1;
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;

    std::uint64_t numLines() const { return bytes / kLineBytes; }
    Addr lineAddr(std::uint64_t line) const { return base + line * kLineBytes; }
    bool contains(Addr a) const { return a >= base && a < base + bytes; }
};

/** Allocator + version store for the whole device address space. */
class DataSpace
{
  public:
    DataSpace() = default;

    /**
     * Allocate @p bytes (rounded up to a page) named @p name.
     * Allocations are page aligned, matching the paper's methodology
     * ("page-aligned memory allocations to reduce unintentional false
     * sharing").
     */
    DsId
    allocate(const std::string &name, std::uint64_t bytes)
    {
        Allocation a;
        a.id = static_cast<DsId>(_allocs.size());
        a.name = name;
        a.base = _nextBase;
        a.bytes = (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
        if (a.bytes == 0)
            a.bytes = kPageBytes;
        _nextBase += a.bytes + kPageBytes; // guard page between arrays
        _latest.emplace_back(a.numLines(), 0u);
        _memory.emplace_back(a.numLines(), 0u);
        _racy.push_back(false);
        _allocs.push_back(a);
        return a.id;
    }

    const Allocation &alloc(DsId id) const { return _allocs.at(id); }
    std::size_t numAllocations() const { return _allocs.size(); }

    /** Record a store: advance the program-order version. */
    std::uint32_t
    recordStore(DsId ds, std::uint64_t line)
    {
        return ++_latest[ds][line];
    }

    /** Program-order latest version of a line. */
    std::uint32_t latest(DsId ds, std::uint64_t line) const
    {
        return _latest[ds][line];
    }

    /** Version currently in DRAM. */
    std::uint32_t memoryVersion(DsId ds, std::uint64_t line) const
    {
        return _memory[ds][line];
    }

    /** A write-through or writeback reached DRAM. */
    void
    commitToMemory(DsId ds, std::uint64_t line, std::uint32_t version)
    {
        // Writebacks can arrive out of order between levels; never
        // regress DRAM to an older version.
        if (version > _memory[ds][line])
            _memory[ds][line] = version;
    }

    /**
     * Staleness check: a synchronized read observed @p version.
     * Counts (and optionally panics on) stale observations.
     */
    /**
     * Mark an allocation as intentionally racy: some GPGPU kernels
     * (BFS/SSSP frontier flags, atomic max updates) perform benign,
     * idempotent same-line writes from multiple chiplets. The checker
     * skips those arrays — the synchronization engine still treats
     * them fully conservatively (RW + Full range).
     */
    void setRacy(DsId ds) { _racy[static_cast<std::size_t>(ds)] = true; }

    /** Whether @p ds was marked racy (checker-exempt). */
    bool racy(DsId ds) const { return _racy[static_cast<std::size_t>(ds)]; }

    void
    checkObserved(DsId ds, std::uint64_t line, std::uint32_t version)
    {
        if (_racy[static_cast<std::size_t>(ds)])
            return;
        if (version < _latest[ds][line]) {
            ++_staleReads;
            if (_panicOnStale) {
                checkFailed("stale read: " + _allocs[ds].name + " line " +
                      std::to_string(line) + " observed v" +
                      std::to_string(version) + " latest v" +
                      std::to_string(_latest[ds][line]) +
                      (_context.empty() ? "" : " during " + _context));
            }
        }
    }

    /** Total stale reads observed (must be 0 for DRF workloads). */
    std::uint64_t staleReads() const { return _staleReads; }

    /** Make stale reads abort immediately (tests). */
    void panicOnStale(bool on) { _panicOnStale = on; }

    /** Debug label (current kernel) included in panic messages. */
    void setContext(std::string ctx) { _context = std::move(ctx); }

  private:
    std::vector<Allocation> _allocs;
    std::vector<std::vector<std::uint32_t>> _latest;
    std::vector<std::vector<std::uint32_t>> _memory;
    std::vector<bool> _racy;
    Addr _nextBase = 0x10000000; // arbitrary device-VA heap base
    std::string _context;
    prof::Counter _staleReads;
    bool _panicOnStale = false;
};

} // namespace cpelide

#endif // CPELIDE_MEM_DATA_SPACE_HH
