#include "cp/global_cp.hh"

#include <algorithm>

#include "check/hb_checker.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace cpelide
{

GlobalCp::GlobalCp(const GpuConfig &cfg, ProtocolKind kind, MemSystem &mem,
                   int extra_sync_sets)
    : _cfg(cfg), _kind(kind), _mem(mem), _extraSyncSets(extra_sync_sets)
{
    if (kind == ProtocolKind::CpElide) {
        _engine = std::make_unique<ElideEngine>(
            cfg.numChiplets, cfg.tableDsPerKernel, cfg.tableEntries());
    }
}

Tick
GlobalCp::processPacket(Tick earliest)
{
    Cycles proc = _cfg.cyclesFromUs(_cfg.cpPacketUs);
    // CPElide's ~6 us of table processing (Section IV-B) is NOT added
    // here: the global CP processes queued packets' tables while
    // earlier kernels execute — and even the first kernel's processing
    // overlaps the host-side enqueue/launch path, which takes longer.
    // The paper makes the same observation ("this latency is usually
    // hidden for all but the first kernel"); at our reduced trace
    // scale exposing it would overstate a cost that is negligible in
    // any real, multi-millisecond application.
    const Tick start = std::max(_cpFree, earliest);
    _cpFree = start + proc;
    ++_packetsProcessed;
    _exposedPipelineCycles += _cpFree - earliest;
    return _cpFree;
}

void
GlobalCp::registerProf(prof::ProfRegistry &reg) const
{
    reg.addCounter("cp/packets-processed", &_packetsProcessed);
    reg.addCounter("cp/exposed-pipeline-cycles",
                   &_exposedPipelineCycles);
    reg.addCounter("cp/launch-syncs", &_launchSyncs);
    reg.addCounter("cp/sync-cycles", &_syncCycles);
    if (_engine)
        _engine->registerProf(reg);
}

Cycles
GlobalCp::messagingCost(std::size_t nops) const
{
    if (nops == 0)
        return 0;
    // Command out + ACK back, then the launch-enable message.
    const Cycles msg = nops >= static_cast<std::size_t>(_cfg.numChiplets)
                           ? _cfg.xbarBroadcast
                           : _cfg.xbarUnicast;
    return 2 * msg + _cfg.xbarUnicast;
}

LaunchDecl
GlobalCp::buildDecl(const KernelDesc &desc,
                    const std::vector<WgChunk> &chunks,
                    DataSpace &space) const
{
    LaunchDecl decl;
    decl.chiplets.reserve(chunks.size());
    for (const WgChunk &c : chunks)
        decl.chiplets.push_back(c.chiplet);

    decl.args.reserve(desc.args.size());
    for (const KernelArgDecl &arg : desc.args) {
        const Allocation &a = space.alloc(arg.ds);
        KernelArgAccess acc;
        acc.span = {a.base, a.base + a.bytes};
        acc.mode = arg.mode;
        acc.perChiplet.resize(chunks.size());
        for (std::size_t i = 0; i < chunks.size(); ++i) {
            switch (arg.rangeKind) {
              case RangeKind::Full:
                acc.perChiplet[i] = acc.span;
                break;
              case RangeKind::Explicit:
                acc.perChiplet[i] = i < arg.explicitRanges.size()
                                        ? arg.explicitRanges[i]
                                        : AddrRange{};
                break;
              case RangeKind::Affine: {
                // The CP knows the WG partition; an affine argument's
                // per-chiplet range is the proportional, line-aligned
                // slice of the structure.
                const std::uint64_t lines = a.numLines();
                const std::uint64_t lo =
                    lines * static_cast<std::uint64_t>(chunks[i].wgBegin) /
                    desc.numWgs;
                const std::uint64_t hi =
                    lines * static_cast<std::uint64_t>(chunks[i].wgEnd) /
                    desc.numWgs;
                acc.perChiplet[i] = {a.base + lo * kLineBytes,
                                     a.base + hi * kLineBytes};
                break;
              }
            }
        }
        decl.args.push_back(std::move(acc));
    }
    return decl;
}

SyncOutcome
GlobalCp::launchSync(const KernelDesc &desc,
                     const std::vector<WgChunk> &chunks, DataSpace &space)
{
    SyncOutcome out;
    ++_launchSyncs;

    // Every protocol invalidates the (write-through) L1s at kernel
    // boundaries.
    {
        const Cycles l1c = _mem.kernelBoundaryL1();
        out.cost += l1c;
        out.invalidateCost += l1c;
    }

    switch (_kind) {
      case ProtocolKind::Baseline: {
        // Conservative GPU-wide implicit release + acquire.
        if (_check) {
            std::vector<ChipletId> all;
            for (ChipletId c = 0; c < _cfg.numChiplets; ++c)
                all.push_back(c);
            _check->onSyncDecision(all, all, 0, 0, false);
        }
        // kernelBoundaryL2 is a parallel l2Acquire on every chiplet:
        // the critical chiplet pays its flush drain plus the flash
        // invalidate, so the invalidate share of the worst path is
        // exactly invalidateCycles.
        const Cycles l2c = _mem.kernelBoundaryL2();
        out.cost += l2c;
        if (l2c > 0) {
            out.invalidateCost += _cfg.invalidateCycles;
            out.flushCost += l2c - _cfg.invalidateCycles;
        }
        out.cost += messagingCost(_cfg.numChiplets);
        out.acquires = static_cast<std::size_t>(_cfg.numChiplets);
        out.releases = static_cast<std::size_t>(_cfg.numChiplets);
        break;
      }
      case ProtocolKind::Hmg:
      case ProtocolKind::HmgWriteBack:
      case ProtocolKind::Monolithic:
        // Coherent L2s (HMG) or a single shared L2 (monolithic): no
        // boundary L2 operations.
        if (_check)
            _check->onSyncDecision({}, {}, 0, 0, false);
        break;
      case ProtocolKind::CpElide: {
        const LaunchDecl decl = buildDecl(desc, chunks, space);
        const std::uint64_t acqElidedBefore = _engine->acquiresElided();
        const std::uint64_t relElidedBefore = _engine->releasesElided();
        const SyncPlan plan = _engine->onKernelLaunch(decl);
        out.conservative = plan.conservative;
        out.acquires = plan.acquires.size();
        out.releases = plan.releases.size();
        if (_check) {
            _check->onSyncDecision(
                plan.acquires, plan.releases,
                _engine->acquiresElided() - acqElidedBefore,
                _engine->releasesElided() - relElidedBefore,
                plan.conservative);
        }

        // Ops on distinct chiplets run in parallel; acquires are
        // performed first, then the (lazy) releases — both complete
        // before launch-enable.
        Cycles worstAcq = 0;
        for (ChipletId c : plan.acquires)
            worstAcq = std::max(worstAcq, _mem.l2Acquire(c));
        Cycles worstRel = 0;
        for (ChipletId c : plan.releases)
            worstRel = std::max(worstRel, _mem.l2Release(c));
        out.cost += worstAcq + worstRel;
        if (worstAcq > 0) {
            out.invalidateCost += _cfg.invalidateCycles;
            out.flushCost += worstAcq - _cfg.invalidateCycles;
        }
        out.flushCost += worstRel;
        out.cost += messagingCost(plan.acquires.size() +
                                  plan.releases.size());
        break;
      }
    }

    if (_cfg.freeSyncOps) {
        // Idealized range-flush ablation: ops happened (functionally)
        // but cost nothing on the critical path.
        out.cost = 0;
        out.flushCost = 0;
        out.invalidateCost = 0;
    }

    // Section VI scaling study: serialize extra sets of
    // acquires/releases at synchronizing launches to mimic the
    // operations additional chiplets would need. Each mimicked set
    // costs the cache-walk + invalidate + crossbar messaging (the
    // hypothetical chiplets have no dirty data of their own to drain).
    // Deliberately conservative: a real larger package would overlap
    // much of this.
    if (_extraSyncSets > 0 && (out.acquires + out.releases) > 0) {
        const Cycles walk = static_cast<Cycles>(
            _cfg.l2SizeBytesPerChiplet / kLineBytes /
            _cfg.flushWalkLinesPerCycle);
        out.cost += static_cast<Cycles>(_extraSyncSets) *
                    (walk + _cfg.invalidateCycles +
                     messagingCost(static_cast<std::size_t>(
                         _cfg.numChiplets)));
        out.flushCost += static_cast<Cycles>(_extraSyncSets) * walk;
        out.invalidateCost +=
            static_cast<Cycles>(_extraSyncSets) * _cfg.invalidateCycles;
    }
    _syncCycles += out.cost;

    if (_trace) {
        _trace->instantNow("sync-plan", "cp", kCpTrack)
            .arg("acquires", out.acquires)
            .arg("releases", out.releases)
            .arg("conservative", out.conservative ? 1 : 0)
            .arg("cost", out.cost);
    }

    return out;
}

Cycles
GlobalCp::finalBarrier(Cycles *flush_out)
{
    Cycles worst = 0;
    for (ChipletId c = 0; c < _cfg.numChiplets; ++c)
        worst = std::max(worst, _mem.l2Release(c));
    if (_engine)
        _engine->finalBarrier();
    if (flush_out)
        *flush_out = worst;
    const Cycles cost =
        worst + messagingCost(static_cast<std::size_t>(_cfg.numChiplets));
    if (_trace)
        _trace->instantNow("final-barrier", "cp", kCpTrack).arg("cost", cost);
    return cost;
}

} // namespace cpelide
