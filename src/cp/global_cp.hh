/**
 * @file
 * Global command processor (Fig 4b / Section III-C).
 *
 * The global CP interfaces with the host, owns the hardware queues,
 * statically partitions each kernel's WGs across chiplets, and — for
 * CPElide — consults the ElideEngine at each launch to issue only the
 * per-chiplet acquires/releases actually required, waiting for their
 * ACKs before sending "launch enable" to the local CPs.
 *
 * Timing model:
 *  - packet processing is pipelined: the CP works on the next packet
 *    while the current kernel executes, so its latency (2 us, plus
 *    6 us of CPElide table processing) is exposed only when the
 *    pipeline is empty (first kernel / long idle), matching IV-B;
 *  - sync operations on distinct chiplets proceed in parallel; the
 *    critical path is the slowest chiplet plus the crossbar round trip
 *    and the final launch-enable message.
 */

#ifndef CPELIDE_CP_GLOBAL_CP_HH
#define CPELIDE_CP_GLOBAL_CP_HH

#include <memory>
#include <vector>

#include "coherence/mem_system.hh"
#include "config/gpu_config.hh"
#include "core/elide_engine.hh"
#include "cp/kernel.hh"
#include "cp/local_cp.hh"

namespace cpelide
{

class TraceSession;

/** What a launch's synchronization phase did (for stats/tests). */
struct SyncOutcome
{
    Cycles cost = 0;
    /**
     * Critical-path split of @ref cost for stall attribution: cycles
     * spent draining dirty data (flush walk + writeback) and cycles
     * spent in flash invalidates (L1s + L2 arrays). The remainder of
     * cost is crossbar sync messaging, which the GPU layer bins as
     * barrier wait. flushCost + invalidateCost <= cost always.
     */
    Cycles flushCost = 0;
    Cycles invalidateCost = 0;
    std::size_t acquires = 0;
    std::size_t releases = 0;
    bool conservative = false;
};

class GlobalCp
{
  public:
    /**
     * @param extra_sync_sets Section VI scaling study: serialize this
     *        many additional copies of each boundary sync's latency to
     *        mimic 8-/16-chiplet packages (0 = off).
     */
    GlobalCp(const GpuConfig &cfg, ProtocolKind kind, MemSystem &mem,
             int extra_sync_sets = 0);

    /**
     * Run the packet through the CP pipeline.
     * @param earliest submission time of the packet.
     * @return tick at which the packet is ready to launch.
     */
    Tick processPacket(Tick earliest);

    /**
     * Perform the launch-time synchronization for @p desc partitioned
     * as @p chunks. Executes the cache operations and returns their
     * critical-path cost.
     */
    SyncOutcome launchSync(const KernelDesc &desc,
                           const std::vector<WgChunk> &chunks,
                           DataSpace &space);

    /**
     * End-of-program barrier: flush all dirty device data for host
     * visibility (all protocols).
     * @param flush_out if non-null, receives the flush (drain) part of
     *        the returned cost; the rest is crossbar messaging.
     */
    Cycles finalBarrier(Cycles *flush_out = nullptr);

    ProtocolKind protocol() const { return _kind; }
    /** Non-null only for CPElide. */
    const ElideEngine *engine() const { return _engine.get(); }

    /** Mutable engine access: fault injection (table corruption) only. */
    ElideEngine *mutableEngine() { return _engine.get(); }

    /**
     * Attach a trace session (nullptr detaches). The CP records one
     * instant per launch-sync decision and per final barrier on the CP
     * track. Not owned.
     */
    void setTrace(TraceSession *t) { _trace = t; }

    /**
     * Attach the happens-before checker (nullptr detaches). The CP
     * reports each launch's sync decision — the per-chiplet ops it
     * will issue plus how many the elide engine removed — so checker
     * reports can quote the plan that elided a needed edge. Not owned.
     */
    void setChecker(HbChecker *hb) { _check = hb; }

    /**
     * The global CP's view of a launch: each argument's span, mode,
     * and per-chiplet ranges (affine ranges derived from the WG
     * partition). Public so the annotation validator and tests can
     * check traces against exactly what the engine will assume.
     */
    LaunchDecl buildDecl(const KernelDesc &desc,
                         const std::vector<WgChunk> &chunks,
                         DataSpace &space) const;

    /**
     * Register the CP-queue counters under "cp/...", plus the elide
     * engine's decision counters when this CP runs CPElide.
     */
    void registerProf(prof::ProfRegistry &reg) const;

  private:
    /** Crossbar command+ACK round trip for @p nops operations. */
    Cycles messagingCost(std::size_t nops) const;

    const GpuConfig &_cfg;
    ProtocolKind _kind;
    MemSystem &_mem;
    std::unique_ptr<ElideEngine> _engine;
    int _extraSyncSets;
    Tick _cpFree = 0;
    TraceSession *_trace = nullptr;
    HbChecker *_check = nullptr;

    prof::Counter _packetsProcessed; //!< packets through the CP pipeline
    prof::Counter _exposedPipelineCycles; //!< CP latency not overlapped
    prof::Counter _launchSyncs;      //!< launchSync invocations
    prof::Counter _syncCycles;       //!< total launch-sync cost issued
};

} // namespace cpelide

#endif // CPELIDE_CP_GLOBAL_CP_HH
