/**
 * @file
 * Local (per-chiplet) command processor: WG partitioning and dispatch.
 *
 * The global CP statically partitions a kernel's WGs into contiguous
 * chunks, one per scheduled chiplet (Section IV-C1, "static kernel-wide
 * WG partitioning"); each chiplet's local CP round-robins its chunk
 * across the chiplet's CUs. The local CP also executes the sync
 * operations the global CP sends (modeled in MemSystem) and reports
 * ACKs — those costs are accounted in GlobalCp.
 */

#ifndef CPELIDE_CP_LOCAL_CP_HH
#define CPELIDE_CP_LOCAL_CP_HH

#include <vector>

#include "sim/types.hh"

namespace cpelide
{

/** A chiplet's share of a kernel: WGs [wgBegin, wgEnd). */
struct WgChunk
{
    ChipletId chiplet = 0;
    int wgBegin = 0;
    int wgEnd = 0;

    int count() const { return wgEnd - wgBegin; }
};

/**
 * Split @p num_wgs into contiguous chunks over @p chiplets.
 * Early chiplets take the remainder, matching a ceil-divided static
 * partition. Chunks may be empty when WGs < chiplets.
 */
inline std::vector<WgChunk>
partitionWgs(int num_wgs, const std::vector<ChipletId> &chiplets)
{
    std::vector<WgChunk> chunks;
    chunks.reserve(chiplets.size());
    const int n = static_cast<int>(chiplets.size());
    const int base = num_wgs / n;
    const int extra = num_wgs % n;
    int next = 0;
    for (int i = 0; i < n; ++i) {
        const int take = base + (i < extra ? 1 : 0);
        chunks.push_back({chiplets[i], next, next + take});
        next += take;
    }
    return chunks;
}

/** CU a WG runs on within its chiplet (round-robin local dispatch). */
inline CuId
dispatchCu(const WgChunk &chunk, int wg, int cus_per_chiplet)
{
    return (wg - chunk.wgBegin) % cus_per_chiplet;
}

} // namespace cpelide

#endif // CPELIDE_CP_LOCAL_CP_HH
