/**
 * @file
 * Kernel packets: what the runtime enqueues and the CP consumes.
 *
 * A KernelDesc is the simulator's analogue of an AQL/HSA kernel
 * dispatch packet plus the CPElide access annotations added to ROCm
 * (Listings 1 and 2 of the paper). The memory behaviour of the kernel
 * is a deterministic trace generator: given a workgroup id, it emits
 * the line-granular accesses the WG performs, plus compute and LDS
 * work for the timing model.
 */

#ifndef CPELIDE_CP_KERNEL_HH
#define CPELIDE_CP_KERNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ds_state.hh"
#include "sim/types.hh"

namespace cpelide
{

/** How per-chiplet address ranges for an argument are determined. */
enum class RangeKind
{
    /**
     * The CP derives each chiplet's range from the WG partition,
     * assuming the kernel maps WGs to the structure affinely (the
     * common GPGPU case: "most GPU programs have simple, linear/affine
     * data structures"). Only safe if the kernel really is affine in
     * this argument — like the paper's annotations, a wrong label can
     * produce wrong results (caught here by the staleness checker).
     */
    Affine,
    /**
     * Any scheduled chiplet may touch any byte (irregular/indirect
     * accesses: graph gathers, pointer chasing). Always safe;
     * read-only arguments still elide fully, read-write arguments
     * degrade to conservative synchronization for this structure.
     */
    Full,
    /** Ranges supplied explicitly via hipSetAccessModeRange. */
    Explicit,
};

/** One kernel argument's annotation (hipSetAccessMode[Range]). */
struct KernelArgDecl
{
    DsId ds = -1;
    AccessMode mode = AccessMode::ReadOnly;
    RangeKind rangeKind = RangeKind::Affine;
    /** Per scheduled-chiplet byte ranges when rangeKind == Explicit. */
    std::vector<AddrRange> explicitRanges;
};

/** Sink receiving a workgroup's memory trace. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** The WG accesses line @p line of structure @p ds. */
    virtual void touch(DsId ds, std::uint64_t line, bool write) = 0;
    /**
     * System-scope atomic / cache-bypassing access (GLC-style): served
     * directly at the home node's LLC bank, never cached in an L1/L2.
     * GPU scatter updates (frontier flags, atomicMin relaxations) use
     * this — which is why they need no implicit synchronization and
     * why such arrays are not tracked in the Chiplet Coherence Table.
     * A structure must be accessed either always-bypass or
     * never-bypass; mixing the two on one array is unsupported.
     */
    virtual void
    touchBypass(DsId ds, std::uint64_t line, bool write)
    {
        touch(ds, line, write);
    }
};

/** A dispatch packet. */
struct KernelDesc
{
    std::string name;
    /** Total workgroups; statically partitioned across chiplets. */
    int numWgs = 1;
    /** Stream (maps to a hardware queue; same stream serializes). */
    int streamId = 0;
    /**
     * Memory-level parallelism per CU: how many outstanding line
     * accesses overlap. Divides per-access latency in the CU timing.
     */
    double mlp = 16.0;
    /** ALU work per WG, in cycles. */
    Cycles computeCyclesPerWg = 0;
    /** LDS accesses per WG (1/cycle throughput; energy-counted). */
    std::uint64_t ldsAccessesPerWg = 0;
    /** Access annotations, one per tracked argument. */
    std::vector<KernelArgDecl> args;
    /** Deterministic per-WG memory trace. */
    std::function<void(int wg, TraceSink &sink)> trace;
};

} // namespace cpelide

#endif // CPELIDE_CP_KERNEL_HH
