#include "harness/harness.hh"

#include <cstdio>
#include <memory>

#include "prof/registry.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "sim/version.hh"
#include "stats/report.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"

namespace cpelide
{

namespace
{

/** The label the run reports (and traces under). */
std::string
resultLabel(const RunRequest &req)
{
    if (!req.label.empty())
        return req.label;
    std::string label = req.workload;
    if (req.copies > 1)
        label += "+x" + std::to_string(req.copies);
    return label;
}

/**
 * Execute the request without touching the TraceArchive. When tracing
 * is active (req.trace, or CPELIDE_TRACE with a run-local session),
 * the run-local session's events are moved into the result's
 * traceEvents, so the caller decides export order — job bodies running
 * on pool workers stay deterministic because runSweep() appends
 * harvested events in spec order, never completion order.
 */
/**
 * Warn (once per process) when a request names two different
 * protocols; the options override wins either way, but silently
 * ignoring the top-level field has burned callers before.
 */
void
warnProtocolConflict(const RunRequest &req)
{
    if (!requestProtocolConflict(req))
        return;
    static const bool warned = [&req] {
        warn(std::string("RunRequest sets protocol=") +
             protocolName(req.protocol) + " but options->protocol=" +
             protocolName(req.options->protocol) +
             "; the options override wins");
        return true;
    }();
    (void)warned;
}

RunResult
runRequest(const RunRequest &req)
{
    warnProtocolConflict(req);
    const ProtocolKind kind =
        req.options ? req.options->protocol : req.protocol;
    const GpuConfig cfg =
        req.cfg ? *req.cfg
                : (kind == ProtocolKind::Monolithic
                       ? GpuConfig::monolithicEquivalent(req.chiplets)
                       : GpuConfig::radeonVii(req.chiplets));

    RunOptions opts;
    if (req.options) {
        opts = *req.options;
    } else {
        opts.protocol = req.protocol;
        opts.extraSyncSets = req.extraSyncSets;
    }
    // Bound/weave workers: an explicit options->simThreads wins, then
    // the request field; 0 lets the GpuSystem fall back to
    // CPELIDE_SIM_THREADS.
    if (opts.simThreads <= 0)
        opts.simThreads = req.simThreads;

    TraceSession local;
    TraceSession *session = req.trace;
    if (!session && !ExecOptions::fromEnv().tracePath.empty())
        session = &local;
    opts.trace = session;

    // Run-local counter registry, mirroring the run-local trace
    // session: each sweep job profiles into its own registry, so
    // concurrent workers never share counter state.
    prof::ProfRegistry profReg;
    const bool profiling = prof::profileRequested() ||
                           !ExecOptions::fromEnv().profilePath.empty();
    if (profiling && !opts.prof)
        opts.prof = &profReg;

    Runtime rt(cfg, opts);
    std::unique_ptr<Workload> workload;
    if (!req.builder)
        workload = makeWorkload(req.workload); // throws if unknown

    if (req.copies > 1) {
        for (int s = 0; s < req.copies; ++s) {
            // Bind each copy to a disjoint chiplet subset (streams
            // are numbered from 1; 0 is the remappable default).
            std::vector<ChipletId> subset;
            for (int c = 0; c < req.chiplets; ++c) {
                if (c % req.copies == s)
                    subset.push_back(c);
            }
            rt.setStreamChiplets(s + 1, subset);
            rt.setDefaultStream(s + 1);
            if (workload)
                workload->build(rt, req.scale);
            else
                req.builder(rt, req.scale);
        }
    } else if (workload) {
        workload->build(rt, req.scale);
    } else {
        req.builder(rt, req.scale);
    }

    RunResult r = rt.deviceSynchronize(resultLabel(req));
    r.engineVersion = cpelide::engineVersion();
    if (!req.cfg)
        r.numChiplets = req.chiplets; // equivalent chiplet count
    if (session == &local)
        r.traceEvents = local.take();
    if (opts.prof)
        r.prof = opts.prof->snapshot();
    return r;
}

} // namespace

RunResult
run(const RunRequest &req)
{
    RunResult r = runRequest(req);
    const std::string tracePath = ExecOptions::fromEnv().tracePath;
    if (!tracePath.empty() && !r.traceEvents.empty()) {
        TraceArchive::global().append(resultLabel(req), r.numChiplets,
                                      r.traceEvents);
        TraceArchive::global().writeTo(tracePath);
    }
    return r;
}

Job
makeJob(const RunRequest &req)
{
    const ProtocolKind kind =
        req.options ? req.options->protocol : req.protocol;
    const int chiplets = req.cfg ? req.cfg->numChiplets : req.chiplets;

    Job j;
    j.workload = req.workload;
    j.protocol = protocolName(kind);
    j.chiplets = chiplets;
    j.scale = req.scale;
    if (!req.label.empty()) {
        j.label = req.label;
    } else if (req.copies > 1) {
        j.label = req.workload + "x" + std::to_string(req.copies) +
                  "/" + j.protocol + "/" + std::to_string(chiplets) +
                  "c";
    } else {
        j.label = req.workload + "/" + j.protocol + "/" +
                  std::to_string(chiplets) + "c";
        if (req.cfg)
            j.label += "/custom";
        else if (req.extraSyncSets)
            j.label += "+sync" + std::to_string(req.extraSyncSets);
    }
    j.body = [req] { return runRequest(req); };
    return j;
}

bool
requestProtocolConflict(const RunRequest &req)
{
    return req.options && req.protocol != ProtocolKind::Baseline &&
           req.options->protocol != req.protocol;
}

std::vector<JobOutcome>
runSweep(const SweepSpec &spec)
{
    static const bool envChecked = [] {
        warnUnknownEnvVars();
        return true;
    }();
    (void)envChecked;

    SweepRunner runner;
    std::vector<JobOutcome> outcomes = runner.run(spec);
    std::vector<ErrorRow> failed;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &o = outcomes[i];
        if (o.ok)
            continue;
        std::string detail = jobErrorName(o.kind);
        if (o.attempts > 1)
            detail += ", " + std::to_string(o.attempts) + " attempts";
        warn("sweep '" + spec.name + "' job '" + spec.jobs[i].label +
             "' failed (" + detail + "): " + o.error);
        failed.push_back(ErrorRow{spec.jobs[i].label,
                                  jobErrorName(o.kind), o.attempts,
                                  o.error});
    }
    if (!failed.empty()) {
        // stderr, like the warn lines: stdout must stay byte-identical
        // between clean runs whatever happened to other jobs.
        std::fprintf(stderr, "-- errors: sweep '%s' --\n%s",
                     spec.name.c_str(),
                     renderErrorRows(failed).c_str());
    }

    // Export the sweep's traces in spec order: sim tracks are built
    // from the deterministic per-job traceEvents, while worker spans
    // land on the (documented nondeterministic) exec-worker track.
    const ExecOptions eo = ExecOptions::fromEnv();
    if (!eo.tracePath.empty()) {
        TraceArchive &archive = TraceArchive::global();
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const JobOutcome &o = outcomes[i];
            if (!o.result.traceEvents.empty()) {
                archive.append(spec.name + "/" + spec.jobs[i].label,
                               o.result.numChiplets,
                               o.result.traceEvents);
            }
            if (!o.fromCheckpoint && o.metrics.wallSeconds > 0.0) {
                archive.addWorkerSpan(o.metrics.worker,
                                      spec.jobs[i].label,
                                      o.metrics.wallStartSeconds,
                                      o.metrics.wallSeconds);
            }
        }
        archive.writeTo(eo.tracePath);
    }
    return outcomes;
}

std::vector<std::string>
warnUnknownEnvVars()
{
    const std::vector<std::string> unknown =
        ExecOptions::unknownEnvVars();
    for (const std::string &name : unknown) {
        warn("unrecognized environment variable " + name +
             " (no CPElide component reads it; typo?)");
    }
    return unknown;
}

double
envScale()
{
    return ExecOptions::fromEnv().scale;
}

void
printConfigBanner(int chiplets)
{
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    std::fputs(cfg.describe().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace cpelide
