#include "harness/harness.hh"

#include <cstdio>
#include <cstdlib>

#include "runtime/runtime.hh"
#include "sim/log.hh"
#include "stats/report.hh"

extern char **environ;

namespace cpelide
{

RunResult
runWorkload(const std::string &workload_name, ProtocolKind kind,
            int chiplets, double scale, int extra_sync_sets)
{
    const GpuConfig cfg = kind == ProtocolKind::Monolithic
                              ? GpuConfig::monolithicEquivalent(chiplets)
                              : GpuConfig::radeonVii(chiplets);
    RunOptions opts;
    opts.protocol = kind;
    opts.extraSyncSets = extra_sync_sets;

    Runtime rt(cfg, opts);
    auto workload = makeWorkload(workload_name);
    workload->build(rt, scale);
    RunResult r = rt.deviceSynchronize(workload_name);
    r.numChiplets = chiplets; // report the equivalent chiplet count
    return r;
}

RunResult
runWorkloadCfg(const std::string &workload_name, const GpuConfig &cfg,
               const RunOptions &opts, double scale)
{
    Runtime rt(cfg, opts);
    auto workload = makeWorkload(workload_name);
    workload->build(rt, scale);
    return rt.deviceSynchronize(workload_name);
}

RunResult
runWorkloadMultiStream(const std::string &workload_name,
                       ProtocolKind kind, int chiplets, int copies,
                       double scale)
{
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    RunOptions opts;
    opts.protocol = kind;
    Runtime rt(cfg, opts);

    auto workload = makeWorkload(workload_name);
    for (int s = 0; s < copies; ++s) {
        // Bind each job to a disjoint chiplet subset (streams are
        // numbered from 1; 0 is the remappable default).
        std::vector<ChipletId> subset;
        for (int c = 0; c < chiplets; ++c) {
            if (c % copies == s)
                subset.push_back(c);
        }
        rt.setStreamChiplets(s + 1, subset);
        rt.setDefaultStream(s + 1);
        workload->build(rt, scale);
    }
    RunResult r =
        rt.deviceSynchronize(workload_name + "+x" +
                             std::to_string(copies));
    r.numChiplets = chiplets;
    return r;
}

Job
workloadJob(const std::string &workload_name, ProtocolKind kind,
            int chiplets, double scale, int extra_sync_sets)
{
    Job j;
    j.workload = workload_name;
    j.protocol = protocolName(kind);
    j.chiplets = chiplets;
    j.scale = scale;
    j.label = workload_name + "/" + j.protocol + "/" +
              std::to_string(chiplets) + "c";
    if (extra_sync_sets)
        j.label += "+sync" + std::to_string(extra_sync_sets);
    j.body = [=] {
        return runWorkload(workload_name, kind, chiplets, scale,
                           extra_sync_sets);
    };
    return j;
}

Job
workloadCfgJob(const std::string &workload_name, const GpuConfig &cfg,
               const RunOptions &opts, double scale)
{
    Job j;
    j.workload = workload_name;
    j.protocol = protocolName(opts.protocol);
    j.chiplets = cfg.numChiplets;
    j.scale = scale;
    j.label = workload_name + "/" + j.protocol + "/" +
              std::to_string(cfg.numChiplets) + "c/custom";
    j.body = [=] {
        return runWorkloadCfg(workload_name, cfg, opts, scale);
    };
    return j;
}

Job
multiStreamJob(const std::string &workload_name, ProtocolKind kind,
               int chiplets, int copies, double scale)
{
    Job j;
    j.workload = workload_name;
    j.protocol = protocolName(kind);
    j.chiplets = chiplets;
    j.scale = scale;
    j.label = workload_name + "x" + std::to_string(copies) + "/" +
              j.protocol + "/" + std::to_string(chiplets) + "c";
    j.body = [=] {
        return runWorkloadMultiStream(workload_name, kind, chiplets,
                                      copies, scale);
    };
    return j;
}

std::vector<JobOutcome>
runSweep(const SweepSpec &spec)
{
    static const bool envChecked = [] {
        warnUnknownEnvVars();
        return true;
    }();
    (void)envChecked;

    SweepRunner runner;
    std::vector<JobOutcome> outcomes = runner.run(spec);
    std::vector<ErrorRow> failed;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &o = outcomes[i];
        if (o.ok)
            continue;
        std::string detail = jobErrorName(o.kind);
        if (o.attempts > 1)
            detail += ", " + std::to_string(o.attempts) + " attempts";
        warn("sweep '" + spec.name + "' job '" + spec.jobs[i].label +
             "' failed (" + detail + "): " + o.error);
        failed.push_back(ErrorRow{spec.jobs[i].label,
                                  jobErrorName(o.kind), o.attempts,
                                  o.error});
    }
    if (!failed.empty()) {
        // stderr, like the warn lines: stdout must stay byte-identical
        // between clean runs whatever happened to other jobs.
        std::fprintf(stderr, "-- errors: sweep '%s' --\n%s",
                     spec.name.c_str(),
                     renderErrorRows(failed).c_str());
    }
    return outcomes;
}

std::vector<std::string>
warnUnknownEnvVars()
{
    // Every CPELIDE_* knob any component reads. Keep in sync with the
    // "Resilience knobs" table in EXPERIMENTS.md.
    static const char *const known[] = {
        "CPELIDE_JOBS",      "CPELIDE_METRICS",
        "CPELIDE_SCALE",     "CPELIDE_DEBUG",
        "CPELIDE_MISS_DEBUG", "CPELIDE_TIMEOUT_MS",
        "CPELIDE_MAX_EVENTS", "CPELIDE_RETRIES",
        "CPELIDE_RETRY_BACKOFF_MS", "CPELIDE_RESUME",
        "CPELIDE_PANIC",
    };
    std::vector<std::string> unknown;
    for (char **e = environ; e && *e; ++e) {
        const std::string entry(*e);
        if (entry.rfind("CPELIDE_", 0) != 0)
            continue;
        const std::string name = entry.substr(0, entry.find('='));
        bool found = false;
        for (const char *k : known) {
            if (name == k) {
                found = true;
                break;
            }
        }
        if (!found) {
            warn("unrecognized environment variable " + name +
                 " (no CPElide component reads it; typo?)");
            unknown.push_back(name);
        }
    }
    return unknown;
}

double
envScale()
{
    if (const char *s = std::getenv("CPELIDE_SCALE")) {
        const double v = std::atof(s);
        if (v > 0.0 && v <= 1.0)
            return v;
    }
    return 1.0;
}

void
printConfigBanner(int chiplets)
{
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    std::fputs(cfg.describe().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace cpelide
