#include "harness/harness.hh"

#include <cstdio>
#include <cstdlib>

#include "runtime/runtime.hh"

namespace cpelide
{

RunResult
runWorkload(const std::string &workload_name, ProtocolKind kind,
            int chiplets, double scale, int extra_sync_sets)
{
    const GpuConfig cfg = kind == ProtocolKind::Monolithic
                              ? GpuConfig::monolithicEquivalent(chiplets)
                              : GpuConfig::radeonVii(chiplets);
    RunOptions opts;
    opts.protocol = kind;
    opts.extraSyncSets = extra_sync_sets;

    Runtime rt(cfg, opts);
    auto workload = makeWorkload(workload_name);
    workload->build(rt, scale);
    RunResult r = rt.deviceSynchronize(workload_name);
    r.numChiplets = chiplets; // report the equivalent chiplet count
    return r;
}

RunResult
runWorkloadCfg(const std::string &workload_name, const GpuConfig &cfg,
               const RunOptions &opts, double scale)
{
    Runtime rt(cfg, opts);
    auto workload = makeWorkload(workload_name);
    workload->build(rt, scale);
    return rt.deviceSynchronize(workload_name);
}

RunResult
runWorkloadMultiStream(const std::string &workload_name,
                       ProtocolKind kind, int chiplets, int copies,
                       double scale)
{
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    RunOptions opts;
    opts.protocol = kind;
    Runtime rt(cfg, opts);

    auto workload = makeWorkload(workload_name);
    for (int s = 0; s < copies; ++s) {
        // Bind each job to a disjoint chiplet subset (streams are
        // numbered from 1; 0 is the remappable default).
        std::vector<ChipletId> subset;
        for (int c = 0; c < chiplets; ++c) {
            if (c % copies == s)
                subset.push_back(c);
        }
        rt.setStreamChiplets(s + 1, subset);
        rt.setDefaultStream(s + 1);
        workload->build(rt, scale);
    }
    RunResult r =
        rt.deviceSynchronize(workload_name + "+x" +
                             std::to_string(copies));
    r.numChiplets = chiplets;
    return r;
}

double
envScale()
{
    if (const char *s = std::getenv("CPELIDE_SCALE")) {
        const double v = std::atof(s);
        if (v > 0.0 && v <= 1.0)
            return v;
    }
    return 1.0;
}

void
printConfigBanner(int chiplets)
{
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    std::fputs(cfg.describe().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace cpelide
