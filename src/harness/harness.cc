#include "harness/harness.hh"

#include <cstdio>
#include <memory>

#include "prof/registry.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "sim/version.hh"
#include "stats/report.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"

namespace cpelide
{

namespace
{

/** The label the run reports (and traces under). */
std::string
resultLabel(const RunRequest &req)
{
    if (!req.label.empty())
        return req.label;
    std::string label = req.workload;
    if (req.copies > 1)
        label += "+x" + std::to_string(req.copies);
    return label;
}

/**
 * Execute the request without touching the TraceArchive. When tracing
 * is active (req.trace, or CPELIDE_TRACE with a run-local session),
 * the run-local session's events are moved into the result's
 * traceEvents, so the caller decides export order — job bodies running
 * on pool workers stay deterministic because runSweep() appends
 * harvested events in spec order, never completion order.
 */
RunResult
runRequest(const RunRequest &req)
{
    const ProtocolKind kind =
        req.options ? req.options->protocol : req.protocol;
    const GpuConfig cfg =
        req.cfg ? *req.cfg
                : (kind == ProtocolKind::Monolithic
                       ? GpuConfig::monolithicEquivalent(req.chiplets)
                       : GpuConfig::radeonVii(req.chiplets));

    RunOptions opts;
    if (req.options) {
        opts = *req.options;
    } else {
        opts.protocol = req.protocol;
        opts.extraSyncSets = req.extraSyncSets;
    }

    TraceSession local;
    TraceSession *session = req.trace;
    if (!session && !ExecOptions::fromEnv().tracePath.empty())
        session = &local;
    opts.trace = session;

    // Run-local counter registry, mirroring the run-local trace
    // session: each sweep job profiles into its own registry, so
    // concurrent workers never share counter state.
    prof::ProfRegistry profReg;
    const bool profiling = prof::profileRequested() ||
                           !ExecOptions::fromEnv().profilePath.empty();
    if (profiling && !opts.prof)
        opts.prof = &profReg;

    Runtime rt(cfg, opts);
    std::unique_ptr<Workload> workload;
    if (!req.builder)
        workload = makeWorkload(req.workload); // throws if unknown

    if (req.copies > 1) {
        for (int s = 0; s < req.copies; ++s) {
            // Bind each copy to a disjoint chiplet subset (streams
            // are numbered from 1; 0 is the remappable default).
            std::vector<ChipletId> subset;
            for (int c = 0; c < req.chiplets; ++c) {
                if (c % req.copies == s)
                    subset.push_back(c);
            }
            rt.setStreamChiplets(s + 1, subset);
            rt.setDefaultStream(s + 1);
            if (workload)
                workload->build(rt, req.scale);
            else
                req.builder(rt, req.scale);
        }
    } else if (workload) {
        workload->build(rt, req.scale);
    } else {
        req.builder(rt, req.scale);
    }

    RunResult r = rt.deviceSynchronize(resultLabel(req));
    r.engineVersion = cpelide::engineVersion();
    if (!req.cfg)
        r.numChiplets = req.chiplets; // equivalent chiplet count
    if (session == &local)
        r.traceEvents = local.take();
    if (opts.prof)
        r.prof = opts.prof->snapshot();
    return r;
}

} // namespace

RunResult
run(const RunRequest &req)
{
    RunResult r = runRequest(req);
    const std::string tracePath = ExecOptions::fromEnv().tracePath;
    if (!tracePath.empty() && !r.traceEvents.empty()) {
        TraceArchive::global().append(resultLabel(req), r.numChiplets,
                                      r.traceEvents);
        TraceArchive::global().writeTo(tracePath);
    }
    return r;
}

Job
makeJob(const RunRequest &req)
{
    const ProtocolKind kind =
        req.options ? req.options->protocol : req.protocol;
    const int chiplets = req.cfg ? req.cfg->numChiplets : req.chiplets;

    Job j;
    j.workload = req.workload;
    j.protocol = protocolName(kind);
    j.chiplets = chiplets;
    j.scale = req.scale;
    if (!req.label.empty()) {
        j.label = req.label;
    } else if (req.copies > 1) {
        j.label = req.workload + "x" + std::to_string(req.copies) +
                  "/" + j.protocol + "/" + std::to_string(chiplets) +
                  "c";
    } else {
        j.label = req.workload + "/" + j.protocol + "/" +
                  std::to_string(chiplets) + "c";
        if (req.cfg)
            j.label += "/custom";
        else if (req.extraSyncSets)
            j.label += "+sync" + std::to_string(req.extraSyncSets);
    }
    j.body = [req] { return runRequest(req); };
    return j;
}

RunResult
runWorkload(const std::string &workload_name, ProtocolKind kind,
            int chiplets, double scale, int extra_sync_sets)
{
    RunRequest req;
    req.workload = workload_name;
    req.protocol = kind;
    req.chiplets = chiplets;
    req.scale = scale;
    req.extraSyncSets = extra_sync_sets;
    return run(req);
}

RunResult
runWorkloadCfg(const std::string &workload_name, const GpuConfig &cfg,
               const RunOptions &opts, double scale)
{
    RunRequest req;
    req.workload = workload_name;
    req.cfg = cfg;
    req.options = opts;
    req.scale = scale;
    return run(req);
}

RunResult
runWorkloadMultiStream(const std::string &workload_name,
                       ProtocolKind kind, int chiplets, int copies,
                       double scale)
{
    RunRequest req;
    req.workload = workload_name;
    req.protocol = kind;
    req.chiplets = chiplets;
    req.copies = copies;
    req.scale = scale;
    return run(req);
}

Job
workloadJob(const std::string &workload_name, ProtocolKind kind,
            int chiplets, double scale, int extra_sync_sets)
{
    RunRequest req;
    req.workload = workload_name;
    req.protocol = kind;
    req.chiplets = chiplets;
    req.scale = scale;
    req.extraSyncSets = extra_sync_sets;
    return makeJob(req);
}

Job
workloadCfgJob(const std::string &workload_name, const GpuConfig &cfg,
               const RunOptions &opts, double scale)
{
    RunRequest req;
    req.workload = workload_name;
    req.cfg = cfg;
    req.options = opts;
    req.scale = scale;
    return makeJob(req);
}

Job
multiStreamJob(const std::string &workload_name, ProtocolKind kind,
               int chiplets, int copies, double scale)
{
    RunRequest req;
    req.workload = workload_name;
    req.protocol = kind;
    req.chiplets = chiplets;
    req.copies = copies;
    req.scale = scale;
    return makeJob(req);
}

std::vector<JobOutcome>
runSweep(const SweepSpec &spec)
{
    static const bool envChecked = [] {
        warnUnknownEnvVars();
        return true;
    }();
    (void)envChecked;

    SweepRunner runner;
    std::vector<JobOutcome> outcomes = runner.run(spec);
    std::vector<ErrorRow> failed;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &o = outcomes[i];
        if (o.ok)
            continue;
        std::string detail = jobErrorName(o.kind);
        if (o.attempts > 1)
            detail += ", " + std::to_string(o.attempts) + " attempts";
        warn("sweep '" + spec.name + "' job '" + spec.jobs[i].label +
             "' failed (" + detail + "): " + o.error);
        failed.push_back(ErrorRow{spec.jobs[i].label,
                                  jobErrorName(o.kind), o.attempts,
                                  o.error});
    }
    if (!failed.empty()) {
        // stderr, like the warn lines: stdout must stay byte-identical
        // between clean runs whatever happened to other jobs.
        std::fprintf(stderr, "-- errors: sweep '%s' --\n%s",
                     spec.name.c_str(),
                     renderErrorRows(failed).c_str());
    }

    // Export the sweep's traces in spec order: sim tracks are built
    // from the deterministic per-job traceEvents, while worker spans
    // land on the (documented nondeterministic) exec-worker track.
    const ExecOptions eo = ExecOptions::fromEnv();
    if (!eo.tracePath.empty()) {
        TraceArchive &archive = TraceArchive::global();
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const JobOutcome &o = outcomes[i];
            if (!o.result.traceEvents.empty()) {
                archive.append(spec.name + "/" + spec.jobs[i].label,
                               o.result.numChiplets,
                               o.result.traceEvents);
            }
            if (!o.fromCheckpoint && o.metrics.wallSeconds > 0.0) {
                archive.addWorkerSpan(o.metrics.worker,
                                      spec.jobs[i].label,
                                      o.metrics.wallStartSeconds,
                                      o.metrics.wallSeconds);
            }
        }
        archive.writeTo(eo.tracePath);
    }
    return outcomes;
}

std::vector<std::string>
warnUnknownEnvVars()
{
    const std::vector<std::string> unknown =
        ExecOptions::unknownEnvVars();
    for (const std::string &name : unknown) {
        warn("unrecognized environment variable " + name +
             " (no CPElide component reads it; typo?)");
    }
    return unknown;
}

double
envScale()
{
    return ExecOptions::fromEnv().scale;
}

void
printConfigBanner(int chiplets)
{
    const GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    std::fputs(cfg.describe().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace cpelide
