/**
 * @file
 * Shared bench CLI plumbing: one --format=ascii|json|csv flag for
 * every figure-regeneration bench, without touching their bespoke
 * table code, plus the --profile=PATH perf-counter report.
 *
 * The protocol: main() calls BenchIo::fromArgs(argc, argv) first
 * (consuming the flags), guards its banner/puts/AsciiTable output on
 * io.tables(), and hands each sweep's outcomes to io.emit(). In the
 * default ascii mode emit() is a no-op and stdout stays byte-identical
 * to the pre-BenchIo binaries; in json/csv mode the bench's human
 * output is suppressed and the structured records go to stdout
 * instead.
 *
 * --profile=PATH (or CPELIDE_PROFILE=PATH) requests a profiling
 * report: the harness attaches a run-local ProfRegistry to every run,
 * and emit() collects the frozen snapshots and rewrites PATH with
 * per-component counter tables, stall-cycle attribution, histograms,
 * and time-series summaries. The report goes to its own file — never
 * stdout — so the byte-identity contract above is unaffected. The
 * file is rewritten after every emit() because ascii-mode benches
 * never call finish().
 */

#ifndef CPELIDE_HARNESS_BENCH_IO_HH
#define CPELIDE_HARNESS_BENCH_IO_HH

#include <memory>
#include <vector>

#include "exec/job.hh"
#include "stats/stat_sink.hh"

namespace cpelide
{

class BenchIo
{
  public:
    /**
     * Parse and strip "--format=NAME", "--profile=PATH" and
     * "--sim-threads=N" (the CPELIDE_SIM_THREADS knob via setenv, so
     * the typed ExecOptions table stays the single parser) from the
     * argument vector (adjusting @p argc so later flag handling never
     * sees them). An unknown format name or any other
     * "--format..."/"--profile..."/"--sim-threads..." spelling is
     * fatal: exits with a usage message on stderr.
     */
    static BenchIo fromArgs(int &argc, char **argv);

    /** Default (ascii) construction: tables on, no sink. */
    BenchIo() = default;

    StatFormat format() const { return _format; }

    /** Whether the bench should print its human tables/banners. */
    bool tables() const { return _format == StatFormat::Ascii; }

    /**
     * Feed one sweep's outcomes (spec order) to the structured sink;
     * no-op in ascii mode.
     */
    void emit(const SweepSpec &spec,
              const std::vector<JobOutcome> &outcomes);

    /** Flush the sink trailer; call once after the last emit(). */
    void finish();

    /** Whether a --profile/CPELIDE_PROFILE report is being written. */
    bool profiling() const { return _profile != nullptr; }

  private:
    struct ProfileCollector; // defined in bench_io.cc

    StatFormat _format = StatFormat::Ascii;
    std::shared_ptr<StatSink> _sink; // shared: BenchIo is copyable
    std::shared_ptr<ProfileCollector> _profile;
};

} // namespace cpelide

#endif // CPELIDE_HARNESS_BENCH_IO_HH
