#include "harness/request_codec.hh"

namespace cpelide
{

namespace
{

void
fail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
}

} // namespace

bool
requestCodable(const RunRequest &req)
{
    return !req.builder && !req.cfg && !req.options && !req.trace &&
           !req.workload.empty();
}

std::string
canonicalRequestLine(const RunRequest &req)
{
    std::string out = "{";
    json::appendStr(out, "workload", req.workload);
    json::appendStr(out, "protocol", protocolName(req.protocol));
    json::appendI64(out, "chiplets", req.chiplets);
    json::appendDouble(out, "scale", req.scale);
    json::appendI64(out, "copies", req.copies);
    json::appendI64(out, "extraSyncSets", req.extraSyncSets);
    json::appendStr(out, "label", req.label);
    out += '}';
    return out;
}

bool
parseRequestFields(const JsonLineParser &p, RunRequest *req,
                   std::string *error)
{
    RunRequest r;
    if (!p.str("workload", &r.workload) || r.workload.empty()) {
        fail(error, "missing or empty workload");
        return false;
    }
    std::string protocol;
    if (!p.str("protocol", &protocol)) {
        fail(error, "missing protocol");
        return false;
    }
    if (!protocolFromName(protocol, &r.protocol)) {
        fail(error, "unknown protocol '" + protocol + "'");
        return false;
    }
    std::int64_t chiplets = 0;
    if (!p.i64("chiplets", &chiplets) || chiplets < 1 || chiplets > 64) {
        fail(error, "chiplets must be an integer in [1, 64]");
        return false;
    }
    r.chiplets = static_cast<int>(chiplets);
    if (!p.dbl("scale", &r.scale) || !(r.scale > 0.0) || r.scale > 1.0) {
        fail(error, "scale must be in (0, 1]");
        return false;
    }
    std::int64_t copies = 1;
    if (p.has("copies") &&
        (!p.i64("copies", &copies) || copies < 1 || copies > chiplets)) {
        fail(error, "copies must be an integer in [1, chiplets]");
        return false;
    }
    r.copies = static_cast<int>(copies);
    std::int64_t extraSyncSets = 0;
    if (p.has("extraSyncSets") &&
        (!p.i64("extraSyncSets", &extraSyncSets) || extraSyncSets < 0)) {
        fail(error, "extraSyncSets must be a non-negative integer");
        return false;
    }
    r.extraSyncSets = static_cast<int>(extraSyncSets);
    if (p.has("label") && !p.str("label", &r.label)) {
        fail(error, "malformed label");
        return false;
    }
    *req = std::move(r);
    return true;
}

std::uint64_t
requestHash(const RunRequest &req, const std::string &engineVersion)
{
    std::uint64_t h = json::kFnvOffset;
    json::fnvMixStr(h, canonicalRequestLine(req));
    json::fnvMixStr(h, engineVersion);
    return h;
}

} // namespace cpelide
