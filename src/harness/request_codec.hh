/**
 * @file
 * Canonical RunRequest serialization and content hashing — the
 * identity layer under the serve subsystem's result cache.
 *
 * A RunRequest is *codable* when every field that affects the
 * simulation is a plain value: a named workload with no inline
 * builder, no custom GpuConfig, no RunOptions override, and no
 * caller-owned trace session. Codable requests round-trip through one
 * flat JSON line whose keys are emitted in a fixed order whatever
 * order they arrived in, so two requests that mean the same run
 * always canonicalize to the same bytes.
 *
 * requestHash() is FNV-1a over (canonical line, engine version).
 * Because the simulator is deterministic and CI proves its output
 * byte-identical across thread counts, equal hashes imply equal
 * RunResults for the same engine build — the soundness argument for
 * content-addressed result caching (docs/SERVING.md).
 */

#ifndef CPELIDE_HARNESS_REQUEST_CODEC_HH
#define CPELIDE_HARNESS_REQUEST_CODEC_HH

#include <cstdint>
#include <string>

#include "harness/harness.hh"
#include "stats/json_util.hh"

namespace cpelide
{

/**
 * Whether @p req consists only of serializable fields (see file
 * comment). Requests with an inline builder, custom config, options
 * override, or trace session cannot travel over the wire or key the
 * cache.
 */
bool requestCodable(const RunRequest &req);

/**
 * The canonical flat-JSON line of a codable request: fixed key order
 * (workload, protocol, chiplets, scale, copies, extraSyncSets,
 * label), defaulted fields included, doubles via %.17g so the exact
 * bit pattern round-trips. Precondition: requestCodable(req).
 */
std::string canonicalRequestLine(const RunRequest &req);

/**
 * Read the canonical fields back from a parsed flat object (keys may
 * appear in any order; unknown keys are ignored so the wire protocol
 * can extend). @return false on a missing/malformed field, an unknown
 * protocol name, or out-of-range chiplets/scale/copies, with a
 * one-line reason in @p error (when non-null).
 */
bool parseRequestFields(const JsonLineParser &p, RunRequest *req,
                        std::string *error = nullptr);

/**
 * Content hash of a codable request under the current engine build:
 * FNV-1a over canonicalRequestLine() and @p engineVersion. Stable
 * across processes and field arrival order; distinct for any change
 * to a result-affecting field.
 */
std::uint64_t requestHash(const RunRequest &req,
                          const std::string &engineVersion);

} // namespace cpelide

#endif // CPELIDE_HARNESS_REQUEST_CODEC_HH
