/**
 * @file
 * Shared plumbing for the figure-regeneration benches and examples:
 * run a workload on a configuration, with the scale factor and
 * chiplet-count parameters used throughout the evaluation.
 */

#ifndef CPELIDE_HARNESS_HARNESS_HH
#define CPELIDE_HARNESS_HARNESS_HH

#include <string>
#include <vector>

#include "exec/job.hh"
#include "exec/sweep_runner.hh"
#include "stats/run_result.hh"
#include "workloads/workload.hh"

namespace cpelide
{

/**
 * Simulate @p workload_name on an @p chiplets-chiplet GPU under
 * @p kind. ProtocolKind::Monolithic uses the equivalent monolithic
 * configuration of the same aggregate size.
 *
 * @param scale iteration-count scale (see Workload::build);
 * @param extra_sync_sets Section VI scaling-study knob.
 */
RunResult runWorkload(const std::string &workload_name,
                      ProtocolKind kind, int chiplets,
                      double scale = 1.0, int extra_sync_sets = 0);

/** As runWorkload, but with a caller-supplied configuration. */
RunResult runWorkloadCfg(const std::string &workload_name,
                         const GpuConfig &cfg, const RunOptions &opts,
                         double scale = 1.0);

/**
 * Section VI multi-stream study: replay @p copies instances of the
 * workload concurrently, each bound to a disjoint chiplet subset.
 */
RunResult runWorkloadMultiStream(const std::string &workload_name,
                                 ProtocolKind kind, int chiplets,
                                 int copies, double scale = 1.0);

/**
 * Job factories binding the run* entry points above into exec Jobs,
 * so benches can assemble a SweepSpec and fan it out. @{
 */
Job workloadJob(const std::string &workload_name, ProtocolKind kind,
                int chiplets, double scale = 1.0,
                int extra_sync_sets = 0);
Job workloadCfgJob(const std::string &workload_name,
                   const GpuConfig &cfg, const RunOptions &opts,
                   double scale = 1.0);
Job multiStreamJob(const std::string &workload_name, ProtocolKind kind,
                   int chiplets, int copies, double scale = 1.0);
/** @} */

/**
 * Run @p spec on a SweepRunner sized by CPELIDE_JOBS and return the
 * outcomes in spec order (see exec/sweep_runner.hh). Failed jobs get
 * a warn() line on stderr and a zeroed result row; the sweep itself
 * never aborts.
 */
std::vector<JobOutcome> runSweep(const SweepSpec &spec);

/**
 * Scale factor from the CPELIDE_SCALE environment variable (default
 * 1.0). Lets CI and quick local runs shrink every bench uniformly.
 */
double envScale();

/**
 * Warn (once per process) about CPELIDE_* environment variables that
 * no component reads — a misspelled knob (CPELIDE_TIMEOUT instead of
 * CPELIDE_TIMEOUT_MS) otherwise fails silently as a no-op. Called
 * automatically by runSweep; exposed for tests and custom harnesses.
 * @return the unrecognized names found (tests).
 */
std::vector<std::string> warnUnknownEnvVars();

/** Print the Table-I configuration banner once per binary. */
void printConfigBanner(int chiplets);

} // namespace cpelide

#endif // CPELIDE_HARNESS_HARNESS_HH
