/**
 * @file
 * Shared plumbing for the figure-regeneration benches and examples:
 * run a workload on a configuration, with the scale factor and
 * chiplet-count parameters used throughout the evaluation.
 */

#ifndef CPELIDE_HARNESS_HARNESS_HH
#define CPELIDE_HARNESS_HARNESS_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/job.hh"
#include "exec/sweep_runner.hh"
#include "runtime/runtime.hh"
#include "stats/run_result.hh"
#include "workloads/workload.hh"

namespace cpelide
{

/**
 * One simulation, fully described. The single entry point into the
 * harness: benches, examples, and tests all build a RunRequest and
 * hand it to run() (one-shot) or makeJob() (sweep fan-out); the old
 * per-shape wrapper trio is gone (scripts/lint.py bans the names).
 *
 * Exactly one of @ref workload (a named workload from
 * workloads/workload.hh) or @ref builder (an inline kernel-building
 * function, as the examples use) must be set. Everything else
 * defaults sensibly:
 *
 * @code
 *   RunResult r = run({.workload = "spmv",
 *                      .protocol = ProtocolKind::CpElide,
 *                      .chiplets = 4});
 * @endcode
 */
struct RunRequest
{
    /** Named workload ("" when @ref builder is used instead). */
    std::string workload;
    /** Protocol; Monolithic derives the equivalent 1-chiplet config. */
    ProtocolKind protocol = ProtocolKind::Baseline;
    int chiplets = 4;
    /** Iteration-count scale in (0, 1] (see Workload::build). */
    double scale = 1.0;
    /**
     * Section VI multi-stream study: replay this many instances of the
     * workload concurrently, each bound to a disjoint chiplet subset
     * (1 = plain single-stream run).
     */
    int copies = 1;
    /** Section VI scaling-study knob (see GlobalCp). */
    int extraSyncSets = 0;
    /**
     * Intra-run bound/weave workers (see gpu/weave.hh): 1 = the
     * serial path, >1 = parallel trace generation with serial-order
     * replay, 0 (the default) = CPELIDE_SIM_THREADS. Results are
     * byte-identical at any value — which is why this field is
     * excluded from the request hash (harness/request_codec.hh).
     */
    int simThreads = 0;
    /** Custom configuration (otherwise derived from protocol/chiplets). */
    std::optional<GpuConfig> cfg;
    /**
     * Full RunOptions override (fault injection, annotation
     * validation, stream bindings...). When set, its protocol wins
     * over @ref protocol; run() warns once per process when the two
     * are both set and disagree (see requestProtocolConflict).
     */
    std::optional<RunOptions> options;
    /**
     * Inline kernel builder (the examples' path): called with the
     * Runtime and the effective scale; enqueue kernels, then run()
     * synchronizes and measures.
     */
    std::function<void(Runtime &, double)> builder;
    /**
     * Record into this caller-owned session instead of the
     * CPELIDE_TRACE-driven internal one; the caller then owns export.
     */
    TraceSession *trace = nullptr;
    /** Result label override ("" = derived from workload/copies). */
    std::string label;
};

/**
 * Execute @p req and return its measurements. Honors CPELIDE_TRACE:
 * when set (and @p req.trace is null), the run records into the
 * process-wide TraceArchive and rewrites the trace JSON file.
 */
RunResult run(const RunRequest &req);

/**
 * Bind @p req into an exec Job (label derived like the legacy job
 * factories: "workload/protocol/Nc[+syncK]", ".../custom" with a
 * custom cfg, "workloadxC/..." for multi-stream). Job bodies do NOT
 * touch the TraceArchive themselves — runSweep() appends their
 * harvested events in spec order, keeping the archive deterministic
 * under CPELIDE_JOBS > 1.
 */
Job makeJob(const RunRequest &req);

/**
 * Whether @p req sets both a top-level protocol and an options
 * override that name *different* protocols — the one ambiguity the
 * RunRequest surface allows. The options override wins (it is the
 * more specific statement); run()/makeJob() warn once per process
 * when this predicate holds instead of resolving it silently.
 */
bool requestProtocolConflict(const RunRequest &req);

/**
 * Run @p spec on a SweepRunner sized by CPELIDE_JOBS and return the
 * outcomes in spec order (see exec/sweep_runner.hh). Failed jobs get
 * a warn() line on stderr and a zeroed result row; the sweep itself
 * never aborts.
 */
std::vector<JobOutcome> runSweep(const SweepSpec &spec);

/**
 * Scale factor from the CPELIDE_SCALE environment variable (default
 * 1.0). Lets CI and quick local runs shrink every bench uniformly.
 */
double envScale();

/**
 * Warn (once per process) about CPELIDE_* environment variables that
 * no component reads — a misspelled knob (CPELIDE_TIMEOUT instead of
 * CPELIDE_TIMEOUT_MS) otherwise fails silently as a no-op. Called
 * automatically by runSweep; exposed for tests and custom harnesses.
 * @return the unrecognized names found (tests).
 */
std::vector<std::string> warnUnknownEnvVars();

/** Print the Table-I configuration banner once per binary. */
void printConfigBanner(int chiplets);

} // namespace cpelide

#endif // CPELIDE_HARNESS_HARNESS_HH
