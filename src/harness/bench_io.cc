#include "harness/bench_io.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cpelide
{

BenchIo
BenchIo::fromArgs(int &argc, char **argv)
{
    BenchIo io;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--format", 8) != 0) {
            argv[kept++] = argv[i];
            continue;
        }
        if (arg[8] != '=' || !parseStatFormat(arg + 9, &io._format)) {
            std::fprintf(stderr,
                         "%s: bad flag '%s' "
                         "(expected --format=ascii|json|csv)\n",
                         argv[0], arg);
            std::exit(2);
        }
    }
    argc = kept;
    argv[argc] = nullptr;
    if (io._format != StatFormat::Ascii)
        io._sink = makeStatSink(io._format, stdout);
    return io;
}

void
BenchIo::emit(const SweepSpec &spec,
              const std::vector<JobOutcome> &outcomes)
{
    if (!_sink)
        return;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        StatRecord rec;
        rec.sweep = spec.name;
        rec.label = i < spec.jobs.size() ? spec.jobs[i].label
                                         : std::to_string(i);
        rec.ok = outcomes[i].ok;
        rec.error = outcomes[i].error;
        rec.result = outcomes[i].result;
        _sink->emit(rec);
    }
}

void
BenchIo::finish()
{
    if (_sink)
        _sink->finish();
}

} // namespace cpelide
