#include "harness/bench_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "prof/registry.hh"
#include "prof/snapshot.hh"
#include "sim/exec_options.hh"
#include "sim/log.hh"
#include "stats/report.hh"

namespace cpelide
{

/**
 * Accumulates every profiled run's frozen snapshot and renders the
 * --profile report. Shared (like the sink) because BenchIo is
 * copyable; benches emit from the main thread only.
 */
struct BenchIo::ProfileCollector
{
    /** The slice of a RunResult the report needs (no trace events). */
    struct Record
    {
        std::string sweep;
        std::string label;
        std::string workload;
        std::string protocol;
        int numChiplets = 0;
        std::uint64_t cycles = 0;
        std::uint64_t stall[prof::kNumStallBins] = {};
        prof::ProfSnapshot prof;
    };

    std::string path;
    std::vector<Record> records;

    void write() const;
    /** Render one run's counters as per-component tables. */
    static std::string render(const Record &rec);
};

std::string
BenchIo::ProfileCollector::render(const Record &rec)
{
    std::string out = "== profile: " + rec.sweep + " / " + rec.label +
                      " ==\n";
    out += "workload " + rec.workload + ", protocol " + rec.protocol +
           ", " + std::to_string(rec.numChiplets) + " chiplets, " +
           std::to_string(rec.cycles) + " cycles\n\n";

    // Stall-cycle attribution: every chiplet cycle lands in exactly
    // one bin, so the bins sum to numChiplets * cycles.
    std::uint64_t total = 0;
    for (int b = 0; b < prof::kNumStallBins; ++b)
        total += rec.stall[b];
    AsciiTable stall({"stall bin", "chiplet-cycles", "share"});
    for (int b = 0; b < prof::kNumStallBins; ++b) {
        const std::uint64_t v = rec.stall[b];
        stall.addRow({prof::stallBinName(static_cast<prof::StallBin>(b)),
                      std::to_string(v),
                      total ? fmt(100.0 * static_cast<double>(v) /
                                      static_cast<double>(total),
                                  1) + "%"
                            : "-"});
    }
    stall.addRule();
    stall.addRow({"total", std::to_string(total),
                  total ? "100.0%" : "-"});
    out += "-- stall-cycle attribution --\n" + stall.render() + "\n";

    // Scalars grouped by component (the first path segment), groups
    // and rows in registration order so the report is deterministic.
    std::vector<std::pair<std::string, std::vector<const prof::CounterSnap *>>>
        groups;
    for (const prof::CounterSnap &c : rec.prof.counters) {
        const std::size_t slash = c.name.find('/');
        const std::string component =
            slash == std::string::npos ? std::string("run")
                                       : c.name.substr(0, slash);
        std::vector<const prof::CounterSnap *> *rows = nullptr;
        for (auto &g : groups) {
            if (g.first == component) {
                rows = &g.second;
                break;
            }
        }
        if (!rows) {
            groups.emplace_back(component,
                                std::vector<const prof::CounterSnap *>());
            rows = &groups.back().second;
        }
        rows->push_back(&c);
    }
    for (const auto &g : groups) {
        AsciiTable t({"counter", "value"});
        for (const prof::CounterSnap *c : g.second)
            t.addRow({c->name, std::to_string(c->value)});
        out += "-- " + g.first + " --\n" + t.render() + "\n";
    }

    if (!rec.prof.histograms.empty()) {
        AsciiTable t({"histogram", "count", "sum", "mean", "buckets"});
        for (const prof::HistogramSnap &h : rec.prof.histograms) {
            std::string buckets;
            for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                if (h.buckets[i] == 0)
                    continue;
                if (!buckets.empty())
                    buckets += ' ';
                buckets += "b" + std::to_string(i) + ":" +
                           std::to_string(h.buckets[i]);
            }
            t.addRow({h.name, std::to_string(h.count),
                      std::to_string(h.sum),
                      h.count ? fmt(static_cast<double>(h.sum) /
                                        static_cast<double>(h.count),
                                    1)
                              : "-",
                      buckets.empty() ? "-" : buckets});
        }
        out += "-- histograms --\n" + t.render() + "\n";
    }

    if (!rec.prof.series.empty()) {
        AsciiTable t({"series", "points", "first", "last", "min", "max"});
        for (const prof::SeriesSnap &s : rec.prof.series) {
            if (s.points.empty()) {
                t.addRow({s.name, "0", "-", "-", "-", "-"});
                continue;
            }
            std::uint64_t lo = s.points.front().value;
            std::uint64_t hi = lo;
            for (const prof::SeriesPoint &p : s.points) {
                lo = std::min(lo, p.value);
                hi = std::max(hi, p.value);
            }
            t.addRow({s.name, std::to_string(s.points.size()),
                      std::to_string(s.points.front().value),
                      std::to_string(s.points.back().value),
                      std::to_string(lo), std::to_string(hi)});
        }
        out += "-- time series --\n" + t.render() + "\n";
    }
    return out;
}

void
BenchIo::ProfileCollector::write() const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open profile report '" + path + "' for writing");
        return;
    }
    std::string all;
    if (records.empty())
        all = "(no profiled runs)\n";
    for (const Record &rec : records)
        all += render(rec) + "\n";
    std::fwrite(all.data(), 1, all.size(), f);
    std::fclose(f);
}

BenchIo
BenchIo::fromArgs(int &argc, char **argv)
{
    BenchIo io;
    std::string profilePath;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--profile", 9) == 0) {
            if (arg[9] != '=' || arg[10] == '\0') {
                std::fprintf(stderr,
                             "%s: bad flag '%s' "
                             "(expected --profile=PATH)\n",
                             argv[0], arg);
                std::exit(2);
            }
            profilePath = arg + 10;
            continue;
        }
        if (std::strncmp(arg, "--sim-threads", 13) == 0) {
            char *end = nullptr;
            const long v = arg[13] == '='
                               ? std::strtol(arg + 14, &end, 10)
                               : 0;
            if (arg[13] != '=' || end == arg + 14 || *end != '\0' ||
                v < 1 || v > 256) {
                std::fprintf(stderr,
                             "%s: bad flag '%s' "
                             "(expected --sim-threads=N, 1 <= N <= 256)\n",
                             argv[0], arg);
                std::exit(2);
            }
            // Route through the environment so every layer resolves
            // the knob exactly like CPELIDE_SIM_THREADS (the typed
            // ExecOptions table stays the single parser).
            setenv("CPELIDE_SIM_THREADS", arg + 14, 1);
            continue;
        }
        if (std::strncmp(arg, "--format", 8) != 0) {
            argv[kept++] = argv[i];
            continue;
        }
        if (arg[8] != '=' || !parseStatFormat(arg + 9, &io._format)) {
            std::fprintf(stderr,
                         "%s: bad flag '%s' "
                         "(expected --format=ascii|json|csv)\n",
                         argv[0], arg);
            std::exit(2);
        }
    }
    argc = kept;
    argv[argc] = nullptr;
    if (io._format != StatFormat::Ascii)
        io._sink = makeStatSink(io._format, stdout);

    if (profilePath.empty())
        profilePath = ExecOptions::fromEnv().profilePath;
    if (!profilePath.empty()) {
        prof::setProfileRequest(profilePath);
        io._profile = std::make_shared<ProfileCollector>();
        io._profile->path = profilePath;
        // Create the report up front so a bench that runs no sweeps
        // (table1_config) still produces the file.
        io._profile->write();
    }
    return io;
}

void
BenchIo::emit(const SweepSpec &spec,
              const std::vector<JobOutcome> &outcomes)
{
    if (_profile) {
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const JobOutcome &o = outcomes[i];
            if (!o.ok || o.result.prof.empty())
                continue;
            ProfileCollector::Record rec;
            rec.sweep = spec.name;
            rec.label = i < spec.jobs.size() ? spec.jobs[i].label
                                             : std::to_string(i);
            rec.workload = o.result.workload;
            rec.protocol = o.result.protocol;
            rec.numChiplets = o.result.numChiplets;
            rec.cycles = o.result.cycles;
            rec.stall[0] = o.result.stallComputeCycles;
            rec.stall[1] = o.result.stallMemoryCycles;
            rec.stall[2] = o.result.stallBarrierCycles;
            rec.stall[3] = o.result.stallFlushCycles;
            rec.stall[4] = o.result.stallInvalidateCycles;
            rec.stall[5] = o.result.stallDirectoryCycles;
            rec.prof = o.result.prof;
            _profile->records.push_back(std::move(rec));
        }
        // Rewrite (not append): ascii benches never call finish(), so
        // the file is complete after whatever emit turns out to be
        // the last one.
        _profile->write();
    }

    if (!_sink)
        return;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        StatRecord rec;
        rec.sweep = spec.name;
        rec.label = i < spec.jobs.size() ? spec.jobs[i].label
                                         : std::to_string(i);
        rec.ok = outcomes[i].ok;
        rec.error = outcomes[i].error;
        rec.result = outcomes[i].result;
        _sink->emit(rec);
    }
}

void
BenchIo::finish()
{
    if (_sink)
        _sink->finish();
}

} // namespace cpelide
