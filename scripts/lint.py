#!/usr/bin/env python3
"""Repo lint: the structural rules CI enforces on the tree.

Checks (each prints every violation; exit status 1 if any fired):

 1. include-guards: every header under src/ uses the canonical
    CPELIDE_<DIR>_<FILE>_HH guard derived from its path, with matching
    #ifndef / #define lines and a trailing ``#endif // GUARD`` comment,
    so guards can never collide or drift when files move.

 2. single-getenv: ExecOptions::raw() (src/sim/exec_options.hh) is the
    tree's only environment read. A stray getenv/secure_getenv would
    bypass the typed knob table and the unknown-variable warning.
    Tests and tools are scanned too (tests toggle knobs with setenv
    but must not *read* the environment directly).

 3. no-cout: simulation code must not write to stdout; structured
    output belongs to the stat sinks and the bench harness (stdout is
    machine-parsed sweep output — a stray print corrupts it). Only
    src/harness/ and src/stats/ may touch std::cout. tools/ is scanned
    too; tools/simc.cc is exempt (it is the *client* CLI — its stdout
    IS the NDJSON response stream, there is no simulator underneath).

 4. prof-counters: live stat counters in src/ must be prof::Counter,
    not ad-hoc std::uint64_t members, so they can register with the
    profiling registry and compile out when CPELIDE_PROF_ENABLED=0.
    Flags private members (underscore-prefixed) whose name reads like
    a statistic. Result/snapshot records (src/stats/) and the prof
    primitives themselves are exempt.

 5. legacy-api: the pre-RunRequest harness entry points were deleted;
    their names must not reappear anywhere (code or comments — a
    comment pointing at a dead symbol is how they creep back in).
    Callers build a RunRequest and use run() / makeJob().

 6. unordered-iter: no iteration over std::unordered_map/set in src/.
    Hash iteration order is libstdc++-version- and seed-dependent, so
    any result that flows out of a range-for or .begin() over an
    unordered container is a nondeterminism bug by construction.
    Keyed lookups (find/count/at/[]) are fine. Audited exemptions
    (iteration whose result is re-sorted before anything observable)
    live in UNORDERED_ITER_ALLOWED.

 7. wall-clock: simulation results must be a pure function of the
    request, so src/ must not read the wall clock via system_clock,
    clock_gettime, gettimeofday, time(), or localtime/gmtime.
    steady_clock is allowed: it is monotonic and feeds only host-side
    metrics (watchdog budgets, RunMetrics wall seconds, serve
    deadlines), never simulated time. Audited exemptions (wall reads
    that stamp operator-facing logs, never results) live in
    WALLCLOCK_ALLOWED.

 8. rng: all randomness in src/ flows through the deterministic,
    seedable engine in src/sim/rng.hh. std::rand, std::mt19937,
    random_device & friends are banned — hardware entropy or
    library-dependent engines would break bit-reproducibility.

 9. mutex-discipline: concurrent code uses the annotated cpelide::Mutex
    / MutexGuard (src/sim/thread_annotations.hh), never raw std::mutex
    / std::lock_guard / std::unique_lock / std::scoped_lock — the raw
    types carry no capability attributes, so clang's -Wthread-safety
    cannot see locks taken through them. Additionally, every Mutex
    member must be referenced by at least one CPELIDE_GUARDED_BY /
    CPELIDE_PT_GUARDED_BY / CPELIDE_REQUIRES in its declaring file or
    that file's .hh/.cc pair: a mutex that guards nothing statically
    is either dead weight or silently unverified locking.

10. exemptions-valid: every allowlist entry above must still name an
    existing file (and, for (file, member) entries, a member that
    still appears in it). A stale exemption is a hole that outlives
    the code it excused.

Run from the repository root (CI does):  python3 scripts/lint.py

Options:
  --root PATH   lint PATH instead of the repository (fixture tests)
  --only A,B    run only the named checks (fixture tests run one rule
                against a tree that intentionally violates others)
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ROOT = REPO_ROOT

# The lint fixture trees intentionally violate the rules; they are
# linted one-by-one via --root/--only and must never trip a scan of
# the real tree.
FIXTURE_PREFIX = "tests/lint/fixtures/"

# Directories scanned for the getenv rule (tests intentionally use
# setenv to toggle knobs, but must still not *read* the environment
# directly).
GETENV_DIRS = ["src", "bench", "examples", "tests", "tools"]
GETENV_ALLOWED = {"src/sim/exec_options.hh"}
GETENV_RE = re.compile(r"\b(?:secure_)?getenv\s*\(")

# Only the harness (human/CLI frontend) and the stat sinks (structured
# stdout writers) may use std::cout inside src/. tools/simc.cc is the
# daemon *client*: its stdout is the NDJSON response stream the caller
# asked for — there is no simulation output to corrupt.
COUT_DIRS = ["src", "tools"]
COUT_ALLOWED_PREFIXES = ("src/harness/", "src/stats/")
COUT_ALLOWED = {"tools/simc.cc"}
COUT_RE = re.compile(r"\bstd::cout\b")

SOURCE_SUFFIXES = {".cc", ".cpp", ".hh", ".h"}

# prof-counters rule. Exempt: the prof primitives themselves, and
# src/stats/ (result records are frozen snapshots, not live counters).
# _dirtyCount is live L2 occupancy — decremented when a line is
# cleaned, so it is a gauge, not a monotonic stat. SkewBuffer's
# _horizonStalls lives under the buffer's own mutex (prof::Counter is
# single-threaded) and is harvested into WeaveExecutor's real counter
# after every chunk.
COUNTER_EXEMPT_PREFIXES = ("src/prof/", "src/stats/")
COUNTER_ALLOWED = {("src/mem/cache.hh", "_dirtyCount"),
                   ("src/sim/skew_buffer.hh", "_horizonStalls")}
COUNTER_DECL_RE = re.compile(r"\bstd::uint64_t\s+(_\w+)")
COUNTER_WORD_RE = re.compile(
    r"(count|hits|misses|processed|seen|dropped|issued|elided|elisions|"
    r"evict|invalidat|flush|lookups|accesses|violations|cancel|retries|"
    r"stalls|writebacks|acquires|releases)", re.I)

# legacy-api rule: the deleted pre-RunRequest harness surface. Scans
# code AND comments — a comment naming a dead symbol is drift too.
LEGACY_DIRS = ["src", "tests", "bench", "examples", "tools"]
LEGACY_RE = re.compile(
    r"\b(runWorkload(?:Cfg|MultiStream)?|"
    r"workload(?:Cfg)?Job|multiStreamJob)\b")

# unordered-iter rule. HbChecker::finalize() iterates _lines but
# copies the survivors into a vector and sorts by (ds, line) before
# anything is reported, so hash order never reaches an observable
# result — the audited sorted-snapshot idiom.
UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|"
                               r"multiset)\s*<")
UNORDERED_ITER_ALLOWED = {("src/check/hb_checker.cc", "_lines")}

# wall-clock rule. The serve telemetry slow log stamps each JSONL
# record with a Unix epoch so operators can correlate it with external
# logs; the stamp annotates a diagnostic line and can never reach a
# simulation result (telemetry only observes the request lifecycle).
WALLCLOCK_DIRS = ["src"]
WALLCLOCK_ALLOWED = {"src/serve/telemetry.cc"}
WALLCLOCK_RE = re.compile(
    r"\b(?:std::chrono::)?system_clock\b|"
    r"\bclock_gettime\s*\(|"
    r"\bgettimeofday\s*\(|"
    # time() itself only with its time_t-ish argument spelled out —
    # bare 'time()' is a common accessor name for *simulated* time.
    r"\b(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&\w+)\s*\)|"
    r"\b(?:std::)?(?:localtime|gmtime|ctime)(?:_r)?\s*\(")

# rng rule: the engine itself is the single sanctioned home.
RNG_DIRS = ["src"]
RNG_ALLOWED = {"src/sim/rng.hh"}
RNG_RE = re.compile(
    r"\bstd::rand\b|\bstd::srand\b|\bs?rand\s*\(\s*\)|"
    r"\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|knuth_b|"
    r"random_device|default_random_engine)\b|"
    r"\b[dlm]rand48\s*\(|\brandom\s*\(\s*\)")

# mutex-discipline rule. The annotated wrapper types are the only
# place the raw primitives may appear.
MUTEX_DIRS = ["src", "tools"]
MUTEX_RAW_ALLOWED = {"src/sim/thread_annotations.hh"}
MUTEX_RAW_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
# A class-scope Mutex member: 'Mutex name;' optionally 'mutable', at
# line start. Local 'static Mutex m;' (function scope) does not match.
MUTEX_MEMBER_RE = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*;",
                             re.M)


def rel(path: pathlib.Path) -> str:
    return path.relative_to(ROOT).as_posix()


def source_files(subdir: str):
    base = ROOT / subdir
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        if rel(path).startswith(FIXTURE_PREFIX):
            continue
        yield path


def paired_file(path: pathlib.Path):
    """The .cc of a .hh (or vice versa), when it exists."""
    other = {".hh": [".cc"], ".h": [".cc", ".cpp"],
             ".cc": [".hh", ".h"], ".cpp": [".h", ".hh"]}
    for suffix in other.get(path.suffix, []):
        candidate = path.with_suffix(suffix)
        if candidate.is_file():
            return candidate
    return None


def expected_guard(path: pathlib.Path) -> str:
    parts = path.relative_to(ROOT / "src").with_suffix("").parts
    return "CPELIDE_" + "_".join(p.upper() for p in parts) + "_HH"


def check_include_guards() -> list:
    errors = []
    for path in source_files("src"):
        if path.suffix != ".hh":
            continue
        guard = expected_guard(path)
        text = path.read_text()
        ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.M)
        if not ifndef:
            errors.append(f"{rel(path)}: no include guard (#ifndef)")
            continue
        if ifndef.group(1) != guard:
            errors.append(f"{rel(path)}: guard {ifndef.group(1)} should "
                          f"be {guard}")
            continue
        if not re.search(rf"^#define\s+{re.escape(guard)}\s*$", text, re.M):
            errors.append(f"{rel(path)}: #define does not match guard "
                          f"{guard}")
        if not text.rstrip().endswith(f"#endif // {guard}"):
            errors.append(f"{rel(path)}: file must end with "
                          f"'#endif // {guard}'")
    return errors


def check_single_getenv() -> list:
    errors = []
    for subdir in GETENV_DIRS:
        for path in source_files(subdir):
            if rel(path) in GETENV_ALLOWED:
                continue
            for n, line in enumerate(path.read_text().splitlines(), 1):
                if GETENV_RE.search(line):
                    errors.append(f"{rel(path)}:{n}: getenv outside "
                                  "ExecOptions::raw(); read the knob from "
                                  "ExecOptions::fromEnv() instead")
    return errors


def check_no_cout() -> list:
    errors = []
    for subdir in COUT_DIRS:
        for path in source_files(subdir):
            if rel(path).startswith(COUT_ALLOWED_PREFIXES):
                continue
            if rel(path) in COUT_ALLOWED:
                continue
            for n, line in enumerate(path.read_text().splitlines(), 1):
                if COUT_RE.search(line):
                    errors.append(f"{rel(path)}:{n}: std::cout in "
                                  "simulation code; route output through a "
                                  "stat sink or the harness (stderr via "
                                  "log.hh for diagnostics)")
    return errors


def check_legacy_api() -> list:
    errors = []
    for subdir in LEGACY_DIRS:
        for path in source_files(subdir):
            for n, line in enumerate(path.read_text().splitlines(), 1):
                m = LEGACY_RE.search(line)
                if m:
                    errors.append(f"{rel(path)}:{n}: legacy harness entry "
                                  f"point '{m.group(1)}' (deleted); build a "
                                  "RunRequest and use run()/makeJob() "
                                  "(src/harness/harness.hh)")
    return errors


def check_prof_counters() -> list:
    errors = []
    for path in source_files("src"):
        if rel(path).startswith(COUNTER_EXEMPT_PREFIXES):
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            m = COUNTER_DECL_RE.search(line)
            if not m:
                continue
            name = m.group(1)
            if not COUNTER_WORD_RE.search(name):
                continue
            if (rel(path), name) in COUNTER_ALLOWED:
                continue
            errors.append(f"{rel(path)}:{n}: stat member {name} should "
                          "be prof::Counter (prof/counter.hh) so it "
                          "registers with the profiling registry")
    return errors


def unordered_decl_names(text: str) -> set:
    """Names declared with std::unordered_* type in @p text.

    Walks the template brackets to find the declarator after the
    closing '>'. Heuristic by design: reference/pointer parameters and
    alias declarations yield no name (and aliases therefore escape —
    declare unordered members with the spelled-out type).
    """
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        i, depth = m.end(), 1
        while i < len(text) and depth:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        nm = re.match(r"\s*(\w+)", text[i:])
        if nm:
            names.add(nm.group(1))
    return names


def check_unordered_iter() -> list:
    errors = []
    # Collect names file-by-file, then flag iteration in the declaring
    # file and its .hh/.cc pair (the only scopes where an unqualified
    # member/local name can refer to that declaration).
    for path in source_files("src"):
        text = path.read_text()
        names = unordered_decl_names(text)
        pair = paired_file(path)
        if pair is not None:
            names |= unordered_decl_names(pair.read_text())
        if not names:
            continue
        for n, line in enumerate(text.splitlines(), 1):
            for name in names:
                if (rel(path), name) in UNORDERED_ITER_ALLOWED:
                    continue
                hit = (
                    re.search(rf"for\s*\([^;)]*:\s*\*?&?"
                              rf"(?:\w+(?:\.|->))?{name}\s*\)", line)
                    or re.search(rf"\b{name}\s*(?:\.|->)\s*c?r?begin\s*\(",
                                 line))
                if hit:
                    errors.append(
                        f"{rel(path)}:{n}: iteration over unordered "
                        f"container '{name}' — hash order is not "
                        "deterministic; use an ordered container, or "
                        "sort a snapshot and add an audited exemption")
    return errors


def check_wall_clock() -> list:
    errors = []
    for subdir in WALLCLOCK_DIRS:
        for path in source_files(subdir):
            if rel(path) in WALLCLOCK_ALLOWED:
                continue
            for n, line in enumerate(path.read_text().splitlines(), 1):
                m = WALLCLOCK_RE.search(line)
                if m:
                    errors.append(
                        f"{rel(path)}:{n}: wall-clock read "
                        f"'{m.group(0).strip()}' in simulation code; "
                        "simulated time comes from the EventQueue, and "
                        "host-side metrics use the monotonic "
                        "steady_clock")
    return errors


def check_rng() -> list:
    errors = []
    for subdir in RNG_DIRS:
        for path in source_files(subdir):
            if rel(path) in RNG_ALLOWED:
                continue
            for n, line in enumerate(path.read_text().splitlines(), 1):
                m = RNG_RE.search(line)
                if m:
                    errors.append(
                        f"{rel(path)}:{n}: non-deterministic randomness "
                        f"'{m.group(0).strip()}'; all randomness flows "
                        "through the seedable cpelide::Rng "
                        "(src/sim/rng.hh)")
    return errors


def check_mutex_discipline() -> list:
    errors = []
    annotation_re = re.compile(
        r"CPELIDE_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES)\s*\(\s*"
        r"(?:\w+(?:\.|->))?(\w+)")
    for subdir in MUTEX_DIRS:
        for path in source_files(subdir):
            rpath = rel(path)
            text = path.read_text()
            if rpath not in MUTEX_RAW_ALLOWED:
                for n, line in enumerate(text.splitlines(), 1):
                    m = MUTEX_RAW_RE.search(line)
                    if m:
                        errors.append(
                            f"{rpath}:{n}: raw '{m.group(0)}' — use the "
                            "annotated cpelide::Mutex/MutexGuard "
                            "(src/sim/thread_annotations.hh) so "
                            "-Wthread-safety can check the locking")
            # Every Mutex member must guard something, statically.
            members = set(MUTEX_MEMBER_RE.findall(text))
            if not members:
                continue
            referenced = set(annotation_re.findall(text))
            pair = paired_file(path)
            if pair is not None:
                referenced |= set(annotation_re.findall(pair.read_text()))
            for name in sorted(members - referenced):
                errors.append(
                    f"{rpath}: Mutex member '{name}' is never named by "
                    "a CPELIDE_GUARDED_BY/CPELIDE_REQUIRES annotation; "
                    "annotate what it guards (or delete it)")
    return errors


def check_exemptions_valid() -> list:
    errors = []

    def require_file(rpath: str, rule: str):
        if not (ROOT / rpath).is_file():
            errors.append(f"lint.py: {rule} exemption '{rpath}' names a "
                          "file that no longer exists — remove the stale "
                          "entry")
            return None
        return (ROOT / rpath).read_text()

    for rpath in sorted(GETENV_ALLOWED):
        require_file(rpath, "single-getenv")
    for rpath in sorted(COUT_ALLOWED):
        require_file(rpath, "no-cout")
    for rpath in sorted(WALLCLOCK_ALLOWED):
        require_file(rpath, "wall-clock")
    for rpath in sorted(RNG_ALLOWED):
        require_file(rpath, "rng")
    for rpath in sorted(MUTEX_RAW_ALLOWED):
        require_file(rpath, "mutex-discipline")
    for rpath, member in sorted(COUNTER_ALLOWED):
        text = require_file(rpath, "prof-counters")
        if text is not None and member not in text:
            errors.append(f"lint.py: prof-counters exemption "
                          f"('{rpath}', '{member}') names a member that "
                          "no longer appears in the file — remove the "
                          "stale entry")
    for rpath, member in sorted(UNORDERED_ITER_ALLOWED):
        text = require_file(rpath, "unordered-iter")
        if text is not None and member not in text:
            errors.append(f"lint.py: unordered-iter exemption "
                          f"('{rpath}', '{member}') names a member that "
                          "no longer appears in the file — remove the "
                          "stale entry")
    return errors


CHECKS = [
    ("include-guards", check_include_guards),
    ("single-getenv", check_single_getenv),
    ("no-cout", check_no_cout),
    ("prof-counters", check_prof_counters),
    ("legacy-api", check_legacy_api),
    ("unordered-iter", check_unordered_iter),
    ("wall-clock", check_wall_clock),
    ("rng", check_rng),
    ("mutex-discipline", check_mutex_discipline),
    ("exemptions-valid", check_exemptions_valid),
]


def main() -> int:
    global ROOT
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="lint this tree instead of the repository "
                             "(fixture tests)")
    parser.add_argument("--only", default=None,
                        help="comma-separated subset of checks to run")
    args = parser.parse_args()
    if args.root is not None:
        ROOT = pathlib.Path(args.root).resolve()
        if not ROOT.is_dir():
            print(f"lint: --root {args.root}: not a directory")
            return 2
    selected = CHECKS
    if args.only is not None:
        wanted = [w.strip() for w in args.only.split(",") if w.strip()]
        known = {name for name, _ in CHECKS}
        for w in wanted:
            if w not in known:
                print(f"lint: --only {w}: unknown check "
                      f"(known: {', '.join(sorted(known))})")
                return 2
        selected = [(name, fn) for name, fn in CHECKS if name in wanted]
    failed = False
    for name, fn in selected:
        errors = fn()
        if errors:
            failed = True
            print(f"lint: {name}: {len(errors)} violation(s)")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"lint: {name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
