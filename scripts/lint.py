#!/usr/bin/env python3
"""Repo lint: the structural rules CI enforces on the tree.

Checks (each prints every violation; exit status 1 if any fired):

 1. include-guards: every header under src/ uses the canonical
    CPELIDE_<DIR>_<FILE>_HH guard derived from its path, with matching
    #ifndef / #define lines and a trailing ``#endif // GUARD`` comment,
    so guards can never collide or drift when files move.

 2. single-getenv: ExecOptions::raw() (src/sim/exec_options.hh) is the
    tree's only environment read. A stray getenv/secure_getenv would
    bypass the typed knob table and the unknown-variable warning.

 3. no-cout: simulation code must not write to stdout; structured
    output belongs to the stat sinks and the bench harness (stdout is
    machine-parsed sweep output — a stray print corrupts it). Only
    src/harness/ and src/stats/ may touch std::cout.

 4. prof-counters: live stat counters in src/ must be prof::Counter,
    not ad-hoc std::uint64_t members, so they can register with the
    profiling registry and compile out when CPELIDE_PROF_ENABLED=0.
    Flags private members (underscore-prefixed) whose name reads like
    a statistic. Result/snapshot records (src/stats/) and the prof
    primitives themselves are exempt.

 5. legacy-api: the pre-RunRequest harness entry points were deleted;
    their names must not reappear anywhere (code or comments — a
    comment pointing at a dead symbol is how they creep back in).
    Callers build a RunRequest and use run() / makeJob().

Run from the repository root (CI does):  python3 scripts/lint.py
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Directories scanned for the getenv rule (tests intentionally use
# setenv to toggle knobs, but must still not *read* the environment
# directly).
GETENV_DIRS = ["src", "bench", "examples"]
GETENV_ALLOWED = {"src/sim/exec_options.hh"}
GETENV_RE = re.compile(r"\b(?:secure_)?getenv\s*\(")

# Only the harness (human/CLI frontend) and the stat sinks (structured
# stdout writers) may use std::cout inside src/.
COUT_ALLOWED_PREFIXES = ("src/harness/", "src/stats/")
COUT_RE = re.compile(r"\bstd::cout\b")

SOURCE_SUFFIXES = {".cc", ".cpp", ".hh", ".h"}

# prof-counters rule. Exempt: the prof primitives themselves, and
# src/stats/ (result records are frozen snapshots, not live counters).
# _dirtyCount is live L2 occupancy — decremented when a line is
# cleaned, so it is a gauge, not a monotonic stat. SkewBuffer's
# _horizonStalls lives under the buffer's own mutex (prof::Counter is
# single-threaded) and is harvested into WeaveExecutor's real counter
# after every chunk.
COUNTER_EXEMPT_PREFIXES = ("src/prof/", "src/stats/")
COUNTER_ALLOWED = {("src/mem/cache.hh", "_dirtyCount"),
                   ("src/sim/skew_buffer.hh", "_horizonStalls")}
COUNTER_DECL_RE = re.compile(r"\bstd::uint64_t\s+(_\w+)")
COUNTER_WORD_RE = re.compile(
    r"(count|hits|misses|processed|seen|dropped|issued|elided|elisions|"
    r"evict|invalidat|flush|lookups|accesses|violations|cancel|retries|"
    r"stalls|writebacks|acquires|releases)", re.I)

# legacy-api rule: the deleted pre-RunRequest harness surface. Scans
# code AND comments — a comment naming a dead symbol is drift too.
LEGACY_DIRS = ["src", "tests", "bench", "examples", "tools"]
LEGACY_RE = re.compile(
    r"\b(runWorkload(?:Cfg|MultiStream)?|"
    r"workload(?:Cfg)?Job|multiStreamJob)\b")


def rel(path: pathlib.Path) -> str:
    return path.relative_to(ROOT).as_posix()


def source_files(subdir: str):
    for path in sorted((ROOT / subdir).rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def expected_guard(path: pathlib.Path) -> str:
    parts = path.relative_to(ROOT / "src").with_suffix("").parts
    return "CPELIDE_" + "_".join(p.upper() for p in parts) + "_HH"


def check_include_guards() -> list:
    errors = []
    for path in source_files("src"):
        if path.suffix != ".hh":
            continue
        guard = expected_guard(path)
        text = path.read_text()
        ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.M)
        if not ifndef:
            errors.append(f"{rel(path)}: no include guard (#ifndef)")
            continue
        if ifndef.group(1) != guard:
            errors.append(f"{rel(path)}: guard {ifndef.group(1)} should "
                          f"be {guard}")
            continue
        if not re.search(rf"^#define\s+{re.escape(guard)}\s*$", text, re.M):
            errors.append(f"{rel(path)}: #define does not match guard "
                          f"{guard}")
        if not text.rstrip().endswith(f"#endif // {guard}"):
            errors.append(f"{rel(path)}: file must end with "
                          f"'#endif // {guard}'")
    return errors


def check_single_getenv() -> list:
    errors = []
    for subdir in GETENV_DIRS:
        for path in source_files(subdir):
            if rel(path) in GETENV_ALLOWED:
                continue
            for n, line in enumerate(path.read_text().splitlines(), 1):
                if GETENV_RE.search(line):
                    errors.append(f"{rel(path)}:{n}: getenv outside "
                                  "ExecOptions::raw(); read the knob from "
                                  "ExecOptions::fromEnv() instead")
    return errors


def check_no_cout() -> list:
    errors = []
    for path in source_files("src"):
        if rel(path).startswith(COUT_ALLOWED_PREFIXES):
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            if COUT_RE.search(line):
                errors.append(f"{rel(path)}:{n}: std::cout in simulation "
                              "code; route output through a stat sink or "
                              "the harness (stderr via log.hh for "
                              "diagnostics)")
    return errors


def check_legacy_api() -> list:
    errors = []
    for subdir in LEGACY_DIRS:
        if not (ROOT / subdir).is_dir():
            continue
        for path in source_files(subdir):
            for n, line in enumerate(path.read_text().splitlines(), 1):
                m = LEGACY_RE.search(line)
                if m:
                    errors.append(f"{rel(path)}:{n}: legacy harness entry "
                                  f"point '{m.group(1)}' (deleted); build a "
                                  "RunRequest and use run()/makeJob() "
                                  "(src/harness/harness.hh)")
    return errors


def check_prof_counters() -> list:
    errors = []
    for path in source_files("src"):
        if rel(path).startswith(COUNTER_EXEMPT_PREFIXES):
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            m = COUNTER_DECL_RE.search(line)
            if not m:
                continue
            name = m.group(1)
            if not COUNTER_WORD_RE.search(name):
                continue
            if (rel(path), name) in COUNTER_ALLOWED:
                continue
            errors.append(f"{rel(path)}:{n}: stat member {name} should "
                          "be prof::Counter (prof/counter.hh) so it "
                          "registers with the profiling registry")
    return errors


def main() -> int:
    checks = [
        ("include-guards", check_include_guards),
        ("single-getenv", check_single_getenv),
        ("no-cout", check_no_cout),
        ("prof-counters", check_prof_counters),
        ("legacy-api", check_legacy_api),
    ]
    failed = False
    for name, fn in checks:
        errors = fn()
        if errors:
            failed = True
            print(f"lint: {name}: {len(errors)} violation(s)")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"lint: {name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
