#!/usr/bin/env python3
"""Repo lint: the structural rules CI enforces on the tree.

Checks (each prints every violation; exit status 1 if any fired):

 1. include-guards: every header under src/ uses the canonical
    CPELIDE_<DIR>_<FILE>_HH guard derived from its path, with matching
    #ifndef / #define lines and a trailing ``#endif // GUARD`` comment,
    so guards can never collide or drift when files move.

 2. single-getenv: ExecOptions::raw() (src/sim/exec_options.hh) is the
    tree's only environment read. A stray getenv/secure_getenv would
    bypass the typed knob table and the unknown-variable warning.

 3. no-cout: simulation code must not write to stdout; structured
    output belongs to the stat sinks and the bench harness (stdout is
    machine-parsed sweep output — a stray print corrupts it). Only
    src/harness/ and src/stats/ may touch std::cout.

Run from the repository root (CI does):  python3 scripts/lint.py
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Directories scanned for the getenv rule (tests intentionally use
# setenv to toggle knobs, but must still not *read* the environment
# directly).
GETENV_DIRS = ["src", "bench", "examples"]
GETENV_ALLOWED = {"src/sim/exec_options.hh"}
GETENV_RE = re.compile(r"\b(?:secure_)?getenv\s*\(")

# Only the harness (human/CLI frontend) and the stat sinks (structured
# stdout writers) may use std::cout inside src/.
COUT_ALLOWED_PREFIXES = ("src/harness/", "src/stats/")
COUT_RE = re.compile(r"\bstd::cout\b")

SOURCE_SUFFIXES = {".cc", ".cpp", ".hh", ".h"}


def rel(path: pathlib.Path) -> str:
    return path.relative_to(ROOT).as_posix()


def source_files(subdir: str):
    for path in sorted((ROOT / subdir).rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def expected_guard(path: pathlib.Path) -> str:
    parts = path.relative_to(ROOT / "src").with_suffix("").parts
    return "CPELIDE_" + "_".join(p.upper() for p in parts) + "_HH"


def check_include_guards() -> list:
    errors = []
    for path in source_files("src"):
        if path.suffix != ".hh":
            continue
        guard = expected_guard(path)
        text = path.read_text()
        ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.M)
        if not ifndef:
            errors.append(f"{rel(path)}: no include guard (#ifndef)")
            continue
        if ifndef.group(1) != guard:
            errors.append(f"{rel(path)}: guard {ifndef.group(1)} should "
                          f"be {guard}")
            continue
        if not re.search(rf"^#define\s+{re.escape(guard)}\s*$", text, re.M):
            errors.append(f"{rel(path)}: #define does not match guard "
                          f"{guard}")
        if not text.rstrip().endswith(f"#endif // {guard}"):
            errors.append(f"{rel(path)}: file must end with "
                          f"'#endif // {guard}'")
    return errors


def check_single_getenv() -> list:
    errors = []
    for subdir in GETENV_DIRS:
        for path in source_files(subdir):
            if rel(path) in GETENV_ALLOWED:
                continue
            for n, line in enumerate(path.read_text().splitlines(), 1):
                if GETENV_RE.search(line):
                    errors.append(f"{rel(path)}:{n}: getenv outside "
                                  "ExecOptions::raw(); read the knob from "
                                  "ExecOptions::fromEnv() instead")
    return errors


def check_no_cout() -> list:
    errors = []
    for path in source_files("src"):
        if rel(path).startswith(COUT_ALLOWED_PREFIXES):
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            if COUT_RE.search(line):
                errors.append(f"{rel(path)}:{n}: std::cout in simulation "
                              "code; route output through a stat sink or "
                              "the harness (stderr via log.hh for "
                              "diagnostics)")
    return errors


def main() -> int:
    checks = [
        ("include-guards", check_include_guards),
        ("single-getenv", check_single_getenv),
        ("no-cout", check_no_cout),
    ]
    failed = False
    for name, fn in checks:
        errors = fn()
        if errors:
            failed = True
            print(f"lint: {name}: {len(errors)} violation(s)")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"lint: {name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
