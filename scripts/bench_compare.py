#!/usr/bin/env python3
"""Perf gate: diff a bench run's JSONL output against a committed baseline.

Usage:
    ./build/bench/fig8_performance --format=json > run.jsonl
    python3 scripts/bench_compare.py --baseline BENCH_fig8.json run.jsonl

Reads the ``--format=json`` JSONL stream a bench writes (one
``"type":"result"`` object per sweep point; ``"type":"phase"`` lines are
ignored), keys each run by ``sweep/label``, and compares the fields in
COMPARED_FIELDS against the baseline with a relative tolerance
(default exact: the simulator is deterministic, so at a fixed
CPELIDE_SCALE every counter reproduces bit-for-bit).

Failures (exit status 1, one line per deviation):
  - a baseline key missing from the run (a sweep point disappeared),
  - a run key missing from the baseline (run with --update to adopt it),
  - any compared field deviating beyond --tolerance,
  - a run point that finished with ok=0.

``--update`` regenerates the baseline from the run instead of
comparing; commit the result. Baselines are canonical JSON (sorted
keys, indented) so regeneration diffs minimally.
"""

import argparse
import json
import sys

# Counters gated against the baseline. Deterministic integers only —
# no wall-clock or RSS fields, which vary run to run.
COMPARED_FIELDS = [
    "numChiplets",
    "cycles",
    "kernels",
    "accesses",
    "dramAccesses",
    "l2Hits",
    "l2Misses",
    "l2FlushesIssued",
    "l2InvalidatesIssued",
    "l2FlushesElided",
    "l2InvalidatesElided",
    "linesWrittenBack",
    "syncStallCycles",
    "stallComputeCycles",
    "stallMemoryCycles",
    "stallBarrierCycles",
    "stallFlushCycles",
    "stallInvalidateCycles",
    "stallDirectoryCycles",
]


def load_run(stream) -> dict:
    """Parse JSONL into {"sweep/label": {field: value}}; ok=0 rows keep
    an "_error" marker so the gate can report them."""
    runs = {}
    for n, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            sys.exit(f"bench_compare: line {n}: not JSON ({exc})")
        if rec.get("type") != "result":
            continue
        key = f"{rec.get('sweep', '?')}/{rec.get('label', '?')}"
        if not rec.get("ok", 0):
            runs[key] = {"_error": rec.get("error", "run failed")}
            continue
        runs[key] = {f: rec[f] for f in COMPARED_FIELDS if f in rec}
        # Informational, never compared: which engine produced the
        # row. --update stamps it into the baseline so a later
        # deviation report can say whether the code moved.
        if rec.get("engineVersion"):
            runs[key]["_engineVersion"] = rec["engineVersion"]
    return runs


def deviation(got: float, want: float) -> float:
    """Relative deviation, guarding the want==0 case."""
    if want == got:
        return 0.0
    return abs(got - want) / max(abs(want), 1.0)


def compare(runs: dict, baseline: dict, tolerance: float) -> list:
    errors = []
    for key in sorted(baseline):
        if key not in runs:
            errors.append(f"{key}: in baseline but missing from run")
    for key in sorted(runs):
        fields = runs[key]
        if "_error" in fields:
            errors.append(f"{key}: run failed: {fields['_error']}")
            continue
        if key not in baseline:
            errors.append(f"{key}: not in baseline "
                          "(run with --update to adopt)")
            continue
        want = baseline[key]
        for f in COMPARED_FIELDS:
            if f not in want:
                continue
            if f not in fields:
                errors.append(f"{key}: field {f} missing from run")
                continue
            dev = deviation(fields[f], want[f])
            if dev > tolerance:
                errors.append(f"{key}: {f} = {fields[f]}, baseline "
                              f"{want[f]} (deviation {dev:.2%} > "
                              f"tolerance {tolerance:.2%})")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Diff bench JSONL output against a committed baseline.")
    ap.add_argument("run", help="JSONL file from --format=json ('-' = stdin)")
    ap.add_argument("--baseline", required=True,
                    help="baseline JSON file (e.g. BENCH_fig8.json)")
    ap.add_argument("--tolerance", type=float, default=0.0,
                    help="relative tolerance per field (default 0: the "
                         "simulator is deterministic)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run instead of "
                         "comparing")
    args = ap.parse_args()

    stream = sys.stdin if args.run == "-" else open(args.run)
    with stream:
        runs = load_run(stream)
    if not runs:
        sys.exit("bench_compare: run produced no result records")

    if args.update:
        failed = sorted(k for k, v in runs.items() if "_error" in v)
        if failed:
            for key in failed:
                print(f"bench_compare: refusing to baseline failed run "
                      f"{key}: {runs[key]['_error']}", file=sys.stderr)
            return 1
        with open(args.baseline, "w") as f:
            json.dump(runs, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: wrote {len(runs)} baseline record(s) to "
              f"{args.baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as exc:
        sys.exit(f"bench_compare: cannot read baseline: {exc}")

    errors = compare(runs, baseline, args.tolerance)
    if errors:
        print(f"bench_compare: {len(errors)} deviation(s) vs "
              f"{args.baseline}")
        for e in errors:
            print(f"  {e}")
        run_versions = {v["_engineVersion"] for v in runs.values()
                        if "_engineVersion" in v}
        base_versions = {v.get("_engineVersion")
                         for v in baseline.values()
                         if isinstance(v, dict)} - {None}
        if run_versions or base_versions:
            print(f"  engine version: run {sorted(run_versions)}, "
                  f"baseline {sorted(base_versions) or 'unstamped'}")
        return 1
    print(f"bench_compare: {len(runs)} record(s) match {args.baseline} "
          f"(tolerance {args.tolerance:.2%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
