#!/usr/bin/env python3
"""Validate the simd metrics exposition, both formats.

CI's daemon-smoke job scrapes a live daemon twice,

    simc --metrics                      > metrics.json
    simc --metrics --format prometheus  > metrics.prom

and hands both files here:

    python3 scripts/check_metrics.py metrics.json metrics.prom

Checks, mirroring src/serve/metrics.cc (the series/window tables here
must match serveMetricsSeriesNames()/serveMetricsWindowNames()):

 - JSON: one object with type=metrics/format=json, every scalar key
   and every <series>_{count,rate,p50us,p95us,p99us}_<window> key
   present; quantiles monotone (p50 <= p95 <= p99) per series/window;
   window counts monotone across horizons (1s <= 10s <= 60s); outcome
   counters summing exactly to spansCompleted; a live pid.
 - Prometheus: every line is a comment or `name[{labels}] value` with
   a float value; every sample family is preceded by its `# TYPE`;
   all expected families, outcome labels, lanes, and quantile labels
   present; counters non-negative.
 - Cross-format: the run-request counter agrees between the two
   scrapes (only run requests bump it — the scrapes themselves do
   not), proving both formats render the same snapshot state.

Exit 0 when everything holds; exit 1 with one line per violation.
"""

import json
import re
import sys

SERIES = ["e2e", "queueWait", "simTime", "cacheServe",
          "laneInteractive", "laneBulk"]
WINDOWS = ["1s", "10s", "60s"]
SERIES_FIELDS = ["count", "rate", "p50us", "p95us", "p99us"]

SCALAR_KEYS = [
    "engineVersion", "pid", "uptimeMs",
    "requests", "rejected", "cacheHits", "cacheMisses", "simulations",
    "failures", "simEvents", "cacheEntries", "shed", "deadlineExpired",
    "quarantined", "slowDisconnects",
    "queueInteractive", "queueBulk", "executing", "connections",
    "spansStarted", "spansCompleted",
    "outcomeOk", "outcomeCached", "outcomeFailed", "outcomeShed",
    "outcomeDeadline", "outcomeAbandoned", "slowLogged",
]

OUTCOME_LABELS = ["ok", "cached", "failed", "shed", "deadline",
                  "abandoned"]
QUANTILES = ["0.5", "0.95", "0.99"]

PROM_COUNTERS = [
    "cpelide_serve_requests_total",
    "cpelide_serve_rejected_total",
    "cpelide_serve_cache_hits_total",
    "cpelide_serve_cache_misses_total",
    "cpelide_serve_simulations_total",
    "cpelide_serve_failures_total",
    "cpelide_serve_sim_events_total",
    "cpelide_serve_shed_total",
    "cpelide_serve_deadline_expired_total",
    "cpelide_serve_quarantined_total",
    "cpelide_serve_slow_disconnects_total",
    "cpelide_serve_spans_started_total",
    "cpelide_serve_spans_completed_total",
    "cpelide_serve_slow_logged_total",
]

PROM_GAUGES = [
    "cpelide_serve_executing",
    "cpelide_serve_connections",
    "cpelide_serve_cache_entries",
    "cpelide_serve_uptime_seconds",
    "cpelide_serve_process_pid",
]

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(counter|gauge|histogram|summary)$")


def check_json(text, errors):
    try:
        m = json.loads(text)
    except ValueError as e:
        errors.append(f"json: not parseable: {e}")
        return None
    if not isinstance(m, dict):
        errors.append("json: not an object")
        return None
    if m.get("type") != "metrics" or m.get("format") != "json":
        errors.append("json: missing type=metrics/format=json markers")
    for key in SCALAR_KEYS:
        if key not in m:
            errors.append(f"json: missing key '{key}'")
    for s in SERIES:
        for w in WINDOWS:
            for f in SERIES_FIELDS:
                if f"{s}_{f}_{w}" not in m:
                    errors.append(f"json: missing key '{s}_{f}_{w}'")
    if errors:
        return m

    if not str(m["engineVersion"]):
        errors.append("json: empty engineVersion")
    if m["pid"] <= 0:
        errors.append(f"json: pid {m['pid']} is not a live pid")

    outcomes = sum(m[f"outcome{o.capitalize()}"]
                   for o in OUTCOME_LABELS)
    if outcomes != m["spansCompleted"]:
        errors.append(f"json: outcome counters sum to {outcomes}, "
                      f"spansCompleted is {m['spansCompleted']} — "
                      "torn snapshot")
    if m["spansCompleted"] > m["spansStarted"]:
        errors.append("json: more spans completed than started")

    for s in SERIES:
        for w in WINDOWS:
            p50, p95, p99 = (m[f"{s}_p50us_{w}"], m[f"{s}_p95us_{w}"],
                             m[f"{s}_p99us_{w}"])
            if not (p50 <= p95 <= p99):
                errors.append(f"json: {s}/{w} quantiles not monotone: "
                              f"p50={p50} p95={p95} p99={p99}")
            if m[f"{s}_count_{w}"] < 0 or m[f"{s}_rate_{w}"] < 0:
                errors.append(f"json: {s}/{w} negative count/rate")
        c1, c10, c60 = (m[f"{s}_count_1s"], m[f"{s}_count_10s"],
                        m[f"{s}_count_60s"])
        if not (c1 <= c10 <= c60):
            errors.append(f"json: {s} window counts not monotone "
                          f"across horizons: 1s={c1} 10s={c10} "
                          f"60s={c60}")
    return m


def check_prom(text, errors):
    samples = {}   # family -> list of (labels, value)
    typed = set()
    if text and not text.endswith("\n"):
        errors.append("prom: body does not end with a newline")
    for n, line in enumerate(text.splitlines(), 1):
        if not line:
            errors.append(f"prom:{n}: empty line")
            continue
        if line.startswith("#"):
            t = TYPE_RE.match(line)
            if t:
                typed.add(t.group(1))
            continue
        sm = SAMPLE_RE.match(line)
        if not sm:
            errors.append(f"prom:{n}: not `name[{{labels}}] value`: "
                          f"{line!r}")
            continue
        name, labels, value = sm.group(1), sm.group(2) or "", sm.group(3)
        try:
            v = float(value)
        except ValueError:
            errors.append(f"prom:{n}: non-numeric value {value!r}")
            continue
        if name not in typed:
            errors.append(f"prom:{n}: sample '{name}' has no preceding "
                          "# TYPE comment")
        samples.setdefault(name, []).append((labels, v))

    for name in PROM_COUNTERS:
        vals = samples.get(name)
        if not vals:
            errors.append(f"prom: missing counter family '{name}'")
        elif any(v < 0 for _, v in vals):
            errors.append(f"prom: counter '{name}' went negative")
    for name in PROM_GAUGES:
        if name not in samples:
            errors.append(f"prom: missing gauge family '{name}'")

    out_labels = {lb for lb, _ in
                  samples.get("cpelide_serve_outcomes_total", [])}
    for o in OUTCOME_LABELS:
        if f'{{outcome="{o}"}}' not in out_labels:
            errors.append(f"prom: missing outcome label '{o}'")

    depth_labels = {lb for lb, _ in
                    samples.get("cpelide_serve_queue_depth", [])}
    for lane in ("interactive", "bulk"):
        if f'{{lane="{lane}"}}' not in depth_labels:
            errors.append(f"prom: missing queue_depth lane '{lane}'")

    lat = {lb for lb, _ in
           samples.get("cpelide_serve_latency_microseconds", [])}
    cnt = {lb for lb, _ in samples.get("cpelide_serve_window_count", [])}
    for s in SERIES:
        for w in WINDOWS:
            base = f'series="{s}",window="{w}"'
            if ("{" + base + "}") not in cnt:
                errors.append(f"prom: missing window_count for "
                              f"{s}/{w}")
            for q in QUANTILES:
                want = "{" + base + f',quantile="{q}"' + "}"
                if want not in lat:
                    errors.append(f"prom: missing latency quantile "
                                  f"{q} for {s}/{w}")

    if "cpelide_serve_build_info" not in samples:
        errors.append("prom: missing cpelide_serve_build_info")
    return samples


def main():
    if len(sys.argv) != 3:
        print("usage: check_metrics.py METRICS_JSON METRICS_PROM")
        return 2
    errors = []
    with open(sys.argv[1]) as f:
        m = check_json(f.read(), errors)
    with open(sys.argv[2]) as f:
        samples = check_prom(f.read(), errors)

    # Both scrapes came from the same idle daemon (the metrics verbs
    # themselves never bump the run-request counter), so the two
    # formats must agree on it.
    if m is not None and "requests" in m:
        prom_reqs = samples.get("cpelide_serve_requests_total")
        if prom_reqs and prom_reqs[0][1] != m["requests"]:
            errors.append(
                f"cross: requests disagree between formats: "
                f"json={m['requests']} prom={prom_reqs[0][1]}")

    if errors:
        print(f"check_metrics: {len(errors)} violation(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print("check_metrics: both formats ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
