/**
 * @file
 * Fig 2: performance loss of the 4-chiplet Baseline versus the
 * equivalent (infeasible to build) monolithic GPU, caused by the lack
 * of inter-kernel L2 reuse. Paper: 54% average loss (prior work:
 * 29%-45%).
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Fig 2: 4-chiplet Baseline vs equivalent "
                  "monolithic GPU ==\n");
    }

    SweepSpec spec{"fig2", {}};
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        for (ProtocolKind kind :
             {ProtocolKind::Monolithic, ProtocolKind::Baseline}) {
            RunRequest req;
            req.workload = info.name;
            req.protocol = kind;
            req.scale = scale;
            spec.jobs.push_back(makeJob(req));
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "monolithic cycles", "baseline cycles",
                  "perf loss"});
    std::vector<double> losses;
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        const RunResult &mono = out[next++].result;
        const RunResult &base = out[next++].result;
        // Loss = extra runtime relative to monolithic.
        const double loss =
            static_cast<double>(base.cycles) / mono.cycles - 1.0;
        losses.push_back(loss);
        t.addRow({info.name, std::to_string(mono.cycles),
                  std::to_string(base.cycles), fmtPct(loss)});
    }
    t.addRule();
    t.addRow({"average", "", "", fmtPct(mean(losses))});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\naverage performance loss: %s (paper: ~54%%; prior "
                "work 29-45%%)\n",
                fmtPct(mean(losses)).c_str());
    return 0;
}
