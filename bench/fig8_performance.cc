/**
 * @file
 * Fig 8: performance of CPElide and HMG on 2-, 4-, 6- and 7-chiplet
 * GPUs, normalized to the Baseline at each chiplet count, for all 24
 * workloads plus the reuse-group and overall means.
 *
 * Paper headline (4 chiplets): CPElide +13% over Baseline and +19%
 * over HMG on average (+17%/+20% for the moderate-or-higher reuse
 * group); trends hold at 2/6/7 chiplets and CPElide never hurts the
 * low-reuse group.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables())
        printConfigBanner(4);

    // Fan the whole 24 x 3 x 4 grid out across CPELIDE_JOBS workers;
    // outcomes come back in spec order, so the tables below are
    // byte-identical to the serial run.
    SweepSpec spec{"fig8", {}};
    for (int chiplets : {2, 4, 6, 7}) {
        for (const auto &factory : allWorkloadFactories()) {
            const auto info = factory()->info();
            for (ProtocolKind kind :
                 {ProtocolKind::Baseline, ProtocolKind::Hmg,
                  ProtocolKind::CpElide}) {
                RunRequest req;
                req.workload = info.name;
                req.protocol = kind;
                req.chiplets = chiplets;
                req.scale = scale;
                spec.jobs.push_back(makeJob(req));
            }
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;
    auto take = [&]() -> const RunResult & {
        return out[next++].result;
    };

    for (int chiplets : {2, 4, 6, 7}) {
        std::printf("== Fig 8 (%d chiplets): speedup over Baseline ==\n",
                    chiplets);
        AsciiTable t({"application", "HMG", "CPElide"});
        std::vector<double> hmgAll, elideAll, hmgHigh, elideHigh;
        bool ruleDone = false;
        for (const auto &factory : allWorkloadFactories()) {
            const auto info = factory()->info();
            if (!info.highReuse && !ruleDone) {
                t.addRule();
                ruleDone = true;
            }
            const RunResult &base = take();
            const RunResult &hmg = take();
            const RunResult &elide = take();
            const double sh = static_cast<double>(base.cycles) /
                              hmg.cycles;
            const double se = static_cast<double>(base.cycles) /
                              elide.cycles;
            hmgAll.push_back(sh);
            elideAll.push_back(se);
            if (info.highReuse) {
                hmgHigh.push_back(sh);
                elideHigh.push_back(se);
            }
            t.addRow({info.name, fmt(sh), fmt(se)});
        }
        t.addRule();
        t.addRow({"mean (reuse group)", fmt(mean(hmgHigh)),
                  fmt(mean(elideHigh))});
        t.addRow({"mean (all)", fmt(mean(hmgAll)), fmt(mean(elideAll))});
        std::fputs(t.render().c_str(), stdout);
        std::printf("CPElide vs Baseline: %s   CPElide vs HMG: %s\n\n",
                    fmtPct(mean(elideAll) - 1.0).c_str(),
                    fmtPct(mean(elideAll) / mean(hmgAll) - 1.0).c_str());
    }
    std::puts("paper (4 chiplets): CPElide +13% vs Baseline, +19% vs "
              "HMG\n(+17%/+20% for the moderate-or-higher reuse group)");
    return 0;
}
