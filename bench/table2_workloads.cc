/**
 * @file
 * Table II: the evaluated benchmark suite, its reuse grouping, and the
 * dynamic properties the paper quotes (kernel count — up to 510 — and
 * Chiplet Coherence Table occupancy — at most 11, never overflowing).
 *
 * This bench actually runs every workload (CPElide, 4 chiplets) to
 * measure those properties rather than asserting them.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Table II: Evaluated benchmarks ==\n");
    }

    SweepSpec spec{"table2", {}};
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        RunRequest req;
        req.workload = info.name;
        req.protocol = ProtocolKind::CpElide;
        req.scale = scale;
        spec.jobs.push_back(makeJob(req));
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "suite", "input", "kernels",
                  "accesses", "table max", "conservative"});
    bool headerDone = false;
    std::uint64_t maxKernels = 0, maxTable = 0;
    for (const auto &factory : allWorkloadFactories()) {
        const auto w = factory();
        const auto info = w->info();
        if (!info.highReuse && !headerDone) {
            t.addRule();
            headerDone = true; // low-reuse group below the rule
        }
        const RunResult &r = out[next++].result;
        t.addRow({info.name, info.suite, info.input,
                  std::to_string(r.kernels), std::to_string(r.accesses),
                  std::to_string(r.tableMaxEntries),
                  r.staleReads == 0 ? "ok" : "STALE!"});
        maxKernels = std::max(maxKernels, r.kernels);
        maxTable = std::max(maxTable, r.tableMaxEntries);
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nmax dynamic kernels: %llu (paper: up to 510)\n",
                static_cast<unsigned long long>(maxKernels));
    std::printf("max coherence-table entries: %llu "
                "(paper: 11, never overflows the 64-entry table)\n",
                static_cast<unsigned long long>(maxTable));
    return 0;
}
