/**
 * @file
 * Section VI multi-stream study: replay a subset of the benchmarks as
 * two concurrent jobs, each bound to half the chiplets via the
 * hipSetDevice-style stream binding (mimicking concurrent jobs like
 * the paper's extension of gem5-resources' `streams`).
 *
 * Paper: CPElide outperforms HMG by ~12% on average for multi-stream
 * workloads at 4 chiplets, with trends mirroring the single-stream
 * results.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Section VI: multi-stream workloads (2 jobs x 2 "
                  "chiplets) ==\n");
    }

    const std::vector<std::string> subset = {
        "BabelStream", "Square",  "Hotspot3D", "Backprop",
        "LUD",         "Lulesh",  "RNN-GRU-l", "Pathfinder",
    };

    SweepSpec spec{"multistream", {}};
    for (const auto &name : subset) {
        for (ProtocolKind kind :
             {ProtocolKind::Baseline, ProtocolKind::Hmg,
              ProtocolKind::CpElide}) {
            RunRequest req;
            req.workload = name;
            req.protocol = kind;
            req.scale = scale;
            req.copies = 2;
            spec.jobs.push_back(makeJob(req));
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application x2", "HMG speedup", "CPElide speedup"});
    std::vector<double> hmg, elide;
    for (const auto &name : subset) {
        const RunResult &b = out[next++].result;
        const RunResult &h = out[next++].result;
        const RunResult &c = out[next++].result;
        hmg.push_back(static_cast<double>(b.cycles) / h.cycles);
        elide.push_back(static_cast<double>(b.cycles) / c.cycles);
        t.addRow({name, fmt(hmg.back()), fmt(elide.back())});
    }
    t.addRule();
    t.addRow({"mean", fmt(mean(hmg)), fmt(mean(elide))});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nCPElide vs HMG (multi-stream): %s (paper: ~+12%%)\n",
                fmtPct(mean(elide) / mean(hmg) - 1.0).c_str());
    return 0;
}
