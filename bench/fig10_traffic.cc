/**
 * @file
 * Fig 10: interconnect traffic (flits) for Baseline (B), CPElide (C),
 * and HMG (H) on a 4-chiplet GPU, normalized to Baseline, split into
 * L1-L2, L2-L3, and remote components.
 *
 * Paper headline: CPElide cuts total traffic 14% vs Baseline and 17%
 * vs HMG; CPElide has 37% less L2-L3 traffic than HMG (write-through
 * L2s) and HMG has 23% more remote traffic (4-line directory entries).
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Fig 10: NoC traffic (flits), normalized to "
                  "Baseline ==");
        std::puts("(breakdown: L1-L2 / L2-L3 / remote)\n");
    }

    SweepSpec spec{"fig10", {}};
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        for (ProtocolKind kind :
             {ProtocolKind::Baseline, ProtocolKind::CpElide,
              ProtocolKind::Hmg}) {
            RunRequest req;
            req.workload = info.name;
            req.protocol = kind;
            req.scale = scale;
            spec.jobs.push_back(makeJob(req));
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "C total", "H total", "C breakdown",
                  "H breakdown"});
    std::vector<double> cTot, hTot;
    double cL23 = 0, hL23 = 0, cRem = 0, hRem = 0;
    bool ruleDone = false;
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        if (!info.highReuse && !ruleDone) {
            t.addRule();
            ruleDone = true;
        }
        const RunResult &b = out[next++].result;
        const RunResult &c = out[next++].result;
        const RunResult &h = out[next++].result;
        const double norm = static_cast<double>(b.flits.total());
        cTot.push_back(c.flits.total() / norm);
        hTot.push_back(h.flits.total() / norm);
        cL23 += static_cast<double>(c.flits.l2l3);
        hL23 += static_cast<double>(h.flits.l2l3);
        cRem += static_cast<double>(c.flits.remote);
        hRem += static_cast<double>(h.flits.remote);
        auto bd = [&](const FlitCounts &f) {
            return fmt(f.l1l2 / norm, 3) + "/" + fmt(f.l2l3 / norm, 3) +
                   "/" + fmt(f.remote / norm, 3);
        };
        t.addRow({info.name, fmt(c.flits.total() / norm, 3),
                  fmt(h.flits.total() / norm, 3), bd(c.flits),
                  bd(h.flits)});
    }
    t.addRule();
    t.addRow({"mean", fmt(mean(cTot), 3), fmt(mean(hTot), 3), "", ""});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nCPElide traffic vs Baseline: %s (paper: -14%%)\n",
                fmtPct(mean(cTot) - 1.0).c_str());
    std::printf("CPElide traffic vs HMG: %s (paper: -17%%)\n",
                fmtPct(mean(cTot) / mean(hTot) - 1.0).c_str());
    std::printf("CPElide L2-L3 vs HMG: %s (paper: -37%%)\n",
                fmtPct(cL23 / hL23 - 1.0).c_str());
    std::printf("HMG remote vs CPElide: %s (paper: +23%%)\n",
                fmtPct(hRem / cRem - 1.0).c_str());
    return 0;
}
