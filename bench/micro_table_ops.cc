/**
 * @file
 * google-benchmark microbenchmarks for the CP-side data structures:
 * Chiplet Coherence Table lookups and whole ElideEngine launch
 * decisions. The paper budgets ~6 us of CP time per kernel for these
 * operations (Section IV-B) — these benches show the algorithmic cost
 * is trivially within that on any embedded core.
 */

#include <benchmark/benchmark.h>

#include "core/elide_engine.hh"
#include "harness/bench_io.hh"
#include "mem/cache.hh"

namespace
{

using namespace cpelide;

LaunchDecl
makeDecl(int args, Addr base, bool rw)
{
    LaunchDecl d;
    d.chiplets = {0, 1, 2, 3};
    for (int i = 0; i < args; ++i) {
        KernelArgAccess a;
        a.span = {base + Addr(i) * 0x100000,
                  base + Addr(i) * 0x100000 + 0x40000};
        a.mode = rw ? AccessMode::ReadWrite : AccessMode::ReadOnly;
        for (int c = 0; c < 4; ++c) {
            a.perChiplet.push_back(
                {a.span.lo + (a.span.hi - a.span.lo) * c / 4,
                 a.span.lo + (a.span.hi - a.span.lo) * (c + 1) / 4});
        }
        d.args.push_back(a);
    }
    return d;
}

void
BM_TableLookup(benchmark::State &state)
{
    CoherenceTable t(4, 64);
    for (int i = 0; i < 64; ++i)
        t.insert({Addr(i) * 0x10000, Addr(i) * 0x10000 + 0x8000});
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            t.findOverlapping({probe, probe + 64}));
        probe = (probe + 0x10000) % (64 * 0x10000);
    }
}
BENCHMARK(BM_TableLookup);

void
BM_ElideLaunchSteadyState(benchmark::State &state)
{
    ElideEngine engine(4, 8, 64);
    const LaunchDecl decl =
        makeDecl(static_cast<int>(state.range(0)), 0x1000000, true);
    engine.onKernelLaunch(decl); // warm up rows
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.onKernelLaunch(decl));
    }
}
BENCHMARK(BM_ElideLaunchSteadyState)->Arg(1)->Arg(4)->Arg(8);

void
BM_ElideLaunchWithCoarsening(benchmark::State &state)
{
    ElideEngine engine(4, 8, 64);
    const LaunchDecl decl = makeDecl(12, 0x1000000, true); // > 8 args
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.onKernelLaunch(decl));
    }
}
BENCHMARK(BM_ElideLaunchWithCoarsening);

void
BM_ElideProducerConsumerFlip(benchmark::State &state)
{
    ElideEngine engine(4, 8, 64);
    const LaunchDecl writer = makeDecl(4, 0x1000000, true);
    LaunchDecl reader = makeDecl(4, 0x1000000, false);
    for (auto &a : reader.args)
        a.perChiplet.assign(4, a.span); // Full-range reads
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.onKernelLaunch(writer));
        benchmark::DoNotOptimize(engine.onKernelLaunch(reader));
    }
}
BENCHMARK(BM_ElideProducerConsumerFlip);

void
BM_L2FlushDirtyLines(benchmark::State &state)
{
    // Cost of the software side of a flush over a dirtied 8 MB L2.
    SetAssocCache l2("l2", CacheGeometry{8ull * 1024 * 1024, 32});
    for (auto _ : state) {
        state.PauseTiming();
        for (std::uint64_t l = 0; l < std::uint64_t(state.range(0)); ++l)
            l2.insert(l * kLineBytes, 1, 0, 0, true, nullptr);
        state.ResumeTiming();
        std::uint64_t sink = 0;
        l2.flushAll([&](const Evicted &e) { sink += e.version; });
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_L2FlushDirtyLines)->Arg(1024)->Arg(16384);

} // namespace

// Hand-rolled BENCHMARK_MAIN so the shared bench flags (--format=,
// --profile=) are stripped before google-benchmark sees the argv.
int
main(int argc, char **argv)
{
    cpelide::BenchIo io = cpelide::BenchIo::fromArgs(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    io.finish();
    return 0;
}
