/**
 * @file
 * Fig 9: 4-chiplet memory-subsystem energy for Baseline (B), CPElide
 * (C), and HMG (H), normalized to Baseline, split into L1I, L1D, LDS,
 * L2, NoC, and DRAM.
 *
 * Paper headline: CPElide reduces average energy by 14% vs Baseline
 * and 11% vs HMG, with the differences concentrated in NoC and DRAM.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

namespace
{

std::string
breakdownStr(const EnergyBreakdown &e, double norm)
{
    return fmt(e.l1i / norm, 3) + "/" + fmt(e.l1d / norm, 3) + "/" +
           fmt(e.lds / norm, 3) + "/" + fmt(e.l2 / norm, 3) + "/" +
           fmt(e.noc / norm, 3) + "/" + fmt(e.dram / norm, 3);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Fig 9: memory subsystem energy, normalized to "
                  "Baseline ==");
        std::puts("(columns: total; breakdown "
                  "L1I/L1D/LDS/L2/NoC/DRAM)\n");
    }

    SweepSpec spec{"fig9", {}};
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        for (ProtocolKind kind :
             {ProtocolKind::Baseline, ProtocolKind::CpElide,
              ProtocolKind::Hmg}) {
            RunRequest req;
            req.workload = info.name;
            req.protocol = kind;
            req.scale = scale;
            spec.jobs.push_back(makeJob(req));
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "B total", "C total", "H total",
                  "C breakdown", "H breakdown"});
    std::vector<double> cTotals, hTotals;
    bool ruleDone = false;
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        if (!info.highReuse && !ruleDone) {
            t.addRule();
            ruleDone = true;
        }
        const RunResult &b = out[next++].result;
        const RunResult &c = out[next++].result;
        const RunResult &h = out[next++].result;
        const double norm = b.energy.total();
        cTotals.push_back(c.energy.total() / norm);
        hTotals.push_back(h.energy.total() / norm);
        t.addRow({info.name, "1.000", fmt(c.energy.total() / norm, 3),
                  fmt(h.energy.total() / norm, 3),
                  breakdownStr(c.energy, norm),
                  breakdownStr(h.energy, norm)});
    }
    t.addRule();
    t.addRow({"mean", "1.000", fmt(mean(cTotals), 3),
              fmt(mean(hTotals), 3), "", ""});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nCPElide energy vs Baseline: %s (paper: -14%%)\n",
                fmtPct(mean(cTotals) - 1.0).c_str());
    std::printf("CPElide energy vs HMG: %s (paper: -11%%)\n",
                fmtPct(mean(cTotals) / mean(hTotals) - 1.0).c_str());
    return 0;
}
