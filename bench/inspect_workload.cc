/**
 * @file
 * Diagnostic CLI: run one workload under every configuration and dump
 * the full measurement record side by side.
 *
 * Usage: inspect_workload <workload> [chiplets] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const std::string name = argc > 1 ? argv[1] : "Square";
    const int chiplets = argc > 2 ? std::atoi(argv[2]) : 4;
    const double scale = argc > 3 ? std::atof(argv[3]) : envScale();

    const ProtocolKind kinds[5] = {
        ProtocolKind::Monolithic, ProtocolKind::Baseline,
        ProtocolKind::CpElide, ProtocolKind::Hmg,
        ProtocolKind::HmgWriteBack};
    SweepSpec spec{"inspect", {}};
    for (ProtocolKind kind : kinds) {
        RunRequest req;
        req.workload = name;
        req.protocol = kind;
        req.chiplets = chiplets;
        req.scale = scale;
        spec.jobs.push_back(makeJob(req));
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    AsciiTable t({"metric", "Monolithic", "Baseline", "CPElide", "HMG",
                  "HMG-WB"});
    RunResult r[5];
    for (int i = 0; i < 5; ++i)
        r[i] = out[static_cast<std::size_t>(i)].result;

    auto row = [&](const std::string &label, auto getter, int decimals) {
        std::vector<std::string> cells = {label};
        for (int i = 0; i < 5; ++i)
            cells.push_back(fmt(static_cast<double>(getter(r[i])),
                                decimals));
        t.addRow(cells);
    };
    row("cycles", [](const RunResult &x) { return x.cycles; }, 0);
    row("kernels", [](const RunResult &x) { return x.kernels; }, 0);
    row("accesses", [](const RunResult &x) { return x.accesses; }, 0);
    row("L1 hit%", [](const RunResult &x) { return 100 * x.l1.hitRate(); },
        1);
    row("L2 hit%", [](const RunResult &x) { return 100 * x.l2.hitRate(); },
        1);
    row("L2 accesses",
        [](const RunResult &x) { return x.l2.accesses(); }, 0);
    row("L3 accesses",
        [](const RunResult &x) { return x.l3.accesses(); }, 0);
    row("L3 hit%", [](const RunResult &x) { return 100 * x.l3.hitRate(); },
        1);
    row("DRAM accesses",
        [](const RunResult &x) { return x.dramAccesses; }, 0);
    row("flits l1l2", [](const RunResult &x) { return x.flits.l1l2; }, 0);
    row("flits l2l3", [](const RunResult &x) { return x.flits.l2l3; }, 0);
    row("flits remote",
        [](const RunResult &x) { return x.flits.remote; }, 0);
    row("sync stall",
        [](const RunResult &x) { return x.syncStallCycles; }, 0);
    row("L2 flushes",
        [](const RunResult &x) { return x.l2FlushesIssued; }, 0);
    row("L2 invals",
        [](const RunResult &x) { return x.l2InvalidatesIssued; }, 0);
    row("lines written back",
        [](const RunResult &x) { return x.linesWrittenBack; }, 0);
    row("dir evictions",
        [](const RunResult &x) { return x.directoryEvictions; }, 0);
    row("sharer invals",
        [](const RunResult &x) { return x.sharerInvalidations; }, 0);
    row("table max",
        [](const RunResult &x) { return x.tableMaxEntries; }, 0);
    row("stale reads", [](const RunResult &x) { return x.staleReads; },
        0);
    row("energy (uJ)",
        [](const RunResult &x) { return x.energy.total() / 1e6; }, 1);
    std::printf("%s on %d chiplets (scale %.2f)\n", name.c_str(),
                chiplets, scale);
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
