/**
 * @file
 * Section VI scaling study: mimic hypothetical 8- and 16-chiplet
 * packages by serializing 2x / 4x sets of acquires/releases at each
 * synchronizing launch on the 4-chiplet CPElide configuration.
 *
 * Paper: the additional overhead is small — 1% (8 chiplets) and 2%
 * (16 chiplets) average slowdown — because CPElide issues so few
 * operations in the first place; the study is deliberately
 * conservative (real packages would overlap the extra ops).
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Section VI: CPElide scalability to 8/16 chiplets "
                  "==\n");
    }

    SweepSpec spec{"scaling", {}};
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        for (int extra : {0, 1, 3}) {
            RunRequest req;
            req.workload = info.name;
            req.protocol = ProtocolKind::CpElide;
            req.scale = scale;
            req.extraSyncSets = extra;
            spec.jobs.push_back(makeJob(req));
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "4-chiplet", "mimic 8 (2x sync)",
                  "mimic 16 (4x sync)"});
    std::vector<double> slow8, slow16;
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        const RunResult &r4 = out[next++].result;
        const RunResult &r8 = out[next++].result;
        const RunResult &r16 = out[next++].result;
        slow8.push_back(static_cast<double>(r8.cycles) / r4.cycles - 1.0);
        slow16.push_back(static_cast<double>(r16.cycles) / r4.cycles -
                         1.0);
        t.addRow({info.name, std::to_string(r4.cycles),
                  fmtPct(slow8.back()), fmtPct(slow16.back())});
    }
    t.addRule();
    t.addRow({"average", "", fmtPct(mean(slow8)), fmtPct(mean(slow16))});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\naverage slowdown: 8-chiplet %s (paper ~1%%), "
                "16-chiplet %s (paper ~2%%)\n",
                fmtPct(mean(slow8)).c_str(), fmtPct(mean(slow16)).c_str());
    return 0;
}
