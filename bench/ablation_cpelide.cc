/**
 * @file
 * CPElide design-choice ablations (DESIGN.md section 5):
 *  1. Chiplet Coherence Table capacity (8/16/64 rows): the paper sizes
 *     for 8 DS x 8 kernels; smaller tables fall back to conservative
 *     barriers when they overflow.
 *  2. Coarsening threshold (2 vs 8 DS/kernel): aggressive coarsening
 *     merges unrelated structures and costs extra synchronization.
 *  3. Idealized zero-cost sync ops (the Section VI "fine-grained
 *     hardware range flush" upper bound): how much of the remaining
 *     gap to monolithic is sync latency vs lost reuse.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

namespace
{

Job
variantJob(const std::string &name, int ds_per_kernel, int depth,
           bool free_sync, double scale)
{
    GpuConfig cfg = GpuConfig::radeonVii(4);
    cfg.tableDsPerKernel = ds_per_kernel;
    cfg.tableKernelDepth = depth;
    cfg.freeSyncOps = free_sync;
    cfg.finalize();
    RunOptions opts;
    opts.protocol = ProtocolKind::CpElide;
    RunRequest req;
    req.workload = name;
    req.scale = scale;
    req.cfg = cfg;
    req.options = opts;
    return makeJob(req);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Ablation: CPElide design choices (4 chiplets) "
                  "==\n");
    }

    const std::vector<std::string> subset = {
        "BabelStream", "Hotspot3D", "LUD",     "Lulesh",
        "Color-max",   "SRAD_v2",   "Gaussian"};

    SweepSpec spec{"ablation_cpelide", {}};
    for (const auto &name : subset) {
        spec.jobs.push_back(variantJob(name, 8, 8, false, scale));
        spec.jobs.push_back(variantJob(name, 2, 4, false, scale));
        spec.jobs.push_back(variantJob(name, 2, 8, false, scale));
        spec.jobs.push_back(variantJob(name, 8, 8, true, scale));
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "paper (8x8)", "tiny table (2x4)",
                  "coarsen@2", "ideal sync"});
    std::vector<double> tiny, coarse, ideal;
    for (const auto &name : subset) {
        const RunResult &full = out[next++].result;
        const RunResult &small = out[next++].result;
        const RunResult &co = out[next++].result;
        const RunResult &id = out[next++].result;
        auto rel = [&](const RunResult &r) {
            return static_cast<double>(r.cycles) / full.cycles;
        };
        tiny.push_back(rel(small));
        coarse.push_back(rel(co));
        ideal.push_back(rel(id));
        t.addRow({name, std::to_string(full.cycles), fmt(rel(small)),
                  fmt(rel(co)), fmt(rel(id))});
    }
    t.addRule();
    t.addRow({"geomean (rel. runtime)", "1.00", fmt(geomean(tiny)),
              fmt(geomean(coarse)), fmt(geomean(ideal))});
    std::fputs(t.render().c_str(), stdout);
    std::puts("\n>1.00 = slower than the paper's 64-entry/8-DS design;"
              "\n<1.00 for 'ideal sync' bounds what a hardware range "
              "flush could still recover.");
    return 0;
}
