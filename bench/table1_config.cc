/**
 * @file
 * Table I: print the simulated system configuration for every chiplet
 * count evaluated in the paper (2/4/6/7) plus the monolithic
 * equivalents used by Fig 2.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    // No sweeps to profile here, but accept the shared bench flags so
    // the CLI is uniform (and --profile= still writes its report).
    BenchIo io = BenchIo::fromArgs(argc, argv);
    if (io.tables()) {
        std::puts("== Table I: Simulated baseline GPU parameters ==\n");
        for (int chiplets : {2, 4, 6, 7}) {
            std::printf("---- %d-chiplet configuration ----\n", chiplets);
            printConfigBanner(chiplets);
        }
        std::puts("---- Equivalent monolithic GPU (Fig 2 reference) ----");
        const GpuConfig mono = GpuConfig::monolithicEquivalent(4);
        std::fputs(mono.describe().c_str(), stdout);
    }
    io.finish();
    return 0;
}
