/**
 * @file
 * HMG write-policy ablation (Section IV-C): the paper implemented both
 * HMG variants and found the write-back L2 version performs 13% worse
 * (geomean) than the write-through version it evaluates, because
 * write-back reduces HMG's precise-tracking benefit.
 */

#include <cstdio>

#include "harness/bench_io.hh"
#include "harness/harness.hh"
#include "stats/report.hh"

using namespace cpelide;

int
main(int argc, char **argv)
{
    BenchIo io = BenchIo::fromArgs(argc, argv);
    const double scale = envScale();
    if (io.tables()) {
        printConfigBanner(4);
        std::puts("== Ablation: HMG write-through vs write-back L2 "
                  "==\n");
    }

    SweepSpec spec{"ablation_hmg", {}};
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        for (ProtocolKind kind :
             {ProtocolKind::Hmg, ProtocolKind::HmgWriteBack}) {
            RunRequest req;
            req.workload = info.name;
            req.protocol = kind;
            req.scale = scale;
            spec.jobs.push_back(makeJob(req));
        }
    }
    const std::vector<JobOutcome> out = runSweep(spec);
    io.emit(spec, out);
    if (!io.tables()) {
        io.finish();
        return 0;
    }
    std::size_t next = 0;

    AsciiTable t({"application", "HMG-WT cycles", "HMG-WB cycles",
                  "WB vs WT"});
    std::vector<double> ratios;
    for (const auto &factory : allWorkloadFactories()) {
        const auto info = factory()->info();
        const RunResult &wt = out[next++].result;
        const RunResult &wb = out[next++].result;
        const double ratio =
            static_cast<double>(wt.cycles) / wb.cycles; // speedup of WB
        ratios.push_back(ratio);
        t.addRow({info.name, std::to_string(wt.cycles),
                  std::to_string(wb.cycles), fmtPct(ratio - 1.0)});
    }
    t.addRule();
    t.addRow({"geomean", "", "", fmtPct(geomean(ratios) - 1.0)});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nwrite-back vs write-through geomean: %s "
                "(paper: WB ~13%% worse)\n",
                fmtPct(geomean(ratios) - 1.0).c_str());
    return 0;
}
