/** @file Bench-harness plumbing tests (the RunRequest surface, scaling). */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/harness.hh"

namespace cpelide
{
namespace
{

TEST(Harness, RunRequestProducesLabeledResult)
{
    const RunResult r = run({.workload = "Square",
                             .protocol = ProtocolKind::CpElide,
                             .chiplets = 2,
                             .scale = 0.1});
    EXPECT_EQ(r.workload, "Square");
    EXPECT_EQ(r.protocol, std::string("CPElide"));
    EXPECT_EQ(r.numChiplets, 2);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.staleReads, 0u);
}

TEST(Harness, MonolithicUsesEquivalentConfig)
{
    const RunResult r = run({.workload = "Square",
                             .protocol = ProtocolKind::Monolithic,
                             .chiplets = 4,
                             .scale = 0.1});
    EXPECT_EQ(r.protocol, std::string("Monolithic"));
    // Reported as the equivalent chiplet count for normalization.
    EXPECT_EQ(r.numChiplets, 4);
    EXPECT_EQ(r.flits.remote, 0u);
}

TEST(Harness, ScaleShrinksWork)
{
    const RunResult big = run({.workload = "BabelStream",
                               .protocol = ProtocolKind::CpElide,
                               .chiplets = 2,
                               .scale = 0.6});
    const RunResult small = run({.workload = "BabelStream",
                                 .protocol = ProtocolKind::CpElide,
                                 .chiplets = 2,
                                 .scale = 0.2});
    EXPECT_GT(big.kernels, small.kernels);
    EXPECT_GT(big.accesses, small.accesses);
}

TEST(Harness, DeterministicAcrossRuns)
{
    const RunRequest req = {.workload = "BFS",
                            .protocol = ProtocolKind::Hmg,
                            .chiplets = 4,
                            .scale = 0.15};
    const RunResult a = run(req);
    const RunResult b = run(req);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.flits.total(), b.flits.total());
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Harness, MultiStreamReplaysCopiesConcurrently)
{
    const RunResult one = run({.workload = "Square",
                               .protocol = ProtocolKind::CpElide,
                               .chiplets = 4,
                               .scale = 0.2});
    const RunResult two = run({.workload = "Square",
                               .protocol = ProtocolKind::CpElide,
                               .chiplets = 4,
                               .scale = 0.2,
                               .copies = 2});
    EXPECT_EQ(two.kernels, 2 * one.kernels);
    EXPECT_EQ(two.accesses, 2 * one.accesses);
    // Each job has half the machine, so ~2x the single-job time, but
    // the jobs overlap rather than serialize on top of that.
    EXPECT_GT(two.cycles, one.cycles);
    EXPECT_LT(two.cycles, static_cast<Tick>(2.4 * one.cycles));
    EXPECT_EQ(two.staleReads, 0u);
}

TEST(Harness, ExtraSyncSetsNeverSpeedUp)
{
    const RunResult plain = run({.workload = "Hotspot3D",
                                 .protocol = ProtocolKind::CpElide,
                                 .chiplets = 4,
                                 .scale = 0.2});
    const RunResult mimic16 = run({.workload = "Hotspot3D",
                                   .protocol = ProtocolKind::CpElide,
                                   .chiplets = 4,
                                   .scale = 0.2,
                                   .extraSyncSets = 3});
    EXPECT_GE(mimic16.cycles, plain.cycles);
}

TEST(Harness, EnvScaleParsesAndClamps)
{
    ::setenv("CPELIDE_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(envScale(), 0.5);
    ::setenv("CPELIDE_SCALE", "7.0", 1); // out of range -> default
    EXPECT_DOUBLE_EQ(envScale(), 1.0);
    ::setenv("CPELIDE_SCALE", "junk", 1);
    EXPECT_DOUBLE_EQ(envScale(), 1.0);
    ::unsetenv("CPELIDE_SCALE");
    EXPECT_DOUBLE_EQ(envScale(), 1.0);
}

TEST(Harness, CustomConfigRunHonorsFreeSyncAblation)
{
    GpuConfig cfg = GpuConfig::radeonVii(4);
    cfg.freeSyncOps = true;
    cfg.finalize();
    RunOptions opts;
    opts.protocol = ProtocolKind::Baseline;
    const RunResult ideal = run({.workload = "Square",
                                 .scale = 0.2,
                                 .cfg = cfg,
                                 .options = opts});
    const RunResult real = run({.workload = "Square",
                                .protocol = ProtocolKind::Baseline,
                                .chiplets = 4,
                                .scale = 0.2});
    EXPECT_LT(ideal.syncStallCycles, real.syncStallCycles);
    EXPECT_LE(ideal.cycles, real.cycles);
}

TEST(Harness, ProtocolConflictDetectedOnlyOnDisagreement)
{
    RunOptions opts;
    opts.protocol = ProtocolKind::Hmg;

    // Top-level protocol left at its Baseline default: the options
    // override is the only statement, no conflict.
    RunRequest quiet;
    quiet.workload = "Square";
    quiet.options = opts;
    EXPECT_FALSE(requestProtocolConflict(quiet));

    // Both set and agreeing: no conflict.
    RunRequest agree = quiet;
    agree.protocol = ProtocolKind::Hmg;
    EXPECT_FALSE(requestProtocolConflict(agree));

    // Both set and disagreeing: run() warns once, options win.
    RunRequest clash = quiet;
    clash.protocol = ProtocolKind::CpElide;
    clash.scale = 0.05;
    EXPECT_TRUE(requestProtocolConflict(clash));
    const RunResult r = run(clash);
    EXPECT_EQ(r.protocol, std::string("HMG"));
}

TEST(Harness, WarnsAboutUnknownCpelideEnvVars)
{
    // A misspelled knob must be flagged, not silently ignored.
    ASSERT_EQ(setenv("CPELIDE_TIMEOUT", "1000", 1), 0); // missing _MS
    ASSERT_EQ(setenv("CPELIDE_TIMEOUT_MS", "1000", 1), 0); // real knob
    const auto unknown = warnUnknownEnvVars();
    unsetenv("CPELIDE_TIMEOUT");
    unsetenv("CPELIDE_TIMEOUT_MS");

    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "CPELIDE_TIMEOUT");

    // With only recognized knobs set, nothing is flagged.
    ASSERT_EQ(setenv("CPELIDE_JOBS", "2", 1), 0);
    EXPECT_TRUE(warnUnknownEnvVars().empty());
    unsetenv("CPELIDE_JOBS");
}

} // namespace
} // namespace cpelide
