/** @file Bench-harness plumbing tests (runWorkload variants, scaling). */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/harness.hh"

namespace cpelide
{
namespace
{

TEST(Harness, RunWorkloadProducesLabeledResult)
{
    const RunResult r =
        runWorkload("Square", ProtocolKind::CpElide, 2, 0.1);
    EXPECT_EQ(r.workload, "Square");
    EXPECT_EQ(r.protocol, std::string("CPElide"));
    EXPECT_EQ(r.numChiplets, 2);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.staleReads, 0u);
}

TEST(Harness, MonolithicUsesEquivalentConfig)
{
    const RunResult r =
        runWorkload("Square", ProtocolKind::Monolithic, 4, 0.1);
    EXPECT_EQ(r.protocol, std::string("Monolithic"));
    // Reported as the equivalent chiplet count for normalization.
    EXPECT_EQ(r.numChiplets, 4);
    EXPECT_EQ(r.flits.remote, 0u);
}

TEST(Harness, ScaleShrinksWork)
{
    const RunResult big =
        runWorkload("BabelStream", ProtocolKind::CpElide, 2, 0.6);
    const RunResult small =
        runWorkload("BabelStream", ProtocolKind::CpElide, 2, 0.2);
    EXPECT_GT(big.kernels, small.kernels);
    EXPECT_GT(big.accesses, small.accesses);
}

TEST(Harness, DeterministicAcrossRuns)
{
    const RunResult a =
        runWorkload("BFS", ProtocolKind::Hmg, 4, 0.15);
    const RunResult b =
        runWorkload("BFS", ProtocolKind::Hmg, 4, 0.15);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.flits.total(), b.flits.total());
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Harness, MultiStreamReplaysCopiesConcurrently)
{
    const RunResult one =
        runWorkload("Square", ProtocolKind::CpElide, 4, 0.2);
    const RunResult two = runWorkloadMultiStream(
        "Square", ProtocolKind::CpElide, 4, 2, 0.2);
    EXPECT_EQ(two.kernels, 2 * one.kernels);
    EXPECT_EQ(two.accesses, 2 * one.accesses);
    // Each job has half the machine, so ~2x the single-job time, but
    // the jobs overlap rather than serialize on top of that.
    EXPECT_GT(two.cycles, one.cycles);
    EXPECT_LT(two.cycles, static_cast<Tick>(2.4 * one.cycles));
    EXPECT_EQ(two.staleReads, 0u);
}

TEST(Harness, ExtraSyncSetsNeverSpeedUp)
{
    const RunResult plain =
        runWorkload("Hotspot3D", ProtocolKind::CpElide, 4, 0.2, 0);
    const RunResult mimic16 =
        runWorkload("Hotspot3D", ProtocolKind::CpElide, 4, 0.2, 3);
    EXPECT_GE(mimic16.cycles, plain.cycles);
}

TEST(Harness, EnvScaleParsesAndClamps)
{
    ::setenv("CPELIDE_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(envScale(), 0.5);
    ::setenv("CPELIDE_SCALE", "7.0", 1); // out of range -> default
    EXPECT_DOUBLE_EQ(envScale(), 1.0);
    ::setenv("CPELIDE_SCALE", "junk", 1);
    EXPECT_DOUBLE_EQ(envScale(), 1.0);
    ::unsetenv("CPELIDE_SCALE");
    EXPECT_DOUBLE_EQ(envScale(), 1.0);
}

TEST(Harness, CustomConfigRunHonorsFreeSyncAblation)
{
    GpuConfig cfg = GpuConfig::radeonVii(4);
    cfg.freeSyncOps = true;
    cfg.finalize();
    RunOptions opts;
    opts.protocol = ProtocolKind::Baseline;
    const RunResult ideal = runWorkloadCfg("Square", cfg, opts, 0.2);
    const RunResult real =
        runWorkload("Square", ProtocolKind::Baseline, 4, 0.2);
    EXPECT_LT(ideal.syncStallCycles, real.syncStallCycles);
    EXPECT_LE(ideal.cycles, real.cycles);
}

TEST(Harness, WarnsAboutUnknownCpelideEnvVars)
{
    // A misspelled knob must be flagged, not silently ignored.
    ASSERT_EQ(setenv("CPELIDE_TIMEOUT", "1000", 1), 0); // missing _MS
    ASSERT_EQ(setenv("CPELIDE_TIMEOUT_MS", "1000", 1), 0); // real knob
    const auto unknown = warnUnknownEnvVars();
    unsetenv("CPELIDE_TIMEOUT");
    unsetenv("CPELIDE_TIMEOUT_MS");

    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "CPELIDE_TIMEOUT");

    // With only recognized knobs set, nothing is flagged.
    ASSERT_EQ(setenv("CPELIDE_JOBS", "2", 1), 0);
    EXPECT_TRUE(warnUnknownEnvVars().empty());
    unsetenv("CPELIDE_JOBS");
}

} // namespace
} // namespace cpelide
