/**
 * @file
 * Serve NDJSON parser fuzz: a deterministic, seeded barrage of
 * malformed, oversized, truncated, and interleaved protocol lines
 * against a live in-process daemon. The contract under fire:
 *
 *  - every fault is answered with a classified error or ends in a
 *    dropped connection — never a crash, never a wedge;
 *  - an unbroken megabyte without a newline is rejected (the reader's
 *    line-length guard), not buffered forever;
 *  - a request split across arbitrary write boundaries still parses
 *    (NDJSON framing owes nothing to write sizes);
 *  - after every round, a well-formed request on a healthy connection
 *    still answers.
 *
 * The schedule fuzzer for the *GPU* protocol lives in
 * test_protocol_fuzz.cc; this file fuzzes the serving wire format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/rng.hh"

using namespace cpelide;

namespace
{

std::string
testSocket(const std::string &tag)
{
    const std::string path = std::string(::testing::TempDir()) + "sf_" +
                             tag + std::to_string(getpid()) + ".sock";
    std::remove(path.c_str());
    return path;
}

ServeRequest
squareRequest(std::uint64_t id)
{
    ServeRequest req;
    req.id = id;
    req.run.workload = "Square";
    req.run.protocol = ProtocolKind::CpElide;
    req.run.chiplets = 2;
    req.run.scale = 0.05;
    return req;
}

/** Raw fault-injection socket: the protocol-violating side. */
int
rawConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Best-effort send; false once the daemon kicks the connection. */
bool
rawSend(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read one line with a poll timeout; false on EOF/timeout. */
bool
rawRecvLine(int fd, std::string *line, int timeoutMs)
{
    std::string buffer;
    for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
            line->assign(buffer, 0, nl);
            return true;
        }
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, timeoutMs) <= 0)
            return false;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** A random byte soup line — whatever the Rng serves. */
std::string
garbageLine(Rng &rng)
{
    const std::size_t len = rng.range(1, 200);
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        // Anything but '\n' (that would just frame two shorter lines).
        char c = static_cast<char>(rng.below(256));
        if (c == '\n')
            c = ' ';
        out += c;
    }
    return out;
}

/** A valid request line with a few characters mutated or dropped. */
std::string
mutatedRequestLine(Rng &rng, std::uint64_t id)
{
    std::string line = encodeServeRequest(squareRequest(id));
    const int edits = static_cast<int>(rng.range(1, 4));
    for (int e = 0; e < edits && !line.empty(); ++e) {
        const std::size_t at = rng.below(line.size());
        if (rng.chance(0.5)) {
            char c = static_cast<char>(rng.below(256));
            if (c == '\n')
                c = '}';
            line[at] = c;
        } else {
            line.erase(at, 1);
        }
    }
    return line;
}

TEST(ServeFuzz, SeededBarrageNeverWedgesTheDaemon)
{
    SimServer::Config cfg;
    cfg.socketPath = testSocket("brg");
    cfg.cacheSize = 64;
    cfg.quota = 16;
    cfg.batch = 4;
    cfg.jobs = 2;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    // The control connection: must stay healthy through every round.
    SimClient::Options opts;
    opts.recvTimeoutMs = 60000.0; // bounded so a wedge fails, not hangs
    SimClient control(opts);
    ASSERT_TRUE(control.connect(server.socketPath()));
    // Warm the cache so control probes answer inline.
    ServeResponse warm;
    ASSERT_TRUE(control.request(squareRequest(1), &warm));
    ASSERT_TRUE(warm.ok) << warm.error;

    Rng rng(0xF00DFACEu);
    const int rounds = 48;
    for (int round = 0; round < rounds; ++round) {
        const int fd = rawConnect(server.socketPath());
        ASSERT_GE(fd, 0) << "daemon stopped accepting at round " << round;
        switch (rng.below(4)) {
          case 0: { // garbage line: classified rejection
            ASSERT_TRUE(rawSend(fd, garbageLine(rng) + "\n"));
            std::string line;
            if (rawRecvLine(fd, &line, 30000)) {
                ServeResponse resp;
                if (decodeServeResponse(line, &resp)) {
                    EXPECT_FALSE(resp.ok);
                }
            }
            break;
          }
          case 1: { // mutated request: error or (rarely) a real answer
            ASSERT_TRUE(
                rawSend(fd, mutatedRequestLine(rng, 1000 +
                                               static_cast<std::uint64_t>(
                                                   round)) + "\n"));
            break; // close without reading: the daemon eats the EPIPE
          }
          case 2: { // truncated request, then vanish mid-line
            std::string line = encodeServeRequest(
                squareRequest(2000 + static_cast<std::uint64_t>(round)));
            line.resize(rng.range(1, line.size() - 1));
            ASSERT_TRUE(rawSend(fd, line));
            break;
          }
          case 3: { // interleaved: arbitrary write boundaries still parse
            std::string line =
                encodeServeRequest(squareRequest(1)) + "\n";
            std::size_t cut = 1 + rng.below(line.size() - 1);
            ASSERT_TRUE(rawSend(fd, line.substr(0, cut)));
            ASSERT_TRUE(rawSend(fd, line.substr(cut)));
            std::string answer;
            ASSERT_TRUE(rawRecvLine(fd, &answer, 30000))
                << "split request never answered at round " << round;
            ServeResponse resp;
            ASSERT_TRUE(decodeServeResponse(answer, &resp));
            EXPECT_TRUE(resp.ok) << resp.error;
            EXPECT_TRUE(resp.cached); // id 1 was warmed above
            break;
          }
        }
        ::close(fd);

        // The daemon must still answer a clean request after the fault.
        ServeResponse probe;
        ASSERT_TRUE(control.request(squareRequest(1), &probe))
            << "control connection wedged at round " << round;
        ASSERT_TRUE(probe.ok) << probe.error;
    }

    ServeStats stats;
    ASSERT_TRUE(control.stats(&stats));
    EXPECT_GT(stats.rejected, 0u);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ServeFuzz, OversizedLineIsRejectedAndConnectionDropped)
{
    SimServer::Config cfg;
    cfg.socketPath = testSocket("ovr");
    cfg.cacheSize = 8;
    cfg.jobs = 1;
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    const int fd = rawConnect(server.socketPath());
    ASSERT_GE(fd, 0);
    // Just over the reader's 1 MiB line guard, no newline anywhere.
    // The guard has to fire while we are still sending or shortly
    // after; the daemon answers a classified error and stops reading.
    const std::string block(64 * 1024, 'a');
    for (int i = 0; i < 17 + 1; ++i) {
        if (!rawSend(fd, block))
            break; // already kicked: also a pass
    }
    std::string line;
    if (rawRecvLine(fd, &line, 30000)) {
        ServeResponse resp;
        ASSERT_TRUE(decodeServeResponse(line, &resp));
        EXPECT_FALSE(resp.ok);
        EXPECT_NE(resp.error.find("oversized"), std::string::npos)
            << resp.error;
    }
    ::close(fd);

    // The daemon survives and serves the next client.
    SimClient client;
    ASSERT_TRUE(client.connect(server.socketPath()));
    ServeResponse resp;
    ASSERT_TRUE(client.request(squareRequest(9), &resp));
    EXPECT_TRUE(resp.ok) << resp.error;

    server.stop();
}

} // namespace
