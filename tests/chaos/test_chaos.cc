/**
 * @file
 * Socket-level chaos harness for the simd serving path.
 *
 * Two experiments, both deterministic under a fixed Rng seed:
 *
 *  1. SeededFaultBarrage — a storm of misbehaving connections
 *     (instant disconnects, garbage, requests abandoned mid-line or
 *     mid-answer, readers that stall with unread pipelined responses)
 *     interleaved with well-behaved probes. The daemon must answer
 *     every well-behaved request and finish the storm healthy.
 *
 *  2. KillMidBatchWarmRestartAnswersByteIdentical — the crash-recovery
 *     contract end to end: SIGKILL is emulated with
 *     SimServer::abortStop() (threads torn down, queues discarded,
 *     socket file left behind exactly as a dead process leaves it); a
 *     successor daemon on the same cache directory takes over the
 *     stale socket; the client reconnects and resubmits everything
 *     unanswered; every response — replayed from the warm cache or
 *     re-simulated — is byte-identical to an unharmed baseline run,
 *     modulo the "cached" marker.
 *
 * Protocol-level (parser) fuzzing lives in tests/test_serve_fuzz.cc;
 * this harness attacks connections and process lifetime.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/rng.hh"

using namespace cpelide;

namespace
{

std::string
testSocket(const std::string &tag)
{
    const std::string path = std::string(::testing::TempDir()) + "chaos_" +
                             tag + std::to_string(getpid()) + ".sock";
    std::remove(path.c_str());
    return path;
}

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : _path(std::string(::testing::TempDir()) + "cpelide_chaos_" +
                tag + "_" + std::to_string(getpid()))
    {
        std::filesystem::remove_all(_path);
    }
    ~TempDir() { std::filesystem::remove_all(_path); }
    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

ServeRequest
squareRequest(std::uint64_t id, const std::string &label = "")
{
    ServeRequest req;
    req.id = id;
    req.run.workload = "Square";
    req.run.protocol = ProtocolKind::CpElide;
    req.run.chiplets = 2;
    req.run.scale = 0.05;
    req.run.label = label;
    return req;
}

int
rawConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawSend(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * A response line with its "cached" marker neutralized, so a replay
 * from the warm cache compares equal to the original computation —
 * the byte-identity the whole recovery scheme rests on.
 */
std::string
normalized(const std::string &line)
{
    std::string out = line;
    const std::size_t at = out.find("\"cached\":");
    if (at != std::string::npos &&
        at + std::string("\"cached\":").size() < out.size()) {
        out[at + std::string("\"cached\":").size()] = '#';
    }
    return out;
}

/** Read @p n raw response lines, settling and mapping them by id. */
bool
collectById(SimClient &client, int n,
            std::map<std::uint64_t, std::string> *byId)
{
    for (int i = 0; i < n; ++i) {
        std::string line;
        if (!client.recvLine(&line))
            return false;
        ServeResponse resp;
        if (!decodeServeResponse(line, &resp))
            return false;
        client.settle(resp.id);
        (*byId)[resp.id] = line;
    }
    return true;
}

TEST(Chaos, SeededFaultBarrageNeverWedgesTheServer)
{
    TempDir cacheDir("barrage");
    SimServer::Config cfg;
    cfg.socketPath = testSocket("brg");
    cfg.cacheDir = cacheDir.str();
    cfg.cacheSize = 64;
    cfg.quota = 16;
    cfg.batch = 4;
    cfg.jobs = 2;
    cfg.writeBufBytes = 4096; // small outbox: stalls trip quickly
    SimServer server(cfg);
    ASSERT_TRUE(server.start());

    SimClient::Options opts;
    opts.recvTimeoutMs = 60000.0;
    SimClient probe(opts);
    ASSERT_TRUE(probe.connect(server.socketPath()));
    ServeResponse warm;
    ASSERT_TRUE(probe.request(squareRequest(1), &warm));
    ASSERT_TRUE(warm.ok) << warm.error;
    const std::string cachedLine = encodeServeRequest(squareRequest(1));

    Rng rng(0xDECAF123u);
    for (int round = 0; round < 40; ++round) {
        const int fd = rawConnect(server.socketPath());
        ASSERT_GE(fd, 0) << "stopped accepting at round " << round;
        switch (rng.below(5)) {
          case 0: // connect and vanish
            break;
          case 1: { // garbage, then vanish
            std::string junk;
            const std::size_t len = rng.range(1, 64);
            for (std::size_t i = 0; i < len; ++i) {
                char c = static_cast<char>(rng.below(256));
                junk += c == '\n' ? ' ' : c;
            }
            rawSend(fd, junk + "\n");
            break;
          }
          case 2: { // abandon a request mid-line
            std::string line = encodeServeRequest(
                squareRequest(100 + static_cast<std::uint64_t>(round)));
            line.resize(rng.range(1, line.size() - 1));
            rawSend(fd, line);
            break;
          }
          case 3: // submit, never read the answer
            rawSend(fd, cachedLine + "\n");
            break;
          case 4: { // stalled reader: pipeline cached answers, read none
            const std::size_t repeats = rng.range(50, 200);
            for (std::size_t i = 0; i < repeats; ++i) {
                if (!rawSend(fd, cachedLine + "\n"))
                    break; // daemon kicked us: that is the mechanism
            }
            break;
          }
        }
        ::close(fd);

        ServeResponse resp;
        ASSERT_TRUE(probe.request(squareRequest(1), &resp))
            << "probe wedged at round " << round;
        ASSERT_TRUE(resp.ok) << resp.error;
    }

    ServeHealth health;
    ASSERT_TRUE(probe.health(&health));
    EXPECT_EQ(health.queueInteractive + health.queueBulk, 0u);
    EXPECT_EQ(health.executing, 0u);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(Chaos, KillMidBatchWarmRestartAnswersByteIdentical)
{
    const int kRequests = 6;

    // Unharmed baseline: same six requests against a daemon that never
    // crashes, on its own cache directory.
    std::map<std::uint64_t, std::string> baseline;
    {
        TempDir cacheDir("baseline");
        SimServer::Config cfg;
        cfg.socketPath = testSocket("bas");
        cfg.cacheDir = cacheDir.str();
        cfg.cacheSize = 64;
        cfg.quota = 64;
        cfg.batch = 2;
        cfg.jobs = 1;
        SimServer server(cfg);
        ASSERT_TRUE(server.start());
        SimClient client;
        ASSERT_TRUE(client.connect(server.socketPath()));
        for (int i = 1; i <= kRequests; ++i) {
            ASSERT_TRUE(client.send(squareRequest(
                static_cast<std::uint64_t>(i),
                "r" + std::to_string(i))));
        }
        ASSERT_TRUE(collectById(client, kRequests, &baseline));
        server.stop();
    }
    ASSERT_EQ(baseline.size(), static_cast<std::size_t>(kRequests));

    // Chaos run: same requests, but the daemon is killed mid-batch.
    TempDir cacheDir("victim");
    SimServer::Config cfg;
    cfg.socketPath = testSocket("vic");
    cfg.cacheDir = cacheDir.str();
    cfg.cacheSize = 64;
    cfg.quota = 64;
    cfg.batch = 2;
    cfg.jobs = 1;

    SimClient::Options opts;
    opts.recvTimeoutMs = 60000.0;
    SimClient client(opts);
    std::map<std::uint64_t, std::string> chaos;

    SimServer victim(cfg);
    ASSERT_TRUE(victim.start());
    ASSERT_TRUE(client.connect(victim.socketPath()));
    for (int i = 1; i <= kRequests; ++i) {
        ASSERT_TRUE(client.send(squareRequest(
            static_cast<std::uint64_t>(i), "r" + std::to_string(i))));
    }
    // Read two answers, then "kill -9" the daemon: threads torn down,
    // queued work discarded, socket file left on disk.
    ASSERT_TRUE(collectById(client, 2, &chaos));
    victim.abortStop();
    EXPECT_FALSE(victim.running());
    ASSERT_TRUE(std::filesystem::exists(cfg.socketPath))
        << "abortStop must leave the socket file, like a real SIGKILL";

    // Warm restart on the same cache directory: the successor probes
    // the stale socket, finds no listener, and takes it over.
    SimServer successor(cfg);
    ASSERT_TRUE(successor.start())
        << "successor refused the stale socket of a dead daemon";

    // The client reconnects and resubmits everything unanswered.
    ASSERT_EQ(client.pending(), static_cast<std::size_t>(kRequests - 2));
    ASSERT_TRUE(client.reconnect());
    EXPECT_EQ(client.resubmitted(),
              static_cast<std::uint64_t>(kRequests - 2));
    ASSERT_TRUE(collectById(client, kRequests - 2, &chaos));

    // Every answer — pre-crash, cache-replayed, or re-simulated — is
    // byte-identical to the unharmed baseline, modulo "cached".
    ASSERT_EQ(chaos.size(), static_cast<std::size_t>(kRequests));
    for (const auto &entry : baseline) {
        const auto it = chaos.find(entry.first);
        ASSERT_NE(it, chaos.end()) << "id " << entry.first;
        EXPECT_EQ(normalized(it->second), normalized(entry.second))
            << "id " << entry.first;
    }

    // A request the victim already answered replays from the warm
    // cache: "cached":1 and byte-identical payload.
    const std::uint64_t replayId = chaos.begin()->first;
    ASSERT_TRUE(client.send(squareRequest(
        replayId, "r" + std::to_string(replayId))));
    std::string line;
    ASSERT_TRUE(client.recvLine(&line));
    ServeResponse replay;
    ASSERT_TRUE(decodeServeResponse(line, &replay));
    client.settle(replay.id);
    EXPECT_TRUE(replay.cached);
    EXPECT_EQ(normalized(line), normalized(chaos[replayId]));

    successor.stop();
}

} // namespace
