/** @file ElideEngine behaviour tests: the paper's elision scenarios. */

#include <gtest/gtest.h>

#include "core/elide_engine.hh"

namespace cpelide
{
namespace
{

constexpr int kChiplets = 4;

/** Affine slices of [base, base+len) over the four chiplets. */
std::vector<AddrRange>
slices(Addr base, Addr len)
{
    std::vector<AddrRange> out;
    for (int c = 0; c < kChiplets; ++c) {
        out.push_back({base + len * c / kChiplets,
                       base + len * (c + 1) / kChiplets});
    }
    return out;
}

LaunchDecl
affineLaunch(Addr base, Addr len, AccessMode mode)
{
    LaunchDecl d;
    d.chiplets = {0, 1, 2, 3};
    KernelArgAccess a;
    a.span = {base, base + len};
    a.mode = mode;
    a.perChiplet = slices(base, len);
    d.args.push_back(a);
    return d;
}

LaunchDecl
fullLaunch(Addr base, Addr len, AccessMode mode)
{
    LaunchDecl d;
    d.chiplets = {0, 1, 2, 3};
    KernelArgAccess a;
    a.span = {base, base + len};
    a.mode = mode;
    a.perChiplet.assign(kChiplets, a.span);
    d.args.push_back(a);
    return d;
}

ElideEngine
makeEngine()
{
    return ElideEngine(kChiplets, 8, 64);
}

TEST(ElideEngine, FirstLaunchNeedsNoSync)
{
    auto e = makeEngine();
    const SyncPlan p =
        e.onKernelLaunch(affineLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
    EXPECT_TRUE(p.empty());
    EXPECT_FALSE(p.conservative);
    EXPECT_EQ(e.table().size(), 1u);
}

TEST(ElideEngine, RepeatedAffineRwKernelsElideEverything)
{
    // The Square/BabelStream pattern: same partition every kernel.
    auto e = makeEngine();
    for (int i = 0; i < 10; ++i) {
        const SyncPlan p = e.onKernelLaunch(
            affineLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
        EXPECT_TRUE(p.empty()) << "kernel " << i;
    }
    EXPECT_EQ(e.acquiresIssued(), 0u);
    EXPECT_EQ(e.releasesIssued(), 0u);
    EXPECT_GT(e.releasesElided(), 0u);
}

TEST(ElideEngine, ReadOnlyDataNeverSynchronizes)
{
    // Graph adjacency: RO + Full ranges, reread forever.
    auto e = makeEngine();
    for (int i = 0; i < 10; ++i) {
        const SyncPlan p = e.onKernelLaunch(
            fullLaunch(0x1000, 0x4000, AccessMode::ReadOnly));
        EXPECT_TRUE(p.empty());
    }
}

TEST(ElideEngine, ProducerConsumerTriggersReleaseOnly)
{
    // Hotspot pattern: affine RW write, then RO Full read of the same
    // structure -> release every dirty chiplet, invalidate none (no
    // chiplet can cache another's homed lines).
    auto e = makeEngine();
    e.onKernelLaunch(affineLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
    const SyncPlan p =
        e.onKernelLaunch(fullLaunch(0x1000, 0x4000, AccessMode::ReadOnly));
    EXPECT_EQ(p.releases.size(), 4u);
    EXPECT_TRUE(p.acquires.empty());
    // And the release is not repeated while data stays clean.
    const SyncPlan p2 =
        e.onKernelLaunch(fullLaunch(0x1000, 0x4000, AccessMode::ReadOnly));
    EXPECT_TRUE(p2.empty());
}

TEST(ElideEngine, SubsetScheduleFlushesOnlyTheProducers)
{
    auto e = makeEngine();
    // Chiplets 0+1 write the structure (first touch: their halves).
    LaunchDecl d;
    d.chiplets = {0, 1};
    KernelArgAccess a;
    a.span = {0x1000, 0x5000};
    a.mode = AccessMode::ReadWrite;
    a.perChiplet = {{0x1000, 0x3000}, {0x3000, 0x5000}};
    d.args.push_back(a);
    EXPECT_TRUE(e.onKernelLaunch(d).empty());

    // Chiplets 2+3 read it all: only 0 and 1 must flush.
    LaunchDecl r;
    r.chiplets = {2, 3};
    KernelArgAccess ra = a;
    ra.mode = AccessMode::ReadOnly;
    ra.perChiplet = {{0x1000, 0x5000}, {0x1000, 0x5000}};
    r.args.push_back(ra);
    const SyncPlan p = e.onKernelLaunch(r);
    EXPECT_EQ(p.releases, (std::vector<ChipletId>{0, 1}));
    EXPECT_TRUE(p.acquires.empty());
}

TEST(ElideEngine, StaleChipletAcquiresBeforeReuse)
{
    auto e = makeEngine();
    // Everyone reads the structure (clean copies everywhere).
    e.onKernelLaunch(affineLaunch(0x1000, 0x4000, AccessMode::ReadOnly));
    // Chiplet 0 alone rewrites the whole structure.
    LaunchDecl w;
    w.chiplets = {0};
    KernelArgAccess wa;
    wa.span = {0x1000, 0x5000};
    wa.mode = AccessMode::ReadWrite;
    wa.perChiplet = {{0x1000, 0x5000}};
    w.args.push_back(wa);
    const SyncPlan pw = e.onKernelLaunch(w);
    // Chiplet 0's own clean copy must be invalidated... it is
    // scheduled and others' copies just go Stale lazily.
    EXPECT_TRUE(pw.releases.empty());

    // Now everyone reads their own slice again: chiplets 1-3 were
    // marked Stale and must acquire. Chiplet 0 keeps its dirty slice
    // un-flushed — its remote writes went through to the LLC banks, and
    // nobody reads chiplet 0's homed slice remotely, so even the
    // release is elided (the home-range refinement at work).
    const SyncPlan pr = e.onKernelLaunch(
        affineLaunch(0x1000, 0x4000, AccessMode::ReadOnly));
    EXPECT_TRUE(pr.releases.empty());
    EXPECT_EQ(pr.acquires, (std::vector<ChipletId>{1, 2, 3}));
}

TEST(ElideEngine, ScatteredRwFallsBackConservatively)
{
    // RW + Full on every chiplet (crossWrite): participants restart
    // clean each launch.
    auto e = makeEngine();
    e.onKernelLaunch(fullLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
    const SyncPlan p =
        e.onKernelLaunch(fullLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
    EXPECT_EQ(p.acquires.size(), 4u);
}

TEST(ElideEngine, TableOverflowDegradesToFullBarrier)
{
    ElideEngine e(kChiplets, 8, 4); // tiny table
    for (int i = 0; i < 4; ++i) {
        e.onKernelLaunch(affineLaunch(0x100000 * (i + 1), 0x4000,
                                      AccessMode::ReadWrite));
    }
    const SyncPlan p = e.onKernelLaunch(
        affineLaunch(0x900000, 0x4000, AccessMode::ReadWrite));
    EXPECT_TRUE(p.conservative);
    EXPECT_EQ(p.acquires.size(), 4u);
    EXPECT_EQ(e.conservativeFallbacks(), 1u);
    // Table restarted: just the new kernel's row.
    EXPECT_EQ(e.table().size(), 1u);
}

TEST(ElideEngine, CoarseningMergesBeyondEightStructures)
{
    auto e = makeEngine();
    LaunchDecl d;
    d.chiplets = {0, 1, 2, 3};
    for (int i = 0; i < 11; ++i) {
        KernelArgAccess a;
        a.span = {Addr(0x10000) * (i + 1), Addr(0x10000) * (i + 1) + 0x4000};
        a.mode = AccessMode::ReadOnly;
        a.perChiplet = slices(a.span.lo, 0x4000);
        d.args.push_back(a);
    }
    e.onKernelLaunch(d);
    EXPECT_GT(e.coarsenEvents(), 0u);
    EXPECT_LE(e.table().size(), 8u);
}

TEST(ElideEngine, FinalBarrierReleasesEverythingAndClears)
{
    auto e = makeEngine();
    e.onKernelLaunch(affineLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
    const SyncPlan p = e.finalBarrier();
    EXPECT_EQ(p.releases.size(), 4u);
    EXPECT_EQ(e.table().size(), 0u);
}

TEST(ElideEngine, EntryRemovedWhenAllChipletsNotPresent)
{
    auto e = makeEngine();
    e.onKernelLaunch(affineLaunch(0x1000, 0x4000, AccessMode::ReadOnly));
    // A single-chiplet full rewrite followed by acquire-all of the
    // others drives every chiplet vector to NotPresent eventually; the
    // paper's "Removing Entries" rule says the row disappears. Here we
    // exercise it via the conservative path: overflow clears + fresh.
    EXPECT_EQ(e.table().size(), 1u);
}

TEST(ElideEngine, MovingAffineWindowsForcesSyncs)
{
    // A kernel whose partition shifts (different WG count) must not
    // silently elide: chiplet 1's new slice overlaps chiplet 0's old
    // dirty slice.
    auto e = makeEngine();
    e.onKernelLaunch(affineLaunch(0x1000, 0x4000, AccessMode::ReadWrite));
    LaunchDecl d;
    d.chiplets = {0, 1, 2, 3};
    KernelArgAccess a;
    a.span = {0x1000, 0x5000};
    a.mode = AccessMode::ReadWrite;
    // Shifted partition: chiplet boundaries moved by 0x800.
    a.perChiplet = {{0x1000, 0x2800},
                    {0x2800, 0x3800},
                    {0x3800, 0x4800},
                    {0x4800, 0x5000}};
    d.args.push_back(a);
    const SyncPlan p = e.onKernelLaunch(d);
    EXPECT_FALSE(p.empty());
}

} // namespace
} // namespace cpelide
