/** @file Chiplet Coherence Table unit tests. */

#include <gtest/gtest.h>

#include "core/coherence_table.hh"
#include "sim/log.hh"

namespace cpelide
{
namespace
{

TEST(CoherenceTable, PaperSizingIsAbout2KB)
{
    // Section III-A: 8 DS x 8 kernels = 64 entries, ~2 KB total for a
    // 4-chiplet system.
    CoherenceTable t(4, 64);
    EXPECT_EQ(t.capacity(), 64);
    EXPECT_GE(t.hardwareBytes(), 1536u);
    EXPECT_LE(t.hardwareBytes(), 2560u);
}

TEST(CoherenceTable, InsertFindErase)
{
    CoherenceTable t(4, 8);
    t.insert({100, 200});
    t.insert({300, 400});
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.findOverlapping({150, 160}), 0);
    EXPECT_EQ(t.findOverlapping({350, 360}), 1);
    EXPECT_EQ(t.findOverlapping({200, 300}), -1);
    t.erase(0);
    EXPECT_EQ(t.findOverlapping({350, 360}), 0);
}

TEST(CoherenceTable, FindFromSkipsEarlierRows)
{
    CoherenceTable t(2, 8);
    t.insert({0, 100});
    t.insert({50, 150});
    EXPECT_EQ(t.findOverlapping({60, 70}, 0), 0);
    EXPECT_EQ(t.findOverlapping({60, 70}, 1), 1);
    EXPECT_EQ(t.findOverlapping({60, 70}, 2), -1);
}

TEST(CoherenceTable, InsertOnFullTablePanics)
{
    CoherenceTable t(2, 1);
    t.insert({0, 10});
    EXPECT_TRUE(t.full());
    try {
        t.insert({20, 30});
        FAIL() << "expected SimPanicError";
    } catch (const SimPanicError &e) {
        EXPECT_NE(std::string(e.what()).find("full"), std::string::npos);
    }
}

TEST(CoherenceTable, ReleaseCleansDirtyEverywhere)
{
    CoherenceTable t(2, 4);
    t.insert({0, 10});
    t.insert({20, 30});
    t.rows()[0].state[0] = DsState::Dirty;
    t.rows()[0].state[1] = DsState::Stale;
    t.rows()[1].state[0] = DsState::Dirty;
    t.applyRelease(0);
    EXPECT_EQ(t.rows()[0].state[0], DsState::Valid);
    EXPECT_EQ(t.rows()[1].state[0], DsState::Valid);
    EXPECT_EQ(t.rows()[0].state[1], DsState::Stale); // other chiplet
}

TEST(CoherenceTable, AcquireResetsChipletInAllRows)
{
    CoherenceTable t(2, 4);
    TableRow &a = t.insert({0, 10});
    a.state[0] = DsState::Dirty;
    a.state[1] = DsState::Valid;
    a.range[0] = {0, 10};
    t.applyAcquire(0);
    EXPECT_EQ(t.rows()[0].state[0], DsState::NotPresent);
    EXPECT_TRUE(t.rows()[0].range[0].empty());
    EXPECT_EQ(t.rows()[0].state[1], DsState::Valid);
}

TEST(CoherenceTable, RemoveEmptyRowsDropsAllNotPresent)
{
    CoherenceTable t(2, 4);
    t.insert({0, 10});
    TableRow &b = t.insert({20, 30});
    b.state[1] = DsState::Valid;
    t.removeEmptyRows();
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.rows()[0].span.lo, 20u);
}

TEST(CoherenceTable, MaxEntriesHighWaterMark)
{
    CoherenceTable t(2, 8);
    t.insert({0, 10});
    t.insert({20, 30});
    t.erase(0);
    t.insert({40, 50});
    EXPECT_EQ(t.maxEntries(), 2u);
}

TEST(CoherenceTable, EffectiveRangeIntersectsHome)
{
    TableRow r(2);
    r.range[0] = {0, 100};
    r.home[0] = {50, 200};
    const AddrRange eff = r.effective(0);
    EXPECT_EQ(eff.lo, 50u);
    EXPECT_EQ(eff.hi, 100u);
    EXPECT_TRUE(r.effective(1).empty());
}

} // namespace
} // namespace cpelide
