/** @file ViperMemSystem (Baseline/CPElide/Monolithic) protocol tests. */

#include <gtest/gtest.h>

#include "coherence/mem_system.hh"

namespace cpelide
{
namespace
{

GpuConfig
tinyConfig(int chiplets)
{
    GpuConfig cfg = GpuConfig::radeonVii(chiplets);
    cfg.cusPerChiplet = 2;
    cfg.l2SizeBytesPerChiplet = 64 * 1024;
    cfg.l3SizeBytesTotal = 128 * 1024;
    cfg.finalize();
    return cfg;
}

struct ViperTest : ::testing::Test
{
    ViperTest()
        : cfg(tinyConfig(2)), mem(cfg, space, /*boundary_syncs_l2=*/true)
    {
        ds = space.allocate("a", 32 * 1024);
        // Pin homes: first half chiplet 0, second half chiplet 1.
        const Allocation &a = space.alloc(ds);
        for (Addr off = 0; off < a.bytes; off += kPageBytes) {
            mem.pageTable().place(a.base + off,
                                  off < a.bytes / 2 ? 0 : 1);
        }
    }

    std::uint64_t remoteLine() const
    {
        return space.alloc(ds).numLines() - 1; // homed at chiplet 1
    }

    DataSpace space;
    GpuConfig cfg;
    ViperMemSystem mem;
    DsId ds = -1;
};

TEST_F(ViperTest, LocalReadFillsL2AndHitsSecondTime)
{
    // Table I latencies are load-to-use totals per hit level.
    const Cycles first = mem.access({0, 0}, ds, 0, false);
    EXPECT_EQ(first, cfg.l3Latency + cfg.dramLatency); // cold: DRAM
    // Second read from another CU (misses its L1, hits the L2).
    const Cycles second = mem.access({0, 1}, ds, 0, false);
    EXPECT_EQ(second, cfg.l2LocalLatency);
    EXPECT_EQ(mem.l2Stats().hits, 1u);
    // Third read from the same CU: L1 hit.
    const Cycles third = mem.access({0, 1}, ds, 0, false);
    EXPECT_EQ(third, cfg.l1Latency);
}

TEST_F(ViperTest, RemoteReadIsNeverCached)
{
    mem.access({0, 0}, ds, remoteLine(), false);
    // Neither chiplet's L2 holds it: chiplet 0 may not cache remote
    // lines, chiplet 1 was not the requester.
    EXPECT_EQ(mem.l2(0).countValid(), 0u);
    EXPECT_EQ(mem.l2(1).countValid(), 0u);
    // The line lives in chiplet 1's L3 bank now.
    EXPECT_TRUE(mem.l3(1).peek(space.alloc(ds).lineAddr(remoteLine())));
    // And a repeat read still pays the remote latency (390 cycles
    // load-to-use for a remote LLC-bank hit).
    mem.kernelBoundaryL1();
    const Cycles again = mem.access({0, 0}, ds, remoteLine(), false);
    EXPECT_EQ(again, cfg.l2RemoteLatency);
}

TEST_F(ViperTest, LocalWriteAllocatesDirty)
{
    mem.access({0, 0}, ds, 0, true);
    EXPECT_EQ(mem.l2(0).dirtyLines(), 1u);
    bool dirty = false;
    std::uint32_t v = 0;
    EXPECT_TRUE(mem.l2(0).peek(space.alloc(ds).lineAddr(0), &v, &dirty));
    EXPECT_TRUE(dirty);
    EXPECT_EQ(v, 1u);
}

TEST_F(ViperTest, RemoteWriteGoesStraightToHomeL3)
{
    mem.access({0, 0}, ds, remoteLine(), true);
    EXPECT_EQ(mem.l2(0).dirtyLines(), 0u);
    EXPECT_EQ(mem.l2(1).dirtyLines(), 0u);
    std::uint32_t v = 0;
    bool dirty = false;
    EXPECT_TRUE(mem.l3(1).peek(space.alloc(ds).lineAddr(remoteLine()),
                               &v, &dirty));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(dirty); // L3 is write-back to DRAM
    EXPECT_GT(mem.noc().flits().remote, 0u);
}

TEST_F(ViperTest, ReleaseWritesBackAndRetainsCleanCopies)
{
    mem.access({0, 0}, ds, 0, true);
    mem.access({0, 0}, ds, 1, true);
    const Cycles cost = mem.l2Release(0);
    EXPECT_GT(cost, 0u);
    EXPECT_EQ(mem.l2(0).dirtyLines(), 0u);
    EXPECT_EQ(mem.linesWrittenBack(), 2u);
    // Copies retained (clean) — the basis of CPElide's lazy release.
    EXPECT_TRUE(mem.l2(0).peek(space.alloc(ds).lineAddr(0)));
    // And the LLC now holds the data.
    std::uint32_t v = 0;
    EXPECT_TRUE(mem.l3(0).peek(space.alloc(ds).lineAddr(0), &v));
    EXPECT_EQ(v, 1u);
}

TEST_F(ViperTest, AcquireFlushesThenInvalidates)
{
    mem.access({0, 0}, ds, 0, true);
    mem.access({0, 0}, ds, 2, false);
    mem.l2Acquire(0);
    EXPECT_EQ(mem.l2(0).countValid(), 0u);
    EXPECT_EQ(mem.l2(0).dirtyLines(), 0u);
    // Dirty data was not lost: it reached the LLC.
    std::uint32_t v = 0;
    EXPECT_TRUE(mem.l3(0).peek(space.alloc(ds).lineAddr(0), &v));
    EXPECT_EQ(v, 1u);
}

TEST_F(ViperTest, KernelBoundarySyncsAllChiplets)
{
    mem.access({0, 0}, ds, 0, true);
    mem.access({1, 0}, ds, remoteLine() / 2 + 1, false);
    mem.kernelBoundaryL2();
    EXPECT_EQ(mem.l2(0).countValid(), 0u);
    EXPECT_EQ(mem.l2(1).countValid(), 0u);
    EXPECT_EQ(mem.l2InvalidatesIssued(), 2u);
}

TEST_F(ViperTest, StaleCopyScenarioCaughtWithoutSync)
{
    // Chiplet 0 caches line 0 (clean). Chiplet 1 writes it remotely.
    // Without an acquire, chiplet 0's next L2 hit observes the stale
    // version — exactly what the checker exists to catch.
    mem.access({0, 0}, ds, 0, false);
    mem.access({1, 0}, ds, 0, true);
    mem.kernelBoundaryL1(); // L1s always invalidate at boundaries
    EXPECT_EQ(space.staleReads(), 0u);
    mem.access({0, 1}, ds, 0, false);
    EXPECT_EQ(space.staleReads(), 1u);
}

TEST_F(ViperTest, AcquirePreventsTheStaleRead)
{
    mem.access({0, 0}, ds, 0, false);
    mem.access({1, 0}, ds, 0, true);
    mem.kernelBoundaryL1();
    mem.l2Acquire(0);
    mem.access({0, 1}, ds, 0, false);
    EXPECT_EQ(space.staleReads(), 0u);
}

TEST_F(ViperTest, DirtyProducerScenarioNeedsRelease)
{
    // Chiplet 0 writes its local line; chiplet 1 reads it remotely.
    // Without a release the read reaches the LLC and misses the dirty
    // data.
    mem.access({0, 0}, ds, 0, true);
    mem.kernelBoundaryL1();
    mem.access({1, 0}, ds, 0, false);
    EXPECT_EQ(space.staleReads(), 1u);
}

TEST_F(ViperTest, ReleaseMakesDirtyDataVisibleRemotely)
{
    mem.access({0, 0}, ds, 0, true);
    mem.kernelBoundaryL1();
    mem.l2Release(0);
    mem.access({1, 0}, ds, 0, false);
    EXPECT_EQ(space.staleReads(), 0u);
}

TEST(ViperMonolithic, SingleChipletNeverRemote)
{
    DataSpace space;
    GpuConfig cfg = GpuConfig::monolithicEquivalent(2);
    cfg.cusPerChiplet = 4;
    cfg.l2SizeBytesPerChiplet = 128 * 1024;
    cfg.finalize();
    ViperMemSystem mem(cfg, space, /*boundary_syncs_l2=*/false);
    const DsId ds = space.allocate("a", 64 * 1024);
    for (std::uint64_t l = 0; l < 512; ++l)
        mem.access({0, static_cast<CuId>(l % 4)}, ds, l, l % 3 == 0);
    EXPECT_EQ(mem.noc().flits().remote, 0u);
    EXPECT_EQ(mem.kernelBoundaryL2(), 0u);
    EXPECT_EQ(space.staleReads(), 0u);
}

TEST(ViperFactory, CoversAllProtocolKinds)
{
    DataSpace s1, s2, s3, s4, s5;
    const GpuConfig cfg = tinyConfig(2);
    EXPECT_TRUE(makeMemSystem(cfg, ProtocolKind::Baseline, s1)
                    ->boundarySyncsL2());
    EXPECT_FALSE(makeMemSystem(cfg, ProtocolKind::CpElide, s2)
                     ->boundarySyncsL2());
    EXPECT_FALSE(
        makeMemSystem(cfg, ProtocolKind::Hmg, s3)->boundarySyncsL2());
    EXPECT_FALSE(makeMemSystem(cfg, ProtocolKind::HmgWriteBack, s4)
                     ->boundarySyncsL2());
    EXPECT_THROW(makeMemSystem(cfg, ProtocolKind::Monolithic, s5),
                 FatalError);
}

} // namespace
} // namespace cpelide
