#!/usr/bin/env python3
"""Fixture tests for scripts/lint.py (the test_lint ctest entry).

Every lint rule gets a pair of fixture trees under
tests/lint/fixtures/<rule>/: `bad` contains exactly the violation the
rule exists to catch (the rule must fire, exit 1, and name itself),
`clean` contains the idiomatic fix (the rule must stay quiet, exit 0).
Each fixture is linted with --only <rule> so a tree built to violate
one rule cannot trip on another, and with --root so the real tree is
never in play. Two exceptions to the pattern:

 - exemptions-valid's clean case is the repository itself: the rule
   validates the allowlists in lint.py against real files, so only the
   real root can prove the current exemptions resolve.
 - The suite ends with a full (all-rules) run on the repository, which
   also proves the fixtures' deliberate violations are fenced off from
   real-tree scans.
"""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
LINT = REPO / "scripts" / "lint.py"
FIXTURES = REPO / "tests" / "lint" / "fixtures"

RULES = [
    "include-guards",
    "single-getenv",
    "no-cout",
    "prof-counters",
    "legacy-api",
    "unordered-iter",
    "wall-clock",
    "rng",
    "mutex-discipline",
    "exemptions-valid",
]


def run_lint(args):
    return subprocess.run([sys.executable, str(LINT)] + args,
                          capture_output=True, text=True)


def main() -> int:
    failures = []

    for rule in RULES:
        bad = FIXTURES / rule / "bad"
        result = run_lint(["--root", str(bad), "--only", rule])
        if result.returncode != 1:
            failures.append(
                f"{rule}: bad fixture should exit 1, got "
                f"{result.returncode}\n{result.stdout}{result.stderr}")
        elif f"lint: {rule}:" not in result.stdout or \
                "violation" not in result.stdout:
            failures.append(
                f"{rule}: bad fixture fired but the output does not "
                f"name the rule\n{result.stdout}")

        if rule == "exemptions-valid":
            result = run_lint(["--only", rule])
            where = "repository root"
        else:
            clean = FIXTURES / rule / "clean"
            result = run_lint(["--root", str(clean), "--only", rule])
            where = "clean fixture"
        if result.returncode != 0:
            failures.append(
                f"{rule}: {where} should pass, got exit "
                f"{result.returncode}\n{result.stdout}{result.stderr}")

    result = run_lint([])
    if result.returncode != 0:
        failures.append(
            "full lint on the repository should pass (and must not see "
            f"the fixture trees)\n{result.stdout}{result.stderr}")

    if failures:
        print(f"test_lint: {len(failures)} failure(s)")
        for f in failures:
            print(f"--- {f}")
        return 1
    print(f"test_lint: {len(RULES)} rule fixtures + full-tree run: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
