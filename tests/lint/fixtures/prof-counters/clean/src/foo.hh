#ifndef CPELIDE_FOO_HH
#define CPELIDE_FOO_HH

#include "prof/counter.hh"

class Cache
{
  private:
    prof::Counter _hits;
};

#endif // CPELIDE_FOO_HH
