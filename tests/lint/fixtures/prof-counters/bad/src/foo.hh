#ifndef CPELIDE_FOO_HH
#define CPELIDE_FOO_HH

#include <cstdint>

class Cache
{
  private:
    std::uint64_t _hits = 0;
};

#endif // CPELIDE_FOO_HH
