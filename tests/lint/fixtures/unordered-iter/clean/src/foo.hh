#ifndef CPELIDE_FOO_HH
#define CPELIDE_FOO_HH

#include <unordered_map>

class Table
{
  public:
    int
    at(int k) const
    {
        auto it = _cells.find(k);
        return it == _cells.end() ? 0 : it->second;
    }

  private:
    std::unordered_map<int, int> _cells;
};

#endif // CPELIDE_FOO_HH
