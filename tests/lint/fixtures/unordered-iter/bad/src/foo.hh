#ifndef CPELIDE_FOO_HH
#define CPELIDE_FOO_HH

#include <unordered_map>

class Table
{
  public:
    int
    sum() const
    {
        int total = 0;
        for (const auto &[k, v] : _cells)
            total += v;
        return total;
    }

  private:
    std::unordered_map<int, int> _cells;
};

#endif // CPELIDE_FOO_HH
