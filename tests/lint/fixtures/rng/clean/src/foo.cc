#include "sim/rng.hh"

int roll(cpelide::Rng &rng) { return static_cast<int>(rng.next()); }
