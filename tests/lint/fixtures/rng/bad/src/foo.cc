#include <random>

int roll() { static std::mt19937 gen(42); return static_cast<int>(gen()); }
