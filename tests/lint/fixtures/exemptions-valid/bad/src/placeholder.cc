// Intentionally bare tree: every lint allowlist entry points at a file
// that does not exist under this root, so exemptions-valid must fail.
