// The clean case for exemptions-valid is the real repository root
// (the driver runs the rule without --root); this tree is unused but
// kept so the fixture layout stays uniform.
