// Callers used to go through runWorkloadCfg; keep for reference.
int entry() { return 0; }
