// Callers build a RunRequest and use run()/makeJob().
int entry() { return 0; }
