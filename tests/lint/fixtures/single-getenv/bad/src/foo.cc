#include <cstdlib>

const char *knob() { return std::getenv("CPELIDE_FOO"); }
