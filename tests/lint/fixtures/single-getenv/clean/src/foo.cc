int knob() { return 42; }
