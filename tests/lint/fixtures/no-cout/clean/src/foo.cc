#include <cstdio>

void report(int v) { std::fprintf(stderr, "warn: %d\n", v); }
