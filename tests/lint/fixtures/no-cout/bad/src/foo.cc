#include <iostream>

void report(int v) { std::cout << v << "\n"; }
