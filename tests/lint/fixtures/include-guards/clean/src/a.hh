#ifndef CPELIDE_A_HH
#define CPELIDE_A_HH

int goodGuard();

#endif // CPELIDE_A_HH
