#ifndef WRONG_GUARD
#define WRONG_GUARD

int badGuard();

#endif // WRONG_GUARD
