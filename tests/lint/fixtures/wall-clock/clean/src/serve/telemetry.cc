// The audited WALLCLOCK_ALLOWED entry: this path may stamp
// operator-facing log lines with the wall clock.
#include <chrono>

long slowLogStamp()
{
    return std::chrono::system_clock::now().time_since_epoch().count();
}
