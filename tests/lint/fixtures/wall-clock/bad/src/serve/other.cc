// The exemption names src/serve/telemetry.cc exactly; a sibling file
// in the same directory still fires.
#include <chrono>

long stamp()
{
    return std::chrono::system_clock::now().time_since_epoch().count();
}
