#include <chrono>

long stamp()
{
    return std::chrono::system_clock::now().time_since_epoch().count();
}
