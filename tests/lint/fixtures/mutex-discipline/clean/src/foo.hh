#ifndef CPELIDE_FOO_HH
#define CPELIDE_FOO_HH

#include "sim/thread_annotations.hh"

class Shared
{
  private:
    mutable Mutex _mutex;
    int _value CPELIDE_GUARDED_BY(_mutex) = 0;
};

#endif // CPELIDE_FOO_HH
