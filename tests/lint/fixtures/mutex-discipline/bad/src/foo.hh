#ifndef CPELIDE_FOO_HH
#define CPELIDE_FOO_HH

#include <mutex>

#include "sim/thread_annotations.hh"

class Shared
{
  private:
    std::mutex _raw;
    Mutex _orphanMutex;
    int _value = 0;
};

#endif // CPELIDE_FOO_HH
