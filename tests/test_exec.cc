/**
 * @file
 * Tests for the parallel experiment-execution engine (src/exec):
 * determinism across thread counts, failure isolation, the
 * CPELIDE_JOBS=1 serial path, and the metrics plumbing.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "exec/sweep_runner.hh"
#include "exec/thread_pool.hh"
#include "harness/harness.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/sim_budget.hh"
#include "stats/run_metrics.hh"

using namespace cpelide;

namespace
{

/** Small but non-trivial workload grid shared by the tests. */
SweepSpec
smallGrid()
{
    SweepSpec spec{"test_grid", {}};
    for (const char *name : {"Square", "Backprop"}) {
        for (ProtocolKind kind :
             {ProtocolKind::Baseline, ProtocolKind::CpElide}) {
            spec.jobs.push_back(makeJob({.workload = name, .protocol = kind, .chiplets = 2, .scale = 0.05}));
        }
    }
    return spec;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.numChiplets, b.numChiplets);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.kernels, b.kernels);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l2.hits, b.l2.hits);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l3.hits, b.l3.hits);
    EXPECT_EQ(a.l3.misses, b.l3.misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.flits.l1l2, b.flits.l1l2);
    EXPECT_EQ(a.flits.l2l3, b.flits.l2l3);
    EXPECT_EQ(a.flits.remote, b.flits.remote);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.l2FlushesIssued, b.l2FlushesIssued);
    EXPECT_EQ(a.l2InvalidatesIssued, b.l2InvalidatesIssued);
    EXPECT_EQ(a.l2FlushesElided, b.l2FlushesElided);
    EXPECT_EQ(a.l2InvalidatesElided, b.l2InvalidatesElided);
    EXPECT_EQ(a.linesWrittenBack, b.linesWrittenBack);
    EXPECT_EQ(a.syncStallCycles, b.syncStallCycles);
    EXPECT_EQ(a.tableMaxEntries, b.tableMaxEntries);
    EXPECT_EQ(a.staleReads, b.staleReads);
    EXPECT_EQ(a.hostVisibilityViolations, b.hostVisibilityViolations);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.stallComputeCycles, b.stallComputeCycles);
    EXPECT_EQ(a.stallMemoryCycles, b.stallMemoryCycles);
    EXPECT_EQ(a.stallBarrierCycles, b.stallBarrierCycles);
    EXPECT_EQ(a.stallFlushCycles, b.stallFlushCycles);
    EXPECT_EQ(a.stallInvalidateCycles, b.stallInvalidateCycles);
    EXPECT_EQ(a.stallDirectoryCycles, b.stallDirectoryCycles);
}

} // namespace

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
    // wait() is reusable: a second batch drains too.
    for (int i = 0; i < 10; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPool, WorkerIndexVisibleInsideTasksOnly)
{
    EXPECT_EQ(ThreadPool::currentWorker(), -1);
    ThreadPool pool(2);
    std::atomic<bool> sawWorker{true};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&sawWorker] {
            const int w = ThreadPool::currentWorker();
            if (w < 0 || w > 1)
                sawWorker = false;
        });
    }
    pool.wait();
    EXPECT_TRUE(sawWorker.load());
}

TEST(SweepRunner, ParallelResultsIdenticalToSerial)
{
    const SweepSpec spec = smallGrid();
    const auto serial = SweepRunner(1).run(spec);
    const auto parallel = SweepRunner(4).run(spec);
    ASSERT_EQ(serial.size(), spec.jobs.size());
    ASSERT_EQ(parallel.size(), spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << spec.jobs[i].label;
        ASSERT_TRUE(parallel[i].ok) << spec.jobs[i].label;
        expectSameResult(serial[i].result, parallel[i].result);
    }
}

TEST(SweepRunner, ThrowingJobIsIsolated)
{
    SweepSpec spec{"test_failure", {}};
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    spec.add("boom", []() -> RunResult {
        throw std::runtime_error("boom");
    });
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::CpElide, .chiplets = 2, .scale = 0.05}));

    const auto out = SweepRunner(3).run(spec);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_FALSE(out[1].ok);
    EXPECT_NE(out[1].error.find("boom"), std::string::npos);
    // The error slot holds a zeroed result row, not garbage.
    EXPECT_EQ(out[1].result.cycles, 0u);
    EXPECT_TRUE(out[2].ok);
    EXPECT_GT(out[2].result.cycles, 0u);
}

TEST(SweepRunner, UnknownWorkloadBecomesErrorRow)
{
    SweepSpec spec{"test_unknown", {}};
    spec.jobs.push_back(
        makeJob({.workload = "NoSuchWorkload", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    const auto out = SweepRunner(2).run(spec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].ok);
    EXPECT_NE(out[0].error.find("unknown workload"), std::string::npos);
}

TEST(SweepRunner, EnvJobsOneTakesSerialPath)
{
    ASSERT_EQ(setenv("CPELIDE_JOBS", "1", 1), 0);
    EXPECT_EQ(jobsFromEnv(), 1);

    SweepSpec spec{"test_serial", {}};
    const auto mainId = std::this_thread::get_id();
    std::atomic<bool> onCaller{false};
    std::atomic<int> worker{0};
    spec.add("probe", [&]() -> RunResult {
        onCaller = std::this_thread::get_id() == mainId;
        worker = ThreadPool::currentWorker();
        return RunResult{};
    });
    const auto out = SweepRunner().run(spec);
    unsetenv("CPELIDE_JOBS");

    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_TRUE(onCaller.load()) << "serial path must run inline";
    EXPECT_EQ(worker.load(), -1);
    EXPECT_EQ(out[0].metrics.worker, -1);
}

TEST(SweepRunner, EnvJobsParsing)
{
    ASSERT_EQ(setenv("CPELIDE_JOBS", "8", 1), 0);
    EXPECT_EQ(jobsFromEnv(), 8);
    ASSERT_EQ(setenv("CPELIDE_JOBS", "0", 1), 0);
    EXPECT_GE(jobsFromEnv(), 1); // non-positive -> default
    ASSERT_EQ(setenv("CPELIDE_JOBS", "banana", 1), 0);
    EXPECT_GE(jobsFromEnv(), 1); // unparsable -> default
    unsetenv("CPELIDE_JOBS");
    EXPECT_GE(jobsFromEnv(), 1);
}

TEST(SweepRunner, RunawayJobBecomesStructuredTimeout)
{
    // An unbounded simulation loop must come back as a Timeout row —
    // not hang the sweep — while its neighbors complete untouched.
    SweepSpec spec{"test_timeout", {}};
    // Generous enough that the healthy neighbor jobs finish within the
    // budget even under a sanitizer's ~10x slowdown; the spinning job
    // burns the whole budget either way.
    spec.budget.maxWallMs = 2000.0;
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    spec.add("spin_forever", []() -> RunResult {
        EventQueue q;
        std::function<void()> again = [&] {
            q.scheduleAfter(1, again);
        };
        q.schedule(1, again);
        q.run(); // never returns on its own; the budget unwinds it
        return RunResult{};
    });
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::CpElide, .chiplets = 2, .scale = 0.05}));

    const auto out = SweepRunner(2).run(spec);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_FALSE(out[1].ok);
    EXPECT_EQ(out[1].kind, JobErrorKind::Timeout);
    EXPECT_NE(out[1].error.find("budget"), std::string::npos);
    EXPECT_TRUE(out[2].ok);

    // The healthy rows are byte-identical to an unbudgeted run.
    SweepSpec clean{"test_timeout_clean", {}};
    clean.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    clean.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::CpElide, .chiplets = 2, .scale = 0.05}));
    const auto ref = SweepRunner(1).run(clean);
    expectSameResult(ref[0].result, out[0].result);
    expectSameResult(ref[1].result, out[2].result);
}

TEST(SweepRunner, EventBudgetBecomesStructuredBudgetRow)
{
    SweepSpec spec{"test_budget", {}};
    spec.budget.maxEvents = 1000;
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    const auto out = SweepRunner(1).run(spec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].ok);
    EXPECT_EQ(out[0].kind, JobErrorKind::Budget);
}

TEST(SweepRunner, PanickingJobClassifiedAsSimPanic)
{
    SweepSpec spec{"test_panic", {}};
    spec.add("panics", []() -> RunResult {
        panic("injected test panic");
        return RunResult{};
    });
    const auto out = SweepRunner(1).run(spec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].ok);
    EXPECT_EQ(out[0].kind, JobErrorKind::SimPanic);
    EXPECT_NE(out[0].error.find("injected test panic"),
              std::string::npos);
    EXPECT_EQ(out[0].attempts, 1); // panics are not retry-safe
}

TEST(SweepRunner, RetrySafeFailuresAreRetriedWithBackoff)
{
    SweepSpec spec{"test_retry", {}};
    spec.maxRetries = 3;
    spec.retryBackoffMs = 1.0;
    std::atomic<int> calls{0};
    spec.add("flaky", [&calls]() -> RunResult {
        if (++calls < 3)
            throw std::runtime_error("transient failure");
        return RunResult{};
    });
    const auto out = SweepRunner(1).run(spec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ok);
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(out[0].attempts, 3);
}

TEST(SweepRunner, RetriesExhaustToClassifiedFailure)
{
    SweepSpec spec{"test_retry_exhaust", {}};
    spec.maxRetries = 2;
    spec.retryBackoffMs = 1.0;
    std::atomic<int> calls{0};
    spec.add("always_fails", [&calls]() -> RunResult {
        ++calls;
        throw std::runtime_error("still broken");
    });
    const auto out = SweepRunner(1).run(spec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].ok);
    EXPECT_EQ(out[0].kind, JobErrorKind::Unknown);
    EXPECT_EQ(calls.load(), 3); // 1 + 2 retries
    EXPECT_EQ(out[0].attempts, 3);
}

TEST(SweepRunner, NonRetrySafeFailuresAreNotRetried)
{
    SweepSpec spec{"test_no_retry", {}};
    spec.maxRetries = 5;
    spec.retryBackoffMs = 1.0;
    spec.budget.maxEvents = 1000;
    std::atomic<int> calls{0};
    spec.add("overbudget", [&calls]() -> RunResult {
        ++calls;
        BudgetGuard::charge(2000); // deterministic: retry cannot help
        return RunResult{};
    });
    const auto out = SweepRunner(1).run(spec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].ok);
    EXPECT_EQ(out[0].kind, JobErrorKind::Budget);
    EXPECT_EQ(calls.load(), 1);
}

TEST(SweepRunner, RetryEnvKnobParsing)
{
    ASSERT_EQ(setenv("CPELIDE_RETRIES", "4", 1), 0);
    EXPECT_EQ(retriesFromEnv(), 4);
    ASSERT_EQ(setenv("CPELIDE_RETRIES", "banana", 1), 0);
    EXPECT_EQ(retriesFromEnv(), 0);
    ASSERT_EQ(setenv("CPELIDE_RETRIES", "999", 1), 0);
    EXPECT_LE(retriesFromEnv(), 16); // clamped
    unsetenv("CPELIDE_RETRIES");
    EXPECT_EQ(retriesFromEnv(), 0);

    ASSERT_EQ(setenv("CPELIDE_RETRY_BACKOFF_MS", "10.5", 1), 0);
    EXPECT_DOUBLE_EQ(retryBackoffMsFromEnv(), 10.5);
    unsetenv("CPELIDE_RETRY_BACKOFF_MS");
    EXPECT_DOUBLE_EQ(retryBackoffMsFromEnv(), 50.0);
}

TEST(SweepRunner, MetricsRecordedPerJob)
{
    MetricsRegistry::global().clear();
    SweepSpec spec{"test_metrics", {}};
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    const auto out = SweepRunner(2).run(spec);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_TRUE(out[0].ok);
    EXPECT_GE(out[0].metrics.wallSeconds, 0.0);
    EXPECT_GT(out[0].metrics.simEvents, 0u);
    EXPECT_EQ(out[0].metrics.simEvents, out[0].result.simEvents);

    const auto rows = MetricsRegistry::global().rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].sweep, "test_metrics");
    EXPECT_EQ(rows[0].label, spec.jobs[0].label);
    EXPECT_TRUE(rows[0].ok);
    const std::string table =
        MetricsRegistry::global().render("test_metrics");
    EXPECT_NE(table.find(spec.jobs[0].label), std::string::npos);
}

TEST(SweepRunner, SerialJobsOwnTheirRssMeasurement)
{
    // With one worker nothing overlaps, so the per-job RSS numbers
    // are attributable: no shared marks, non-negative deltas.
    SweepSpec spec{"test_rss_serial", {}};
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::Baseline, .chiplets = 2, .scale = 0.05}));
    spec.jobs.push_back(makeJob({.workload = "Square", .protocol = ProtocolKind::CpElide, .chiplets = 2, .scale = 0.05}));
    const auto out = SweepRunner(1).run(spec);
    ASSERT_EQ(out.size(), 2u);
    for (const JobOutcome &o : out) {
        ASSERT_TRUE(o.ok);
        EXPECT_FALSE(o.metrics.rssShared);
        EXPECT_GE(o.metrics.rssDeltaKb, 0L);
        // The delta is growth across the job, never more than the
        // process-wide peak.
        EXPECT_LE(o.metrics.rssDeltaKb, o.metrics.peakRssKb);
    }
}

TEST(SweepRunner, OverlappingJobsAreMarkedRssShared)
{
    // Two jobs forced to overlap (each waits for the other to start):
    // the process-wide peak is no longer attributable to either, so
    // both must carry the shared mark.
    SweepSpec spec{"test_rss_shared", {}};
    std::atomic<int> started{0};
    const auto body = [&started]() -> RunResult {
        ++started;
        // Bounded spin: under a stuck scheduler the budget-less wait
        // still terminates after ~2 s and the EXPECT below fails
        // loudly instead of hanging the suite.
        for (int i = 0; i < 2000 && started.load() < 2; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return RunResult{};
    };
    spec.add("overlap_a", body);
    spec.add("overlap_b", body);
    const auto out = SweepRunner(2).run(spec);
    ASSERT_EQ(out.size(), 2u);
    ASSERT_EQ(started.load(), 2);
    for (const JobOutcome &o : out) {
        ASSERT_TRUE(o.ok);
        EXPECT_TRUE(o.metrics.rssShared);
    }
}
